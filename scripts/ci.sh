#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, offline build, full test suite.
#
# The workspace must build with no network access (zero registry
# dependencies); --offline enforces that invariant on every run. The
# legacy criterion bench sources under crates/bench/benches/ are kept
# as reference but not built (autobenches = false); the wall-time
# harness (crates/bench/src/main.rs) is dependency-free and runs here
# in smoke mode.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> microcode fixture verification (ouas verify)"
bash scripts/verify_fixtures.sh

echo "==> cargo test (offline, all workspace members)"
cargo test -q --offline --workspace

echo "==> seeded chaos sweep (fault injection, fixed seeds)"
cargo test -q --offline -p ouessant-farm --test chaos

echo "==> seeded hang-seam sweep (watchdogs, deadlines, shedding; zero stranded jobs or leaked leases)"
cargo test -q --offline -p ouessant-farm --test liveness
cargo test -q --offline -p ouessant-farm --test lockstep hang

echo "==> chaos + hang campaign demo (fixed seeds, reproducible)"
cargo run --release --offline --example farm_demo -- --chaos-seed 0xC4A05EED --hang-seed 0x0CEA4A46 >/dev/null

echo "==> fast-forward benchmark smoke (bit-exactness gate)"
bash scripts/bench.sh --smoke

echo "==> CI green"
