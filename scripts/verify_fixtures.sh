#!/usr/bin/env bash
# Static-analysis gate over every microcode fixture in the repository:
# each .oua source under examples/ and crates/isa/tests/ must assemble
# and verify with zero error-severity diagnostics. Warnings are printed
# but tolerated (see crates/isa/tests/fixtures/overlap_pipeline.oua for
# a deliberately warning-carrying idiom).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release --offline -p ouessant-verify --bin ouas
OUAS=target/release/ouas

status=0
checked=0
while IFS= read -r -d '' fixture; do
  echo "==> ouas verify $fixture"
  if ! "$OUAS" verify "$fixture"; then
    status=1
  fi
  checked=$((checked + 1))
done < <(find examples crates/isa/tests -name '*.oua' -print0 | sort -z)

if [ "$checked" -eq 0 ]; then
  echo "error: no .oua fixtures found — tree layout changed?" >&2
  exit 1
fi
echo "==> $checked fixture(s) verified"
exit "$status"
