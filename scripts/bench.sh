#!/usr/bin/env bash
# Wall-time benchmark for the farm's event-horizon fast-forward kernel.
#
# Runs every campaign in both stepping modes (single-step vs leap) and
# writes BENCH_farm.json. The harness itself exits non-zero if the two
# modes disagree on simulated cycles or job records, so this script
# doubles as a bit-exactness gate.
#
#   scripts/bench.sh           # full campaigns, BENCH_farm.json
#   scripts/bench.sh --smoke   # reduced job counts (CI), BENCH_farm_smoke.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_farm.json"
args=()
if [[ "${1:-}" == "--smoke" ]]; then
    out="BENCH_farm_smoke.json"
    args+=(--smoke)
    shift
fi
args+=(--out "$out" "$@")

echo "==> cargo build --release (ouessant-bench)"
cargo build --release --offline -p ouessant-bench

echo "==> benchmark campaigns (both stepping modes)"
./target/release/ouessant-bench "${args[@]}"

# Malformed output would poison downstream consumers of the numbers;
# validate the JSON when a parser is on the PATH.
if command -v python3 >/dev/null 2>&1; then
    echo "==> validating $out"
    python3 -m json.tool "$out" >/dev/null
elif command -v jq >/dev/null 2>&1; then
    echo "==> validating $out"
    jq empty "$out"
else
    echo "==> skipping JSON validation (no python3 or jq on PATH)"
fi

echo "==> bench OK ($out)"
