//! Re-exports for examples and integration tests.
pub use ouessant_soc::*;
