//! The MPSoC argument of §II: Molen sits between *the* processor and
//! the bus, "and it requires one accelerator per processor, making it
//! inefficient in MultiProcessor System on Chips". Ouessant integrates
//! as a regular bus peripheral, so **several OCPs coexist on one bus**,
//! run concurrently, and are controlled independently — this test is
//! that scenario, plus the §IV claim that "during computation, the GPP
//! can process other tasks".

use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_isa::assemble;
use ouessant_rac::idct::{idct_2d_fixed, IdctRac};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_sim::bus::{Bus, BusConfig, PortState, TxnRequest};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::SystemBus;

const RAM: u32 = 0x4000_0000;
const OCP_A: u32 = 0x8000_0000;
const OCP_B: u32 = 0x8001_0000;

#[test]
fn two_ocps_share_one_bus_and_run_concurrently() {
    let mut bus = Bus::new(BusConfig::default());
    let _cpu = SystemBus::register_master(&mut bus, "cpu");
    bus.add_slave(RAM, Sram::with_words(1 << 15, SramConfig::default()));

    // OCP A: IDCT. OCP B: passthrough copy. Different programs,
    // different banks, same bus.
    let mut ocp_a = Ocp::attach(
        &mut bus,
        OCP_A,
        Box::new(IdctRac::new()),
        OcpConfig::default(),
    );
    let mut ocp_b = Ocp::attach(
        &mut bus,
        OCP_B,
        Box::new(PassthroughRac::new(0)),
        OcpConfig::default(),
    );

    let prog_a =
        assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop").unwrap();
    let prog_b =
        assemble("mvtc BANK1,0,DMA32,FIFO0\nexecs 32\nmvfc BANK2,0,DMA32,FIFO0\neop").unwrap();

    // Memory layout: programs at 0x0000/0x1000, A data at 0x2000/0x3000,
    // B data at 0x4000/0x5000 (byte offsets from RAM).
    for (i, w) in prog_a.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    for (i, w) in prog_b.to_words().iter().enumerate() {
        bus.debug_write(RAM + 0x1000 + (i as u32) * 4, *w).unwrap();
    }
    let coeffs: Vec<i32> = (0..64).map(|i| (i * 97 % 601) - 300).collect();
    for (i, &c) in coeffs.iter().enumerate() {
        bus.debug_write(RAM + 0x2000 + (i as u32) * 4, c as u32)
            .unwrap();
    }
    for i in 0..32u32 {
        bus.debug_write(RAM + 0x4000 + i * 4, 0xB000_0000 + i)
            .unwrap();
    }

    ocp_a.regs().set_bank(0, RAM).unwrap();
    ocp_a.regs().set_bank(1, RAM + 0x2000).unwrap();
    ocp_a.regs().set_bank(2, RAM + 0x3000).unwrap();
    ocp_a.regs().set_prog_size(prog_a.len() as u32).unwrap();

    ocp_b.regs().set_bank(0, RAM + 0x1000).unwrap();
    ocp_b.regs().set_bank(1, RAM + 0x4000).unwrap();
    ocp_b.regs().set_bank(2, RAM + 0x5000).unwrap();
    ocp_b.regs().set_prog_size(prog_b.len() as u32).unwrap();

    // Start both in the same cycle.
    ocp_a.regs().start();
    ocp_b.regs().start();

    let mut cycles = 0u64;
    let mut a_done_at = None;
    let mut b_done_at = None;
    while a_done_at.is_none() || b_done_at.is_none() {
        ocp_a.tick(&mut bus);
        ocp_b.tick(&mut bus);
        SystemBus::tick(&mut bus);
        cycles += 1;
        assert!(cycles < 1_000_000, "both offloads must finish");
        assert!(ocp_a.fault().is_none() && ocp_b.fault().is_none());
        if a_done_at.is_none() && ocp_a.regs().done() {
            a_done_at = Some(cycles);
        }
        if b_done_at.is_none() && ocp_b.regs().done() {
            b_done_at = Some(cycles);
        }
    }

    // Both produced correct results.
    let expected = idct_2d_fixed(&coeffs);
    for (i, &e) in expected.iter().enumerate() {
        let got = bus.debug_read(RAM + 0x3000 + (i as u32) * 4).unwrap() as i32;
        assert_eq!(got, e, "OCP A output {i}");
    }
    for i in 0..32u32 {
        assert_eq!(
            bus.debug_read(RAM + 0x5000 + i * 4).unwrap(),
            0xB000_0000 + i,
            "OCP B output {i}"
        );
    }

    // They genuinely overlapped: both finished, and the bus saw
    // contention between the two DMA masters.
    assert!(bus.stats().contention_cycles > 0, "concurrent DMAs contend");

    // Overlap beats serialization: the later finisher completed well
    // before the sum of two standalone runs would suggest.
    let later = a_done_at.unwrap().max(b_done_at.unwrap());
    assert!(later < 1_500, "concurrent completion at {later}");
}

#[test]
fn cpu_computes_while_ocp_runs() {
    // §IV: "During computation, the GPP can process other tasks if
    // required, as long as it does not involve data being processed by
    // OCP." The CPU does a memcpy of an unrelated buffer while the OCP
    // moves its own data.
    let mut bus = Bus::new(BusConfig::default());
    let cpu = SystemBus::register_master(&mut bus, "cpu");
    bus.add_slave(RAM, Sram::with_words(1 << 15, SramConfig::default()));
    let mut ocp = Ocp::attach(
        &mut bus,
        OCP_A,
        Box::new(PassthroughRac::new(0)),
        OcpConfig::default(),
    );

    let program =
        assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs 64\nmvfc BANK2,0,DMA64,FIFO0\neop").unwrap();
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    for i in 0..64u32 {
        bus.debug_write(RAM + 0x2000 + i * 4, i + 1).unwrap();
        bus.debug_write(RAM + 0x6000 + i * 4, 0xCAFE_0000 + i)
            .unwrap(); // CPU's buffer
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().set_bank(1, RAM + 0x2000).unwrap();
    ocp.regs().set_bank(2, RAM + 0x3000).unwrap();
    ocp.regs().set_prog_size(program.len() as u32).unwrap();
    ocp.regs().start();

    // CPU task: copy 64 words from 0x6000 to 0x7000 word by word, in
    // parallel with the OCP offload.
    let mut copied = 0u32;
    let mut cpu_state = 0u8; // 0 = need read, 1 = reading, 2 = writing
    let mut pending_value = 0u32;
    let mut cycles = 0u64;
    while !ocp.regs().done() || copied < 64 {
        ocp.tick(&mut bus);
        SystemBus::tick(&mut bus);
        cycles += 1;
        assert!(cycles < 1_000_000);
        assert!(ocp.fault().is_none());
        match cpu_state {
            0 if copied < 64
                && bus
                    .try_begin(cpu, TxnRequest::read_word(RAM + 0x6000 + copied * 4))
                    .is_ok() =>
            {
                cpu_state = 1;
            }
            1 if bus.poll(cpu) == PortState::Complete => {
                pending_value = bus.take_completion(cpu).unwrap().unwrap().data[0];
                bus.try_begin(
                    cpu,
                    TxnRequest::write_word(RAM + 0x7000 + copied * 4, pending_value),
                )
                .unwrap();
                cpu_state = 2;
            }
            2 if bus.poll(cpu) == PortState::Complete => {
                bus.take_completion(cpu).unwrap().unwrap();
                copied += 1;
                cpu_state = 0;
            }
            _ => {}
        }
    }

    // Both jobs completed correctly despite sharing the bus.
    for i in 0..64u32 {
        assert_eq!(bus.debug_read(RAM + 0x3000 + i * 4).unwrap(), i + 1);
        assert_eq!(
            bus.debug_read(RAM + 0x7000 + i * 4).unwrap(),
            0xCAFE_0000 + i
        );
    }
    let _ = pending_value;
    assert!(
        bus.stats().contention_cycles > 0,
        "CPU traffic and OCP DMA must have contended"
    );
}
