//! Full-system equivalence of the microcode optimizer: the optimized
//! program must produce bit-identical memory contents and must not be
//! slower than the original.

use ouessant_isa::opt::optimize;
use ouessant_isa::{assemble, Program, ProgramBuilder, FIGURE4_SOURCE};
use ouessant_rac::dft::DftRac;
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::rac::Rac;
use ouessant_sim::XorShift64;
use ouessant_soc::soc::{Soc, SocConfig};

/// Runs `program` on a fresh SoC and returns (output words, cycles).
fn run(rac: Box<dyn Rac>, program: &Program, input: &[u32], out_len: usize) -> (Vec<u32>, u64) {
    let mut soc = Soc::new(rac, SocConfig::default());
    let ram = soc.config().ram_base;
    soc.load_words(ram, &program.to_words()).unwrap();
    soc.load_words(ram + 0x4000, input).unwrap();
    soc.configure(
        &[(0, ram), (1, ram + 0x4000), (2, ram + 0x2_0000)],
        program.len() as u32,
    )
    .unwrap();
    let report = soc.start_and_wait(50_000_000).unwrap();
    let out = soc.read_words(ram + 0x2_0000, out_len).unwrap();
    (out, report.run_cycles)
}

#[test]
fn optimized_figure4_is_equivalent_and_faster() {
    let original = assemble(FIGURE4_SOURCE).unwrap();
    let (optimized, stats) = optimize(&original).unwrap();
    assert!(stats.after < stats.before);

    let input: Vec<u32> = (0..512u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 32768)
        .collect();
    let (out_orig, cycles_orig) = run(Box::new(DftRac::spiral_256()), &original, &input, 512);
    let (out_opt, cycles_opt) = run(Box::new(DftRac::spiral_256()), &optimized, &input, 512);
    assert_eq!(out_orig, out_opt, "optimization must not change results");
    assert!(
        cycles_opt < cycles_orig,
        "fewer instructions and larger bursts must be faster: {cycles_opt} vs {cycles_orig}"
    );
}

/// For arbitrary chunked copies, the optimizer preserves the data end
/// to end (seeded random sweep, 12 cases as the proptest original ran).
#[test]
fn optimizer_preserves_arbitrary_copies() {
    let mut rng = XorShift64::new(0x0071_3142);
    for _ in 0..12 {
        let total = rng.gen_range_u32(64..600);
        let chunk = rng.gen_range_u32(8..64) as u16;
        let program = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, total, chunk, 0)
            .unwrap()
            .execs_op(0)
            .transfer_from_coprocessor(2, 0, total, chunk, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (optimized, _) = optimize(&program).unwrap();
        assert_eq!(
            optimized.static_words_transferred(),
            program.static_words_transferred(),
            "total={total} chunk={chunk}"
        );

        let input = rng.vec_u32(total as usize);
        let (a, _) = run(
            Box::new(PassthroughRac::new(0)),
            &program,
            &input,
            total as usize,
        );
        let (b, cycles_opt) = run(
            Box::new(PassthroughRac::new(0)),
            &optimized,
            &input,
            total as usize,
        );
        assert_eq!(a, input, "total={total} chunk={chunk}");
        assert_eq!(b, input, "total={total} chunk={chunk}");
        assert!(cycles_opt > 0);
    }
}
