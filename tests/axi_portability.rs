//! The paper's portability claim, §II-B/§VI: the OCP is "independent
//! from the processor" and from the bus; "current work in progress
//! includes complete Zynq (AXI4) integration". Because the bus
//! interface is written against the `SystemBus` trait, the *same* OCP
//! runs unmodified on the AHB-like bus and on the AXI-like bus — this
//! test is that claim, compiled and executed.

use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_isa::assemble;
use ouessant_rac::idct::{idct_2d_fixed, IdctRac};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_sim::axi::{AxiBus, AxiConfig};
use ouessant_sim::bus::{Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::SystemBus;

const RAM: u32 = 0x4000_0000;
const OCP_BASE: u32 = 0x8000_0000;

/// Runs the identical offload on any `SystemBus` implementation and
/// returns (output words, cycles).
fn run_on(bus: &mut dyn SystemBus, coeffs: &[i32]) -> (Vec<i32>, u64) {
    bus.add_slave_boxed(RAM, Box::new(Sram::with_words(8192, SramConfig::no_wait())));
    let mut ocp = Ocp::attach(
        bus,
        OCP_BASE,
        Box::new(IdctRac::new()),
        OcpConfig::default(),
    );

    let program =
        assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop").unwrap();
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    for (i, &c) in coeffs.iter().enumerate() {
        bus.debug_write(RAM + 0x1000 + (i as u32) * 4, c as u32)
            .unwrap();
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().set_bank(1, RAM + 0x1000).unwrap();
    ocp.regs().set_bank(2, RAM + 0x2000).unwrap();
    ocp.regs().set_prog_size(program.len() as u32).unwrap();
    ocp.regs().start();

    let mut cycles = 0u64;
    while !ocp.regs().done() {
        ocp.tick(bus);
        bus.tick();
        cycles += 1;
        assert!(cycles < 1_000_000, "offload must terminate");
        assert!(ocp.fault().is_none(), "fault: {:?}", ocp.fault());
    }
    let out: Vec<i32> = (0..64)
        .map(|i| bus.debug_read(RAM + 0x2000 + i * 4).unwrap() as i32)
        .collect();
    (out, cycles)
}

#[test]
fn same_ocp_runs_on_ahb_and_axi() {
    let coeffs: Vec<i32> = (0..64).map(|i| (i * 53 % 701) - 350).collect();
    let expected = idct_2d_fixed(&coeffs);

    let mut ahb = Bus::new(BusConfig::default());
    let _cpu = SystemBus::register_master(&mut ahb, "cpu");
    let (ahb_out, ahb_cycles) = run_on(&mut ahb, &coeffs);

    let mut axi = AxiBus::new(AxiConfig::default());
    let _cpu = axi.register_master("cpu");
    let (axi_out, axi_cycles) = run_on(&mut axi, &coeffs);

    // Identical functional results on both interconnects.
    assert_eq!(ahb_out, expected);
    assert_eq!(axi_out, expected);

    // Different timing — they are different buses — but the same order
    // of magnitude (the data path dominates).
    assert!(ahb_cycles > 0 && axi_cycles > 0);
    let ratio = ahb_cycles as f64 / axi_cycles as f64;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "AHB {ahb_cycles} vs AXI {axi_cycles}"
    );
}

#[test]
fn axi_concurrent_channels_speed_up_split_traffic() {
    // A microcode whose reads and writes alternate benefits from AXI's
    // independent channels; on AHB everything serializes. Use the
    // passthrough RAC in streaming mode with interleaved transfers.
    let program = assemble(
        "
        ldc R0,8
        ldo O0,0
        ldo O1,0
        loop:
            mvtcr BANK1,O0,DMA16,FIFO0
            execn 16
            mvfcr BANK2,O1,DMA16,FIFO0
            djnz R0,loop
        eop
        ",
    )
    .unwrap();

    let run = |bus: &mut dyn SystemBus| -> u64 {
        bus.add_slave_boxed(RAM, Box::new(Sram::with_words(8192, SramConfig::no_wait())));
        let mut ocp = Ocp::attach(
            bus,
            OCP_BASE,
            Box::new(PassthroughRac::new(0)),
            OcpConfig::default(),
        );
        for (i, w) in program.to_words().iter().enumerate() {
            bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
        }
        for i in 0..128u32 {
            bus.debug_write(RAM + 0x1000 + i * 4, i).unwrap();
        }
        ocp.regs().set_bank(0, RAM).unwrap();
        ocp.regs().set_bank(1, RAM + 0x1000).unwrap();
        ocp.regs().set_bank(2, RAM + 0x2000).unwrap();
        ocp.regs().set_prog_size(program.len() as u32).unwrap();
        ocp.regs().start();
        let mut cycles = 0u64;
        while !ocp.regs().done() {
            ocp.tick(bus);
            bus.tick();
            cycles += 1;
            assert!(cycles < 1_000_000);
            assert!(ocp.fault().is_none(), "fault: {:?}", ocp.fault());
        }
        // Verify the data made it.
        for i in 0..128u32 {
            assert_eq!(bus.debug_read(RAM + 0x2000 + i * 4).unwrap(), i);
        }
        cycles
    };

    let mut ahb = Bus::new(BusConfig::default());
    let _ = SystemBus::register_master(&mut ahb, "cpu");
    let ahb_cycles = run(&mut ahb);

    let mut axi = AxiBus::new(AxiConfig::default());
    let _ = axi.register_master("cpu");
    let axi_cycles = run(&mut axi);

    // Both complete; report-style sanity rather than a strict ordering
    // (the controller issues one transfer at a time, so the win is
    // bounded).
    assert!(ahb_cycles > 100 && axi_cycles > 100);
}
