//! Structural reproduction of the paper's figures: each test pins the
//! architecture drawn in one figure to the corresponding code.

use ouessant::interface::SLAVE_WINDOW_BYTES;
use ouessant::ocp::{Ocp, OcpConfig};
use ouessant::regs::{CTRL_D, CTRL_IE, CTRL_S, REG_BANK0, REG_CTRL, REG_PROG_SIZE};
use ouessant_isa::{assemble, Instruction, FIGURE4_SOURCE};
use ouessant_rac::passthrough::{PassthroughRac, WideFunctionRac};
use ouessant_rac::rac::RacSocket;
use ouessant_sim::bus::{Bus, BusConfig, TxnRequest};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::WidthAdapter;

const RAM: u32 = 0x4000_0000;
const OCP: u32 = 0x8000_0000;

/// **Figure 1** — "Global view of an Ouessant coprocessor": bus
/// interface ⇄ controller ⇄ RAC, with FIFO interfaces between
/// controller and RAC and the bus on the far side.
#[test]
fn figure1_structure() {
    let mut bus = Bus::new(BusConfig::default());
    let _cpu = bus.register_master("cpu");
    bus.add_slave(RAM, Sram::with_words(1024, SramConfig::no_wait()));
    let ocp = Ocp::attach(
        &mut bus,
        OCP,
        Box::new(PassthroughRac::new(0)),
        OcpConfig::default(),
    );

    // The three blocks exist and are reachable through the OCP façade.
    assert_eq!(ocp.base(), OCP); // bus interface: mapped slave window
    assert!(!ocp.controller().is_active()); // controller: idle FSM
    assert_eq!(ocp.socket().num_inputs(), 1); // RAC behind FIFO interfaces
    assert_eq!(ocp.socket().num_outputs(), 1);

    // The bus interface is the *only* bus-visible part: the register
    // window responds, the controller/RAC are not memory-mapped.
    assert!(bus.debug_read(OCP + REG_CTRL).is_ok());
    assert!(bus.debug_read(OCP + SLAVE_WINDOW_BYTES).is_err());
}

/// **Figure 2** — RAC integration with serializing/deserializing FIFOs:
/// 32-bit `din`/`dout` on the bus side, 96-bit operands on the
/// accelerator side, `start_op`/`end_op` handshake.
#[test]
fn figure2_serialization() {
    // The exact widths of the figure.
    let mut deserializer = WidthAdapter::new("din", 32, 96, 96 * 8);
    let mut serializer = WidthAdapter::new("dout", 96, 32, 96 * 8);

    // Three 32-bit writes become one 96-bit operand…
    for w in [0x0102_0304u128, 0x0506_0708, 0x090A_0B0C] {
        deserializer.push(w).unwrap();
    }
    let operand = deserializer.pop().expect("96 bits available");
    // …and one 96-bit result becomes three 32-bit reads.
    serializer.push(operand).unwrap();
    assert_eq!(serializer.pop().unwrap(), 0x0102_0304);
    assert_eq!(serializer.pop().unwrap(), 0x0506_0708);
    assert_eq!(serializer.pop().unwrap(), 0x090A_0B0C);

    // The full arrangement as a RAC: start_op launches, end_op follows.
    let rac = WideFunctionRac::new("fig2", 96, 96, 2, |v| v);
    let mut socket = RacSocket::new(Box::new(rac), 64);
    for w in [1u32, 2, 3, 4, 5, 6] {
        socket.push_input(0, w).unwrap();
    }
    assert!(!socket.busy());
    socket.start(2); // start_op: two 96-bit operands
    assert!(socket.busy());
    socket.run_until_done(1_000); // end_op
    for w in [1u32, 2, 3, 4, 5, 6] {
        assert_eq!(socket.pop_output(0).unwrap(), w);
    }
}

/// **Figure 3** — the interface register map: ctrl (S/IE/D) at 0x0,
/// program size at 0x4, banks 0–7 at 0x8..0x24, all reachable through
/// the bus slave FSM.
#[test]
fn figure3_register_map() {
    let mut bus = Bus::new(BusConfig::default());
    let cpu = bus.register_master("cpu");
    bus.add_slave(RAM, Sram::with_words(1024, SramConfig::no_wait()));
    let ocp = Ocp::attach(
        &mut bus,
        OCP,
        Box::new(PassthroughRac::new(0)),
        OcpConfig::default(),
    );

    // Offsets drawn in the figure.
    assert_eq!(REG_CTRL, 0x0);
    assert_eq!(REG_PROG_SIZE, 0x4);
    assert_eq!(REG_BANK0, 0x8);
    assert_eq!(REG_BANK0 + 4 * 7, 0x24);

    // Timed bus writes land in the register file.
    let mut write = |offset: u32, value: u32| {
        bus.try_begin(cpu, TxnRequest::write_word(OCP + offset, value))
            .unwrap();
        bus.run_to_completion(cpu).unwrap();
    };
    write(REG_PROG_SIZE, 18);
    for k in 0..8u32 {
        write(REG_BANK0 + 4 * k, RAM + 0x1000 * k);
    }
    ocp.regs().with(|r| {
        assert_eq!(r.prog_size(), 18);
        for k in 0..8 {
            assert_eq!(r.bank_base(k), RAM + 0x1000 * k as u32);
        }
    });

    // Control bits: only S, IE, D are defined ("only 3 bits are used").
    bus.try_begin(cpu, TxnRequest::write_word(OCP + REG_CTRL, 0xFFFF_FFFF))
        .unwrap();
    bus.run_to_completion(cpu).unwrap();
    bus.try_begin(cpu, TxnRequest::read_word(OCP + REG_CTRL))
        .unwrap();
    let c = bus.run_to_completion(cpu).unwrap();
    assert_eq!(c.data[0] & !(CTRL_S | CTRL_IE | CTRL_D), 0);
}

/// **Figure 4** — the example DFT microcode: 8 unrolled `mvtc DMA64`
/// (512 words from bank 1), `execs`, 8 `mvfc DMA64` (512 words to bank
/// 2), `eop`.
#[test]
fn figure4_microcode() {
    let program = assemble(FIGURE4_SOURCE).unwrap();
    assert_eq!(program.len(), 18);
    // 8 mvtc with offsets 0, 64, …, 448 into FIFO0 from BANK1.
    for k in 0..8 {
        match program[k] {
            Instruction::Mvtc {
                bank,
                offset,
                burst,
                fifo,
            } => {
                assert_eq!(bank.value(), 1);
                assert_eq!(offset.value(), 64 * k as u16);
                assert_eq!(burst.words(), 64);
                assert_eq!(fifo.value(), 0);
            }
            other => panic!("instruction {k} should be mvtc, got {other}"),
        }
    }
    assert!(matches!(program[8], Instruction::Exec { .. }));
    for k in 0..8 {
        match program[9 + k] {
            Instruction::Mvfc { bank, offset, .. } => {
                assert_eq!(bank.value(), 2);
                assert_eq!(offset.value(), 64 * k as u16);
            }
            other => panic!("instruction {} should be mvfc, got {other}", 9 + k),
        }
    }
    assert_eq!(program[17], Instruction::Eop);
    // The paper's accounting: 1024 words total.
    assert_eq!(program.static_words_transferred(), 1024);
}
