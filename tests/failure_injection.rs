//! System-level failure injection: every fault path a buggy driver or
//! corrupted microcode can trigger must be reported, never silently
//! mis-executed.

use ouessant::controller::ExecError;
use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_isa::assemble;
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_sim::bus::{Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::SystemBus;
use ouessant_soc::soc::{Soc, SocConfig, SocError};

const RAM: u32 = 0x4000_0000;
const OCP_BASE: u32 = 0x8000_0000;

fn fixture() -> (Bus, Ocp) {
    let mut bus = Bus::new(BusConfig::default());
    let _cpu = SystemBus::register_master(&mut bus, "cpu");
    bus.add_slave(RAM, Sram::with_words(4096, SramConfig::no_wait()));
    let ocp = Ocp::attach(
        &mut bus,
        OCP_BASE,
        Box::new(PassthroughRac::new(0)),
        OcpConfig::default(),
    );
    (bus, ocp)
}

fn run_until_fault(bus: &mut Bus, ocp: &mut Ocp, max: u64) -> ExecError {
    let mut cycles = 0;
    loop {
        ocp.tick(bus);
        SystemBus::tick(bus);
        cycles += 1;
        if let Some(f) = ocp.fault() {
            return f.clone();
        }
        assert!(cycles < max, "expected a fault within {max} cycles");
        assert!(!ocp.regs().done(), "must not report success");
    }
}

#[test]
fn corrupted_instruction_word_faults() {
    let (mut bus, mut ocp) = fixture();
    let program = assemble("nop\neop").unwrap();
    let mut words = program.to_words();
    words[0] = 31u32 << 27; // reserved opcode
    for (i, w) in words.iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().set_prog_size(2).unwrap();
    ocp.regs().start();
    let fault = run_until_fault(&mut bus, &mut ocp, 1_000);
    assert!(matches!(fault, ExecError::BadInstruction { pc: 0, .. }));
}

#[test]
fn transfer_outside_memory_faults() {
    let (mut bus, mut ocp) = fixture();
    let program = assemble("mvtc BANK1,0,DMA8,FIFO0\neop").unwrap();
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().set_bank(1, 0x9000_0000).unwrap(); // unmapped
    ocp.regs().set_prog_size(program.len() as u32).unwrap();
    ocp.regs().start();
    let fault = run_until_fault(&mut bus, &mut ocp, 1_000);
    assert!(matches!(fault, ExecError::Bus(_)));
}

#[test]
fn burst_crossing_memory_end_faults() {
    let (mut bus, mut ocp) = fixture();
    // Bank 1 points at the last words of SRAM; DMA64 crosses the end.
    let program = assemble("mvtc BANK1,0,DMA64,FIFO0\neop").unwrap();
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().set_bank(1, RAM + 4096 * 4 - 16).unwrap();
    ocp.regs().set_prog_size(program.len() as u32).unwrap();
    ocp.regs().start();
    let fault = run_until_fault(&mut bus, &mut ocp, 1_000);
    assert!(matches!(fault, ExecError::Bus(_)));
}

#[test]
fn missing_terminator_overruns_and_faults() {
    let (mut bus, mut ocp) = fixture();
    // Hand-encode a program without eop (the assembler would refuse).
    let words = [ouessant_isa::Instruction::Nop.encode()];
    for (i, w) in words.iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().set_prog_size(1).unwrap();
    ocp.regs().start();
    let fault = run_until_fault(&mut bus, &mut ocp, 1_000);
    assert!(matches!(fault, ExecError::PcOverrun { pc: 1 }));
}

#[test]
fn program_size_beyond_store_faults() {
    let (mut bus, mut ocp) = fixture();
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().with_mut(|r| {
        r.bus_write(ouessant::regs::REG_PROG_SIZE, 4096);
    });
    ocp.regs().start();
    let fault = run_until_fault(&mut bus, &mut ocp, 100);
    assert!(matches!(fault, ExecError::BadProgSize { size: 4096 }));
}

#[test]
fn unconfigured_program_bank_faults() {
    let (mut bus, mut ocp) = fixture();
    // Bank 0 never set: the program fetch itself cannot translate.
    ocp.regs().set_prog_size(2).unwrap();
    ocp.regs().start();
    let fault = run_until_fault(&mut bus, &mut ocp, 100);
    assert!(matches!(fault, ExecError::Translate(_)));
}

#[test]
fn oversized_burst_for_fifo_deadlock_is_detectable() {
    // A DMA256 into a 64-word FIFO can never be satisfied. The
    // controller waits (hardware would too); the *system* layer reports
    // the hang as a timeout rather than wrong data.
    let config = SocConfig {
        ocp: ouessant::ocp::OcpConfig { fifo_depth: 64 },
        ..SocConfig::default()
    };
    let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
    let ram = soc.config().ram_base;
    let program = assemble("mvtc BANK1,0,DMA256,FIFO0\neop").unwrap();
    soc.load_words(ram, &program.to_words()).unwrap();
    soc.load_words(ram + 0x4000, &vec![7u32; 256]).unwrap();
    soc.configure(&[(0, ram), (1, ram + 0x4000)], program.len() as u32)
        .unwrap();
    assert_eq!(
        soc.start_and_wait(20_000),
        Err(SocError::Timeout { budget: 20_000 })
    );
}

#[test]
fn driver_gate_blocks_microcode_the_bypass_proves_faults() {
    // The driver's static gate and the runtime agree. A 256-word burst
    // from word offset 16256 overruns the 16384-word bank window: the
    // analyzer rejects the load, and forcing the same program past the
    // gate with the fault-injection bypass reproduces the exact
    // failure it prevents — the DMA runs off the end of mapped SRAM
    // and the controller faults.
    use ouessant_soc::{DriverError, OsModel, OuessantDevice};
    let config = SocConfig {
        // Exactly the driver's three 16384-word buffers, so the
        // overrunning burst leaves mapped memory instead of silently
        // reading a neighbour.
        sram_words: 3 * 16384,
        ..SocConfig::default()
    };
    let program = assemble("mvtc BANK2,16256,DMA256,FIFO0\neop").unwrap();
    let mut dev = OuessantDevice::open_with_config(
        Box::new(PassthroughRac::new(0)),
        OsModel::Baremetal,
        config,
    );
    let err = dev.load_microcode(&program).unwrap_err();
    assert!(matches!(err, DriverError::RejectedMicrocode(_)), "{err:?}");
    assert!(err.to_string().contains("bank-overflow"), "{err}");

    dev.load_microcode_unchecked(&program)
        .expect("the bypass loads what the gate rejects");
    match dev.submit_and_wait() {
        Err(DriverError::Soc(SocError::Ocp(fault))) => {
            assert!(matches!(fault, ExecError::Bus(_)), "{fault:?}");
        }
        other => panic!("expected the controller to fault, got {other:?}"),
    }
}

#[test]
fn fault_visible_in_debug_state_register() {
    let (mut bus, mut ocp) = fixture();
    ocp.regs().set_prog_size(2).unwrap();
    ocp.regs().start();
    let _ = run_until_fault(&mut bus, &mut ocp, 100);
    // The host can diagnose the hang by reading the debug state
    // register over the bus: 15 = Faulted.
    let state = bus
        .debug_read(OCP_BASE + ouessant::regs::REG_DBG_STATE)
        .unwrap();
    assert_eq!(state, 15);
}

#[test]
fn recovery_after_fault_by_restart() {
    let (mut bus, mut ocp) = fixture();
    // First run faults (unconfigured bank 0).
    ocp.regs().set_prog_size(1).unwrap();
    ocp.regs().start();
    let _ = run_until_fault(&mut bus, &mut ocp, 100);

    // Host fixes the configuration and restarts: a faulted controller
    // stays faulted (hardware would need a reset line); verify the
    // fault is sticky rather than silently clearing.
    let program = assemble("eop").unwrap();
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w).unwrap();
    }
    ocp.regs().set_bank(0, RAM).unwrap();
    ocp.regs().start();
    for _ in 0..1_000 {
        ocp.tick(&mut bus);
        SystemBus::tick(&mut bus);
    }
    assert!(ocp.fault().is_some(), "fault is sticky until reset");
    assert!(!ocp.regs().done());
}
