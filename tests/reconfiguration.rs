//! §VI "Dynamic Partial Reconfiguration" end to end: one OCP whose RAC
//! slot is swapped by the `rcfg` extension instruction, mid-microcode,
//! with the bitstream-load latency visible in the cycle accounting.

use ouessant::controller::ExecError;
use ouessant_isa::assemble;
use ouessant_rac::idct::{idct_2d_fixed, IdctRac};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::slot::ReconfigurableSlot;
use ouessant_soc::soc::{Soc, SocConfig, SocError};

/// IDCT bitstream: 80 KiB → 20 480 cycles; passthrough: 8 KiB → 2 048.
const IDCT_BITSTREAM: u64 = 80 * 1024;
const SCALER_BITSTREAM: u64 = 8 * 1024;

fn dpr_slot() -> ReconfigurableSlot {
    ReconfigurableSlot::new()
        .with_config(Box::new(IdctRac::new()), IDCT_BITSTREAM)
        .with_config(Box::new(PassthroughRac::scaling(2, 0)), SCALER_BITSTREAM)
}

#[test]
fn rcfg_swaps_accelerators_mid_program() {
    // Phase 1 (config 0): IDCT one block.
    // Phase 2 (config 1 after rcfg): scale 64 words by 2.
    let program = assemble(
        "
        rcfg 0
        mvtc BANK1,0,DMA64,FIFO0
        execs
        mvfc BANK2,0,DMA64,FIFO0
        rcfg 1
        mvtc BANK1,64,DMA64,FIFO0
        execs 64
        mvfc BANK2,64,DMA64,FIFO0
        eop
        ",
    )
    .unwrap();

    let mut soc = Soc::new(Box::new(dpr_slot()), SocConfig::default());
    let ram = soc.config().ram_base;
    soc.load_words(ram, &program.to_words()).unwrap();

    let coeffs: Vec<i32> = (0..64).map(|i| (i * 71 % 901) - 450).collect();
    let plain: Vec<u32> = (0..64).map(|i| 1000 + i).collect();
    let mut input: Vec<u32> = coeffs.iter().map(|&c| c as u32).collect();
    input.extend(&plain);
    soc.load_words(ram + 0x4000, &input).unwrap();
    soc.configure(
        &[(0, ram), (1, ram + 0x4000), (2, ram + 0x8000)],
        program.len() as u32,
    )
    .unwrap();
    let report = soc.start_and_wait(10_000_000).unwrap();

    // Phase 1 output: the IDCT of the coefficients.
    let out = soc.read_words(ram + 0x8000, 128).unwrap();
    let expected_idct = idct_2d_fixed(&coeffs);
    for (i, &e) in expected_idct.iter().enumerate() {
        assert_eq!(out[i] as i32, e, "idct output word {i}");
    }
    // Phase 2 output: the scaled words.
    for (i, &p) in plain.iter().enumerate() {
        assert_eq!(out[64 + i], p * 2, "scaled output word {i}");
    }

    // The bitstream loads dominate this run's cycle count: rcfg 0 is a
    // cheap reload (config 0 already active), rcfg 1 pays 2048 cycles.
    assert!(
        report.run_cycles > SCALER_BITSTREAM / 4,
        "reconfiguration latency must be visible: {} cycles",
        report.run_cycles
    );
}

#[test]
fn rcfg_on_static_rac_faults() {
    let program = assemble("rcfg 1\neop").unwrap();
    let mut soc = Soc::new(Box::new(IdctRac::new()), SocConfig::default());
    let ram = soc.config().ram_base;
    soc.load_words(ram, &program.to_words()).unwrap();
    soc.configure(&[(0, ram)], program.len() as u32).unwrap();
    match soc.start_and_wait(100_000) {
        Err(SocError::Ocp(ExecError::Reconfig {
            slot: 1,
            available: 0,
        })) => {}
        other => panic!("expected reconfig fault, got {other:?}"),
    }
}

#[test]
fn rcfg_bad_slot_faults_with_available_count() {
    let program = assemble("rcfg 9\neop").unwrap();
    let mut soc = Soc::new(Box::new(dpr_slot()), SocConfig::default());
    let ram = soc.config().ram_base;
    soc.load_words(ram, &program.to_words()).unwrap();
    soc.configure(&[(0, ram)], program.len() as u32).unwrap();
    match soc.start_and_wait(100_000) {
        Err(SocError::Ocp(ExecError::Reconfig {
            slot: 9,
            available: 2,
        })) => {}
        other => panic!("expected bad-slot fault, got {other:?}"),
    }
}

#[test]
fn reconfiguration_cost_amortizes_over_batches() {
    // Swap-per-block vs swap-per-batch: the same work, very different
    // overhead — the scheduling insight behind DPR deployments.
    let run = |program_src: &str, blocks: u32| -> u64 {
        let slot = ReconfigurableSlot::new()
            .with_config(Box::new(PassthroughRac::new(0)), 8 * 1024)
            .with_config(Box::new(PassthroughRac::scaling(3, 0)), 8 * 1024);
        let mut soc = Soc::new(Box::new(slot), SocConfig::default());
        let ram = soc.config().ram_base;
        let program = assemble(program_src).unwrap();
        soc.load_words(ram, &program.to_words()).unwrap();
        let input: Vec<u32> = (0..blocks * 16).collect();
        soc.load_words(ram + 0x4000, &input).unwrap();
        soc.configure(
            &[(0, ram), (1, ram + 0x4000), (2, ram + 0x8000)],
            program.len() as u32,
        )
        .unwrap();
        soc.start_and_wait(50_000_000).unwrap().run_cycles
    };

    // 4 blocks, alternating configurations before every block
    // (pathological: every block pays a full bitstream load).
    let swap_heavy = run(
        "
        ldo O0,0
        ldo O1,0
        rcfg 1
        mvtcr BANK1,O0,DMA16,FIFO0
        execs 16
        mvfcr BANK2,O1,DMA16,FIFO0
        rcfg 0
        mvtcr BANK1,O0,DMA16,FIFO0
        execs 16
        mvfcr BANK2,O1,DMA16,FIFO0
        rcfg 1
        mvtcr BANK1,O0,DMA16,FIFO0
        execs 16
        mvfcr BANK2,O1,DMA16,FIFO0
        rcfg 0
        mvtcr BANK1,O0,DMA16,FIFO0
        execs 16
        mvfcr BANK2,O1,DMA16,FIFO0
        eop
        ",
        4,
    );
    // 4 blocks, one reconfiguration up front.
    let swap_once = run(
        "
        rcfg 1
        ldc R0,4
        ldo O0,0
        ldo O1,0
        loop:
            mvtcr BANK1,O0,DMA16,FIFO0
            execs 16
            mvfcr BANK2,O1,DMA16,FIFO0
            djnz R0,loop
        eop
        ",
        4,
    );
    assert!(
        swap_heavy > swap_once + 3 * (8 * 1024 / 4) / 2,
        "alternating swaps must cost ~3 extra bitstream loads: {swap_heavy} vs {swap_once}"
    );
}
