//! End-to-end reproduction of the paper's evaluation (§V): Table I and
//! every in-text number, asserted as ranges around the published
//! values.

use ouessant_rac::dft::dft_latency;
use ouessant_soc::app::{
    dft_experiment, idct_experiment, table1, transfer_experiment, ExperimentConfig,
};
use ouessant_soc::os::OsModel;

#[test]
fn table1_idct_row() {
    let row = idct_experiment(&ExperimentConfig::paper_linux()).unwrap();
    assert_eq!(row.latency, 18, "Lat. column is the pipeline latency");
    assert!(
        (2_000..=4_500).contains(&row.hw_cycles),
        "HW {} ~ 3000",
        row.hw_cycles
    );
    assert!(
        (3_500..=6_500).contains(&row.sw_cycles),
        "SW {} ~ 5000",
        row.sw_cycles
    );
    assert!((1.2..=2.2).contains(&row.gain), "Gain {} ~ 1.67", row.gain);
}

#[test]
fn table1_dft_row() {
    let row = dft_experiment(&ExperimentConfig::paper_linux()).unwrap();
    assert_eq!(row.latency, 2_485, "Lat. column matches the Spiral core");
    assert!(
        (5_500..=8_500).contains(&row.hw_cycles),
        "HW {} ~ 7000",
        row.hw_cycles
    );
    assert!(
        (450_000..=750_000).contains(&row.sw_cycles),
        "SW {} ~ 600k",
        row.sw_cycles
    );
    assert!((60.0..=110.0).contains(&row.gain), "Gain {} ~ 85", row.gain);
}

#[test]
fn table1_orderings() {
    let rows = table1().unwrap();
    let (idct, dft) = (&rows[0], &rows[1]);
    // Who wins and by what factor: the qualitative content of Table I.
    assert!(idct.gain > 1.0, "hardware wins even for the tiny IDCT");
    assert!(
        dft.gain > 30.0 * idct.gain / 1.67,
        "DFT gain is ~50x larger"
    );
    assert!(
        dft.sw_cycles > 100 * idct.sw_cycles,
        "SW DFT dwarfs SW IDCT"
    );
    assert!(dft.latency > 100 * idct.latency);
}

#[test]
fn text_baremetal_dft_4000() {
    let row = dft_experiment(&ExperimentConfig::paper_baremetal()).unwrap();
    assert!(
        (3_400..=4_600).contains(&row.machine_cycles),
        "baremetal DFT {} ~ 4000",
        row.machine_cycles
    );
}

#[test]
fn text_linux_overhead_3000() {
    let bare = dft_experiment(&ExperimentConfig::paper_baremetal()).unwrap();
    let linux = dft_experiment(&ExperimentConfig::paper_linux()).unwrap();
    let overhead = linux.hw_cycles - bare.hw_cycles;
    assert!(
        (2_500..=3_500).contains(&overhead),
        "overhead {overhead} ~ 3000"
    );
}

#[test]
fn text_1024_words_at_1_5_cycles() {
    let row = dft_experiment(&ExperimentConfig::paper_baremetal()).unwrap();
    assert_eq!(row.words, 1024, "the paper's 1024 32-bit words");
    let transfer = row.machine_cycles - dft_latency(256);
    assert!(
        (1_000..=2_000).contains(&transfer),
        "transfer {transfer} ~ 1500 cycles"
    );
    let per_word = transfer as f64 / row.words as f64;
    assert!(
        (1.0..=2.0).contains(&per_word),
        "{per_word:.2} ~ 1.5 cy/word"
    );
}

#[test]
fn copying_driver_is_worse_than_mmap() {
    // §IV: "data copies are performance killers" — the reason the
    // paper's driver uses mmap.
    let mmap = dft_experiment(&ExperimentConfig {
        os: OsModel::linux_mmap(),
        ..ExperimentConfig::paper_linux()
    })
    .unwrap();
    let copy = dft_experiment(&ExperimentConfig {
        os: OsModel::linux_copy(),
        ..ExperimentConfig::paper_linux()
    })
    .unwrap();
    assert!(copy.hw_cycles > mmap.hw_cycles);
    assert!(copy.gain < mmap.gain);
}

#[test]
fn burst_length_matters() {
    // Ablation A1's headline: DMA64 beats word-at-a-time transfers.
    let at = |burst: u16| {
        transfer_experiment(
            &ExperimentConfig {
                burst,
                ..ExperimentConfig::paper_baremetal()
            },
            512,
        )
        .unwrap()
        .cycles_per_word()
    };
    let dma8 = at(8);
    let dma64 = at(64);
    let dma256 = at(256);
    assert!(
        dma8 > dma64,
        "short bursts repay overheads: {dma8:.2} vs {dma64:.2}"
    );
    assert!(
        dma64 >= dma256,
        "longer bursts only help: {dma64:.2} vs {dma256:.2}"
    );
}

#[test]
fn gain_grows_with_dft_size() {
    // Ablation A5: the crossover shape.
    let gain_at = |points: usize| {
        dft_experiment(&ExperimentConfig {
            dft_points: points,
            burst: 64.min((points * 2) as u16),
            ..ExperimentConfig::paper_linux()
        })
        .unwrap()
        .gain
    };
    let g16 = gain_at(16);
    let g256 = gain_at(256);
    let g1024 = gain_at(1024);
    assert!(g16 > 1.0, "even tiny DFTs win against soft-float: {g16:.1}");
    assert!(g256 > 4.0 * g16);
    assert!(g1024 > g256);
}
