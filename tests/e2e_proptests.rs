//! Cross-crate randomized invariant tests: whole-system invariants over
//! random workloads, microcode shapes and platform parameters.
//!
//! Formerly `proptest` properties; now driven by the in-repo seeded
//! generator so the workspace tests fully offline.

use ouessant_isa::ProgramBuilder;
use ouessant_rac::dft::{dft_fixed, DftRac};
use ouessant_rac::idct::{idct_2d_fixed, IdctRac};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_sim::memory::SramConfig;
use ouessant_sim::rng::XorShift64;
use ouessant_soc::soc::{CompletionMode, Soc, SocConfig};

fn run_passthrough(
    words: &[u32],
    burst: u16,
    sram: SramConfig,
    completion: CompletionMode,
) -> (Vec<u32>, u64) {
    let config = SocConfig {
        sram,
        completion,
        ..SocConfig::default()
    };
    let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
    let ram = soc.config().ram_base;
    let n = words.len() as u32;
    let program = ProgramBuilder::new()
        .transfer_to_coprocessor(1, 0, n, burst, 0)
        .unwrap()
        .execs_op(u16::try_from(n).unwrap_or(0))
        .transfer_from_coprocessor(2, 0, n, burst, 0)
        .unwrap()
        .eop()
        .finish()
        .unwrap();
    soc.load_words(ram, &program.to_words()).unwrap();
    soc.load_words(ram + 0x4000, words).unwrap();
    soc.configure(
        &[(0, ram), (1, ram + 0x4000), (2, ram + 0x2_0000)],
        program.len() as u32,
    )
    .unwrap();
    let report = soc.start_and_wait(10_000_000).unwrap();
    let out = soc.read_words(ram + 0x2_0000, words.len()).unwrap();
    (out, report.machine_cycles())
}

/// Any data moved through the OCP with any burst size arrives intact
/// and in order (DMA correctness).
#[test]
fn passthrough_offload_is_identity() {
    let mut rng = XorShift64::new(0xE2E_0001);
    for _ in 0..16 {
        let n = rng.gen_range_u32(1..600) as usize;
        let words = rng.vec_u32(n);
        let burst = rng.gen_range_u32(1..257) as u16;
        let (out, _) = run_passthrough(
            &words,
            burst,
            SramConfig::no_wait(),
            CompletionMode::Interrupt,
        );
        assert_eq!(out, words, "burst={burst}");
    }
}

/// Functional results are independent of memory wait states and
/// completion mode — timing parameters must never change data.
#[test]
fn timing_parameters_do_not_change_data() {
    let mut rng = XorShift64::new(0xE2E_0002);
    for _ in 0..12 {
        let n = rng.gen_range_u32(1..200) as usize;
        let words = rng.vec_u32(n);
        let sram = SramConfig {
            first_access_wait_states: rng.gen_range_u32(0..8),
            sequential_wait_states: rng.gen_range_u32(0..3),
        };
        let completion = if rng.gen_bool() {
            CompletionMode::Polling {
                interval: rng.gen_range_u64(16..512),
            }
        } else {
            CompletionMode::Interrupt
        };
        let (out, _) = run_passthrough(&words, 32, sram, completion);
        assert_eq!(&out, &words);
        // And the reference configuration agrees.
        let (reference, _) =
            run_passthrough(&words, 32, SramConfig::no_wait(), CompletionMode::Interrupt);
        assert_eq!(out, reference);
    }
}

/// More wait states can only slow the offload down (monotonicity of
/// the timing model).
#[test]
fn wait_states_are_monotone() {
    let mut rng = XorShift64::new(0xE2E_0003);
    for _ in 0..8 {
        let n = rng.gen_range_u32(32..256) as usize;
        let words = rng.vec_u32(n);
        let cycles_at = |ws: u32| {
            run_passthrough(
                &words,
                64,
                SramConfig {
                    first_access_wait_states: ws,
                    sequential_wait_states: 0,
                },
                CompletionMode::Interrupt,
            )
            .1
        };
        let fast = cycles_at(0);
        let medium = cycles_at(3);
        let slow = cycles_at(7);
        assert!(fast <= medium && medium <= slow, "{fast} {medium} {slow}");
    }
}

/// The offloaded IDCT equals the data-path function for arbitrary
/// JPEG-range blocks (hardware integration adds nothing and loses
/// nothing).
#[test]
fn idct_offload_matches_function() {
    let mut rng = XorShift64::new(0xE2E_0004);
    for _ in 0..12 {
        let coeffs: Vec<i32> = (0..64).map(|_| rng.gen_range_i32(-2048..2048)).collect();
        let mut soc = Soc::new(Box::new(IdctRac::new()), SocConfig::default());
        let ram = soc.config().ram_base;
        let program = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0)
            .unwrap()
            .execs()
            .mvfc(2, 0, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        soc.load_words(ram, &program.to_words()).unwrap();
        let words: Vec<u32> = coeffs.iter().map(|&c| c as u32).collect();
        soc.load_words(ram + 0x4000, &words).unwrap();
        soc.configure(
            &[(0, ram), (1, ram + 0x4000), (2, ram + 0x8000)],
            program.len() as u32,
        )
        .unwrap();
        soc.start_and_wait(1_000_000).unwrap();
        let out: Vec<i32> = soc
            .read_words(ram + 0x8000, 64)
            .unwrap()
            .into_iter()
            .map(|w| w as i32)
            .collect();
        assert_eq!(out, idct_2d_fixed(&coeffs));
    }
}

/// The offloaded DFT equals the data-path function for arbitrary Q15
/// inputs.
#[test]
fn dft_offload_matches_function() {
    let mut rng = XorShift64::new(0xE2E_0005);
    for _ in 0..12 {
        let samples: Vec<(i32, i32)> = (0..16)
            .map(|_| {
                (
                    rng.gen_range_i32(-32768..32768),
                    rng.gen_range_i32(-32768..32768),
                )
            })
            .collect();
        let n = samples.len();
        let mut soc = Soc::new(Box::new(DftRac::new(n)), SocConfig::default());
        let ram = soc.config().ram_base;
        let words_each_way = (n * 2) as u32;
        let program = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, words_each_way, 16, 0)
            .unwrap()
            .execs()
            .transfer_from_coprocessor(2, 0, words_each_way, 16, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        soc.load_words(ram, &program.to_words()).unwrap();
        let words: Vec<u32> = samples
            .iter()
            .flat_map(|&(re, im)| [re as u32, im as u32])
            .collect();
        soc.load_words(ram + 0x4000, &words).unwrap();
        soc.configure(
            &[(0, ram), (1, ram + 0x4000), (2, ram + 0x8000)],
            program.len() as u32,
        )
        .unwrap();
        soc.start_and_wait(1_000_000).unwrap();
        let out = soc.read_words(ram + 0x8000, words.len()).unwrap();
        let expected: Vec<u32> = dft_fixed(&samples)
            .into_iter()
            .flat_map(|(re, im)| [re as u32, im as u32])
            .collect();
        assert_eq!(out, expected);
    }
}
