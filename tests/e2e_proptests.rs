//! Cross-crate property tests: whole-system invariants over random
//! workloads, microcode shapes and platform parameters.

use proptest::prelude::*;

use ouessant_isa::ProgramBuilder;
use ouessant_rac::dft::{dft_fixed, DftRac};
use ouessant_rac::idct::{idct_2d_fixed, IdctRac};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_sim::memory::SramConfig;
use ouessant_soc::soc::{CompletionMode, Soc, SocConfig};

fn run_passthrough(
    words: &[u32],
    burst: u16,
    sram: SramConfig,
    completion: CompletionMode,
) -> (Vec<u32>, u64) {
    let config = SocConfig {
        sram,
        completion,
        ..SocConfig::default()
    };
    let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
    let ram = soc.config().ram_base;
    let n = words.len() as u32;
    let program = ProgramBuilder::new()
        .transfer_to_coprocessor(1, 0, n, burst, 0)
        .unwrap()
        .execs_op(u16::try_from(n).unwrap_or(0))
        .transfer_from_coprocessor(2, 0, n, burst, 0)
        .unwrap()
        .eop()
        .finish()
        .unwrap();
    soc.load_words(ram, &program.to_words()).unwrap();
    soc.load_words(ram + 0x4000, words).unwrap();
    soc.configure(
        &[(0, ram), (1, ram + 0x4000), (2, ram + 0x2_0000)],
        program.len() as u32,
    )
    .unwrap();
    let report = soc.start_and_wait(10_000_000).unwrap();
    let out = soc.read_words(ram + 0x2_0000, words.len()).unwrap();
    (out, report.machine_cycles())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any data moved through the OCP with any burst size arrives
    /// intact and in order (DMA correctness).
    #[test]
    fn passthrough_offload_is_identity(
        words in prop::collection::vec(any::<u32>(), 1..600),
        burst in 1u16..=256,
    ) {
        let (out, _) = run_passthrough(
            &words,
            burst,
            SramConfig::no_wait(),
            CompletionMode::Interrupt,
        );
        prop_assert_eq!(out, words);
    }

    /// Functional results are independent of memory wait states and
    /// completion mode — timing parameters must never change data.
    #[test]
    fn timing_parameters_do_not_change_data(
        words in prop::collection::vec(any::<u32>(), 1..200),
        first_ws in 0u32..8,
        seq_ws in 0u32..3,
        poll_interval in prop::option::of(16u64..512),
    ) {
        let sram = SramConfig {
            first_access_wait_states: first_ws,
            sequential_wait_states: seq_ws,
        };
        let completion = match poll_interval {
            Some(interval) => CompletionMode::Polling { interval },
            None => CompletionMode::Interrupt,
        };
        let (out, _) = run_passthrough(&words, 32, sram, completion);
        prop_assert_eq!(&out, &words);
        // And the reference configuration agrees.
        let (reference, _) = run_passthrough(
            &words,
            32,
            SramConfig::no_wait(),
            CompletionMode::Interrupt,
        );
        prop_assert_eq!(out, reference);
    }

    /// More wait states can only slow the offload down (monotonicity of
    /// the timing model).
    #[test]
    fn wait_states_are_monotone(
        words in prop::collection::vec(any::<u32>(), 32..256),
    ) {
        let cycles_at = |ws: u32| {
            run_passthrough(
                &words,
                64,
                SramConfig { first_access_wait_states: ws, sequential_wait_states: 0 },
                CompletionMode::Interrupt,
            ).1
        };
        let fast = cycles_at(0);
        let medium = cycles_at(3);
        let slow = cycles_at(7);
        prop_assert!(fast <= medium && medium <= slow, "{fast} {medium} {slow}");
    }

    /// The offloaded IDCT equals the data-path function for arbitrary
    /// JPEG-range blocks (hardware integration adds nothing and loses
    /// nothing).
    #[test]
    fn idct_offload_matches_function(
        coeffs in prop::collection::vec(-2048i32..2048, 64),
    ) {
        let mut soc = Soc::new(Box::new(IdctRac::new()), SocConfig::default());
        let ram = soc.config().ram_base;
        let program = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0).unwrap()
            .execs()
            .mvfc(2, 0, 64, 0).unwrap()
            .eop()
            .finish()
            .unwrap();
        soc.load_words(ram, &program.to_words()).unwrap();
        let words: Vec<u32> = coeffs.iter().map(|&c| c as u32).collect();
        soc.load_words(ram + 0x4000, &words).unwrap();
        soc.configure(&[(0, ram), (1, ram + 0x4000), (2, ram + 0x8000)], program.len() as u32)
            .unwrap();
        soc.start_and_wait(1_000_000).unwrap();
        let out: Vec<i32> = soc
            .read_words(ram + 0x8000, 64)
            .unwrap()
            .into_iter()
            .map(|w| w as i32)
            .collect();
        prop_assert_eq!(out, idct_2d_fixed(&coeffs));
    }

    /// The offloaded DFT equals the data-path function for arbitrary
    /// Q15 inputs.
    #[test]
    fn dft_offload_matches_function(
        samples in prop::collection::vec((-32768i32..32768, -32768i32..32768), 16),
    ) {
        let n = samples.len();
        let mut soc = Soc::new(Box::new(DftRac::new(n)), SocConfig::default());
        let ram = soc.config().ram_base;
        let words_each_way = (n * 2) as u32;
        let program = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, words_each_way, 16, 0).unwrap()
            .execs()
            .transfer_from_coprocessor(2, 0, words_each_way, 16, 0).unwrap()
            .eop()
            .finish()
            .unwrap();
        soc.load_words(ram, &program.to_words()).unwrap();
        let words: Vec<u32> = samples
            .iter()
            .flat_map(|&(re, im)| [re as u32, im as u32])
            .collect();
        soc.load_words(ram + 0x4000, &words).unwrap();
        soc.configure(&[(0, ram), (1, ram + 0x4000), (2, ram + 0x8000)], program.len() as u32)
            .unwrap();
        soc.start_and_wait(1_000_000).unwrap();
        let out = soc.read_words(ram + 0x8000, words.len()).unwrap();
        let expected: Vec<u32> = dft_fixed(&samples)
            .into_iter()
            .flat_map(|(re, im)| [re as u32, im as u32])
            .collect();
        prop_assert_eq!(out, expected);
    }
}
