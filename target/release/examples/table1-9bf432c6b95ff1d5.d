/root/repo/target/release/examples/table1-9bf432c6b95ff1d5.d: examples/table1.rs

/root/repo/target/release/examples/table1-9bf432c6b95ff1d5: examples/table1.rs

examples/table1.rs:
