/root/repo/target/release/examples/farm_demo-c859f051a1c277b5.d: examples/farm_demo.rs

/root/repo/target/release/examples/farm_demo-c859f051a1c277b5: examples/farm_demo.rs

examples/farm_demo.rs:
