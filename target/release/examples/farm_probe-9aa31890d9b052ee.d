/root/repo/target/release/examples/farm_probe-9aa31890d9b052ee.d: examples/farm_probe.rs

/root/repo/target/release/examples/farm_probe-9aa31890d9b052ee: examples/farm_probe.rs

examples/farm_probe.rs:
