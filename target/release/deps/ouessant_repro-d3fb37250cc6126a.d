/root/repo/target/release/deps/ouessant_repro-d3fb37250cc6126a.d: src/lib.rs

/root/repo/target/release/deps/libouessant_repro-d3fb37250cc6126a.rlib: src/lib.rs

/root/repo/target/release/deps/libouessant_repro-d3fb37250cc6126a.rmeta: src/lib.rs

src/lib.rs:
