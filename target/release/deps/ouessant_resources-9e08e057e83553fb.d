/root/repo/target/release/deps/ouessant_resources-9e08e057e83553fb.d: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

/root/repo/target/release/deps/libouessant_resources-9e08e057e83553fb.rlib: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

/root/repo/target/release/deps/libouessant_resources-9e08e057e83553fb.rmeta: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

crates/resources/src/lib.rs:
crates/resources/src/device.rs:
crates/resources/src/estimate.rs:
crates/resources/src/timing.rs:
