/root/repo/target/release/deps/ouessant_sim-493ce960defa00f5.d: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libouessant_sim-493ce960defa00f5.rlib: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libouessant_sim-493ce960defa00f5.rmeta: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/axi.rs:
crates/sim/src/bus.rs:
crates/sim/src/clock.rs:
crates/sim/src/fifo.rs:
crates/sim/src/memory.rs:
crates/sim/src/rng.rs:
crates/sim/src/trace.rs:
crates/sim/src/vcd.rs:
