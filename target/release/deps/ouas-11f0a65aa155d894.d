/root/repo/target/release/deps/ouas-11f0a65aa155d894.d: crates/isa/src/bin/ouas.rs

/root/repo/target/release/deps/ouas-11f0a65aa155d894: crates/isa/src/bin/ouas.rs

crates/isa/src/bin/ouas.rs:
