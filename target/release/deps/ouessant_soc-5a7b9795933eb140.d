/root/repo/target/release/deps/ouessant_soc-5a7b9795933eb140.d: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

/root/repo/target/release/deps/libouessant_soc-5a7b9795933eb140.rlib: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

/root/repo/target/release/deps/libouessant_soc-5a7b9795933eb140.rmeta: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

crates/soc/src/lib.rs:
crates/soc/src/alloc.rs:
crates/soc/src/app.rs:
crates/soc/src/cpu.rs:
crates/soc/src/driver.rs:
crates/soc/src/os.rs:
crates/soc/src/soc.rs:
crates/soc/src/standalone.rs:
crates/soc/src/sw.rs:
