/root/repo/target/release/deps/ouessant_isa-93a1d8c43f5ed7fc.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

/root/repo/target/release/deps/libouessant_isa-93a1d8c43f5ed7fc.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

/root/repo/target/release/deps/libouessant_isa-93a1d8c43f5ed7fc.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instruction.rs:
crates/isa/src/opcode.rs:
crates/isa/src/operands.rs:
crates/isa/src/opt.rs:
crates/isa/src/program.rs:
