/root/repo/target/release/deps/ouessant-b49c814829611e31.d: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

/root/repo/target/release/deps/libouessant-b49c814829611e31.rlib: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

/root/repo/target/release/deps/libouessant-b49c814829611e31.rmeta: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

crates/core/src/lib.rs:
crates/core/src/banks.rs:
crates/core/src/controller.rs:
crates/core/src/hls.rs:
crates/core/src/interface.rs:
crates/core/src/ocp.rs:
crates/core/src/regs.rs:
