/root/repo/target/release/deps/ouessant_farm-c5e2efbd0ae7413c.d: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

/root/repo/target/release/deps/libouessant_farm-c5e2efbd0ae7413c.rlib: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

/root/repo/target/release/deps/libouessant_farm-c5e2efbd0ae7413c.rmeta: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

crates/farm/src/lib.rs:
crates/farm/src/farm.rs:
crates/farm/src/job.rs:
crates/farm/src/policy.rs:
crates/farm/src/queue.rs:
crates/farm/src/stats.rs:
crates/farm/src/worker.rs:
