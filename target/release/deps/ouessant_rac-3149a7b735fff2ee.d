/root/repo/target/release/deps/ouessant_rac-3149a7b735fff2ee.d: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

/root/repo/target/release/deps/libouessant_rac-3149a7b735fff2ee.rlib: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

/root/repo/target/release/deps/libouessant_rac-3149a7b735fff2ee.rmeta: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

crates/rac/src/lib.rs:
crates/rac/src/block.rs:
crates/rac/src/dft.rs:
crates/rac/src/fir.rs:
crates/rac/src/fixed.rs:
crates/rac/src/idct.rs:
crates/rac/src/matmul.rs:
crates/rac/src/passthrough.rs:
crates/rac/src/rac.rs:
crates/rac/src/slot.rs:
