/root/repo/target/debug/deps/ouessant_sim-399dd9fe43cd16fb.d: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libouessant_sim-399dd9fe43cd16fb.rlib: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libouessant_sim-399dd9fe43cd16fb.rmeta: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/axi.rs:
crates/sim/src/bus.rs:
crates/sim/src/clock.rs:
crates/sim/src/fifo.rs:
crates/sim/src/memory.rs:
crates/sim/src/rng.rs:
crates/sim/src/trace.rs:
crates/sim/src/vcd.rs:
