/root/repo/target/debug/deps/ouessant_rac-bb28d20097f35ef0.d: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

/root/repo/target/debug/deps/ouessant_rac-bb28d20097f35ef0: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

crates/rac/src/lib.rs:
crates/rac/src/block.rs:
crates/rac/src/dft.rs:
crates/rac/src/fir.rs:
crates/rac/src/fixed.rs:
crates/rac/src/idct.rs:
crates/rac/src/matmul.rs:
crates/rac/src/passthrough.rs:
crates/rac/src/rac.rs:
crates/rac/src/slot.rs:
