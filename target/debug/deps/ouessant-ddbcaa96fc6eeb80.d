/root/repo/target/debug/deps/ouessant-ddbcaa96fc6eeb80.d: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs Cargo.toml

/root/repo/target/debug/deps/libouessant-ddbcaa96fc6eeb80.rmeta: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/banks.rs:
crates/core/src/controller.rs:
crates/core/src/hls.rs:
crates/core/src/interface.rs:
crates/core/src/ocp.rs:
crates/core/src/regs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
