/root/repo/target/debug/deps/ouessant_repro-3c31345a8830e188.d: src/lib.rs

/root/repo/target/debug/deps/ouessant_repro-3c31345a8830e188: src/lib.rs

src/lib.rs:
