/root/repo/target/debug/deps/ouessant_repro-24987ba41dca7674.d: src/lib.rs

/root/repo/target/debug/deps/libouessant_repro-24987ba41dca7674.rlib: src/lib.rs

/root/repo/target/debug/deps/libouessant_repro-24987ba41dca7674.rmeta: src/lib.rs

src/lib.rs:
