/root/repo/target/debug/deps/ouas-da93ca928ff0c07d.d: crates/isa/src/bin/ouas.rs

/root/repo/target/debug/deps/ouas-da93ca928ff0c07d: crates/isa/src/bin/ouas.rs

crates/isa/src/bin/ouas.rs:
