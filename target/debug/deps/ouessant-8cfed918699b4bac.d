/root/repo/target/debug/deps/ouessant-8cfed918699b4bac.d: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

/root/repo/target/debug/deps/ouessant-8cfed918699b4bac: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

crates/core/src/lib.rs:
crates/core/src/banks.rs:
crates/core/src/controller.rs:
crates/core/src/hls.rs:
crates/core/src/interface.rs:
crates/core/src/ocp.rs:
crates/core/src/regs.rs:
