/root/repo/target/debug/deps/proptests-de4a13a1b84005c3.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-de4a13a1b84005c3: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
