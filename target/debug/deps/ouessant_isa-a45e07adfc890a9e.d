/root/repo/target/debug/deps/ouessant_isa-a45e07adfc890a9e.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

/root/repo/target/debug/deps/libouessant_isa-a45e07adfc890a9e.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

/root/repo/target/debug/deps/libouessant_isa-a45e07adfc890a9e.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instruction.rs:
crates/isa/src/opcode.rs:
crates/isa/src/operands.rs:
crates/isa/src/opt.rs:
crates/isa/src/program.rs:
