/root/repo/target/debug/deps/proptests-a88107df4a69cb11.d: crates/rac/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a88107df4a69cb11: crates/rac/tests/proptests.rs

crates/rac/tests/proptests.rs:
