/root/repo/target/debug/deps/ouessant-da7b8b5ffbafd4ac.d: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs Cargo.toml

/root/repo/target/debug/deps/libouessant-da7b8b5ffbafd4ac.rmeta: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/banks.rs:
crates/core/src/controller.rs:
crates/core/src/hls.rs:
crates/core/src/interface.rs:
crates/core/src/ocp.rs:
crates/core/src/regs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
