/root/repo/target/debug/deps/reconfiguration-8d1bdef11aa96396.d: tests/reconfiguration.rs

/root/repo/target/debug/deps/reconfiguration-8d1bdef11aa96396: tests/reconfiguration.rs

tests/reconfiguration.rs:
