/root/repo/target/debug/deps/e2e_proptests-d308d73895058732.d: tests/e2e_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libe2e_proptests-d308d73895058732.rmeta: tests/e2e_proptests.rs Cargo.toml

tests/e2e_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
