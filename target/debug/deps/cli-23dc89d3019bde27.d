/root/repo/target/debug/deps/cli-23dc89d3019bde27.d: crates/isa/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-23dc89d3019bde27.rmeta: crates/isa/tests/cli.rs Cargo.toml

crates/isa/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_ouas=placeholder:ouas
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
