/root/repo/target/debug/deps/ouessant_resources-0caade2ac8188255.d: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

/root/repo/target/debug/deps/ouessant_resources-0caade2ac8188255: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

crates/resources/src/lib.rs:
crates/resources/src/device.rs:
crates/resources/src/estimate.rs:
crates/resources/src/timing.rs:
