/root/repo/target/debug/deps/ouessant-d21d5140a23b8f7a.d: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

/root/repo/target/debug/deps/libouessant-d21d5140a23b8f7a.rlib: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

/root/repo/target/debug/deps/libouessant-d21d5140a23b8f7a.rmeta: crates/core/src/lib.rs crates/core/src/banks.rs crates/core/src/controller.rs crates/core/src/hls.rs crates/core/src/interface.rs crates/core/src/ocp.rs crates/core/src/regs.rs

crates/core/src/lib.rs:
crates/core/src/banks.rs:
crates/core/src/controller.rs:
crates/core/src/hls.rs:
crates/core/src/interface.rs:
crates/core/src/ocp.rs:
crates/core/src/regs.rs:
