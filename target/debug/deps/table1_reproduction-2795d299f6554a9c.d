/root/repo/target/debug/deps/table1_reproduction-2795d299f6554a9c.d: tests/table1_reproduction.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_reproduction-2795d299f6554a9c.rmeta: tests/table1_reproduction.rs Cargo.toml

tests/table1_reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
