/root/repo/target/debug/deps/ouessant_isa-1c2c0449d69f85de.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

/root/repo/target/debug/deps/ouessant_isa-1c2c0449d69f85de: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instruction.rs:
crates/isa/src/opcode.rs:
crates/isa/src/operands.rs:
crates/isa/src/opt.rs:
crates/isa/src/program.rs:
