/root/repo/target/debug/deps/ouessant_soc-12de6be020c9836b.d: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_soc-12de6be020c9836b.rmeta: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs Cargo.toml

crates/soc/src/lib.rs:
crates/soc/src/alloc.rs:
crates/soc/src/app.rs:
crates/soc/src/cpu.rs:
crates/soc/src/driver.rs:
crates/soc/src/os.rs:
crates/soc/src/soc.rs:
crates/soc/src/standalone.rs:
crates/soc/src/sw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
