/root/repo/target/debug/deps/ouessant_resources-67243106b7e8b143.d: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_resources-67243106b7e8b143.rmeta: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs Cargo.toml

crates/resources/src/lib.rs:
crates/resources/src/device.rs:
crates/resources/src/estimate.rs:
crates/resources/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
