/root/repo/target/debug/deps/ouessant_rac-ba9661ca969c9d74.d: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_rac-ba9661ca969c9d74.rmeta: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs Cargo.toml

crates/rac/src/lib.rs:
crates/rac/src/block.rs:
crates/rac/src/dft.rs:
crates/rac/src/fir.rs:
crates/rac/src/fixed.rs:
crates/rac/src/idct.rs:
crates/rac/src/matmul.rs:
crates/rac/src/passthrough.rs:
crates/rac/src/rac.rs:
crates/rac/src/slot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
