/root/repo/target/debug/deps/ouessant_rac-25029ed8d87e3496.d: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

/root/repo/target/debug/deps/libouessant_rac-25029ed8d87e3496.rlib: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

/root/repo/target/debug/deps/libouessant_rac-25029ed8d87e3496.rmeta: crates/rac/src/lib.rs crates/rac/src/block.rs crates/rac/src/dft.rs crates/rac/src/fir.rs crates/rac/src/fixed.rs crates/rac/src/idct.rs crates/rac/src/matmul.rs crates/rac/src/passthrough.rs crates/rac/src/rac.rs crates/rac/src/slot.rs

crates/rac/src/lib.rs:
crates/rac/src/block.rs:
crates/rac/src/dft.rs:
crates/rac/src/fir.rs:
crates/rac/src/fixed.rs:
crates/rac/src/idct.rs:
crates/rac/src/matmul.rs:
crates/rac/src/passthrough.rs:
crates/rac/src/rac.rs:
crates/rac/src/slot.rs:
