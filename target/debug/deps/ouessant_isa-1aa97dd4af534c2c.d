/root/repo/target/debug/deps/ouessant_isa-1aa97dd4af534c2c.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_isa-1aa97dd4af534c2c.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instruction.rs:
crates/isa/src/opcode.rs:
crates/isa/src/operands.rs:
crates/isa/src/opt.rs:
crates/isa/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
