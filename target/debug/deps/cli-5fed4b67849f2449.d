/root/repo/target/debug/deps/cli-5fed4b67849f2449.d: crates/isa/tests/cli.rs

/root/repo/target/debug/deps/cli-5fed4b67849f2449: crates/isa/tests/cli.rs

crates/isa/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_ouas=/root/repo/target/debug/ouas
