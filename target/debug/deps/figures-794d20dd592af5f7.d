/root/repo/target/debug/deps/figures-794d20dd592af5f7.d: tests/figures.rs

/root/repo/target/debug/deps/figures-794d20dd592af5f7: tests/figures.rs

tests/figures.rs:
