/root/repo/target/debug/deps/optimizer_equivalence-0f6baf44eb5e2058.d: tests/optimizer_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_equivalence-0f6baf44eb5e2058.rmeta: tests/optimizer_equivalence.rs Cargo.toml

tests/optimizer_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
