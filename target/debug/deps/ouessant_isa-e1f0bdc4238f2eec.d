/root/repo/target/debug/deps/ouessant_isa-e1f0bdc4238f2eec.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_isa-e1f0bdc4238f2eec.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/instruction.rs crates/isa/src/opcode.rs crates/isa/src/operands.rs crates/isa/src/opt.rs crates/isa/src/program.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instruction.rs:
crates/isa/src/opcode.rs:
crates/isa/src/operands.rs:
crates/isa/src/opt.rs:
crates/isa/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
