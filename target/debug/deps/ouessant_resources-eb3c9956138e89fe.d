/root/repo/target/debug/deps/ouessant_resources-eb3c9956138e89fe.d: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

/root/repo/target/debug/deps/libouessant_resources-eb3c9956138e89fe.rlib: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

/root/repo/target/debug/deps/libouessant_resources-eb3c9956138e89fe.rmeta: crates/resources/src/lib.rs crates/resources/src/device.rs crates/resources/src/estimate.rs crates/resources/src/timing.rs

crates/resources/src/lib.rs:
crates/resources/src/device.rs:
crates/resources/src/estimate.rs:
crates/resources/src/timing.rs:
