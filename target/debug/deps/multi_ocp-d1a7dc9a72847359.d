/root/repo/target/debug/deps/multi_ocp-d1a7dc9a72847359.d: tests/multi_ocp.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_ocp-d1a7dc9a72847359.rmeta: tests/multi_ocp.rs Cargo.toml

tests/multi_ocp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
