/root/repo/target/debug/deps/failure_injection-cc52c163aa466f14.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-cc52c163aa466f14: tests/failure_injection.rs

tests/failure_injection.rs:
