/root/repo/target/debug/deps/table1_reproduction-d7d7e6b5c41a67e9.d: tests/table1_reproduction.rs

/root/repo/target/debug/deps/table1_reproduction-d7d7e6b5c41a67e9: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
