/root/repo/target/debug/deps/axi_portability-4f7164fc2c25d9d1.d: tests/axi_portability.rs Cargo.toml

/root/repo/target/debug/deps/libaxi_portability-4f7164fc2c25d9d1.rmeta: tests/axi_portability.rs Cargo.toml

tests/axi_portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
