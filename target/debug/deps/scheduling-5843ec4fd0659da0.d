/root/repo/target/debug/deps/scheduling-5843ec4fd0659da0.d: crates/farm/tests/scheduling.rs

/root/repo/target/debug/deps/scheduling-5843ec4fd0659da0: crates/farm/tests/scheduling.rs

crates/farm/tests/scheduling.rs:
