/root/repo/target/debug/deps/optimizer_equivalence-d68147573950bfcf.d: tests/optimizer_equivalence.rs

/root/repo/target/debug/deps/optimizer_equivalence-d68147573950bfcf: tests/optimizer_equivalence.rs

tests/optimizer_equivalence.rs:
