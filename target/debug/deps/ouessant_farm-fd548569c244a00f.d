/root/repo/target/debug/deps/ouessant_farm-fd548569c244a00f.d: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

/root/repo/target/debug/deps/libouessant_farm-fd548569c244a00f.rlib: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

/root/repo/target/debug/deps/libouessant_farm-fd548569c244a00f.rmeta: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

crates/farm/src/lib.rs:
crates/farm/src/farm.rs:
crates/farm/src/job.rs:
crates/farm/src/policy.rs:
crates/farm/src/queue.rs:
crates/farm/src/stats.rs:
crates/farm/src/worker.rs:
