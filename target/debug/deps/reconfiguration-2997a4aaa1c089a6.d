/root/repo/target/debug/deps/reconfiguration-2997a4aaa1c089a6.d: tests/reconfiguration.rs Cargo.toml

/root/repo/target/debug/deps/libreconfiguration-2997a4aaa1c089a6.rmeta: tests/reconfiguration.rs Cargo.toml

tests/reconfiguration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
