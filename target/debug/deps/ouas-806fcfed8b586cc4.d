/root/repo/target/debug/deps/ouas-806fcfed8b586cc4.d: crates/isa/src/bin/ouas.rs

/root/repo/target/debug/deps/ouas-806fcfed8b586cc4: crates/isa/src/bin/ouas.rs

crates/isa/src/bin/ouas.rs:
