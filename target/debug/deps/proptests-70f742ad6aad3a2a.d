/root/repo/target/debug/deps/proptests-70f742ad6aad3a2a.d: crates/rac/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-70f742ad6aad3a2a.rmeta: crates/rac/tests/proptests.rs Cargo.toml

crates/rac/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
