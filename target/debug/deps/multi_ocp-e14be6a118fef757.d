/root/repo/target/debug/deps/multi_ocp-e14be6a118fef757.d: tests/multi_ocp.rs

/root/repo/target/debug/deps/multi_ocp-e14be6a118fef757: tests/multi_ocp.rs

tests/multi_ocp.rs:
