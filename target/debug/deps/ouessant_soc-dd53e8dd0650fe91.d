/root/repo/target/debug/deps/ouessant_soc-dd53e8dd0650fe91.d: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

/root/repo/target/debug/deps/libouessant_soc-dd53e8dd0650fe91.rlib: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

/root/repo/target/debug/deps/libouessant_soc-dd53e8dd0650fe91.rmeta: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

crates/soc/src/lib.rs:
crates/soc/src/alloc.rs:
crates/soc/src/app.rs:
crates/soc/src/cpu.rs:
crates/soc/src/driver.rs:
crates/soc/src/os.rs:
crates/soc/src/soc.rs:
crates/soc/src/standalone.rs:
crates/soc/src/sw.rs:
