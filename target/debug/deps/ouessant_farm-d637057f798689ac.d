/root/repo/target/debug/deps/ouessant_farm-d637057f798689ac.d: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_farm-d637057f798689ac.rmeta: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs Cargo.toml

crates/farm/src/lib.rs:
crates/farm/src/farm.rs:
crates/farm/src/job.rs:
crates/farm/src/policy.rs:
crates/farm/src/queue.rs:
crates/farm/src/stats.rs:
crates/farm/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
