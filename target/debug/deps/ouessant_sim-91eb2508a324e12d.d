/root/repo/target/debug/deps/ouessant_sim-91eb2508a324e12d.d: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_sim-91eb2508a324e12d.rmeta: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/axi.rs:
crates/sim/src/bus.rs:
crates/sim/src/clock.rs:
crates/sim/src/fifo.rs:
crates/sim/src/memory.rs:
crates/sim/src/rng.rs:
crates/sim/src/trace.rs:
crates/sim/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
