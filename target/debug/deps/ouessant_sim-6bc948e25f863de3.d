/root/repo/target/debug/deps/ouessant_sim-6bc948e25f863de3.d: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/ouessant_sim-6bc948e25f863de3: crates/sim/src/lib.rs crates/sim/src/axi.rs crates/sim/src/bus.rs crates/sim/src/clock.rs crates/sim/src/fifo.rs crates/sim/src/memory.rs crates/sim/src/rng.rs crates/sim/src/trace.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/axi.rs:
crates/sim/src/bus.rs:
crates/sim/src/clock.rs:
crates/sim/src/fifo.rs:
crates/sim/src/memory.rs:
crates/sim/src/rng.rs:
crates/sim/src/trace.rs:
crates/sim/src/vcd.rs:
