/root/repo/target/debug/deps/proptests-fe7ac37bd4da6737.d: crates/isa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fe7ac37bd4da6737: crates/isa/tests/proptests.rs

crates/isa/tests/proptests.rs:
