/root/repo/target/debug/deps/scheduling-d5331bcd11d812a4.d: crates/farm/tests/scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling-d5331bcd11d812a4.rmeta: crates/farm/tests/scheduling.rs Cargo.toml

crates/farm/tests/scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
