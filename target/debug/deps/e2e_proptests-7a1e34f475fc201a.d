/root/repo/target/debug/deps/e2e_proptests-7a1e34f475fc201a.d: tests/e2e_proptests.rs

/root/repo/target/debug/deps/e2e_proptests-7a1e34f475fc201a: tests/e2e_proptests.rs

tests/e2e_proptests.rs:
