/root/repo/target/debug/deps/axi_portability-35f6213b58932ab6.d: tests/axi_portability.rs

/root/repo/target/debug/deps/axi_portability-35f6213b58932ab6: tests/axi_portability.rs

tests/axi_portability.rs:
