/root/repo/target/debug/deps/figures-5d2726cca4665ced.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-5d2726cca4665ced.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
