/root/repo/target/debug/deps/ouessant_soc-96267664e9126cf2.d: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

/root/repo/target/debug/deps/ouessant_soc-96267664e9126cf2: crates/soc/src/lib.rs crates/soc/src/alloc.rs crates/soc/src/app.rs crates/soc/src/cpu.rs crates/soc/src/driver.rs crates/soc/src/os.rs crates/soc/src/soc.rs crates/soc/src/standalone.rs crates/soc/src/sw.rs

crates/soc/src/lib.rs:
crates/soc/src/alloc.rs:
crates/soc/src/app.rs:
crates/soc/src/cpu.rs:
crates/soc/src/driver.rs:
crates/soc/src/os.rs:
crates/soc/src/soc.rs:
crates/soc/src/standalone.rs:
crates/soc/src/sw.rs:
