/root/repo/target/debug/deps/ouessant_repro-1c58e643dc655aa0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libouessant_repro-1c58e643dc655aa0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
