/root/repo/target/debug/deps/ouas-e58ee380bd8f187a.d: crates/isa/src/bin/ouas.rs Cargo.toml

/root/repo/target/debug/deps/libouas-e58ee380bd8f187a.rmeta: crates/isa/src/bin/ouas.rs Cargo.toml

crates/isa/src/bin/ouas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
