/root/repo/target/debug/deps/proptests-d4eced8eb345cf97.d: crates/isa/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d4eced8eb345cf97.rmeta: crates/isa/tests/proptests.rs Cargo.toml

crates/isa/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
