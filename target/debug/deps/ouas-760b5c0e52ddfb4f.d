/root/repo/target/debug/deps/ouas-760b5c0e52ddfb4f.d: crates/isa/src/bin/ouas.rs Cargo.toml

/root/repo/target/debug/deps/libouas-760b5c0e52ddfb4f.rmeta: crates/isa/src/bin/ouas.rs Cargo.toml

crates/isa/src/bin/ouas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
