/root/repo/target/debug/deps/ouessant_farm-d20769b65d59e59e.d: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

/root/repo/target/debug/deps/ouessant_farm-d20769b65d59e59e: crates/farm/src/lib.rs crates/farm/src/farm.rs crates/farm/src/job.rs crates/farm/src/policy.rs crates/farm/src/queue.rs crates/farm/src/stats.rs crates/farm/src/worker.rs

crates/farm/src/lib.rs:
crates/farm/src/farm.rs:
crates/farm/src/job.rs:
crates/farm/src/policy.rs:
crates/farm/src/queue.rs:
crates/farm/src/stats.rs:
crates/farm/src/worker.rs:
