/root/repo/target/debug/examples/table1-9c4050827bca881b.d: examples/table1.rs

/root/repo/target/debug/examples/table1-9c4050827bca881b: examples/table1.rs

examples/table1.rs:
