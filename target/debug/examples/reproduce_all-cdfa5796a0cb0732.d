/root/repo/target/debug/examples/reproduce_all-cdfa5796a0cb0732.d: examples/reproduce_all.rs Cargo.toml

/root/repo/target/debug/examples/libreproduce_all-cdfa5796a0cb0732.rmeta: examples/reproduce_all.rs Cargo.toml

examples/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
