/root/repo/target/debug/examples/resource_report-d931ec4a84a03068.d: examples/resource_report.rs

/root/repo/target/debug/examples/resource_report-d931ec4a84a03068: examples/resource_report.rs

examples/resource_report.rs:
