/root/repo/target/debug/examples/waveform-c406c4b2942011f9.d: examples/waveform.rs Cargo.toml

/root/repo/target/debug/examples/libwaveform-c406c4b2942011f9.rmeta: examples/waveform.rs Cargo.toml

examples/waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
