/root/repo/target/debug/examples/sdr_dft-f4e2012d06465599.d: examples/sdr_dft.rs

/root/repo/target/debug/examples/sdr_dft-f4e2012d06465599: examples/sdr_dft.rs

examples/sdr_dft.rs:
