/root/repo/target/debug/examples/table1-131a51c07e873784.d: examples/table1.rs Cargo.toml

/root/repo/target/debug/examples/libtable1-131a51c07e873784.rmeta: examples/table1.rs Cargo.toml

examples/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
