/root/repo/target/debug/examples/quickstart-22bbd3fc07e0260b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-22bbd3fc07e0260b: examples/quickstart.rs

examples/quickstart.rs:
