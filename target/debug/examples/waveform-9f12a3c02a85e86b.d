/root/repo/target/debug/examples/waveform-9f12a3c02a85e86b.d: examples/waveform.rs

/root/repo/target/debug/examples/waveform-9f12a3c02a85e86b: examples/waveform.rs

examples/waveform.rs:
