/root/repo/target/debug/examples/hls_codegen-fb99a8350f986d08.d: examples/hls_codegen.rs Cargo.toml

/root/repo/target/debug/examples/libhls_codegen-fb99a8350f986d08.rmeta: examples/hls_codegen.rs Cargo.toml

examples/hls_codegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
