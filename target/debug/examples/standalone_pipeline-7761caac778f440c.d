/root/repo/target/debug/examples/standalone_pipeline-7761caac778f440c.d: examples/standalone_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libstandalone_pipeline-7761caac778f440c.rmeta: examples/standalone_pipeline.rs Cargo.toml

examples/standalone_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
