/root/repo/target/debug/examples/farm_demo-1b9d00f1b3ce380d.d: examples/farm_demo.rs

/root/repo/target/debug/examples/farm_demo-1b9d00f1b3ce380d: examples/farm_demo.rs

examples/farm_demo.rs:
