/root/repo/target/debug/examples/farm_demo-b4ca1219c3270510.d: examples/farm_demo.rs Cargo.toml

/root/repo/target/debug/examples/libfarm_demo-b4ca1219c3270510.rmeta: examples/farm_demo.rs Cargo.toml

examples/farm_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
