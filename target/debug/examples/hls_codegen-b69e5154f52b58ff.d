/root/repo/target/debug/examples/hls_codegen-b69e5154f52b58ff.d: examples/hls_codegen.rs

/root/repo/target/debug/examples/hls_codegen-b69e5154f52b58ff: examples/hls_codegen.rs

examples/hls_codegen.rs:
