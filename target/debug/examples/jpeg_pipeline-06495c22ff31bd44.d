/root/repo/target/debug/examples/jpeg_pipeline-06495c22ff31bd44.d: examples/jpeg_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libjpeg_pipeline-06495c22ff31bd44.rmeta: examples/jpeg_pipeline.rs Cargo.toml

examples/jpeg_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
