/root/repo/target/debug/examples/sdr_dft-232b1c9568d86cbe.d: examples/sdr_dft.rs Cargo.toml

/root/repo/target/debug/examples/libsdr_dft-232b1c9568d86cbe.rmeta: examples/sdr_dft.rs Cargo.toml

examples/sdr_dft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
