/root/repo/target/debug/examples/reproduce_all-4c70c52971462a93.d: examples/reproduce_all.rs

/root/repo/target/debug/examples/reproduce_all-4c70c52971462a93: examples/reproduce_all.rs

examples/reproduce_all.rs:
