/root/repo/target/debug/examples/resource_report-d83ad2164da88298.d: examples/resource_report.rs Cargo.toml

/root/repo/target/debug/examples/libresource_report-d83ad2164da88298.rmeta: examples/resource_report.rs Cargo.toml

examples/resource_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
