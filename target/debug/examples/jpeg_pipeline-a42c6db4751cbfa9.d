/root/repo/target/debug/examples/jpeg_pipeline-a42c6db4751cbfa9.d: examples/jpeg_pipeline.rs

/root/repo/target/debug/examples/jpeg_pipeline-a42c6db4751cbfa9: examples/jpeg_pipeline.rs

examples/jpeg_pipeline.rs:
