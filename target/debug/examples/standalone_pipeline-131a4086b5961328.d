/root/repo/target/debug/examples/standalone_pipeline-131a4086b5961328.d: examples/standalone_pipeline.rs

/root/repo/target/debug/examples/standalone_pipeline-131a4086b5961328: examples/standalone_pipeline.rs

examples/standalone_pipeline.rs:
