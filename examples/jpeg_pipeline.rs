//! JPEG decode pipeline: the paper's motivating scenario.
//!
//! "Smartphones SoCs integrate hardware video decoders, in order to
//! provide flawless High-Definition video playback, which can not be
//! obtained with low-power GPP cores." The paper's first RAC is a 2-D
//! IDCT for JPEG decoding; this example decodes a synthetic image —
//! many 8×8 coefficient blocks — through the IDCT OCP using the
//! extension ISA's hardware loop, and compares against the
//! time-optimized software IDCT.
//!
//! ```text
//! cargo run --example jpeg_pipeline
//! ```

use ouessant_isa::assemble;
use ouessant_rac::idct::{IdctRac, BLOCK_LEN};
use ouessant_soc::cpu::CostModel;
use ouessant_soc::os::OsModel;
use ouessant_soc::soc::{Soc, SocConfig};
use ouessant_soc::sw::sw_idct_8x8;

/// A 64×64-pixel synthetic image: 8×8 = 64 coefficient blocks.
const BLOCKS: usize = 64;

fn synthetic_blocks() -> Vec<Vec<i32>> {
    let mut state = 0x1D27_3645u32;
    (0..BLOCKS)
        .map(|_block| {
            (0..BLOCK_LEN)
                .map(|i| {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    // JPEG-like: strong DC, sparse AC.
                    if i == 0 {
                        ((state >> 20) as i32 % 1024) + 512
                    } else if state.is_multiple_of(5) {
                        ((state >> 18) as i32 % 256) - 128
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blocks = synthetic_blocks();

    // Microcode with the extension ISA: a hardware loop walks all 64
    // blocks without any CPU intervention between them.
    let microcode = format!(
        "
        ldc R0,{BLOCKS}
        ldo O0,0
        ldo O1,0
        block:
            mvtcr BANK1,O0,DMA64,FIFO0
            execs
            mvfcr BANK2,O1,DMA64,FIFO0
            djnz R0,block
        eop
        "
    );
    let program = assemble(&microcode)?;
    println!(
        "decoding {BLOCKS} blocks with a {}-instruction looped microcode",
        program.len()
    );

    // Build the SoC around the IDCT RAC.
    let mut soc = Soc::new(Box::new(IdctRac::new()), SocConfig::default());
    let ram = soc.config().ram_base;
    let (prog_at, in_at, out_at) = (ram, ram + 0x4000, ram + 0x2_0000);
    soc.load_words(prog_at, &program.to_words())?;
    let flat: Vec<u32> = blocks.iter().flatten().map(|&c| c as u32).collect();
    soc.load_words(in_at, &flat)?;
    soc.configure(
        &[(0, prog_at), (1, in_at), (2, out_at)],
        program.len() as u32,
    )?;
    let report = soc.start_and_wait(10_000_000)?;

    // Software decode of the same image.
    let mut cpu = CostModel::leon3();
    let sw_pixels: Vec<Vec<i32>> = blocks.iter().map(|b| sw_idct_8x8(&mut cpu, b)).collect();
    let sw_cycles = cpu.cycles();

    // Verify: the offloaded pixels are bit-exact with software.
    let hw_flat = soc.read_words(out_at, BLOCKS * BLOCK_LEN)?;
    for (bi, sw_block) in sw_pixels.iter().enumerate() {
        for (i, &sw) in sw_block.iter().enumerate() {
            let hw = hw_flat[bi * BLOCK_LEN + i] as i32;
            assert_eq!(hw, sw, "block {bi} pixel {i}");
        }
    }

    let os = OsModel::linux_mmap();
    let hw_cycles = report.machine_cycles() + os.invocation_overhead(report.words_transferred);
    println!("image: {BLOCKS} blocks of {BLOCK_LEN} coefficients");
    println!(
        "hardware: {hw_cycles} cycles total ({} machine + {} Linux), {} words moved",
        report.machine_cycles(),
        os.invocation_overhead(report.words_transferred),
        report.words_transferred
    );
    println!("software: {sw_cycles} cycles");
    println!(
        "whole-image gain: {:.2}x  (single-block Table I gain is 1.67; batching \
         amortizes the Linux overhead over {BLOCKS} blocks)",
        sw_cycles as f64 / hw_cycles as f64
    );
    println!("ok: hardware and software pixels are bit-identical");
    Ok(())
}
