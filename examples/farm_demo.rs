//! Serve a mixed accelerator workload on a three-OCP pool.
//!
//! The pool holds a fixed IDCT worker, a fixed 64-point DFT worker and
//! one DPR slot that can host either an IDCT or a ×3 scaling copy
//! (40 KiB partial bitstreams, so a swap costs 10k cycles at the ICAP
//! rate). A client offers 240 mixed jobs with backpressure-aware
//! resubmission; the same workload is replayed under all three
//! scheduling policies and every output is checked against the host
//! golden model.
//!
//! The run ends with three robustness campaigns on a redundant pool:
//!
//! * a *chaos* campaign — a seeded fault plan kills controllers,
//!   faults DMA bursts, poisons bitstreams and squats on shared
//!   memory; the farm quarantines, retries and keeps serving;
//! * a *hang* campaign — the stall seams wedge handshakes and slow
//!   RACs instead of crashing; per-job watchdogs abort the silent
//!   hangs and deadlines drop what can no longer be served in time;
//! * an *overload* experiment — the client submits far past queue
//!   capacity with mixed priorities and the farm sheds low-priority
//!   work gracefully instead of wedging.
//!
//! Pass `--chaos-seed N` / `--hang-seed N` to replay a specific
//! campaign (any failure is reproducible from its seed alone) and
//! `--deadline N` to tighten or relax the hang campaign's per-job
//! deadline.
//!
//! Run with: `cargo run --release --example farm_demo
//! [--chaos-seed N] [--hang-seed N] [--deadline N]`

use std::collections::HashMap;
use std::error::Error;

use ouessant_farm::{
    ChaosConfig, DprAffinityPolicy, Farm, FarmConfig, FaultConfig, FaultPlan, FifoPolicy, JobId,
    JobKind, JobOutcome, JobSpec, LivenessConfig, RoundRobinPolicy, SchedPolicy, SubmitError,
};
use ouessant_isa::ProgramBuilder;
use ouessant_sim::XorShift64;

const IDCT: JobKind = JobKind::Idct;
const DFT64: JobKind = JobKind::Dft { points: 64 };
const COPY3: JobKind = JobKind::Copy { scale: 3 };
const TOTAL_JOBS: usize = 240;

/// The deterministic 240-job mix: IDCT-heavy with DFT and copy work
/// interleaved, so the DPR slot sees real swap pressure.
fn workload(seed: u64) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(seed);
    (0..TOTAL_JOBS)
        .map(|i| {
            let kind = match i % 6 {
                0 | 3 | 5 => IDCT,
                1 | 4 => DFT64,
                _ => COPY3,
            };
            let words = kind.required_input_words().unwrap_or(96);
            let payload: Vec<u32> = (0..words)
                .map(|_| rng.gen_range_i32(-1024..1024) as u32)
                .collect();
            JobSpec::new(kind, payload).with_deadline(4_000_000)
        })
        .collect()
}

fn build_farm(policy: Box<dyn SchedPolicy>) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 32,
            ..FarmConfig::default()
        },
        policy,
    );
    farm.add_worker(IDCT);
    farm.add_worker(DFT64);
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    farm
}

/// Offers the whole workload with backpressure-aware resubmission,
/// drains the pool, verifies the outputs and returns the report.
fn serve(policy: Box<dyn SchedPolicy>, jobs: &[JobSpec]) -> Result<(), Box<dyn Error>> {
    let mut farm = build_farm(policy);
    let mut golden: HashMap<JobId, Vec<u32>> = HashMap::new();
    let mut backoffs = 0u64;
    for spec in jobs {
        loop {
            match farm.submit(spec.clone()) {
                Ok(id) => {
                    golden.insert(id, spec.kind.expected_output(&spec.input));
                    break;
                }
                Err(SubmitError::QueueFull { .. }) => {
                    // Backpressure: let the pool drain a little.
                    backoffs += 1;
                    for _ in 0..200 {
                        farm.tick();
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        // A trickle of simulated time between arrivals.
        for _ in 0..25 {
            farm.tick();
        }
    }
    farm.run_until_idle(1_000_000_000)?;

    let mut corrupted = 0usize;
    for record in farm.records() {
        if &record.output != golden.get(&record.id).expect("recorded job was submitted") {
            corrupted += 1;
        }
    }
    let report = farm.report();
    println!("{report}");
    println!(
        "client: {} submissions backpressured; outputs verified: {}/{} bit-exact, {} corrupted\n",
        backoffs,
        report.jobs_completed as usize - corrupted,
        report.jobs_completed,
        corrupted
    );
    assert_eq!(corrupted, 0, "served outputs must match the golden model");
    assert_eq!(report.jobs_completed as usize, TOTAL_JOBS);
    Ok(())
}

/// The swap-amortization head-to-head: a strictly alternating mix on a
/// *single* DPR slot, where policy choice is everything.
fn swap_experiment() -> Result<(), Box<dyn Error>> {
    println!("── swap-heavy head-to-head (1 DPR slot, 40 alternating idct/copy jobs) ──");
    let mut rng = XorShift64::new(0x5AFE);
    let mix: Vec<JobSpec> = (0..40)
        .map(|i| {
            let kind = if i % 2 == 0 { IDCT } else { COPY3 };
            let words = kind.required_input_words().unwrap_or(64);
            JobSpec::new(
                kind,
                (0..words)
                    .map(|_| rng.gen_range_i32(-1024..1024) as u32)
                    .collect(),
            )
        })
        .collect();
    let mut results = Vec::new();
    for policy in [
        Box::new(FifoPolicy::new()) as Box<dyn SchedPolicy>,
        Box::new(DprAffinityPolicy::new()),
    ] {
        let mut farm = Farm::new(FarmConfig::default(), policy);
        farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
        for spec in &mix {
            farm.submit(spec.clone())?;
        }
        farm.run_until_idle(1_000_000_000)?;
        let report = farm.report();
        println!(
            "  {:<14} {:>4} swaps   {:>8} cycles   {:>8.2} jobs/Mcycle",
            report.policy, report.swaps, report.total_cycles, report.throughput_jobs_per_mcycle
        );
        results.push(report.throughput_jobs_per_mcycle);
    }
    println!(
        "  → dpr-affinity serves the same mix {:.1}× faster by batching same-kind jobs\n",
        results[1] / results[0]
    );
    Ok(())
}

/// The static-analysis admission gate in action: a client offering
/// defective custom microcode is bounced with the analyzer's
/// diagnostics while a job already on a worker runs to completion.
fn admission_experiment() -> Result<(), Box<dyn Error>> {
    println!("── custom-microcode admission gate (ouessant-verify) ──");
    let mut farm = build_farm(Box::new(FifoPolicy::new()));
    let input: Vec<u32> = (1..=48).collect();
    farm.submit(JobSpec::new(COPY3, input))?;
    for _ in 0..20 {
        farm.tick();
    }

    // A 256-word burst starting at word offset 16256 overruns the
    // 16384-word bank window; the analyzer rejects it at submission.
    let overflow = ProgramBuilder::new()
        .mvtc(1, 16256, 256, 0)?
        .execs()
        .eop()
        .finish()?;
    match farm.submit(JobSpec::new(COPY3, vec![7; 48]).with_microcode(overflow)) {
        Err(SubmitError::RejectedMicrocode { diagnostics }) => {
            println!("  rejected a custom-microcode job before it touched a worker:");
            for d in diagnostics.diagnostics() {
                println!("    {d}");
            }
        }
        other => panic!("expected a microcode rejection, got {other:?}"),
    }

    farm.run_until_idle(1_000_000_000)?;
    let report = farm.report();
    println!(
        "  admission: {} completed, {} rejected (unsafe microcode) — in-flight work undisturbed\n",
        report.jobs_completed, report.rejected_unsafe
    );
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.rejected_unsafe, 1);
    Ok(())
}

/// A four-worker pool with at least two workers per kind, so a worker
/// death never makes a kind unserviceable — the shape fault-tolerant
/// serving wants.
fn redundant_farm(policy: Box<dyn SchedPolicy>, liveness: LivenessConfig) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 32,
            faults: FaultConfig {
                max_attempts: 10,
                quarantine_cooldown: Some(60_000),
                ..FaultConfig::default()
            },
            liveness,
            ..FarmConfig::default()
        },
        policy,
    );
    farm.add_worker(IDCT);
    farm.add_worker(DFT64);
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    farm.add_dpr_worker(&[(COPY3, 40_000), (DFT64, 60_000)]);
    farm
}

/// Serves the workload on the redundant pool, optionally under an
/// armed chaos campaign, and returns (report, survivors bit-exact?).
fn serve_redundant(
    jobs: &[JobSpec],
    chaos: Option<FaultPlan>,
) -> Result<ouessant_farm::FarmReport, Box<dyn Error>> {
    let mut farm = redundant_farm(Box::new(RoundRobinPolicy::new()), LivenessConfig::default());
    if let Some(plan) = chaos {
        farm.arm_chaos(plan);
    }
    let mut golden: HashMap<JobId, Vec<u32>> = HashMap::new();
    for spec in jobs {
        loop {
            match farm.submit(spec.clone()) {
                Ok(id) => {
                    golden.insert(id, spec.kind.expected_output(&spec.input));
                    break;
                }
                Err(SubmitError::QueueFull { .. }) => {
                    for _ in 0..200 {
                        farm.tick();
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    farm.run_until_idle(1_000_000_000)?;
    for record in farm.records() {
        if let JobOutcome::Completed { .. } = record.outcome {
            assert_eq!(
                &record.output,
                golden.get(&record.id).expect("recorded job was submitted"),
                "a surviving job's output must be bit-exact despite the chaos"
            );
        }
    }
    let report = farm.report();
    assert_eq!(
        report.jobs_admitted,
        report.jobs_completed + report.jobs_failed_permanent,
        "the books must balance"
    );
    assert_eq!(report.alloc.words_in_use, 0, "no leaked bank leases");
    Ok(report)
}

/// The fault-tolerance head-to-head: the same 240-job workload served
/// calm and under a seeded chaos campaign, on the same redundant pool.
fn chaos_experiment(seed: u64) -> Result<(), Box<dyn Error>> {
    println!("── chaos campaign (seed {seed:#x}, 4-worker redundant pool, round-robin) ──");
    let jobs = workload(0xDA7E_2016);

    let calm = serve_redundant(&jobs, None)?;
    let chaotic = serve_redundant(&jobs, Some(FaultPlan::new(ChaosConfig::new(seed))))?;

    for (label, r) in [("calm", &calm), ("chaos", &chaotic)] {
        println!(
            "  {label:<6} {:>4} completed  {:>2} failed  {:>8} cycles  {:>6.2} jobs/Mcycle  \
             p99 latency {:>8}",
            r.jobs_completed,
            r.jobs_failed_permanent,
            r.total_cycles,
            r.throughput_jobs_per_mcycle,
            r.latency.p99
        );
    }
    println!(
        "  chaos ledger: {} worker faults absorbed, {} retries, {} quarantines",
        chaotic.worker_faults, chaotic.retries, chaotic.quarantines
    );
    for w in &chaotic.workers {
        if w.faults > 0 {
            println!(
                "    {:<22} {} faults, {} quarantines → {}",
                w.name, w.faults, w.quarantines, w.health
            );
        }
    }
    println!(
        "  → every surviving output bit-exact; throughput cost of the campaign: {:.1}%\n",
        (1.0 - chaotic.throughput_jobs_per_mcycle / calm.throughput_jobs_per_mcycle) * 100.0
    );
    Ok(())
}

/// The hang campaign: the same workload on the redundant pool, but
/// under the *stall* seams — wedged handshakes and slowed RACs that
/// make no progress instead of crashing. Watchdogs abort the silent
/// hangs (routed through the same retry machinery as crashes) and the
/// per-job deadline drops work that can no longer be served in time.
fn liveness_experiment(hang_seed: u64, deadline: u64) -> Result<(), Box<dyn Error>> {
    println!(
        "── hang campaign (seed {hang_seed:#x}, 25k-cycle watchdogs, \
         {deadline}-cycle deadlines) ──"
    );
    let mut farm = redundant_farm(
        Box::new(RoundRobinPolicy::new()),
        LivenessConfig {
            default_cycles_budget: Some(25_000),
            early_drop: true,
            ..LivenessConfig::default()
        },
    );
    farm.arm_chaos(FaultPlan::new(ChaosConfig::hang(hang_seed)));

    let mut golden: HashMap<JobId, Vec<u32>> = HashMap::new();
    for spec in workload(0xDA7E_2016) {
        let spec = spec.with_deadline(deadline);
        loop {
            match farm.submit(spec.clone()) {
                Ok(id) => {
                    golden.insert(id, spec.kind.expected_output(&spec.input));
                    break;
                }
                Err(SubmitError::QueueFull { .. }) => {
                    for _ in 0..200 {
                        farm.tick();
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    farm.run_until_idle(1_000_000_000)?;

    for record in farm.records() {
        if let JobOutcome::Completed { .. } = record.outcome {
            assert_eq!(
                &record.output,
                golden.get(&record.id).expect("recorded job was submitted"),
                "a job that survived the hangs must still be bit-exact"
            );
        }
    }
    let report = farm.report();
    let stats = farm.chaos_stats().expect("chaos was armed");
    println!(
        "  seams fired: {} wedged handshakes, {} slowed RACs",
        stats.wedges, stats.rac_stalls
    );
    println!(
        "  liveness:    {} hangs caught by watchdogs, {} host aborts, {} retries",
        report.hangs_detected, report.aborts, report.retries
    );
    println!(
        "  outcome:     {} completed bit-exact, {} deadline-missed, {} failed",
        report.jobs_completed, report.jobs_deadline_missed, report.jobs_failed_permanent
    );
    assert_eq!(
        report.jobs_admitted,
        report.jobs_completed + report.jobs_failed_permanent + report.jobs_deadline_missed,
        "the books must balance"
    );
    assert_eq!(report.alloc.words_in_use, 0, "no leaked bank leases");
    println!("  → no stranded jobs, no leaked leases; every hang aborted or dropped\n");
    Ok(())
}

/// The overload experiment: a burst far past queue capacity with mixed
/// priority classes. Past the watermark the farm refuses below-floor
/// work at admission, and when the queue is full an urgent submission
/// evicts the youngest low-priority job — so the pool degrades by
/// shedding exactly the least important work instead of wedging.
fn overload_experiment() -> Result<(), Box<dyn Error>> {
    const BURST: usize = 90;
    println!(
        "── overload shedding ({BURST}-job burst, queue capacity 16, watermark 12, floor 1) ──"
    );
    for policy in [
        Box::new(FifoPolicy::new()) as Box<dyn SchedPolicy>,
        Box::new(RoundRobinPolicy::new()),
        Box::new(DprAffinityPolicy::new()),
    ] {
        let mut farm = Farm::new(
            FarmConfig {
                queue_capacity: 16,
                liveness: LivenessConfig {
                    early_drop: true,
                    shed_watermark: Some(12),
                    shed_floor: 1,
                    ..LivenessConfig::default()
                },
                ..FarmConfig::default()
            },
            policy,
        );
        farm.add_worker(IDCT);
        farm.add_worker(DFT64);
        farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);

        let mut rng = XorShift64::new(0x0E62_10AD);
        let mut refused = 0usize;
        for i in 0..BURST {
            let kind = match i % 6 {
                0 | 3 | 5 => IDCT,
                1 | 4 => DFT64,
                _ => COPY3,
            };
            let words = kind.required_input_words().unwrap_or(96);
            let payload: Vec<u32> = (0..words)
                .map(|_| rng.gen_range_i32(-1024..1024) as u32)
                .collect();
            let spec = JobSpec::new(kind, payload)
                .with_priority((i % 3) as u8)
                .with_deadline(farm.now() + 120_000);
            match farm.submit(spec) {
                Ok(_) => {}
                // Graceful degradation: the client is told "no" at
                // admission instead of the job rotting in the queue.
                Err(SubmitError::ShedOverload { .. }) | Err(SubmitError::QueueFull { .. }) => {
                    refused += 1;
                }
                Err(e) => return Err(e.into()),
            }
            for _ in 0..40 {
                farm.tick();
            }
        }
        farm.run_until_idle(1_000_000_000)?;
        let report = farm.report();
        println!(
            "  {:<14} {:>3} served   {:>2} shed (evicted)   {:>2} refused at admission   \
             {:>2} deadline-missed",
            report.policy,
            report.jobs_completed,
            report.jobs_shed,
            refused,
            report.jobs_deadline_missed,
        );
        assert_eq!(
            report.jobs_admitted,
            report.jobs_completed + report.jobs_shed + report.jobs_deadline_missed,
            "the books must balance under overload"
        );
        assert_eq!(report.alloc.words_in_use, 0, "no leaked bank leases");
    }
    println!("  → low-priority work is shed first; the pool never wedges\n");
    Ok(())
}

/// Command-line knobs: all take decimal or 0x-hex values.
struct DemoArgs {
    /// Seed for the crash-seam chaos campaign.
    chaos_seed: u64,
    /// Seed for the stall-seam hang campaign.
    hang_seed: u64,
    /// Per-job absolute deadline for the hang campaign.
    deadline: u64,
}

fn parse_args() -> Result<DemoArgs, Box<dyn Error>> {
    let mut out = DemoArgs {
        chaos_seed: 0xC4A0_5EED,
        hang_seed: 0x0CEA_4A46,
        deadline: 4_000_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let slot = match flag.as_str() {
            "--chaos-seed" => &mut out.chaos_seed,
            "--hang-seed" => &mut out.hang_seed,
            "--deadline" => &mut out.deadline,
            other => {
                return Err(format!(
                    "unknown argument {other} (supported: --chaos-seed N, --hang-seed N, \
                     --deadline N)"
                )
                .into());
            }
        };
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        *slot = match value.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => value.parse(),
        }
        .map_err(|e| format!("bad {flag} {value}: {e}"))?;
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn Error>> {
    let args = parse_args()?;
    let jobs = workload(0xDA7E_2016);
    println!("ouessant-farm demo: {TOTAL_JOBS} mixed jobs (idct/dft64/copy×3) on a 3-OCP pool\n");
    serve(Box::new(FifoPolicy::new()), &jobs)?;
    serve(Box::new(RoundRobinPolicy::new()), &jobs)?;
    serve(Box::new(DprAffinityPolicy::new()), &jobs)?;
    swap_experiment()?;
    admission_experiment()?;
    chaos_experiment(args.chaos_seed)?;
    liveness_experiment(args.hang_seed, args.deadline)?;
    overload_experiment()
}
