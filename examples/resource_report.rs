//! Regenerates the paper's §V-A resource results: the keep-hierarchy
//! footprint of the OCP with each evaluation accelerator, utilization
//! on the Nexys4's Artix-7, and the 50 MHz timing check.
//!
//! ```text
//! cargo run --example resource_report
//! ```

use ouessant_resources::estimate::ocp_overhead;
use ouessant_resources::{estimate_fmax, estimate_ocp, rac_estimate, Device, OcpParams, RacKind};
use ouessant_sim::Frequency;

fn main() {
    let device = Device::artix7_100t();
    println!("device: {} (Digilent Nexys4)", device.name);
    println!();

    for (name, kind, fifo_depth) in [
        ("2-D IDCT", RacKind::Idct, 64u32),
        ("Spiral DFT-256", RacKind::SpiralDft { points: 256 }, 512),
    ] {
        let params = OcpParams {
            fifo_depth_words: fifo_depth,
            ..OcpParams::default()
        };
        let report = estimate_ocp(&params);
        let rac = rac_estimate(kind);
        let overhead = ocp_overhead(&report);

        println!("=== OCP with {name} RAC (keep hierarchy) ===");
        println!("{report}");
        println!("{:<24} {rac}", format!("rac.{name}"));
        println!();
        println!("OCP overhead (interface + controller + FIFO control):");
        println!("  {overhead}");
        println!(
            "  paper claim: < 1000 LUT, < 750 FF  →  {}",
            if overhead.lut < 1000 && overhead.ff < 750 {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        );
        println!("  utilization: {}", device.utilization(overhead));
        let timing = estimate_fmax(&params);
        println!(
            "  timing: {timing} → {} at 50 MHz",
            if timing.meets(Frequency::mhz(50)) {
                "no timing errors"
            } else {
                "FAILS"
            }
        );
        println!();
    }
}
