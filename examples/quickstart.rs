//! Quickstart: assemble the paper's Figure 4 style microcode, integrate
//! an accelerator behind an Ouessant coprocessor, and run one offload.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_isa::{assemble, disassemble};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_sim::bus::{Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};

const RAM: u32 = 0x4000_0000;
const OCP: u32 = 0x8000_0000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Microcode: the textual syntax of the paper's Figure 4.
    let program = assemble(
        "
        // move 32 words from bank 1 into the accelerator,
        // run it, and move the results into bank 2
        mvtc BANK1,0,DMA32,FIFO0
        execs 32
        mvfc BANK2,0,DMA32,FIFO0
        eop
        ",
    )?;
    println!(
        "microcode ({} instructions):\n{}",
        program.len(),
        disassemble(&program)
    );

    // 2. Platform: an AHB-like bus with SRAM, as on the paper's Leon3.
    let mut bus = Bus::new(BusConfig::default());
    let _cpu = bus.register_master("cpu");
    bus.add_slave(RAM, Sram::with_words(8192, SramConfig::default()));

    // 3. The OCP: here wrapping a simple passthrough accelerator, so the
    //    coprocessor acts as a microcoded memory-to-memory DMA.
    let mut ocp = Ocp::attach(
        &mut bus,
        OCP,
        Box::new(PassthroughRac::new(0)),
        OcpConfig::default(),
    );

    // 4. Host driver work: place program + data, configure banks, start.
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w)?;
    }
    for i in 0..32u32 {
        bus.debug_write(RAM + 0x1000 + i * 4, i * i)?;
    }
    ocp.regs().set_bank(0, RAM)?; // bank 0: microcode
    ocp.regs().set_bank(1, RAM + 0x1000)?; // bank 1: input
    ocp.regs().set_bank(2, RAM + 0x2000)?; // bank 2: output
    ocp.regs().set_prog_size(program.len() as u32)?;
    ocp.regs().start();

    // 5. The coprocessor runs autonomously; the CPU would be free here.
    let mut cycles = 0u64;
    while !ocp.regs().done() {
        ocp.tick(&mut bus);
        bus.tick();
        cycles += 1;
        assert!(cycles < 100_000, "offload should finish quickly");
    }

    println!("offload finished in {cycles} cycles");
    let stats = ocp.stats().controller;
    println!(
        "words transferred: {}   instructions retired: {}",
        stats.words_transferred, stats.instructions_retired
    );
    for i in [0u32, 1, 31] {
        let v = bus.debug_read(RAM + 0x2000 + i * 4)?;
        println!("out[{i:>2}] = {v}");
        assert_eq!(v, i * i);
    }
    println!("ok: results landed in bank 2, untouched by the CPU");
    Ok(())
}
