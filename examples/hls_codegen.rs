//! Interface generation for HLS accelerators (§VI work in progress):
//! emit the VHDL wrapper that binds an HLS core's stream ports to the
//! OCP's FIFO interfaces, and the C driver header for the host side.
//!
//! ```text
//! cargo run --example hls_codegen
//! ```

use ouessant::hls::{c_header, vhdl_wrapper, RacInterfaceSpec};

fn main() -> Result<(), String> {
    // The paper's Figure 2 accelerator: 96-bit operands both ways.
    let spec = RacInterfaceSpec::figure2("dft256");

    println!("==== {}_ouessant_wrapper.vhd ====", spec.name);
    println!("{}", vhdl_wrapper(&spec)?);
    println!("==== {}_ouessant.h ====", spec.name);
    println!("{}", c_header(&spec, 0x8000_0000)?);

    // A multi-FIFO accelerator (samples + tap configuration, like the
    // FIR RAC).
    let fir = RacInterfaceSpec {
        name: "fir_filter".to_string(),
        input_widths: vec![32, 32],
        output_widths: vec![32],
    };
    println!("==== {}_ouessant_wrapper.vhd ====", fir.name);
    println!("{}", vhdl_wrapper(&fir)?);
    Ok(())
}
