//! Software-defined-radio channel scan: repeated 256-point DFTs.
//!
//! The paper's second RAC is the Spiral 256-point DFT. A classic use is
//! spectral scanning in an SDR front end: transform frame after frame
//! of complex baseband samples and look for energy. This example runs
//! a multi-frame scan through the DFT OCP (one offload per frame, as
//! the paper's driver does), finds the occupied bins, and compares
//! against the soft-float software FFT that a Leon3 without FPU would
//! run.
//!
//! ```text
//! cargo run --example sdr_dft
//! ```

use std::f64::consts::PI;

use ouessant_isa::ProgramBuilder;
use ouessant_rac::dft::DftRac;
use ouessant_rac::fixed::{from_q15, to_q15};
use ouessant_sim::{Cycle, Frequency};
use ouessant_soc::cpu::CostModel;
use ouessant_soc::os::OsModel;
use ouessant_soc::soc::{Soc, SocConfig};
use ouessant_soc::sw::sw_fft_f64;

const N: usize = 256;
const FRAMES: usize = 4;
/// The tones hidden in each frame (bin, amplitude).
const TONES: [(usize, f64); 3] = [(20, 0.45), (77, 0.30), (200, 0.20)];

fn frame(seed: usize) -> Vec<(f64, f64)> {
    (0..N)
        .map(|t| {
            let mut re = 0.0;
            let mut im = 0.0;
            for &(bin, amp) in &TONES {
                let phase = 2.0 * PI * (bin * t) as f64 / N as f64 + seed as f64;
                re += amp * phase.cos();
                im += amp * phase.sin();
            }
            (re / 2.0, im / 2.0)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One microcode program, reused for every frame: Figure 4 exactly.
    let program = ProgramBuilder::new()
        .transfer_to_coprocessor(1, 0, (N * 2) as u32, 64, 0)?
        .execs()
        .transfer_from_coprocessor(2, 0, (N * 2) as u32, 64, 0)?
        .eop()
        .finish()?;
    println!(
        "scanning {FRAMES} frames of {N} complex samples ({}-instruction microcode per frame)",
        program.len()
    );

    let mut soc = Soc::new(Box::new(DftRac::new(N)), SocConfig::default());
    let ram = soc.config().ram_base;
    let (prog_at, in_at, out_at) = (ram, ram + 0x4000, ram + 0x1_0000);
    soc.load_words(prog_at, &program.to_words())?;

    let os = OsModel::linux_mmap();
    let clock = Frequency::PAPER_SYSTEM_CLOCK;
    let mut hw_total = 0u64;
    let mut sw_total = 0u64;

    for f in 0..FRAMES {
        let samples = frame(f);
        let words: Vec<u32> = samples
            .iter()
            .flat_map(|&(re, im)| [to_q15(re) as u32, to_q15(im) as u32])
            .collect();
        soc.load_words(in_at, &words)?;
        soc.configure(
            &[(0, prog_at), (1, in_at), (2, out_at)],
            program.len() as u32,
        )?;
        let report = soc.start_and_wait(10_000_000)?;
        hw_total += report.machine_cycles() + os.invocation_overhead(report.words_transferred);

        // Read the spectrum back and pick peaks.
        let out = soc.read_words(out_at, N * 2)?;
        let spectrum: Vec<f64> = out
            .chunks_exact(2)
            .map(|w| {
                let re = from_q15(w[0] as i32);
                let im = from_q15(w[1] as i32);
                (re * re + im * im).sqrt()
            })
            .collect();
        let mut peaks: Vec<(usize, f64)> = spectrum
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0.05)
            .map(|(k, &m)| (k, m))
            .collect();
        peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
        let bins: Vec<usize> = peaks.iter().map(|&(k, _)| k).collect();
        println!("frame {f}: occupied bins {bins:?}");
        for &(bin, _) in &TONES {
            assert!(bins.contains(&bin), "tone at bin {bin} must be detected");
        }

        // The software radio would have burned:
        let float_in = samples.clone();
        let mut cpu = CostModel::leon3();
        let _ = sw_fft_f64(&mut cpu, &float_in);
        sw_total += cpu.cycles();
    }

    println!();
    println!(
        "hardware: {hw_total} cycles = {:?} at {clock}",
        clock.duration_of(Cycle::new(hw_total))
    );
    println!(
        "software: {sw_total} cycles = {:?} (soft-float FFT on the no-FPU Leon3)",
        clock.duration_of(Cycle::new(sw_total))
    );
    println!(
        "scan speedup: {:.1}x (paper's single-transform gain: 85)",
        sw_total as f64 / hw_total as f64
    );
    Ok(())
}
