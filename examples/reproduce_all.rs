//! Regenerates the complete paper evaluation in one run — every table,
//! figure-derived artifact, in-text number and ablation — as a markdown
//! report on stdout (the source of EXPERIMENTS.md's measured column).
//!
//! ```text
//! cargo run --release --example reproduce_all
//! ```

use ouessant_isa::opt::optimize;
use ouessant_isa::{assemble, FIGURE4_SOURCE};
use ouessant_rac::dft::dft_latency;
use ouessant_resources::estimate::ocp_overhead;
use ouessant_resources::{
    dpr_region_estimate, estimate_fmax, estimate_ocp, rac_estimate, Device, OcpParams, RacKind,
};
use ouessant_sim::memory::SramConfig;
use ouessant_sim::Frequency;
use ouessant_soc::app::{dft_experiment, idct_experiment, transfer_experiment, ExperimentConfig};
use ouessant_soc::os::OsModel;
use ouessant_soc::soc::{CompletionMode, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Ouessant reproduction report\n");

    // ---- Table I ----
    println!("## Table I (Linux, mmap driver, 50 MHz)\n");
    println!("| Row | Lat. | HW | SW | Gain | paper |");
    println!("|---|---:|---:|---:|---:|---|");
    let config = ExperimentConfig::paper_linux();
    let idct = idct_experiment(&config)?;
    println!(
        "| IDCT | {} | {} | {} | {:.2} | 18 / 3000 / 5000 / 1.67 |",
        idct.latency, idct.hw_cycles, idct.sw_cycles, idct.gain
    );
    let dft = dft_experiment(&config)?;
    println!(
        "| DFT | {} | {} | {} | {:.2} | 2485 / 7000 / 600k / 85 |",
        dft.latency, dft.hw_cycles, dft.sw_cycles, dft.gain
    );

    // ---- §V-B in-text ----
    println!("\n## §V-B in-text numbers\n");
    let bare = dft_experiment(&ExperimentConfig::paper_baremetal())?;
    println!(
        "- DFT baremetal: **{}** cycles (paper 4000)",
        bare.machine_cycles
    );
    println!(
        "- Linux overhead: **{}** cycles (paper 3000)",
        dft.hw_cycles - bare.hw_cycles
    );
    let transfer = bare.machine_cycles - dft_latency(256);
    println!(
        "- transfer: **{} cycles / {} words = {:.2} cy/word** (paper ~1500, ~1.5)",
        transfer,
        bare.words,
        transfer as f64 / bare.words as f64
    );

    // ---- §V-A resources ----
    println!("\n## §V-A resources (analytical)\n");
    let params = OcpParams::default();
    let overhead = ocp_overhead(&estimate_ocp(&params));
    println!(
        "- OCP overhead: **{} LUT / {} FF** (paper < 1000 / < 750) → {}",
        overhead.lut,
        overhead.ff,
        if overhead.lut < 1000 && overhead.ff < 750 {
            "claim HOLDS"
        } else {
            "claim VIOLATED"
        }
    );
    let timing = estimate_fmax(&params);
    println!(
        "- timing: fmax {} at 50 MHz system clock → {}",
        timing.fmax(),
        if timing.meets(Frequency::mhz(50)) {
            "no timing errors"
        } else {
            "FAILS"
        }
    );
    println!(
        "- utilization on {}: {}",
        Device::artix7_100t().name,
        Device::artix7_100t().utilization(overhead)
    );

    // ---- Ablations ----
    println!("\n## Ablation A1: burst length (cycles/word, 1024 words)\n");
    println!("| burst | cy/word |");
    println!("|---|---:|");
    for burst in [8u16, 16, 32, 64, 128, 256] {
        let r = transfer_experiment(
            &ExperimentConfig {
                burst,
                ..ExperimentConfig::paper_baremetal()
            },
            512,
        )?;
        println!("| DMA{burst} | {:.3} |", r.cycles_per_word());
    }

    println!("\n## Ablation A2: completion mode (DFT baremetal machine cycles)\n");
    for (name, mode) in [
        ("interrupt", CompletionMode::Interrupt),
        ("poll/16", CompletionMode::Polling { interval: 16 }),
        ("poll/1024", CompletionMode::Polling { interval: 1024 }),
    ] {
        let base = ExperimentConfig::paper_baremetal();
        let row = dft_experiment(&ExperimentConfig {
            soc: SocConfig {
                completion: mode,
                ..base.soc
            },
            ..base
        })?;
        println!("- {name}: {} cycles", row.machine_cycles);
    }

    println!("\n## Ablation A3: driver strategy (DFT HW cycles)\n");
    for os in [
        OsModel::Baremetal,
        OsModel::linux_mmap(),
        OsModel::linux_copy(),
    ] {
        let row = dft_experiment(&ExperimentConfig {
            os,
            ..ExperimentConfig::paper_linux()
        })?;
        println!("- {os}: {} cycles (gain {:.1})", row.hw_cycles, row.gain);
    }

    println!("\n## Ablation A4: SRAM wait states (cy/word at DMA64)\n");
    for ws in [0u32, 1, 3, 7] {
        let base = ExperimentConfig::paper_baremetal();
        let r = transfer_experiment(
            &ExperimentConfig {
                soc: SocConfig {
                    sram: SramConfig {
                        first_access_wait_states: ws,
                        sequential_wait_states: 0,
                    },
                    ..base.soc
                },
                ..base
            },
            512,
        )?;
        println!("- {ws} wait states: {:.3} cy/word", r.cycles_per_word());
    }

    println!("\n## Ablation A5: gain vs DFT size (Linux)\n");
    println!("| N | gain |");
    println!("|---:|---:|");
    for n in [16usize, 64, 256, 1024] {
        let row = dft_experiment(&ExperimentConfig {
            dft_points: n,
            burst: 64.min((n * 2) as u16),
            ..ExperimentConfig::paper_linux()
        })?;
        println!("| {n} | {:.1} |", row.gain);
    }

    println!("\n## Ablation A6: DPR area trade-off\n");
    let kinds = [RacKind::Idct, RacKind::SpiralDft { points: 256 }];
    let sum = rac_estimate(kinds[0]) + rac_estimate(kinds[1]);
    let region = dpr_region_estimate(&kinds);
    println!("- two static regions: {sum}");
    println!("- one DPR region:     {region}");

    // ---- Microcode optimizer ----
    println!("\n## Microcode optimizer on Figure 4\n");
    let original = assemble(FIGURE4_SOURCE)?;
    let (optimized, stats) = optimize(&original)?;
    println!(
        "- {} instructions → {} ({} transfers coalesced, {} loops created), same {} words",
        stats.before,
        stats.after,
        stats.coalesced,
        stats.loops_created,
        optimized.static_words_transferred()
    );

    println!("\ndone: every experiment regenerated.");
    Ok(())
}
