//! Dump a VCD waveform of one offload — the behavioural counterpart of
//! the HDL simulation the original project used for bring-up ("once it
//! was functional in simulation, it worked on the board on the first
//! try", §V-B).
//!
//! ```text
//! cargo run --example waveform
//! gtkwave target/ouessant_offload.vcd   # if you have a viewer
//! ```

use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_isa::assemble;
use ouessant_rac::idct::IdctRac;
use ouessant_sim::bus::{Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::vcd::VcdWriter;
use ouessant_sim::Cycle;

const RAM: u32 = 0x4000_0000;
const OCP: u32 = 0x8000_0000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut bus = Bus::new(BusConfig::default());
    let _cpu = bus.register_master("cpu");
    bus.add_slave(RAM, Sram::with_words(8192, SramConfig::default()));
    let mut ocp = Ocp::attach(
        &mut bus,
        OCP,
        Box::new(IdctRac::new()),
        OcpConfig::default(),
    );

    let program = assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop")?;
    for (i, w) in program.to_words().iter().enumerate() {
        bus.debug_write(RAM + (i as u32) * 4, *w)?;
    }
    for i in 0..64u32 {
        bus.debug_write(RAM + 0x1000 + i * 4, (i * 13) % 512)?;
    }
    ocp.regs().set_bank(0, RAM)?;
    ocp.regs().set_bank(1, RAM + 0x1000)?;
    ocp.regs().set_bank(2, RAM + 0x2000)?;
    ocp.regs().set_prog_size(program.len() as u32)?;

    // Declare the signals a hardware engineer would probe.
    let mut vcd = VcdWriter::new("ocp");
    let sig_state = vcd.add_signal("controller_state", 4);
    let sig_pc = vcd.add_signal("pc", 10);
    let sig_busy = vcd.add_signal("rac_busy", 1);
    let sig_done = vcd.add_signal("ctrl_d", 1);
    let sig_in_occ = vcd.add_signal("fifo_in_occupancy", 12);
    let sig_out_occ = vcd.add_signal("fifo_out_occupancy", 12);

    ocp.regs().start();
    let mut cycle = 0u64;
    while !ocp.regs().done() {
        ocp.tick(&mut bus);
        bus.tick();
        let t = Cycle::new(cycle);
        vcd.change(t, sig_state, u64::from(ocp.controller().state().id()));
        vcd.change(t, sig_pc, u64::from(ocp.controller().pc()));
        vcd.change(t, sig_busy, u64::from(ocp.socket().busy()));
        vcd.change(t, sig_done, u64::from(ocp.regs().done()));
        vcd.change(
            t,
            sig_in_occ,
            if ocp.socket().num_inputs() > 0 {
                1024 - ocp.socket().input_space(0)
            } else {
                0
            } as u64,
        );
        vcd.change(t, sig_out_occ, ocp.socket().output_available(0) as u64);
        cycle += 1;
        assert!(cycle < 100_000);
    }

    let path = "target/ouessant_offload.vcd";
    std::fs::write(path, vcd.render())?;
    println!("offload finished in {cycle} cycles");
    println!(
        "waveform with {} signals written to {path}",
        vcd.num_signals()
    );
    Ok(())
}
