//! Processor-free streaming (§VI "standalone operation"): an OCP with
//! its microcode in ROM repeatedly filters frames written into SRAM by
//! a (simulated) ADC front end — no CPU anywhere in the design.
//!
//! ```text
//! cargo run --example standalone_pipeline
//! ```

use ouessant_isa::assemble;
use ouessant_rac::fir::FirRac;
use ouessant_rac::fixed::Q15_ONE;
use ouessant_soc::standalone::StandaloneSystem;

const FRAME: u32 = 64;
const IN_AT: u32 = 0x4000_1000;
const OUT_AT: u32 = 0x4000_8000;
const TAPS_AT: u32 = 0x4000_0800;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Microcode in ROM: load taps into the configuration FIFO (FIFO1),
    // then stream one frame through the filter, forever restartable.
    let program = assemble(&format!(
        "
        mvtc BANK3,0,DMA2,FIFO1      // two filter taps from bank 3
        mvtc BANK1,0,DMA{FRAME},FIFO0
        execs {FRAME}
        mvfc BANK2,0,DMA{FRAME},FIFO0
        eop
        "
    ))?;

    let mut sys = StandaloneSystem::new(
        Box::new(FirRac::new()),
        &program,
        &[(1, IN_AT), (2, OUT_AT), (3, TAPS_AT)],
    );

    // Strap a 2-tap moving-average filter into the taps bank.
    let half = (Q15_ONE / 2) as u32;
    sys.load_words(TAPS_AT, &[half, half])?;

    let mut total_cycles = 0u64;
    for frame_no in 0..4u32 {
        // The "ADC" writes a square wave with frame-dependent amplitude.
        let amplitude = 1000 * (frame_no + 1);
        let samples: Vec<u32> = (0..FRAME)
            .map(|t| if t % 8 < 4 { amplitude } else { 0 })
            .collect();
        sys.load_words(IN_AT, &samples)?;
        let cycles = sys.run_once(1_000_000)?;
        total_cycles += cycles;

        let out = sys.read_words(OUT_AT, FRAME as usize)?;
        // Moving average smooths the square edge: sample 4 (first zero
        // after the high run) becomes amplitude/2.
        assert_eq!(out[4], amplitude / 2, "frame {frame_no}");
        println!(
            "frame {frame_no}: filtered {FRAME} samples in {cycles} cycles \
             (edge smoothed: {} -> {})",
            amplitude, out[4]
        );
    }

    println!();
    println!(
        "{} frames, {} total cycles, {} program runs — and not a single CPU instruction",
        4,
        total_cycles,
        sys.runs()
    );
    Ok(())
}
