//! Regenerates the paper's Table I and the §V-B in-text numbers.
//!
//! ```text
//! cargo run --example table1
//! ```

use ouessant_rac::dft::dft_latency;
use ouessant_soc::app::{dft_experiment, table1, transfer_experiment, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table I: Time results for OCP (Linux, mmap driver, 50 MHz)");
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>8}    paper",
        "", "Lat.", "HW", "SW", "Gain"
    );
    let paper = [
        ("IDCT", 18u64, 3_000u64, 5_000u64, 1.67),
        ("DFT", 2_485, 7_000, 600_000, 85.0),
    ];
    for (row, (pname, plat, phw, psw, pgain)) in table1()?.iter().zip(paper) {
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>8.2}    {pname}: {plat}/{phw}/{psw}/{pgain}",
            row.name, row.latency, row.hw_cycles, row.sw_cycles, row.gain
        );
    }

    println!();
    println!("§V-B in-text results:");
    let bare = dft_experiment(&ExperimentConfig::paper_baremetal())?;
    println!(
        "  DFT without Linux: {} cycles            (paper: 4000)",
        bare.machine_cycles
    );
    let linux = dft_experiment(&ExperimentConfig::paper_linux())?;
    println!(
        "  Linux overhead:    {} cycles            (paper: 3000)",
        linux.hw_cycles - bare.hw_cycles
    );
    let transfer_cycles = bare.machine_cycles.saturating_sub(dft_latency(256));
    println!(
        "  transfer cost:     {} cycles for {} words = {:.2} cy/word (paper: ~1500, ~1.5)",
        transfer_cycles,
        bare.words,
        transfer_cycles as f64 / bare.words as f64
    );
    let t = transfer_experiment(&ExperimentConfig::paper_baremetal(), 512)?;
    println!(
        "  pure DMA (passthrough RAC): {:.2} cy/word end to end",
        t.cycles_per_word()
    );
    Ok(())
}
