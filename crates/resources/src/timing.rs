//! Static timing estimation.
//!
//! The paper's implementations closed timing at 50 MHz: "System clock
//! frequency has been set to 50 MHz for all configurations, and no
//! timing errors were left according to Xilinx tools."
//!
//! The model assigns each OCP pipeline segment a logic depth in LUT
//! levels; with an Artix-7 LUT+route delay of ≈0.9 ns per level plus
//! clocking overhead, the maximum depth determines the achievable
//! frequency.

use std::fmt;

use ouessant_sim::Frequency;

use crate::estimate::OcpParams;

/// Delay per LUT level including average routing, in nanoseconds
/// (Artix-7 -1 speed grade, a conservative figure).
pub const NS_PER_LEVEL: f64 = 0.9;

/// Fixed clocking overhead (clock-to-out + setup), in nanoseconds.
pub const CLOCK_OVERHEAD_NS: f64 = 1.3;

/// A per-path timing summary.
#[derive(Debug, Clone)]
pub struct TimingReport {
    paths: Vec<(String, u32)>,
}

impl TimingReport {
    /// The critical path's name and depth in LUT levels.
    #[must_use]
    pub fn critical_path(&self) -> (&str, u32) {
        let (name, depth) = self
            .paths
            .iter()
            .max_by_key(|(_, d)| *d)
            .expect("report always has paths");
        (name, *depth)
    }

    /// All analyzed paths.
    #[must_use]
    pub fn paths(&self) -> &[(String, u32)] {
        &self.paths
    }

    /// The maximum clock frequency implied by the critical path.
    #[must_use]
    pub fn fmax(&self) -> Frequency {
        let (_, depth) = self.critical_path();
        let period_ns = f64::from(depth) * NS_PER_LEVEL + CLOCK_OVERHEAD_NS;
        Frequency::hz((1.0e9 / period_ns) as u64)
    }

    /// Whether the design closes timing at `clock`.
    #[must_use]
    pub fn meets(&self, clock: Frequency) -> bool {
        self.fmax().as_hz() >= clock.as_hz()
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, depth) = self.critical_path();
        write!(
            f,
            "critical path `{name}` at {depth} levels, fmax {}",
            self.fmax()
        )
    }
}

/// Estimates the OCP's timing paths.
///
/// The translation adder (bank base + offset, 32 bits with carry
/// lookahead in CARRY4 blocks) and the controller's decode+dispatch
/// logic are the two deep paths; FIFO flag logic is shallow.
#[must_use]
pub fn estimate_fmax(p: &OcpParams) -> TimingReport {
    let bank_mux_levels = (32 - (p.num_banks.max(2) - 1).leading_zeros()).div_ceil(2);
    let paths = vec![
        // 32-bit adder ≈ 8 CARRY4 levels ≈ 4 LUT-equivalent levels,
        // behind the bank mux.
        ("interface.xlate".to_string(), 4 + bank_mux_levels),
        ("controller.decode".to_string(), 5),
        ("controller.next_state".to_string(), 4),
        (
            "fifo.flags".to_string(),
            (32 - (p.fifo_depth_words.max(2) - 1).leading_zeros()).div_ceil(3),
        ),
        ("interface.master_fsm".to_string(), 4),
    ];
    TimingReport { paths }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ocp_meets_50mhz() {
        // "no timing errors were left" at 50 MHz.
        let report = estimate_fmax(&OcpParams::default());
        assert!(
            report.meets(Frequency::mhz(50)),
            "fmax {} must exceed 50 MHz",
            report.fmax()
        );
    }

    #[test]
    fn fmax_is_finite_and_plausible() {
        let report = estimate_fmax(&OcpParams::default());
        let mhz = report.fmax().as_hz() / 1_000_000;
        assert!(
            (60..400).contains(&mhz),
            "fmax {mhz} MHz should be a plausible Artix-7 figure"
        );
    }

    #[test]
    fn deeper_fifos_slow_the_flags() {
        let shallow = estimate_fmax(&OcpParams {
            fifo_depth_words: 16,
            ..OcpParams::default()
        });
        let deep = estimate_fmax(&OcpParams {
            fifo_depth_words: 8192,
            ..OcpParams::default()
        });
        let flag_depth = |r: &TimingReport| {
            r.paths()
                .iter()
                .find(|(n, _)| n == "fifo.flags")
                .map(|(_, d)| *d)
                .unwrap()
        };
        assert!(flag_depth(&deep) >= flag_depth(&shallow));
    }

    #[test]
    fn critical_path_is_reported() {
        let report = estimate_fmax(&OcpParams::default());
        let (name, depth) = report.critical_path();
        assert!(!name.is_empty());
        assert!(depth > 0);
        assert!(report.to_string().contains("critical path"));
    }
}
