//! # Analytical FPGA resource and timing estimation
//!
//! The paper's §V-A measures the OCP's hardware footprint by
//! synthesizing each accelerator alone and with the OCP (Xilinx XST,
//! "Keep Hierarchy") on the Nexys4's Artix-7: "the actual OCP
//! implementation consumes a reasonable amount of hardware resources
//! (less than 1000 LUT and 750 FF). This is for all OCP related parts:
//! interface, controller and FIFO control. FIFO memory is inferred as
//! BRAM, and strongly dependent on the accelerator."
//!
//! Rust cannot synthesize HDL, so this crate substitutes an *analytical
//! estimator*: each OCP component gets a parameterized LUT/FF/BRAM/DSP
//! cost derived from its register and mux inventory (the same counting a
//! designer does on the back of an envelope before synthesis). The
//! estimator reproduces the paper's claims structurally:
//!
//! * the keep-hierarchy **per-component breakdown** ([`ResourceReport`]);
//! * the OCP-proper total staying under 1000 LUT / 750 FF;
//! * FIFO **memory** mapping to BRAM, scaling with the accelerator
//!   (DFT ≫ IDCT), while FIFO *control* stays in the OCP budget;
//! * a timing check against the 50 MHz system clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod estimate;
pub mod timing;

pub use device::{Device, Utilization};
pub use estimate::{
    dpr_region_estimate, estimate_ocp, rac_estimate, OcpParams, RacKind, ResourceReport, Resources,
};
pub use timing::{estimate_fmax, TimingReport};
