//! FPGA device capacity models.
//!
//! "Tests have been performed on a Digilent Nexys4 board, based on
//! Xilinx Artix7 LX100T FPGA" — the XC7A100T. [`Device`] holds the
//! capacities; [`Device::utilization`] turns a resource vector into the
//! percentage columns of a synthesis report.

use std::fmt;

use crate::estimate::Resources;

/// An FPGA device's available resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Device name (e.g. `xc7a100t`).
    pub name: String,
    /// Available 6-input LUTs.
    pub lut: u32,
    /// Available flip-flops.
    pub ff: u32,
    /// Available BRAM18 halves.
    pub bram18: u32,
    /// Available DSP48 slices.
    pub dsp: u32,
}

impl Device {
    /// The paper's device: Artix-7 100T on the Digilent Nexys4.
    #[must_use]
    pub fn artix7_100t() -> Self {
        Self {
            name: "xc7a100t".to_string(),
            lut: 63_400,
            ff: 126_800,
            bram18: 270,
            dsp: 240,
        }
    }

    /// A smaller Artix-7 35T (for headroom studies).
    #[must_use]
    pub fn artix7_35t() -> Self {
        Self {
            name: "xc7a35t".to_string(),
            lut: 20_800,
            ff: 41_600,
            bram18: 100,
            dsp: 90,
        }
    }

    /// Utilization of `used` on this device.
    #[must_use]
    pub fn utilization(&self, used: Resources) -> Utilization {
        let pct = |u: u32, avail: u32| {
            if avail == 0 {
                0.0
            } else {
                f64::from(u) * 100.0 / f64::from(avail)
            }
        };
        Utilization {
            lut_pct: pct(used.lut, self.lut),
            ff_pct: pct(used.ff, self.ff),
            bram18_pct: pct(used.bram18, self.bram18),
            dsp_pct: pct(used.dsp, self.dsp),
        }
    }

    /// Whether `used` fits on the device at all.
    #[must_use]
    pub fn fits(&self, used: Resources) -> bool {
        used.lut <= self.lut
            && used.ff <= self.ff
            && used.bram18 <= self.bram18
            && used.dsp <= self.dsp
    }
}

/// Utilization percentages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// LUT utilization in percent.
    pub lut_pct: f64,
    /// FF utilization in percent.
    pub ff_pct: f64,
    /// BRAM18 utilization in percent.
    pub bram18_pct: f64,
    /// DSP utilization in percent.
    pub dsp_pct: f64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.1}%  FF {:.1}%  BRAM {:.1}%  DSP {:.1}%",
            self.lut_pct, self.ff_pct, self.bram18_pct, self.dsp_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{estimate_ocp, ocp_overhead, OcpParams};

    #[test]
    fn ocp_overhead_is_tiny_on_the_papers_device() {
        // "very low footprint": the OCP must be a small fraction of the
        // Artix-7 100T.
        let device = Device::artix7_100t();
        let overhead = ocp_overhead(&estimate_ocp(&OcpParams::default()));
        let u = device.utilization(overhead);
        assert!(u.lut_pct < 2.0, "LUT {:.2}%", u.lut_pct);
        assert!(u.ff_pct < 1.0, "FF {:.2}%", u.ff_pct);
    }

    #[test]
    fn full_ocp_with_dft_fits_both_devices() {
        use crate::estimate::{rac_estimate, RacKind};
        let total = estimate_ocp(&OcpParams {
            fifo_depth_words: 512,
            ..OcpParams::default()
        })
        .total()
            + rac_estimate(RacKind::SpiralDft { points: 256 });
        assert!(Device::artix7_100t().fits(total));
        assert!(Device::artix7_35t().fits(total), "even the 35T has room");
    }

    #[test]
    fn oversized_design_does_not_fit() {
        let device = Device::artix7_35t();
        let huge = Resources::new(1_000_000, 0, 0, 0);
        assert!(!device.fits(huge));
    }

    #[test]
    fn utilization_display() {
        let u = Device::artix7_100t().utilization(Resources::new(634, 1268, 27, 24));
        assert!((u.lut_pct - 1.0).abs() < 0.01);
        assert!((u.ff_pct - 1.0).abs() < 0.01);
        assert!((u.bram18_pct - 10.0).abs() < 0.01);
        assert!(u.to_string().contains("LUT 1.0%"));
    }
}
