//! Per-component resource estimation.
//!
//! Counting rules (documented so the numbers are auditable):
//!
//! * every architectural register bit costs 1 FF;
//! * an `n`-bit 2:1 mux or adder costs `n` LUTs; a `k`-way word mux
//!   costs `⌈k/2⌉·32` LUTs (6-input LUTs pack two 2:1 legs);
//! * an FSM with `s` states and `t` transition terms costs
//!   `⌈log2 s⌉` FFs and `≈ 4·s + 2·t` LUTs of next-state/output logic;
//! * memories of more than 4 Kibit are inferred as BRAM18 blocks
//!   (18 Kibit each), smaller ones as LUT-RAM (1 LUT per 64 bits).

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A resource vector: the columns of a Xilinx utilization report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// 6-input look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// 18 Kibit block-RAM halves (a RAMB36 counts as two).
    pub bram18: u32,
    /// DSP48 slices.
    pub dsp: u32,
}

impl Resources {
    /// A zero vector.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Convenience constructor.
    #[must_use]
    pub fn new(lut: u32, ff: u32, bram18: u32, dsp: u32) -> Self {
        Self {
            lut,
            ff,
            bram18,
            dsp,
        }
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram18: self.bram18 + rhs.bram18,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::zero(), Add::add)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>5} LUT {:>5} FF {:>3} BRAM18 {:>3} DSP",
            self.lut, self.ff, self.bram18, self.dsp
        )
    }
}

/// A keep-hierarchy style report: one line per component.
#[derive(Debug, Clone, Default)]
pub struct ResourceReport {
    components: Vec<(String, Resources)>,
}

impl ResourceReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component line.
    pub fn push(&mut self, name: &str, r: Resources) {
        self.components.push((name.to_string(), r));
    }

    /// The component lines, in insertion order.
    #[must_use]
    pub fn components(&self) -> &[(String, Resources)] {
        &self.components
    }

    /// Looks a component up by name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<Resources> {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
    }

    /// The report total.
    #[must_use]
    pub fn total(&self) -> Resources {
        self.components.iter().map(|(_, r)| *r).sum()
    }

    /// Sum of the components whose name passes `filter`.
    #[must_use]
    pub fn subtotal(&self, filter: impl Fn(&str) -> bool) -> Resources {
        self.components
            .iter()
            .filter(|(n, _)| filter(n))
            .map(|(_, r)| *r)
            .sum()
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, r) in &self.components {
            writeln!(f, "{name:<24} {r}")?;
        }
        write!(f, "{:<24} {}", "TOTAL", self.total())
    }
}

/// Parameters of an OCP instantiation (what the VHDL generics would be).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcpParams {
    /// Number of memory banks (8 in the paper's interface).
    pub num_banks: u32,
    /// Number of input FIFO interfaces.
    pub num_input_fifos: u32,
    /// Number of output FIFO interfaces.
    pub num_output_fifos: u32,
    /// FIFO depth in 32-bit words (BRAM side).
    pub fifo_depth_words: u32,
    /// Accelerator-side FIFO width in bits (32 in the simple case,
    /// 96 in Figure 2).
    pub fifo_width_bits: u32,
    /// Program store size in instructions.
    pub program_store_words: u32,
}

impl Default for OcpParams {
    fn default() -> Self {
        Self {
            num_banks: 8,
            num_input_fifos: 1,
            num_output_fifos: 1,
            fifo_depth_words: 512,
            fifo_width_bits: 32,
            program_store_words: 1024,
        }
    }
}

fn fsm(states: u32, terms: u32) -> Resources {
    let ff = 32 - (states.max(2) - 1).leading_zeros();
    Resources::new(4 * states + 2 * terms, ff, 0, 0)
}

fn memory_bits(bits: u32) -> Resources {
    // Xilinx infers distributed (LUT) RAM below a few Kibit and BRAM18
    // above; 4 Kibit is the usual crossover for synchronous FIFOs.
    if bits > 4096 {
        Resources::new(0, 0, bits.div_ceil(18 * 1024), 0)
    } else {
        Resources::new(bits.div_ceil(64), 0, 0, 0)
    }
}

/// Estimates the OCP-proper components (interface, controller, FIFO
/// control) plus the FIFO and program memories, as a keep-hierarchy
/// report.
#[must_use]
pub fn estimate_ocp(p: &OcpParams) -> ResourceReport {
    let mut report = ResourceReport::new();

    // --- Interface (Figure 3) ---
    // Register file: 10 x 32-bit registers + read mux + write decode.
    let regs = Resources::new(
        (2 + p.num_banks).div_ceil(2) * 32 + 40,
        (2 + p.num_banks) * 32,
        0,
        0,
    );
    // Address translation: bank mux + 32-bit adder.
    let xlate = Resources::new(p.num_banks.div_ceil(2) * 32 + 32, 0, 0, 0);
    // Slave FSM (4 states) and master FSM (6 states incl. burst
    // sequencing) + burst counters.
    let slave_fsm = fsm(4, 12);
    let master_fsm = fsm(6, 24) + Resources::new(16, 24, 0, 0);
    report.push("interface.regs", regs);
    report.push("interface.xlate", xlate);
    report.push("interface.slave_fsm", slave_fsm);
    report.push("interface.master_fsm", master_fsm);

    // --- Controller (§III-D) ---
    // Fetch/decode/execute FSM (11 states), instruction register, pc,
    // 4 loop counters + 4 offset registers (14 bits each).
    let ctrl_fsm = fsm(11, 40);
    let ctrl_regs = Resources::new(60, 32 + 10 + 8 * 14, 0, 0);
    let decoder = Resources::new(90, 0, 0, 0);
    report.push("controller.fsm", ctrl_fsm);
    report.push("controller.regs", ctrl_regs);
    report.push("controller.decoder", decoder);
    report.push(
        "controller.prog_store",
        memory_bits(p.program_store_words * 32),
    );

    // --- FIFO control (Figure 2) ---
    // Per FIFO: read/write pointers, occupancy counter, full/empty
    // logic; width adapters add a shift/packing register.
    let ptr_bits = 32 - (p.fifo_depth_words.max(2) - 1).leading_zeros();
    let per_fifo_ctrl = Resources::new(20 + 2 * ptr_bits, 3 * ptr_bits + 2, 0, 0);
    let adapter = if p.fifo_width_bits != 32 {
        Resources::new(p.fifo_width_bits, p.fifo_width_bits, 0, 0)
    } else {
        Resources::zero()
    };
    let n_fifos = p.num_input_fifos + p.num_output_fifos;
    let mut fifo_ctrl = Resources::zero();
    for _ in 0..n_fifos {
        fifo_ctrl = fifo_ctrl + per_fifo_ctrl + adapter;
    }
    report.push("fifo.control", fifo_ctrl);

    // --- FIFO memory (BRAM, "strongly dependent on the accelerator") ---
    let fifo_mem: Resources = (0..n_fifos)
        .map(|_| memory_bits(p.fifo_depth_words * p.fifo_width_bits.max(32)))
        .sum();
    report.push("fifo.memory", fifo_mem);

    report
}

/// The accelerators whose synthesis footprints the estimator knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RacKind {
    /// The paper's 2-D IDCT for JPEG decoding.
    Idct,
    /// A Spiral-generated iterative DFT of the given size.
    SpiralDft {
        /// Transform size in complex points.
        points: u32,
    },
    /// A streaming FIR filter with the given tap count.
    Fir {
        /// Number of taps.
        taps: u32,
    },
    /// A pass-through pipe (negligible logic).
    Passthrough,
}

/// Footprint of the accelerator itself ("independent from Ouessant").
#[must_use]
pub fn rac_estimate(kind: RacKind) -> Resources {
    match kind {
        // A pipelined 2-D IDCT: two 1-D passes of adders plus constant
        // multipliers in DSP, transpose memory in BRAM.
        RacKind::Idct => Resources::new(2400, 1900, 2, 6),
        // Spiral iterative core: butterfly datapath in DSP, twiddle ROM
        // and working memory in BRAM, grows with log2(N).
        RacKind::SpiralDft { points } => {
            let stages = 32 - (points.max(2) - 1).leading_zeros();
            Resources::new(
                1200 + 180 * stages,
                1000 + 150 * stages,
                2 + (points * 32).div_ceil(18 * 1024) * 2,
                4,
            )
        }
        RacKind::Fir { taps } => Resources::new(150 + 20 * taps, 120 + 16 * taps, 0, taps.min(64)),
        RacKind::Passthrough => Resources::new(24, 16, 0, 0),
    }
}

/// Resources of a dynamically reconfigurable region able to host any of
/// `kinds` (the paper's §VI DPR work in progress): the element-wise
/// maxima over the candidate accelerators, plus partial-reconfiguration
/// overhead — bus decoupling logic on the region boundary and the
/// placement fragmentation a rectangular Pblock imposes (≈12 %).
#[must_use]
pub fn dpr_region_estimate(kinds: &[RacKind]) -> Resources {
    let max = kinds.iter().fold(Resources::zero(), |acc, &k| {
        let r = rac_estimate(k);
        Resources::new(
            acc.lut.max(r.lut),
            acc.ff.max(r.ff),
            acc.bram18.max(r.bram18),
            acc.dsp.max(r.dsp),
        )
    });
    let decouple = Resources::new(40, 30, 0, 0);
    Resources::new(
        max.lut + max.lut / 8 + decouple.lut,
        max.ff + max.ff / 8 + decouple.ff,
        max.bram18,
        max.dsp,
    )
}

/// Everything that is *Ouessant overhead* in a keep-hierarchy report:
/// interface + controller + FIFO control (the paper's "all OCP related
/// parts"), excluding FIFO/program memories (BRAM) and the RAC.
#[must_use]
pub fn ocp_overhead(report: &ResourceReport) -> Resources {
    report.subtotal(|name| {
        name.starts_with("interface.")
            || name == "controller.fsm"
            || name == "controller.regs"
            || name == "controller.decoder"
            || name == "fifo.control"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footprint_claim_holds() {
        // §V-A: "less than 1000 LUT and 750 FF … for all OCP related
        // parts: interface, controller and FIFO control."
        let report = estimate_ocp(&OcpParams::default());
        let overhead = ocp_overhead(&report);
        assert!(
            overhead.lut < 1000,
            "OCP overhead {} LUT must stay under 1000",
            overhead.lut
        );
        assert!(
            overhead.ff < 750,
            "OCP overhead {} FF must stay under 750",
            overhead.ff
        );
        assert!(overhead.lut > 300, "a real OCP is not free either");
    }

    #[test]
    fn fifo_memory_is_bram() {
        let report = estimate_ocp(&OcpParams::default());
        let mem = report.component("fifo.memory").unwrap();
        assert!(mem.bram18 > 0, "FIFO memory is inferred as BRAM");
        assert_eq!(mem.lut, 0);
        let overhead = ocp_overhead(&report);
        assert_eq!(overhead.bram18, 0, "OCP-proper logic uses no BRAM");
    }

    #[test]
    fn idct_and_dft_differ_only_in_fifo_and_rac() {
        // §V-A: "IDCT and DFT gives similar results except for the FIFO
        // size and the RAC."
        let idct_params = OcpParams {
            fifo_depth_words: 64,
            ..OcpParams::default()
        };
        let dft_params = OcpParams {
            fifo_depth_words: 512,
            ..OcpParams::default()
        };
        let idct = estimate_ocp(&idct_params);
        let dft = estimate_ocp(&dft_params);
        // Interface and controller identical.
        for name in [
            "interface.regs",
            "interface.xlate",
            "interface.slave_fsm",
            "interface.master_fsm",
            "controller.fsm",
            "controller.regs",
            "controller.decoder",
        ] {
            assert_eq!(idct.component(name), dft.component(name), "{name}");
        }
        // FIFO memory differs.
        assert!(
            dft.component("fifo.memory").unwrap().bram18
                > idct.component("fifo.memory").unwrap().bram18
        );
        // And the RACs differ a lot.
        let idct_rac = rac_estimate(RacKind::Idct);
        let dft_rac = rac_estimate(RacKind::SpiralDft { points: 256 });
        assert_ne!(idct_rac, dft_rac);
    }

    #[test]
    fn dft_grows_with_size() {
        let small = rac_estimate(RacKind::SpiralDft { points: 64 });
        let large = rac_estimate(RacKind::SpiralDft { points: 1024 });
        assert!(large.lut > small.lut);
        assert!(large.bram18 >= small.bram18);
    }

    #[test]
    fn more_fifos_cost_more_control() {
        let one = estimate_ocp(&OcpParams::default());
        let many = estimate_ocp(&OcpParams {
            num_input_fifos: 3,
            num_output_fifos: 2,
            ..OcpParams::default()
        });
        assert!(
            many.component("fifo.control").unwrap().lut
                > one.component("fifo.control").unwrap().lut
        );
    }

    #[test]
    fn width_adapters_add_logic() {
        let narrow = estimate_ocp(&OcpParams::default());
        let wide = estimate_ocp(&OcpParams {
            fifo_width_bits: 96,
            ..OcpParams::default()
        });
        assert!(
            wide.component("fifo.control").unwrap().lut
                > narrow.component("fifo.control").unwrap().lut
        );
        assert!(
            wide.component("fifo.memory").unwrap().bram18
                >= narrow.component("fifo.memory").unwrap().bram18
        );
    }

    #[test]
    fn report_total_is_component_sum() {
        let report = estimate_ocp(&OcpParams::default());
        let manual: Resources = report.components().iter().map(|(_, r)| *r).sum();
        assert_eq!(report.total(), manual);
    }

    #[test]
    fn report_display_lists_components() {
        let report = estimate_ocp(&OcpParams::default());
        let text = report.to_string();
        assert!(text.contains("interface.regs"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn dpr_region_smaller_than_two_static_racs() {
        // The whole point of DPR: one region sized for the max beats two
        // dedicated regions sized for the sum.
        let kinds = [RacKind::Idct, RacKind::SpiralDft { points: 256 }];
        let region = dpr_region_estimate(&kinds);
        let sum = rac_estimate(kinds[0]) + rac_estimate(kinds[1]);
        assert!(region.lut < sum.lut);
        assert!(region.ff < sum.ff);
        // And it must of course hold the larger of the two.
        let max_lut = rac_estimate(kinds[0]).lut.max(rac_estimate(kinds[1]).lut);
        assert!(region.lut >= max_lut);
    }

    #[test]
    fn resources_arithmetic() {
        let a = Resources::new(1, 2, 3, 4);
        let b = Resources::new(10, 20, 30, 40);
        assert_eq!(a + b, Resources::new(11, 22, 33, 44));
        let s: Resources = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
    }
}
