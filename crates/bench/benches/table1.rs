//! **Table I** — "Time results for OCP".
//!
//! Paper (Linux, 50 MHz):
//!
//! ```text
//!        Lat.   HW     SW       Gain
//! IDCT   18     3000   5000     1.67
//! DFT    2485   7000   600·10³  85
//! ```
//!
//! The bench prints the reproduced rows once, then lets criterion time
//! the two full-system simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use ouessant_bench::print_once;
use ouessant_soc::app::{dft_experiment, idct_experiment, ExperimentConfig};

fn print_table() {
    print_once("Table I: Time results for OCP (Linux, mmap driver)", || {
        let config = ExperimentConfig::paper_linux();
        println!("{:<6} {:>8} {:>10} {:>10} {:>8}   (paper: Lat/HW/SW/Gain)", "", "Lat.", "HW", "SW", "Gain");
        let idct = idct_experiment(&config).expect("idct experiment");
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>8.2}   (18 / 3000 / 5000 / 1.67)",
            idct.name, idct.latency, idct.hw_cycles, idct.sw_cycles, idct.gain
        );
        let dft = dft_experiment(&config).expect("dft experiment");
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>8.2}   (2485 / 7000 / 600000 / 85)",
            dft.name, dft.latency, dft.hw_cycles, dft.sw_cycles, dft.gain
        );
    });
}

fn bench_table1(c: &mut Criterion) {
    print_table();
    let config = ExperimentConfig::paper_linux();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("idct_row", |b| {
        b.iter(|| idct_experiment(&config).expect("idct experiment"));
    });
    group.bench_function("dft_row", |b| {
        b.iter(|| dft_experiment(&config).expect("dft experiment"));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
