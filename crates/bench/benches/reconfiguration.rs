//! **Ablation A6** — dynamic partial reconfiguration (§VI work in
//! progress).
//!
//! One reconfigurable region hosting several accelerators saves area
//! (see `dpr_region_estimate`) but charges a bitstream-load latency on
//! every swap. The ablation sweeps the batch size between swaps to show
//! the amortization curve, and prints the area trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ouessant_bench::print_once;
use ouessant_isa::ProgramBuilder;
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::slot::ReconfigurableSlot;
use ouessant_resources::{dpr_region_estimate, rac_estimate, RacKind};
use ouessant_soc::soc::{Soc, SocConfig};

const BITSTREAM_BYTES: u64 = 32 * 1024; // 8192-cycle swap latency

fn slot() -> ReconfigurableSlot {
    ReconfigurableSlot::new()
        .with_config(Box::new(PassthroughRac::new(0)), BITSTREAM_BYTES)
        .with_config(Box::new(PassthroughRac::scaling(3, 0)), BITSTREAM_BYTES)
}

/// Processes `phases` alternating phases of `blocks_per_phase` 16-word
/// blocks, reconfiguring between phases; returns total cycles.
fn run_phases(phases: u16, blocks_per_phase: u16) -> u64 {
    let mut b = ProgramBuilder::new();
    for phase in 0..phases {
        b = b.rcfg(phase % 2);
        b = b.ldo(0, 0).expect("reg 0 valid");
        b = b.ldo(1, 0).expect("reg 1 valid");
        b = b.ldc(0, blocks_per_phase).expect("counter 0 valid");
        let loop_top = b.here();
        b = b.mvtcr(1, 0, 16, 0).expect("operands valid");
        b = b.execs_op(16);
        b = b.mvfcr(2, 1, 16, 0).expect("operands valid");
        b = b.djnz(0, loop_top).expect("target valid");
    }
    let program = b.eop().finish().expect("valid program");

    let mut soc = Soc::new(Box::new(slot()), SocConfig::default());
    let ram = soc.config().ram_base;
    soc.load_words(ram, &program.to_words()).unwrap();
    let input: Vec<u32> = (0..u32::from(blocks_per_phase) * 16).collect();
    soc.load_words(ram + 0x4000, &input).unwrap();
    soc.configure(
        &[(0, ram), (1, ram + 0x4000), (2, ram + 0x2_0000)],
        program.len() as u32,
    )
    .unwrap();
    soc.start_and_wait(100_000_000).unwrap().run_cycles
}

fn print_table() {
    print_once("DPR ablation: swap amortization and area trade-off", || {
        println!("area: two static regions vs one reconfigurable region");
        let kinds = [RacKind::Idct, RacKind::SpiralDft { points: 256 }];
        let sum = rac_estimate(kinds[0]) + rac_estimate(kinds[1]);
        let region = dpr_region_estimate(&kinds);
        println!("  static IDCT + DFT: {sum}");
        println!("  DPR region (max):  {region}");
        println!();
        println!(
            "{:>16} {:>12} {:>14}",
            "blocks/phase", "cycles", "cy/block"
        );
        for blocks in [1u16, 2, 4, 8, 16] {
            let cycles = run_phases(4, blocks);
            println!(
                "{blocks:>16} {cycles:>12} {:>14.1}",
                cycles as f64 / f64::from(4 * blocks)
            );
        }
        println!("(4 phases, one {BITSTREAM_BYTES}-byte bitstream load between phases)");
    });
}

fn bench_reconfiguration(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("reconfiguration");
    group.sample_size(10);
    for blocks in [1u16, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                b.iter(|| run_phases(4, blocks));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reconfiguration);
criterion_main!(benches);
