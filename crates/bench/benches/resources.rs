//! **§V-A** — hardware footprint.
//!
//! Paper: "the actual OCP implementation consumes a reasonable amount
//! of hardware resources (less than 1000 LUT and 750 FF). This is for
//! all OCP related parts: interface, controller and FIFO control. FIFO
//! memory is inferred as BRAM … IDCT and DFT gives similar results
//! except for the FIFO size and the RAC."
//!
//! Prints the keep-hierarchy report for both evaluation accelerators
//! and benchmarks the estimator itself (trivially fast — included so
//! every experiment has a bench target).

use criterion::{criterion_group, criterion_main, Criterion};
use ouessant_bench::print_once;
use ouessant_resources::estimate::ocp_overhead;
use ouessant_resources::{estimate_fmax, estimate_ocp, rac_estimate, Device, OcpParams, RacKind};

fn params_for(kind: RacKind) -> OcpParams {
    match kind {
        RacKind::Idct => OcpParams {
            fifo_depth_words: 64,
            ..OcpParams::default()
        },
        RacKind::SpiralDft { .. } => OcpParams {
            fifo_depth_words: 512,
            ..OcpParams::default()
        },
        _ => OcpParams::default(),
    }
}

fn print_report() {
    print_once(
        "§V-A: OCP hardware footprint (keep-hierarchy) — paper: <1000 LUT, <750 FF",
        || {
            let device = Device::artix7_100t();
            for (name, kind) in [
                ("IDCT", RacKind::Idct),
                ("DFT-256", RacKind::SpiralDft { points: 256 }),
            ] {
                let params = params_for(kind);
                let report = estimate_ocp(&params);
                let overhead = ocp_overhead(&report);
                let rac = rac_estimate(kind);
                println!("--- OCP with {name} RAC ---");
                println!("{report}");
                println!("RAC ({name})             {rac}");
                println!(
                    "OCP overhead (interface+controller+fifo ctrl): {overhead}  → {}",
                    device.utilization(overhead)
                );
                let timing = estimate_fmax(&params);
                println!("{timing} (system clock: 50 MHz)");
                println!();
            }
        },
    );
}

fn bench_resources(c: &mut Criterion) {
    print_report();
    let mut group = c.benchmark_group("resources");
    group.bench_function("estimate_ocp", |b| {
        let params = OcpParams::default();
        b.iter(|| estimate_ocp(&params));
    });
    group.bench_function("estimate_fmax", |b| {
        let params = OcpParams::default();
        b.iter(|| estimate_fmax(&params));
    });
    group.finish();
}

criterion_group!(benches, bench_resources);
criterion_main!(benches);
