//! **§V-B in-text result + Ablation A1** — transfer efficiency.
//!
//! Paper: "we have roughly 1500 cycles needed for data transfer, and
//! 1024 32-bits words to transfer. This means that around 1.5 cycles
//! per word were required, which is quite a good result."
//!
//! The ablation sweeps the DMA burst length (the paper's microcode uses
//! `DMA64`) to show why: short bursts re-pay arbitration and the
//! SRAM's first-access wait states on every chunk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ouessant_bench::print_once;
use ouessant_soc::app::{transfer_experiment, ExperimentConfig};

const BURSTS: [u16; 6] = [8, 16, 32, 64, 128, 256];
const WORDS_EACH_WAY: u32 = 512; // the DFT workload's transfer size

fn config_with_burst(burst: u16) -> ExperimentConfig {
    ExperimentConfig {
        burst,
        ..ExperimentConfig::paper_baremetal()
    }
}

fn print_table() {
    print_once(
        "Transfer efficiency (cycles/word) vs DMA burst length — paper: ~1.5 cy/word at DMA64",
        || {
            println!("{:>8} {:>12} {:>12} {:>12}", "burst", "cycles", "words", "cy/word");
            for burst in BURSTS {
                let r = transfer_experiment(&config_with_burst(burst), WORDS_EACH_WAY)
                    .expect("transfer experiment");
                println!(
                    "{:>8} {:>12} {:>12} {:>12.3}",
                    format!("DMA{burst}"),
                    r.machine_cycles,
                    r.words,
                    r.cycles_per_word()
                );
            }
        },
    );
}

fn bench_transfer(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("transfer_efficiency");
    group.sample_size(10);
    for burst in [8u16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(burst), &burst, |b, &burst| {
            let config = config_with_burst(burst);
            b.iter(|| transfer_experiment(&config, WORDS_EACH_WAY).expect("transfer experiment"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
