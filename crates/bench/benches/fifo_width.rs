//! **Figure 2** — variable-width serializing/deserializing FIFOs.
//!
//! The figure shows 32-bit bus words deserialized into 96-bit
//! accelerator operands and back. This bench exercises the width
//! adapters at several widths (throughput of the conversion machinery)
//! and prints the word-count bookkeeping that makes the 32 ↔ 96
//! arrangement work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ouessant_bench::print_once;
use ouessant_sim::WidthAdapter;

fn pump(in_width: u32, out_width: u32, words: usize) -> usize {
    let mut adapter = WidthAdapter::new("bench", in_width, out_width, 8192);
    let mut out_count = 0;
    for i in 0..words {
        if adapter.is_full() {
            while let Some(_w) = adapter.pop() {
                out_count += 1;
            }
        }
        adapter.push(i as u128).expect("drained when full");
    }
    while let Some(_w) = adapter.pop() {
        out_count += 1;
    }
    out_count
}

fn print_table() {
    print_once("Figure 2: 32 ↔ 96-bit serializing FIFO bookkeeping", || {
        println!("{:>8} {:>8} {:>10} {:>10}", "in", "out", "pushed", "popped");
        for (iw, ow) in [(32u32, 96u32), (96, 32), (32, 32), (8, 24), (32, 128)] {
            let popped = pump(iw, ow, 384);
            println!("{iw:>8} {ow:>8} {:>10} {popped:>10}", 384);
        }
    });
}

fn bench_fifo_width(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fifo_width");
    for (iw, ow) in [(32u32, 96u32), (96, 32), (32, 32)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{iw}to{ow}")),
            &(iw, ow),
            |b, &(iw, ow)| {
                b.iter(|| pump(iw, ow, 3 * 1024));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fifo_width);
criterion_main!(benches);
