//! **§V-B in-text result + Ablation A3** — OS overhead and driver
//! strategy.
//!
//! Paper: "When running it without Linux, the DFT took 4000 cycles to
//! compute, which gives an overhead of 3000 cycles coming from Linux.
//! This comes from system calls." §IV argues for the mmap (zero-copy)
//! driver over a copying one; the ablation quantifies that choice.

use criterion::{criterion_group, criterion_main, Criterion};
use ouessant_bench::print_once;
use ouessant_soc::app::{dft_experiment, ExperimentConfig};
use ouessant_soc::os::OsModel;

fn config_with_os(os: OsModel) -> ExperimentConfig {
    ExperimentConfig {
        os,
        ..ExperimentConfig::paper_linux()
    }
}

fn print_table() {
    print_once(
        "OS / driver overhead on the 256-pt DFT offload — paper: baremetal 4000, Linux 7000",
        || {
            println!(
                "{:<24} {:>10} {:>10} {:>10}",
                "environment", "machine", "overhead", "HW total"
            );
            for os in [OsModel::Baremetal, OsModel::linux_mmap(), OsModel::linux_copy()] {
                let row = dft_experiment(&config_with_os(os)).expect("dft experiment");
                println!(
                    "{:<24} {:>10} {:>10} {:>10}",
                    os.to_string(),
                    row.machine_cycles,
                    row.os_overhead,
                    row.hw_cycles
                );
            }
        },
    );
}

fn bench_overhead(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("linux_overhead");
    group.sample_size(10);
    group.bench_function("baremetal", |b| {
        let config = config_with_os(OsModel::Baremetal);
        b.iter(|| dft_experiment(&config).expect("dft experiment"));
    });
    group.bench_function("linux_mmap", |b| {
        let config = config_with_os(OsModel::linux_mmap());
        b.iter(|| dft_experiment(&config).expect("dft experiment"));
    });
    group.bench_function("linux_copy", |b| {
        let config = config_with_os(OsModel::linux_copy());
        b.iter(|| dft_experiment(&config).expect("dft experiment"));
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
