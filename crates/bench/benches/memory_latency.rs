//! **Ablation A4** — sensitivity to memory wait states.
//!
//! The paper's ≈1.5 cycles/word depends on the Nexys4's external SRAM
//! timing. This ablation sweeps the SRAM's first-access wait states to
//! show how the transfer efficiency (and with it the whole HW column)
//! degrades on slower memories — the motivation for burst transfers in
//! the first place.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ouessant_bench::print_once;
use ouessant_sim::memory::SramConfig;
use ouessant_soc::app::{transfer_experiment, ExperimentConfig};
use ouessant_soc::soc::SocConfig;

fn config_with_sram(first: u32, sequential: u32) -> ExperimentConfig {
    let base = ExperimentConfig::paper_baremetal();
    ExperimentConfig {
        soc: SocConfig {
            sram: SramConfig {
                first_access_wait_states: first,
                sequential_wait_states: sequential,
            },
            ..base.soc
        },
        ..base
    }
}

fn print_table() {
    print_once("Transfer efficiency vs SRAM wait states (DMA64, 1024 words)", || {
        println!(
            "{:>10} {:>10} {:>12} {:>10}",
            "first ws", "seq ws", "cycles", "cy/word"
        );
        for (first, seq) in [(0, 0), (1, 0), (3, 0), (7, 0), (3, 1), (3, 3)] {
            let r = transfer_experiment(&config_with_sram(first, seq), 512)
                .expect("transfer experiment");
            println!(
                "{first:>10} {seq:>10} {:>12} {:>10.3}",
                r.machine_cycles,
                r.cycles_per_word()
            );
        }
    });
}

fn bench_memory_latency(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("memory_latency");
    group.sample_size(10);
    for first in [0u32, 3, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(first), &first, |b, &first| {
            let config = config_with_sram(first, 0);
            b.iter(|| transfer_experiment(&config, 512).expect("transfer experiment"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory_latency);
criterion_main!(benches);
