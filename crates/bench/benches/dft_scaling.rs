//! **Ablation A5** — gain versus DFT size.
//!
//! The paper evaluates only N = 256 ("limited to the available FPGA
//! size") but the Spiral core "can be configured to accept different
//! DFT size". Sweeping N shows where hardware offload starts paying:
//! the software FFT is O(N log N) in *soft-float* operations while the
//! offload cost is dominated by transfers (O(N)) plus a fixed overhead,
//! so the gain grows with N and the crossover sits at small sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ouessant_bench::print_once;
use ouessant_soc::app::{dft_experiment, ExperimentConfig};

const SIZES: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];

fn config_with_points(points: usize) -> ExperimentConfig {
    ExperimentConfig {
        dft_points: points,
        // Burst must not exceed the transfer size for tiny DFTs.
        burst: 64.min((points * 2) as u16),
        ..ExperimentConfig::paper_linux()
    }
}

fn print_table() {
    print_once("DFT offload gain vs transform size (Linux/mmap) — paper: 85 at N=256", || {
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>8}",
            "N", "Lat.", "HW", "SW", "Gain"
        );
        for n in SIZES {
            let row = dft_experiment(&config_with_points(n)).expect("dft experiment");
            println!(
                "{n:>6} {:>8} {:>10} {:>10} {:>8.2}",
                row.latency, row.hw_cycles, row.sw_cycles, row.gain
            );
        }
    });
}

fn bench_scaling(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("dft_scaling");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let config = config_with_points(n);
            b.iter(|| dft_experiment(&config).expect("dft experiment"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
