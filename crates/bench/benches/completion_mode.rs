//! **Ablation A2** — interrupt versus polling completion.
//!
//! The paper's interface provides both: the IE bit enables the
//! interrupt; without it the CPU polls the D bit. Polling costs bus
//! bandwidth (contention with the OCP's own DMA) and adds detection
//! latency of up to one polling interval.

use criterion::{criterion_group, criterion_main, Criterion};
use ouessant_bench::print_once;
use ouessant_soc::app::{dft_experiment, ExperimentConfig};
use ouessant_soc::soc::{CompletionMode, SocConfig};

fn config_with_completion(completion: CompletionMode) -> ExperimentConfig {
    let base = ExperimentConfig::paper_baremetal();
    ExperimentConfig {
        soc: SocConfig {
            completion,
            ..base.soc
        },
        ..base
    }
}

fn print_table() {
    print_once(
        "Completion signalling on the 256-pt DFT offload (baremetal)",
        || {
            println!("{:<22} {:>12}", "mode", "machine cyc");
            let modes: [(&str, CompletionMode); 4] = [
                ("interrupt", CompletionMode::Interrupt),
                ("poll every 16", CompletionMode::Polling { interval: 16 }),
                ("poll every 128", CompletionMode::Polling { interval: 128 }),
                ("poll every 1024", CompletionMode::Polling { interval: 1024 }),
            ];
            for (name, mode) in modes {
                let row = dft_experiment(&config_with_completion(mode)).expect("dft experiment");
                println!("{name:<22} {:>12}", row.machine_cycles);
            }
        },
    );
}

fn bench_completion(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("completion_mode");
    group.sample_size(10);
    group.bench_function("interrupt", |b| {
        let config = config_with_completion(CompletionMode::Interrupt);
        b.iter(|| dft_experiment(&config).expect("dft experiment"));
    });
    group.bench_function("polling_16", |b| {
        let config = config_with_completion(CompletionMode::Polling { interval: 16 });
        b.iter(|| dft_experiment(&config).expect("dft experiment"));
    });
    group.finish();
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
