//! Shared helpers for the Ouessant benchmark harness.
//!
//! The primary entry point is the `ouessant-bench` binary
//! (`src/main.rs`), a dependency-free wall-time harness that runs farm
//! campaigns in both stepping modes and emits `BENCH_farm.json`.
//!
//! The criterion bench sources under `benches/` each regenerate one
//! table, figure or in-text result of the DATE 2016 paper (see
//! DESIGN.md §4 for the experiment index); they are kept as reference
//! but not built offline (see the note in `Cargo.toml`). Criterion
//! measures the *simulator's* wall time; the paper-facing output —
//! simulated cycle counts and the derived rows — is printed once per
//! bench via [`print_once`] so the bench output doubles as the
//! reproduction log.

use std::sync::Once;

/// Prints a banner and runs `body` once per process (criterion
/// re-enters bench functions many times; the reproduction tables should
/// appear once).
pub fn print_once(banner: &str, body: impl FnOnce()) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n================================================================");
        println!("{banner}");
        println!("================================================================");
        body();
        println!();
    });
}
