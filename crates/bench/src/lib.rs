//! Shared helpers for the Ouessant benchmark harness.
//!
//! Each bench target under `benches/` regenerates one table, figure or
//! in-text result of the DATE 2016 paper (see DESIGN.md §4 for the
//! experiment index). Criterion measures the *simulator's* wall time;
//! the paper-facing output — simulated cycle counts and the derived
//! rows — is printed once per bench via [`print_once`] so that
//! `cargo bench` output doubles as the reproduction log.

use std::sync::Once;

/// Prints a banner and runs `body` once per process (criterion
/// re-enters bench functions many times; the reproduction tables should
/// appear once).
pub fn print_once(banner: &str, body: impl FnOnce()) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n================================================================");
        println!("{banner}");
        println!("================================================================");
        body();
        println!();
    });
}
