//! Wall-time benchmark harness for the farm's event-horizon
//! fast-forward kernel.
//!
//! Runs a set of farm campaigns twice each — once single-stepping every
//! cycle, once leaping over provably-idle windows — and emits
//! `BENCH_farm.json` with wall seconds, simulated cycles, cycles/sec,
//! fraction of cycles skipped and the fast/slow speedup per campaign.
//!
//! The harness is also a differential check: it exits non-zero if the
//! two stepping modes disagree on the simulated cycle total or on the
//! job-record stream (ids, outcomes, timestamps, outputs), so CI can
//! run it as a bit-exactness gate.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ouessant-bench            # full campaigns
//! cargo run --release -p ouessant-bench -- --smoke # reduced job counts
//! cargo run --release -p ouessant-bench -- --out path/to.json
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use ouessant_farm::{
    ChaosConfig, Farm, FarmConfig, FaultConfig, FaultPlan, FifoPolicy, JobKind, JobSpec,
    LivenessConfig, RoundRobinPolicy,
};
use ouessant_isa::ProgramBuilder;
use ouessant_sim::XorShift64;

const FUEL: u64 = 500_000_000;
const WORKLOAD_SEED: u64 = 0xBE4C_2016;

const IDCT: JobKind = JobKind::Idct;
const DFT64: JobKind = JobKind::Dft { points: 64 };
const DFT4096: JobKind = JobKind::Dft { points: 4096 };
const COPY3: JobKind = JobKind::Copy { scale: 3 };

/// Generous-retry fault policy for the chaos campaign, so the run
/// exercises the park/quarantine/probation timers the horizon models.
const CHAOS_FAULTS: FaultConfig = FaultConfig {
    max_attempts: 10,
    retry_backoff: 500,
    fault_window: 40_000,
    quarantine_threshold: 3,
    quarantine_cooldown: Some(60_000),
    fail_fast: false,
};

fn payload(kind: JobKind, rng: &mut XorShift64) -> Vec<u32> {
    let words = kind.required_input_words().unwrap_or(48);
    (0..words)
        .map(|_| rng.gen_range_i32(-1024..1024) as u32)
        .collect()
}

/// The acceptance-campaign workload: an even mix of fixed-function and
/// DPR-servable kinds.
fn mixed_workload(n: usize) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(WORKLOAD_SEED);
    (0..n)
        .map(|i| {
            let kind = match i % 3 {
                0 => IDCT,
                1 => DFT64,
                _ => COPY3,
            };
            JobSpec::new(kind, payload(kind, &mut rng))
        })
        .collect()
}

/// The mixed workload with a deadline on every job — generous enough
/// that a healthy pool meets it, tight enough that a hang-delayed job
/// can blow it and exercise the deadline-drop path.
fn deadline_workload(n: usize) -> Vec<JobSpec> {
    mixed_workload(n)
        .into_iter()
        .map(|spec| spec.with_deadline(600_000))
        .collect()
}

/// Large transforms: most of each job's lifetime is the RAC compute
/// window between its two DMA bursts.
fn deep_dft_workload(n: usize) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(WORKLOAD_SEED);
    (0..n)
        .map(|_| JobSpec::new(DFT4096, payload(DFT4096, &mut rng)))
        .collect()
}

/// Duty-cycled jobs: custom microcode sleeps for 60k cycles between
/// load and compute, the way a sensor-driven pipeline gates on an
/// external frame period. Almost the entire campaign is `WaitCycles`.
fn duty_cycle_workload(n: usize) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(WORKLOAD_SEED);
    (0..n)
        .map(|_| {
            let words = 48u32;
            let input: Vec<u32> = (0..words)
                .map(|_| rng.gen_range_i32(-1024..1024) as u32)
                .collect();
            let program = ProgramBuilder::new()
                .transfer_to_coprocessor(1, 0, words, 64, 0)
                .expect("payload fits the offset field")
                .wait(60_000)
                .execs_op(words as u16)
                .transfer_from_coprocessor(2, 0, words, 64, 0)
                .expect("payload fits the offset field")
                .eop()
                .finish()
                .expect("duty-cycle program is structurally valid");
            JobSpec::new(COPY3, input).with_microcode(program)
        })
        .collect()
}

fn redundant_pool(fast_forward: bool, faults: FaultConfig, liveness: LivenessConfig) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 512,
            faults,
            liveness,
            fast_forward,
            ..FarmConfig::default()
        },
        Box::new(RoundRobinPolicy::new()),
    );
    farm.add_worker(IDCT);
    farm.add_worker(DFT64);
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    farm.add_dpr_worker(&[(COPY3, 40_000), (DFT64, 60_000)]);
    farm
}

fn calm_pool(fast_forward: bool) -> Farm {
    redundant_pool(
        fast_forward,
        FaultConfig::default(),
        LivenessConfig::default(),
    )
}

fn chaos_pool(fast_forward: bool) -> Farm {
    let mut farm = redundant_pool(fast_forward, CHAOS_FAULTS, LivenessConfig::default());
    farm.arm_chaos(FaultPlan::new(ChaosConfig::new(0xFA11_FA57)));
    farm
}

/// The liveness campaign's pool: watchdogs armed on every job, early
/// deadline drop on, and the *stall* chaos seams (wedged handshakes,
/// slowed RACs) injecting silent hangs instead of crashes — so the
/// horizon merge is measured with watchdog and deadline events in it.
fn hang_pool(fast_forward: bool) -> Farm {
    let mut farm = redundant_pool(
        fast_forward,
        CHAOS_FAULTS,
        LivenessConfig {
            default_cycles_budget: Some(25_000),
            early_drop: true,
            ..LivenessConfig::default()
        },
    );
    farm.arm_chaos(FaultPlan::new(ChaosConfig::hang(0x0CEA_4A46)));
    farm
}

fn deep_dft_pool(fast_forward: bool) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 128,
            fifo_depth: 8192,
            fast_forward,
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(DFT4096);
    farm
}

fn duty_cycle_pool(fast_forward: bool) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 128,
            fast_forward,
            ..FarmConfig::default()
        },
        Box::new(RoundRobinPolicy::new()),
    );
    farm.add_worker(COPY3);
    farm.add_worker(COPY3);
    farm
}

struct Campaign {
    name: &'static str,
    description: &'static str,
    specs: Vec<JobSpec>,
    build: fn(bool) -> Farm,
}

/// One stepping mode's measurements plus a digest of everything
/// observable, for the differential check.
struct ModeResult {
    wall_seconds: f64,
    cycles: u64,
    skipped: u64,
    cycles_per_second: f64,
    digest: u64,
}

/// FNV-1a over the full job-record stream: ids, placement, outcome,
/// timestamps and output payloads. Equal digests mean the two modes
/// produced observationally identical campaigns.
fn digest(farm: &Farm) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in farm.records() {
        mix(r.id.0);
        mix(r.worker as u64);
        mix(r.submitted_at);
        mix(r.started_at);
        mix(r.completed_at);
        mix(u64::from(r.swapped));
        mix(r.contention_cycles);
        for byte in format!("{:?}", r.outcome).bytes() {
            mix(u64::from(byte));
        }
        for word in &r.output {
            mix(u64::from(*word));
        }
    }
    h
}

fn run_mode(campaign: &Campaign, fast_forward: bool) -> ModeResult {
    let mut farm = (campaign.build)(fast_forward);
    for spec in &campaign.specs {
        farm.submit(spec.clone()).expect("queue sized for workload");
    }
    let cycles = farm
        .run_until_idle(FUEL)
        .expect("benchmark campaign must drain");
    let wall = farm.wall_time().as_secs_f64();
    ModeResult {
        wall_seconds: wall,
        cycles,
        skipped: farm.skipped_cycles(),
        cycles_per_second: if wall > 0.0 {
            cycles as f64 / wall
        } else {
            0.0
        },
        digest: digest(&farm),
    }
}

fn mode_json(mode: &ModeResult) -> String {
    format!(
        "{{\"wall_seconds\": {:.6}, \"cycles_per_second\": {:.1}, \"skipped_cycles\": {}, \"skipped_fraction\": {:.6}}}",
        mode.wall_seconds,
        mode.cycles_per_second,
        mode.skipped,
        if mode.cycles > 0 {
            mode.skipped as f64 / mode.cycles as f64
        } else {
            0.0
        }
    )
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_farm.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: ouessant-bench [--smoke] [--out PATH]");
                return ExitCode::from(2);
            }
        }
    }

    // Smoke mode shrinks every campaign ~8x so CI can afford the
    // double (fast + slow) run while still proving bit-exactness.
    let scale = |n: usize| if smoke { (n / 8).max(4) } else { n };
    let campaigns = [
        Campaign {
            name: "calm-mixed",
            description: "240-job mixed IDCT/DFT64/copy campaign on the 4-worker redundant pool, no faults",
            specs: mixed_workload(scale(240)),
            build: calm_pool,
        },
        Campaign {
            name: "chaos-mixed",
            description: "the same campaign under the 4-seam chaos plan, with retry/park and quarantine timers armed",
            specs: mixed_workload(scale(240)),
            build: chaos_pool,
        },
        Campaign {
            name: "deep-dft",
            description: "4096-point DFT stream on one worker: compute-bound, dominated by the RAC latency window",
            specs: deep_dft_workload(scale(24)),
            build: deep_dft_pool,
        },
        Campaign {
            name: "duty-cycle",
            description: "duty-cycled custom microcode sleeping 60k cycles per job: timer-bound idle windows",
            specs: duty_cycle_workload(scale(48)),
            build: duty_cycle_pool,
        },
        Campaign {
            name: "hang-liveness",
            description: "the mixed campaign with per-job deadlines under the stall seams: watchdogs and deadline horizons in the merge",
            specs: deadline_workload(scale(240)),
            build: hang_pool,
        },
    ];

    println!(
        "ouessant-bench: {} campaigns, both stepping modes{}",
        campaigns.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut entries = Vec::new();
    let mut headline: Option<(&'static str, f64)> = None;
    let mut diverged = false;
    for campaign in &campaigns {
        let fast = run_mode(campaign, true);
        let slow = run_mode(campaign, false);
        if fast.cycles != slow.cycles || fast.digest != slow.digest {
            eprintln!(
                "FAIL {}: stepping modes diverged (fast: {} cycles, digest {:#018x}; slow: {} cycles, digest {:#018x})",
                campaign.name, fast.cycles, fast.digest, slow.cycles, slow.digest
            );
            diverged = true;
        }
        let speedup = slow.wall_seconds / fast.wall_seconds.max(1e-9);
        let skipped_pct = 100.0 * fast.skipped as f64 / fast.cycles.max(1) as f64;
        println!(
            "  {:<12} {:>9} cycles  skip {:>5.1}%  slow {:>8.4}s  fast {:>8.4}s  speedup {:>6.2}x",
            campaign.name, fast.cycles, skipped_pct, slow.wall_seconds, fast.wall_seconds, speedup
        );
        if headline.is_none_or(|(_, best)| speedup > best) {
            headline = Some((campaign.name, speedup));
        }
        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"name\": \"{}\",\n      \"description\": \"{}\",\n      \"jobs\": {},\n      \"simulated_cycles\": {},\n      \"fast\": {},\n      \"slow\": {},\n      \"speedup\": {:.3}\n    }}",
            campaign.name,
            campaign.description,
            campaign.specs.len(),
            fast.cycles,
            mode_json(&fast),
            mode_json(&slow),
            speedup
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let (headline_name, headline_speedup) = headline.expect("at least one campaign ran");
    let json = format!(
        "{{\n  \"benchmark\": \"ouessant-farm-fast-forward\",\n  \"smoke\": {},\n  \"campaigns\": [\n{}\n  ],\n  \"headline\": {{\"campaign\": \"{}\", \"speedup\": {:.3}}}\n}}\n",
        smoke,
        entries.join(",\n"),
        headline_name,
        headline_speedup
    );
    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} (headline: {headline_name} {headline_speedup:.2}x)");

    if diverged {
        eprintln!("ouessant-bench: FAILED — fast-forward is not bit-exact on this build");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
