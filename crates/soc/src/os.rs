//! OS and driver overhead models.
//!
//! §IV of the paper: baremetal integration "is quite easy", but under
//! Linux "the strong isolation between kernel and user modes and the
//! high overhead induced by the kernel can quickly decrease performance
//! … data copies are required each time the user/kernel layer is
//! crossed. Since data copies are performance killers, this is not
//! acceptable in our case. … In the Ouessant Linux driver, the mmap
//! solution is used."
//!
//! §V-B quantifies it: "When running it without Linux, the DFT took 4000
//! cycles to compute, which gives an overhead of 3000 cycles coming from
//! Linux. This comes from system calls."
//!
//! [`OsModel`] charges that overhead per offload invocation. The mmap
//! driver's cost is size-independent (no copies); the copying driver
//! adds a per-word cost, which is the design §IV rejects.

use std::fmt;

/// Default cycles per syscall entry/exit on the paper's platform
/// (Leon3 Linux; two syscalls per offload: submit and wait).
pub const LINUX_SYSCALL_CYCLES: u64 = 900;

/// Default driver bookkeeping per offload (locking, descriptor setup,
/// scheduling the waiting task back in).
pub const LINUX_DRIVER_CYCLES: u64 = 700;

/// Default cache-management cost per offload (flush/invalidate of the
/// shared buffers; §IV: "the only trick is to manage caches properly").
pub const LINUX_CACHE_CYCLES: u64 = 500;

/// Per-word cost of a copying (non-mmap) driver: `copy_to_user`/
/// `copy_from_user` at roughly 4 cycles per 32-bit word.
pub const LINUX_COPY_CYCLES_PER_WORD: u64 = 4;

/// The software environment an offload runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OsModel {
    /// No OS: the application drives the OCP registers directly.
    /// "When no virtual memory is used, integration is quite easy."
    #[default]
    Baremetal,
    /// The paper's Linux driver: kernel buffers mmap'ed into user space,
    /// so crossings cost syscalls but no data copies.
    LinuxMmap {
        /// Cycles per syscall entry/exit.
        syscall: u64,
        /// Driver bookkeeping per offload.
        driver: u64,
        /// Cache management per offload.
        cache: u64,
    },
    /// A conventional copying driver (the rejected design): same fixed
    /// costs plus a per-word copy in each direction.
    LinuxCopy {
        /// Cycles per syscall entry/exit.
        syscall: u64,
        /// Driver bookkeeping per offload.
        driver: u64,
        /// Cache management per offload.
        cache: u64,
        /// Cycles per word copied across the user/kernel boundary.
        per_word: u64,
    },
}

impl OsModel {
    /// The paper's Linux-with-mmap configuration, calibrated so the
    /// fixed overhead is ≈3000 cycles (two syscalls + driver + cache).
    #[must_use]
    pub fn linux_mmap() -> Self {
        OsModel::LinuxMmap {
            syscall: LINUX_SYSCALL_CYCLES,
            driver: LINUX_DRIVER_CYCLES,
            cache: LINUX_CACHE_CYCLES,
        }
    }

    /// A copying Linux driver with default costs.
    #[must_use]
    pub fn linux_copy() -> Self {
        OsModel::LinuxCopy {
            syscall: LINUX_SYSCALL_CYCLES,
            driver: LINUX_DRIVER_CYCLES,
            cache: LINUX_CACHE_CYCLES,
            per_word: LINUX_COPY_CYCLES_PER_WORD,
        }
    }

    /// Cycles of OS overhead for one offload moving `words` data words
    /// in total (both directions).
    #[must_use]
    pub fn invocation_overhead(&self, words: u64) -> u64 {
        match *self {
            OsModel::Baremetal => 0,
            OsModel::LinuxMmap {
                syscall,
                driver,
                cache,
            } => 2 * syscall + driver + cache,
            OsModel::LinuxCopy {
                syscall,
                driver,
                cache,
                per_word,
            } => 2 * syscall + driver + cache + words * per_word,
        }
    }

    /// Whether data copies scale with the transfer size under this
    /// model.
    #[must_use]
    pub fn copies_data(&self) -> bool {
        matches!(self, OsModel::LinuxCopy { .. })
    }
}

impl fmt::Display for OsModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsModel::Baremetal => f.write_str("baremetal"),
            OsModel::LinuxMmap { .. } => f.write_str("linux (mmap driver)"),
            OsModel::LinuxCopy { .. } => f.write_str("linux (copying driver)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baremetal_is_free() {
        assert_eq!(OsModel::Baremetal.invocation_overhead(1_000_000), 0);
    }

    #[test]
    fn mmap_overhead_matches_paper() {
        // §V-B: Linux adds ≈3000 cycles to the DFT offload.
        let overhead = OsModel::linux_mmap().invocation_overhead(1024);
        assert_eq!(overhead, 2 * 900 + 700 + 500);
        assert!((2_500..=3_500).contains(&overhead));
    }

    #[test]
    fn mmap_overhead_is_size_independent() {
        let os = OsModel::linux_mmap();
        assert_eq!(os.invocation_overhead(0), os.invocation_overhead(100_000));
        assert!(!os.copies_data());
    }

    #[test]
    fn copy_driver_scales_with_words() {
        let os = OsModel::linux_copy();
        let small = os.invocation_overhead(128);
        let large = os.invocation_overhead(1024);
        assert_eq!(large - small, (1024 - 128) * LINUX_COPY_CYCLES_PER_WORD);
        assert!(os.copies_data());
    }

    #[test]
    fn copy_driver_always_slower_than_mmap() {
        for words in [0u64, 1, 128, 4096] {
            assert!(
                OsModel::linux_copy().invocation_overhead(words)
                    >= OsModel::linux_mmap().invocation_overhead(words)
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(OsModel::Baremetal.to_string(), "baremetal");
        assert!(OsModel::linux_mmap().to_string().contains("mmap"));
    }
}
