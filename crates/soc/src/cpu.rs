//! The Leon3-class CPU cost model.
//!
//! The paper's SW column is "a time-optimized software version … run for
//! comparison" on the Leon3, a single-issue in-order SPARCv8 soft-core
//! synthesized at 50 MHz, *without* an FPU (floating point is emulated
//! in software, which is what makes the DFT baseline cost 600·10³
//! cycles).
//!
//! The model executes kernels natively and charges cycles per dynamic
//! operation. Per-op costs live in [`CpuCosts`]; the defaults
//! ([`CpuCosts::leon3`]) are calibrated from the Leon3 integer pipeline
//! (single-cycle ALU, 4–5-cycle hardware multiply, 2-cycle loads on
//! cache hit) and typical SPARC soft-float library timings for the
//! double-precision helpers (`__adddf3`, `__muldf3`).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Dynamic operation counts of one kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Integer ALU operations (add, sub, shift, logic).
    pub alu: u64,
    /// Integer multiplications.
    pub mul: u64,
    /// Memory loads.
    pub load: u64,
    /// Memory stores.
    pub store: u64,
    /// Branches (taken or not; the model charges a flat cost).
    pub branch: u64,
    /// Call/return pairs.
    pub call: u64,
    /// Soft-float double-precision additions/subtractions.
    pub fadd: u64,
    /// Soft-float double-precision multiplications.
    pub fmul: u64,
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            alu: self.alu + rhs.alu,
            mul: self.mul + rhs.mul,
            load: self.load + rhs.load,
            store: self.store + rhs.store,
            branch: self.branch + rhs.branch,
            call: self.call + rhs.call,
            fadd: self.fadd + rhs.fadd,
            fmul: self.fmul + rhs.fmul,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

/// Per-operation cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// Cycles per integer ALU op.
    pub alu: u64,
    /// Cycles per integer multiply.
    pub mul: u64,
    /// Cycles per load (cache hit).
    pub load: u64,
    /// Cycles per store.
    pub store: u64,
    /// Cycles per branch.
    pub branch: u64,
    /// Cycles per call/return pair.
    pub call: u64,
    /// Cycles per soft-float double add (`__adddf3`).
    pub fadd: u64,
    /// Cycles per soft-float double multiply (`__muldf3`).
    pub fmul: u64,
}

impl CpuCosts {
    /// The Leon3 calibration used throughout the reproduction.
    #[must_use]
    pub fn leon3() -> Self {
        Self {
            alu: 1,
            mul: 5,
            load: 2,
            store: 2,
            branch: 2,
            call: 4,
            fadd: 45,
            fmul: 60,
        }
    }

    /// An idealized single-cycle machine (for sensitivity studies).
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            alu: 1,
            mul: 1,
            load: 1,
            store: 1,
            branch: 1,
            call: 1,
            fadd: 1,
            fmul: 1,
        }
    }

    /// Total cycles of `counts` under these costs.
    #[must_use]
    pub fn cycles_of(&self, counts: OpCounts) -> u64 {
        counts.alu * self.alu
            + counts.mul * self.mul
            + counts.load * self.load
            + counts.store * self.store
            + counts.branch * self.branch
            + counts.call * self.call
            + counts.fadd * self.fadd
            + counts.fmul * self.fmul
    }
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self::leon3()
    }
}

/// An operation accumulator threaded through instrumented kernels.
///
/// # Examples
///
/// ```
/// use ouessant_soc::cpu::{CostModel, CpuCosts};
///
/// let mut cpu = CostModel::new(CpuCosts::leon3());
/// cpu.load(2);  // two loads
/// cpu.mul(1);   // one integer multiply
/// cpu.alu(1);   // one add
/// assert_eq!(cpu.cycles(), 2 * 2 + 5 + 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    costs: CpuCosts,
    counts: OpCounts,
}

impl CostModel {
    /// A model with the given per-op costs and zeroed counters.
    #[must_use]
    pub fn new(costs: CpuCosts) -> Self {
        Self {
            costs,
            counts: OpCounts::default(),
        }
    }

    /// The Leon3 calibration.
    #[must_use]
    pub fn leon3() -> Self {
        Self::new(CpuCosts::leon3())
    }

    /// Charges `n` integer ALU operations.
    pub fn alu(&mut self, n: u64) {
        self.counts.alu += n;
    }

    /// Charges `n` integer multiplies.
    pub fn mul(&mut self, n: u64) {
        self.counts.mul += n;
    }

    /// Charges `n` loads.
    pub fn load(&mut self, n: u64) {
        self.counts.load += n;
    }

    /// Charges `n` stores.
    pub fn store(&mut self, n: u64) {
        self.counts.store += n;
    }

    /// Charges `n` branches.
    pub fn branch(&mut self, n: u64) {
        self.counts.branch += n;
    }

    /// Charges `n` call/return pairs.
    pub fn call(&mut self, n: u64) {
        self.counts.call += n;
    }

    /// Charges `n` soft-float additions.
    pub fn fadd(&mut self, n: u64) {
        self.counts.fadd += n;
    }

    /// Charges `n` soft-float multiplications.
    pub fn fmul(&mut self, n: u64) {
        self.counts.fmul += n;
    }

    /// The accumulated operation counts.
    #[must_use]
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// The per-op costs in effect.
    #[must_use]
    pub fn costs(&self) -> CpuCosts {
        self.costs
    }

    /// Total cycles accumulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.costs.cycles_of(self.counts)
    }

    /// Zeroes the counters, keeping the costs.
    pub fn reset(&mut self) {
        self.counts = OpCounts::default();
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alu {} mul {} ld {} st {} br {} call {} fadd {} fmul {}",
            self.alu, self.mul, self.load, self.store, self.branch, self.call, self.fadd, self.fmul
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leon3_costs_sanity() {
        let c = CpuCosts::leon3();
        assert_eq!(c.alu, 1);
        assert!(c.mul > c.alu, "Leon3 multiply is multi-cycle");
        assert!(c.fmul > c.mul * 5, "soft-float dwarfs hardware multiply");
    }

    #[test]
    fn cycles_accumulate_linearly() {
        let mut cpu = CostModel::leon3();
        cpu.alu(10);
        cpu.mul(2);
        cpu.load(3);
        cpu.store(1);
        cpu.branch(4);
        cpu.call(1);
        let expected = 10 + 2 * 5 + 3 * 2 + 2 + 4 * 2 + 4;
        assert_eq!(cpu.cycles(), expected);
    }

    #[test]
    fn soft_float_counted_separately() {
        let mut cpu = CostModel::leon3();
        cpu.fadd(2);
        cpu.fmul(1);
        assert_eq!(cpu.cycles(), 2 * 45 + 60);
        assert_eq!(cpu.counts().fadd, 2);
    }

    #[test]
    fn reset_keeps_costs() {
        let mut cpu = CostModel::new(CpuCosts::ideal());
        cpu.alu(100);
        cpu.reset();
        assert_eq!(cpu.cycles(), 0);
        assert_eq!(cpu.costs(), CpuCosts::ideal());
    }

    #[test]
    fn op_counts_add() {
        let a = OpCounts {
            alu: 1,
            mul: 2,
            ..OpCounts::default()
        };
        let b = OpCounts {
            alu: 10,
            fadd: 5,
            ..OpCounts::default()
        };
        let s = a + b;
        assert_eq!(s.alu, 11);
        assert_eq!(s.mul, 2);
        assert_eq!(s.fadd, 5);
    }

    #[test]
    fn display_contains_all_fields() {
        let c = OpCounts::default();
        let s = c.to_string();
        for field in ["alu", "mul", "ld", "st", "br", "call", "fadd", "fmul"] {
            assert!(s.contains(field), "{field} missing from {s}");
        }
    }
}
