//! Processor-free (standalone) operation.
//!
//! §VI: "Standalone operation is also studied, to provide control for
//! processor-free designs." In that mode there is no GPP at all: the
//! microcode sits in an internal ROM, the bank registers are strapped at
//! configuration time, and the OCP (re)starts itself — a streaming
//! data-mover/accelerator pipeline with no software anywhere.
//!
//! [`StandaloneSystem`] assembles exactly that: bus + memory + one OCP,
//! no CPU master, program preloaded, optional auto-restart for
//! continuous frame processing.

use ouessant::controller::ExecError;
use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_isa::Program;
use ouessant_rac::rac::Rac;
use ouessant_sim::bus::{Addr, Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::SystemBus;

use crate::soc::SocError;

/// A processor-free Ouessant system.
///
/// # Examples
///
/// A self-restarting pipe that keeps copying a buffer, with no CPU in
/// the design:
///
/// ```
/// use ouessant_isa::assemble;
/// use ouessant_rac::passthrough::PassthroughRac;
/// use ouessant_soc::standalone::StandaloneSystem;
///
/// let program = assemble("mvtc BANK1,0,DMA8,FIFO0\nexecs 8\nmvfc BANK2,0,DMA8,FIFO0\neop")?;
/// let mut sys = StandaloneSystem::new(
///     Box::new(PassthroughRac::new(0)),
///     &program,
///     &[(1, 0x4000_1000), (2, 0x4000_2000)],
/// );
/// sys.load_words(0x4000_1000, &[10, 20, 30, 40, 50, 60, 70, 80])?;
/// let cycles = sys.run_once(100_000)?;
/// assert!(cycles > 8);
/// assert_eq!(sys.read_words(0x4000_2000, 2)?, vec![10, 20]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StandaloneSystem {
    bus: Bus,
    ocp: Ocp,
    runs: u64,
}

impl StandaloneSystem {
    /// RAM base of the standalone system.
    pub const RAM_BASE: Addr = 0x4000_0000;
    /// OCP register window (present for debug taps even without a CPU).
    pub const OCP_BASE: Addr = 0x8000_0000;

    /// Builds the system: the microcode is burned into the controller's
    /// program store and the bank registers are strapped to `banks`.
    #[must_use]
    pub fn new(rac: Box<dyn Rac>, program: &Program, banks: &[(u8, Addr)]) -> Self {
        let mut bus = Bus::new(BusConfig::default());
        bus.add_slave(
            Self::RAM_BASE,
            Sram::with_words(1 << 16, SramConfig::default()),
        );
        let mut ocp = Ocp::attach(&mut bus, Self::OCP_BASE, rac, OcpConfig::default());
        ocp.preload_program(&program.to_words());
        for &(bank, base) in banks {
            ocp.regs()
                .set_bank(bank, base)
                .expect("bank strap values validated by caller");
        }
        ocp.regs()
            .set_prog_size(program.len() as u32)
            .expect("program length validated by Program");
        Self { bus, ocp, runs: 0 }
    }

    /// Un-timed memory load (data arriving from a non-CPU source, e.g.
    /// an ADC front end writing into the SRAM).
    ///
    /// # Errors
    ///
    /// Propagates bus mapping faults.
    pub fn load_words(&mut self, addr: Addr, words: &[u32]) -> Result<(), SocError> {
        for (i, w) in words.iter().enumerate() {
            self.bus
                .debug_write(addr + (i as u32) * 4, *w)
                .map_err(SocError::Bus)?;
        }
        Ok(())
    }

    /// Un-timed memory read.
    ///
    /// # Errors
    ///
    /// Propagates bus mapping faults.
    pub fn read_words(&mut self, addr: Addr, count: usize) -> Result<Vec<u32>, SocError> {
        (0..count)
            .map(|i| {
                self.bus
                    .debug_read(addr + (i as u32) * 4)
                    .map_err(SocError::Bus)
            })
            .collect()
    }

    /// Arms the start strap and runs one program to completion,
    /// returning the cycles consumed.
    ///
    /// # Errors
    ///
    /// [`SocError::Ocp`] on a controller fault, [`SocError::Timeout`]
    /// past `max_cycles`.
    pub fn run_once(&mut self, max_cycles: u64) -> Result<u64, SocError> {
        self.ocp.regs().start();
        let mut cycles = 0u64;
        while !self.ocp.regs().done() {
            self.ocp.tick(&mut self.bus);
            SystemBus::tick(&mut self.bus);
            cycles += 1;
            if cycles > max_cycles {
                return Err(SocError::Timeout { budget: max_cycles });
            }
            if let Some(f) = self.ocp.fault() {
                return Err(SocError::Ocp(f.clone()));
            }
        }
        self.runs += 1;
        Ok(cycles)
    }

    /// Runs `n` back-to-back program executions (continuous streaming),
    /// returning the total cycles.
    ///
    /// # Errors
    ///
    /// As [`StandaloneSystem::run_once`].
    pub fn run_repeatedly(&mut self, n: u64, max_cycles_each: u64) -> Result<u64, SocError> {
        let mut total = 0;
        for _ in 0..n {
            total += self.run_once(max_cycles_each)?;
        }
        Ok(total)
    }

    /// Completed program runs.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The controller fault, if any.
    #[must_use]
    pub fn fault(&self) -> Option<&ExecError> {
        self.ocp.fault()
    }

    /// The OCP, for stats inspection.
    #[must_use]
    pub fn ocp(&self) -> &Ocp {
        &self.ocp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_isa::assemble;
    use ouessant_rac::passthrough::PassthroughRac;

    fn copy_program() -> Program {
        assemble("mvtc BANK1,0,DMA16,FIFO0\nexecs 16\nmvfc BANK2,0,DMA16,FIFO0\neop").unwrap()
    }

    #[test]
    fn runs_without_any_cpu_master() {
        let mut sys = StandaloneSystem::new(
            Box::new(PassthroughRac::new(0)),
            &copy_program(),
            &[(1, 0x4000_1000), (2, 0x4000_2000)],
        );
        let input: Vec<u32> = (100..116).collect();
        sys.load_words(0x4000_1000, &input).unwrap();
        sys.run_once(100_000).unwrap();
        assert_eq!(sys.read_words(0x4000_2000, 16).unwrap(), input);
    }

    #[test]
    fn no_program_fetch_from_memory() {
        // The program was preloaded: bank 0 is never configured and the
        // run must still succeed (no bank-0 translation happens).
        let mut sys = StandaloneSystem::new(
            Box::new(PassthroughRac::new(0)),
            &copy_program(),
            &[(1, 0x4000_1000), (2, 0x4000_2000)],
        );
        sys.load_words(0x4000_1000, &[1; 16]).unwrap();
        sys.run_once(100_000).unwrap();
        assert_eq!(
            sys.ocp().stats().controller.program_load_cycles,
            0,
            "standalone mode must not fetch microcode over the bus"
        );
    }

    #[test]
    fn continuous_restart() {
        let mut sys = StandaloneSystem::new(
            Box::new(PassthroughRac::new(0)),
            &copy_program(),
            &[(1, 0x4000_1000), (2, 0x4000_2000)],
        );
        sys.load_words(0x4000_1000, &[7; 16]).unwrap();
        sys.run_repeatedly(5, 100_000).unwrap();
        assert_eq!(sys.runs(), 5);
        assert_eq!(sys.ocp().stats().controller.runs_completed, 5);
    }

    #[test]
    fn standalone_is_faster_than_fetching() {
        // Same offload with and without the bank-0 program fetch.
        let mut standalone = StandaloneSystem::new(
            Box::new(PassthroughRac::new(0)),
            &copy_program(),
            &[(1, 0x4000_1000), (2, 0x4000_2000)],
        );
        standalone.load_words(0x4000_1000, &[3; 16]).unwrap();
        let alone = standalone.run_once(100_000).unwrap();

        use crate::soc::{Soc, SocConfig};
        let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), SocConfig::default());
        let ram = soc.config().ram_base;
        soc.load_words(ram, &copy_program().to_words()).unwrap();
        soc.load_words(ram + 0x1000, &[3; 16]).unwrap();
        soc.configure(
            &[(0, ram), (1, ram + 0x1000), (2, ram + 0x2000)],
            copy_program().len() as u32,
        )
        .unwrap();
        let fetched = soc.start_and_wait(100_000).unwrap().run_cycles;

        assert!(
            alone < fetched,
            "preloaded program skips the fetch: {alone} vs {fetched}"
        );
    }
}
