//! The assembled SoC: CPU master + SRAM + OCP on the system bus.
//!
//! This is the reproduction of the paper's evaluation platform: a Leon3
//! CPU and an Ouessant coprocessor sharing an AHB bus with external
//! SRAM, everything clocked at 50 MHz. The CPU is modeled as a bus
//! master driving the OCP's registers (configuration, start, polling)
//! plus the [`crate::cpu::CostModel`] for its software kernels.

use std::error::Error;
use std::fmt;

use ouessant::controller::ExecError;
use ouessant::ocp::{Ocp, OcpConfig};
use ouessant_rac::rac::Rac;
use ouessant_sim::bus::{Addr, Bus, BusConfig, BusError, PortState, TxnRequest};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::{MasterId, NextEvent, SystemBus};

/// How the CPU learns that the OCP finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionMode {
    /// The CPU reads the control register every `interval` cycles and
    /// checks the D bit (costs bus bandwidth — visible as contention).
    Polling {
        /// Cycles between status reads.
        interval: u64,
    },
    /// The CPU sleeps until the OCP raises its interrupt line (the IE
    /// bit is set; the paper's measurements use "interrupt mode").
    #[default]
    Interrupt,
}

/// Static SoC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocConfig {
    /// Bus parameters.
    pub bus: BusConfig,
    /// SRAM timing.
    pub sram: SramConfig,
    /// SRAM size in 32-bit words.
    pub sram_words: usize,
    /// SRAM base address.
    pub ram_base: Addr,
    /// OCP register-window base address.
    pub ocp_base: Addr,
    /// OCP parameters (FIFO depth).
    pub ocp: OcpConfig,
    /// Completion signalling.
    pub completion: CompletionMode,
    /// Event-horizon fast-forwarding in [`Soc::start_and_wait`]: leap
    /// over cycles during which neither the OCP nor the bus can change
    /// observable state (RAC compute latency, `wait`/`rcfg`
    /// countdowns). Bit-exact with cycle-by-cycle stepping; disable to
    /// cross-check or to single-step under a debugger.
    pub fast_forward: bool,
}

impl Default for SocConfig {
    fn default() -> Self {
        Self {
            bus: BusConfig::default(),
            sram: SramConfig::default(),
            sram_words: 1 << 16, // 256 KiB, ample for every experiment
            ram_base: 0x4000_0000,
            ocp_base: 0x8000_0000,
            ocp: OcpConfig::default(),
            completion: CompletionMode::Interrupt,
            fast_forward: true,
        }
    }
}

/// Errors from full-system runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocError {
    /// The OCP controller faulted.
    Ocp(ExecError),
    /// A CPU bus access failed.
    Bus(BusError),
    /// The offload did not finish within the cycle budget.
    Timeout {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Ocp(e) => write!(f, "coprocessor fault: {e}"),
            SocError::Bus(e) => write!(f, "cpu bus access failed: {e}"),
            SocError::Timeout { budget } => {
                write!(f, "offload did not complete within {budget} cycles")
            }
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Ocp(e) => Some(e),
            SocError::Bus(e) => Some(e),
            SocError::Timeout { .. } => None,
        }
    }
}

impl From<BusError> for SocError {
    fn from(e: BusError) -> Self {
        SocError::Bus(e)
    }
}

/// Cycle accounting of one offload, at machine level (OS overhead is
/// layered on top by [`crate::app`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadReport {
    /// Cycles the CPU spent writing configuration registers and the
    /// start bit.
    pub config_cycles: u64,
    /// Cycles from the start write to the CPU observing completion.
    pub run_cycles: u64,
    /// Data words the OCP moved.
    pub words_transferred: u64,
    /// The OCP's own busy time (program load + transfers + RAC).
    pub ocp_active_cycles: u64,
    /// Cycles the RAC kept the controller waiting.
    pub rac_wait_cycles: u64,
    /// Status polls the CPU issued (polling mode only).
    pub polls: u64,
}

impl OffloadReport {
    /// Total machine cycles of the offload (configuration + run).
    #[must_use]
    pub fn machine_cycles(&self) -> u64 {
        self.config_cycles + self.run_cycles
    }
}

/// The full system.
#[derive(Debug)]
pub struct Soc {
    bus: Bus,
    cpu: MasterId,
    ocp: Ocp,
    config: SocConfig,
}

impl Soc {
    /// Builds the SoC around `rac`.
    #[must_use]
    pub fn new(rac: Box<dyn Rac>, config: SocConfig) -> Self {
        let mut bus = Bus::new(config.bus);
        let cpu = bus.register_master("cpu");
        bus.add_slave(
            config.ram_base,
            Sram::with_words(config.sram_words, config.sram),
        );
        let ocp = Ocp::attach(&mut bus, config.ocp_base, rac, config.ocp);
        if matches!(config.completion, CompletionMode::Interrupt) {
            ocp.regs().set_irq_enabled(true);
        }
        Self {
            bus,
            cpu,
            ocp,
            config,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The OCP (register handle, stats, fault inspection).
    #[must_use]
    pub fn ocp(&self) -> &Ocp {
        &self.ocp
    }

    /// The bus (statistics).
    #[must_use]
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Un-timed bulk load into RAM (standing in for data that is already
    /// resident, e.g. written by a previous pipeline stage).
    ///
    /// # Errors
    ///
    /// Propagates bus mapping faults.
    pub fn load_words(&mut self, addr: Addr, words: &[u32]) -> Result<(), SocError> {
        for (i, w) in words.iter().enumerate() {
            self.bus.debug_write(addr + (i as u32) * 4, *w)?;
        }
        Ok(())
    }

    /// Un-timed bulk read from RAM.
    ///
    /// # Errors
    ///
    /// Propagates bus mapping faults.
    pub fn read_words(&mut self, addr: Addr, count: usize) -> Result<Vec<u32>, SocError> {
        (0..count)
            .map(|i| {
                self.bus
                    .debug_read(addr + (i as u32) * 4)
                    .map_err(SocError::from)
            })
            .collect()
    }

    fn tick_system(&mut self) {
        self.ocp.tick(&mut self.bus);
        SystemBus::tick(&mut self.bus);
    }

    /// A timed single-word CPU write (register programming).
    ///
    /// # Errors
    ///
    /// Propagates bus errors.
    pub fn cpu_write(&mut self, addr: Addr, value: u32) -> Result<u64, SocError> {
        self.bus
            .try_begin(self.cpu, TxnRequest::write_word(addr, value))?;
        let mut cycles = 0;
        while self.bus.poll(self.cpu) == PortState::Pending {
            self.tick_system();
            cycles += 1;
        }
        self.bus
            .take_completion(self.cpu)
            .expect("completion present")?;
        Ok(cycles)
    }

    /// A timed single-word CPU read.
    ///
    /// # Errors
    ///
    /// Propagates bus errors.
    pub fn cpu_read(&mut self, addr: Addr) -> Result<(u32, u64), SocError> {
        self.bus.try_begin(self.cpu, TxnRequest::read_word(addr))?;
        let mut cycles = 0;
        while self.bus.poll(self.cpu) == PortState::Pending {
            self.tick_system();
            cycles += 1;
        }
        let c = self
            .bus
            .take_completion(self.cpu)
            .expect("completion present")?;
        Ok((c.data[0], cycles))
    }

    /// Programs the OCP (banks + program size) through timed register
    /// writes, exactly as the driver would.
    ///
    /// # Errors
    ///
    /// Propagates bus errors.
    pub fn configure(&mut self, banks: &[(u8, Addr)], prog_size: u32) -> Result<u64, SocError> {
        let mut cycles = 0;
        for &(bank, base) in banks {
            cycles += self.cpu_write(
                self.config.ocp_base + ouessant::regs::REG_BANK0 + 4 * u32::from(bank),
                base,
            )?;
        }
        cycles += self.cpu_write(
            self.config.ocp_base + ouessant::regs::REG_PROG_SIZE,
            prog_size,
        )?;
        Ok(cycles)
    }

    /// Writes the start bit and runs the system until the CPU observes
    /// completion, returning the cycle accounting.
    ///
    /// # Errors
    ///
    /// [`SocError::Ocp`] if the controller faults, [`SocError::Timeout`]
    /// if `max_cycles` elapse first.
    pub fn start_and_wait(&mut self, max_cycles: u64) -> Result<OffloadReport, SocError> {
        let ie = matches!(self.config.completion, CompletionMode::Interrupt);
        let ctrl_value = ouessant::regs::CTRL_S | if ie { ouessant::regs::CTRL_IE } else { 0 };
        let config_cycles =
            self.cpu_write(self.config.ocp_base + ouessant::regs::REG_CTRL, ctrl_value)?;

        let mut run_cycles = 0u64;
        let mut polls = 0u64;
        let mut poll_outstanding = false;
        let mut next_poll = match self.config.completion {
            CompletionMode::Polling { interval } => interval,
            CompletionMode::Interrupt => u64::MAX,
        };

        loop {
            // Event-horizon fast-forward: leap over cycles that provably
            // cannot change observable state, so the tick below always
            // lands on (or before) the next event. Clamped to the
            // timeout boundary and, in polling mode, to the next poll
            // issue so both fire at the identical simulated cycle as
            // cycle-by-cycle stepping.
            if self.config.fast_forward {
                let horizon = ouessant_sim::min_horizon(
                    NextEvent::horizon(&self.ocp),
                    NextEvent::horizon(&self.bus),
                );
                // A quiescent system (e.g. a program that halted without
                // setting D) still times out: leap straight to budget.
                let mut skip = horizon.map_or(u64::MAX, |h| u64::from(h).saturating_sub(1));
                skip = skip.min(max_cycles.saturating_sub(run_cycles));
                if let CompletionMode::Polling { .. } = self.config.completion {
                    if !poll_outstanding {
                        // The poll issues when the post-tick cycle count
                        // reaches `next_poll`, so stop the leap one short.
                        skip = skip.min(next_poll.saturating_sub(run_cycles).saturating_sub(1));
                    }
                }
                if skip > 0 {
                    let leap = ouessant_sim::Cycle::new(skip);
                    NextEvent::advance(&mut self.ocp, leap);
                    NextEvent::advance(&mut self.bus, leap);
                    run_cycles += skip;
                }
            }
            self.tick_system();
            run_cycles += 1;
            if run_cycles > max_cycles {
                return Err(SocError::Timeout { budget: max_cycles });
            }
            if let Some(fault) = self.ocp.fault() {
                return Err(SocError::Ocp(fault.clone()));
            }
            match self.config.completion {
                CompletionMode::Interrupt => {
                    if self.ocp.irq().is_raised() {
                        // Interrupt handler: acknowledge by reading CTRL.
                        self.ocp.irq().clear();
                        let (ctrl, ack_cycles) =
                            self.cpu_read(self.config.ocp_base + ouessant::regs::REG_CTRL)?;
                        run_cycles += ack_cycles;
                        debug_assert!(ctrl & ouessant::regs::CTRL_D != 0);
                        break;
                    }
                }
                CompletionMode::Polling { interval } => {
                    if poll_outstanding {
                        if self.bus.poll(self.cpu) == PortState::Complete {
                            let c = self
                                .bus
                                .take_completion(self.cpu)
                                .expect("completion present")?;
                            poll_outstanding = false;
                            polls += 1;
                            if c.data[0] & ouessant::regs::CTRL_D != 0 {
                                break;
                            }
                            next_poll = run_cycles + interval;
                        }
                    } else if run_cycles >= next_poll {
                        self.bus.try_begin(
                            self.cpu,
                            TxnRequest::read_word(self.config.ocp_base + ouessant::regs::REG_CTRL),
                        )?;
                        poll_outstanding = true;
                    }
                }
            }
        }

        let stats = self.ocp.stats().controller;
        Ok(OffloadReport {
            config_cycles,
            run_cycles,
            words_transferred: stats.words_transferred,
            ocp_active_cycles: stats.active_cycles,
            rac_wait_cycles: stats.rac_wait_cycles,
            polls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_isa::assemble;
    use ouessant_rac::passthrough::PassthroughRac;

    fn setup(completion: CompletionMode) -> (Soc, u32, u32, u32) {
        let config = SocConfig {
            completion,
            ..SocConfig::default()
        };
        let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
        let ram = soc.config().ram_base;
        let prog_at = ram;
        let in_at = ram + 0x1000;
        let out_at = ram + 0x2000;
        let program =
            assemble("mvtc BANK1,0,DMA16,FIFO0\nexecs 16\nmvfc BANK2,0,DMA16,FIFO0\neop").unwrap();
        soc.load_words(prog_at, &program.to_words()).unwrap();
        let input: Vec<u32> = (0..16).map(|i| 0xF00D_0000 + i).collect();
        soc.load_words(in_at, &input).unwrap();
        soc.configure(
            &[(0, prog_at), (1, in_at), (2, out_at)],
            program.len() as u32,
        )
        .unwrap();
        (soc, prog_at, in_at, out_at)
    }

    #[test]
    fn interrupt_mode_offload() {
        let (mut soc, _, _, out_at) = setup(CompletionMode::Interrupt);
        let report = soc.start_and_wait(100_000).unwrap();
        assert_eq!(report.words_transferred, 32);
        assert_eq!(report.polls, 0);
        assert!(report.run_cycles > 32, "transfers take real time");
        let out = soc.read_words(out_at, 16).unwrap();
        assert_eq!(out[0], 0xF00D_0000);
        assert_eq!(out[15], 0xF00D_000F);
    }

    #[test]
    fn polling_mode_offload() {
        let (mut soc, _, _, out_at) = setup(CompletionMode::Polling { interval: 50 });
        let report = soc.start_and_wait(100_000).unwrap();
        assert!(report.polls >= 1, "at least the final poll");
        let out = soc.read_words(out_at, 16).unwrap();
        assert_eq!(out[7], 0xF00D_0007);
    }

    #[test]
    fn polling_creates_bus_contention() {
        let (mut soc, ..) = setup(CompletionMode::Polling { interval: 10 });
        soc.start_and_wait(100_000).unwrap();
        assert!(
            soc.bus().stats().contention_cycles > 0,
            "aggressive polling must contend with OCP DMA"
        );
    }

    #[test]
    fn timeout_reported() {
        // Program whose RAC never finishes (passthrough started for more
        // words than provided).
        let config = SocConfig::default();
        let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
        let ram = soc.config().ram_base;
        let program = assemble("execs 4\neop").unwrap(); // wants 4 words, gets none
        soc.load_words(ram, &program.to_words()).unwrap();
        soc.configure(&[(0, ram)], program.len() as u32).unwrap();
        assert_eq!(
            soc.start_and_wait(5_000),
            Err(SocError::Timeout { budget: 5_000 })
        );
    }

    #[test]
    fn ocp_fault_surfaces() {
        let config = SocConfig::default();
        let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
        let ram = soc.config().ram_base;
        // Bank 3 never configured.
        let program = assemble("mvtc BANK3,0,DMA8,FIFO0\neop").unwrap();
        soc.load_words(ram, &program.to_words()).unwrap();
        soc.configure(&[(0, ram)], program.len() as u32).unwrap();
        match soc.start_and_wait(100_000) {
            Err(SocError::Ocp(_)) => {}
            other => panic!("expected OCP fault, got {other:?}"),
        }
    }

    #[test]
    fn config_cycles_are_counted() {
        let (soc, ..) = setup(CompletionMode::Interrupt);
        // configure() already ran in setup; run a fresh one to observe.
        drop(soc);
        let config = SocConfig::default();
        let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
        let cycles = soc
            .configure(
                &[(0, soc.config().ram_base), (1, soc.config().ram_base + 64)],
                4,
            )
            .unwrap();
        // 3 register writes, each a single-beat bus transaction.
        assert!(cycles >= 9, "three timed writes, got {cycles}");
    }

    #[test]
    fn fast_forward_matches_cycle_stepping() {
        for completion in [
            CompletionMode::Interrupt,
            CompletionMode::Polling { interval: 50 },
        ] {
            let run = |fast_forward: bool| {
                let config = SocConfig {
                    completion,
                    fast_forward,
                    ..SocConfig::default()
                };
                let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
                let ram = soc.config().ram_base;
                let program = assemble(
                    "mvtc BANK1,0,DMA16,FIFO0\nexecs 16\nwait 200\nmvfc BANK2,0,DMA16,FIFO0\neop",
                )
                .unwrap();
                soc.load_words(ram, &program.to_words()).unwrap();
                let input: Vec<u32> = (0..16).map(|i| 0xBEEF_0000 + i).collect();
                soc.load_words(ram + 0x1000, &input).unwrap();
                soc.configure(
                    &[(0, ram), (1, ram + 0x1000), (2, ram + 0x2000)],
                    program.len() as u32,
                )
                .unwrap();
                let report = soc.start_and_wait(100_000).unwrap();
                let out = soc.read_words(ram + 0x2000, 16).unwrap();
                let bus = soc.bus().stats();
                (report, out, bus.cycles, bus.beats, bus.contention_cycles)
            };
            let fast = run(true);
            let slow = run(false);
            assert_eq!(
                fast, slow,
                "fast-forward must be bit-exact ({completion:?})"
            );
        }
    }

    #[test]
    fn cpu_read_round_trips() {
        let config = SocConfig::default();
        let mut soc = Soc::new(Box::new(PassthroughRac::new(0)), config);
        let ram = soc.config().ram_base;
        soc.load_words(ram + 0x100, &[0x5EED]).unwrap();
        let (value, cycles) = soc.cpu_read(ram + 0x100).unwrap();
        assert_eq!(value, 0x5EED);
        assert!(cycles >= 3);
    }
}
