//! # SoC substrate: CPU cost model, software baselines, OS models, and
//! the full-system runner
//!
//! The paper evaluates Ouessant on a Leon3 (SPARCv8 soft-core, no FPU)
//! SoC running baremetal and Linux. This crate rebuilds that *system
//! context* so the OCP (crate `ouessant`) can be measured end to end:
//!
//! * [`cpu`] — a Leon3-class in-order cost model: software kernels are
//!   executed natively and charged per dynamic operation (integer ALU,
//!   integer multiply, soft-float operations, loads/stores, branches);
//! * [`sw`] — the instrumented, time-optimized software baselines of
//!   Table I's *SW* column: a fast fixed-point 2-D IDCT (bit-exact with
//!   the hardware data path) and a soft-float radix-2 FFT;
//! * [`os`] — OS/driver overhead models: baremetal, the paper's
//!   mmap-based zero-copy Linux driver, and a copying driver for
//!   comparison (§IV);
//! * [`soc`] — the assembled system: CPU master + SRAM + OCP on the
//!   AHB-like bus, with polling- or interrupt-based completion;
//! * [`app`] — the application layer that reproduces Table I and the
//!   in-text results: `accelerated_idct`, `accelerated_dft`, their
//!   software twins, and `table1()`;
//! * [`alloc`] — a first-fit shared-SRAM bank allocator used by the
//!   `ouessant-farm` serving layer to carve per-job regions.
//!
//! ## Example
//!
//! Reproduce one row of Table I:
//!
//! ```
//! use ouessant_soc::app::{dft_experiment, ExperimentConfig};
//!
//! let row = dft_experiment(&ExperimentConfig::paper_linux())?;
//! assert_eq!(row.latency, 2485);             // Lat. column
//! assert!(row.gain > 50.0 && row.gain < 120.0); // paper: 85
//! # Ok::<(), ouessant_soc::app::AppError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod app;
pub mod cpu;
pub mod driver;
pub mod os;
pub mod soc;
pub mod standalone;
pub mod sw;

pub use alloc::{AllocError, AllocStats, BankAllocator, Region};
pub use app::{
    dft_experiment, idct_experiment, table1, transfer_experiment, ExperimentConfig, Table1Row,
    TransferReport,
};
pub use cpu::{CostModel, CpuCosts, OpCounts};
pub use driver::{DriverError, DriverStats, OuessantDevice};
pub use os::OsModel;
pub use soc::{CompletionMode, OffloadReport, Soc, SocConfig};
pub use standalone::StandaloneSystem;
