//! The application layer: the paper's §IV usage model and the §V
//! experiments.
//!
//! "In an Ouessant-accelerated application, the program configures the
//! Ouessant, providing its parameters (pointers to arrays), launches the
//! computation and waits for the results." This module is that program,
//! for both of the paper's workloads, plus the software-only variants —
//! which together regenerate **Table I** and the in-text §V-B numbers.

use std::error::Error;
use std::fmt;

use ouessant_isa::{Program, ProgramBuilder};
use ouessant_rac::dft::{dft_latency, DftRac};
use ouessant_rac::fixed::to_q15;
use ouessant_rac::idct::{IdctRac, BLOCK_LEN, IDCT_LATENCY};
use ouessant_rac::rac::Rac;
use ouessant_sim::bus::Addr;

use crate::cpu::{CostModel, CpuCosts};
use crate::os::OsModel;
use crate::soc::{CompletionMode, Soc, SocConfig, SocError};
use crate::sw::{sw_fft_f64, sw_idct_8x8};

/// Error type of the experiment runners.
#[derive(Debug)]
pub enum AppError {
    /// The underlying full-system run failed.
    Soc(SocError),
    /// Building the microcode failed (invalid parameters).
    Microcode(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Soc(e) => write!(f, "{e}"),
            AppError::Microcode(m) => write!(f, "microcode generation failed: {m}"),
        }
    }
}

impl Error for AppError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AppError::Soc(e) => Some(e),
            AppError::Microcode(_) => None,
        }
    }
}

impl From<SocError> for AppError {
    fn from(e: SocError) -> Self {
        AppError::Soc(e)
    }
}

/// Experiment parameters shared by every run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// The SoC (bus, SRAM, completion mode).
    pub soc: SocConfig,
    /// The OS/driver overhead model.
    pub os: OsModel,
    /// CPU cost calibration for the software baselines.
    pub cpu: CpuCosts,
    /// DMA burst length for the generated microcode (the paper's
    /// Figure 4 uses `DMA64`).
    pub burst: u16,
    /// DFT size in complex points (the paper uses 256).
    pub dft_points: usize,
}

impl ExperimentConfig {
    /// The configuration of the paper's Table I: Linux with the mmap
    /// driver, interrupt completion, DMA64 microcode, 256-point DFT.
    #[must_use]
    pub fn paper_linux() -> Self {
        Self {
            soc: SocConfig {
                completion: CompletionMode::Interrupt,
                ..SocConfig::default()
            },
            os: OsModel::linux_mmap(),
            cpu: CpuCosts::leon3(),
            burst: 64,
            dft_points: 256,
        }
    }

    /// The §V-B baremetal variant ("without Linux, the DFT took 4000
    /// cycles").
    #[must_use]
    pub fn paper_baremetal() -> Self {
        Self {
            os: OsModel::Baremetal,
            ..Self::paper_linux()
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper_linux()
    }
}

/// One row of the reproduced Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name (`IDCT` or `DFT`).
    pub name: String,
    /// Accelerator processing latency in cycles (*Lat.*).
    pub latency: u64,
    /// Hardware-offload time in cycles (*HW*): machine cycles plus OS
    /// overhead.
    pub hw_cycles: u64,
    /// Software baseline time in cycles (*SW*).
    pub sw_cycles: u64,
    /// Acceleration factor (*Gain* = SW / HW).
    pub gain: f64,
    /// Machine-level breakdown (before OS overhead).
    pub machine_cycles: u64,
    /// OS overhead applied.
    pub os_overhead: u64,
    /// Data words moved.
    pub words: u64,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} Lat. {:>6}  HW {:>8}  SW {:>8}  Gain {:>6.2}",
            self.name, self.latency, self.hw_cycles, self.sw_cycles, self.gain
        )
    }
}

/// Memory layout used by the generated microcode: program in bank 0,
/// input in bank 1, output in bank 2 (exactly Figure 4's bank usage).
#[derive(Debug, Clone, Copy)]
struct Layout {
    program: Addr,
    input: Addr,
    output: Addr,
}

fn layout(soc: &SocConfig) -> Layout {
    let ram = soc.ram_base;
    Layout {
        program: ram,
        input: ram + 0x4000,
        output: ram + 0x1_0000,
    }
}

/// Generates the offload microcode for a workload moving `words_in`
/// words to the RAC and `words_out` back, in `burst`-word chunks — the
/// generalized Figure 4 program.
fn offload_microcode(
    words_in: u32,
    words_out: u32,
    burst: u16,
    op: u16,
) -> Result<Program, AppError> {
    ProgramBuilder::new()
        .transfer_to_coprocessor(1, 0, words_in, burst, 0)
        .map_err(|e| AppError::Microcode(e.to_string()))?
        .execs_op(op)
        .transfer_from_coprocessor(2, 0, words_out, burst, 0)
        .map_err(|e| AppError::Microcode(e.to_string()))?
        .eop()
        .finish()
        .map_err(|e| AppError::Microcode(e.to_string()))
}

/// Runs one offload end to end and returns `(machine_cycles, words,
/// outputs)`.
fn run_offload(
    rac: Box<dyn Rac>,
    config: &ExperimentConfig,
    program: &Program,
    input: &[u32],
    words_out: usize,
) -> Result<(u64, u64, Vec<u32>), AppError> {
    let mut soc = Soc::new(rac, config.soc);
    let l = layout(&config.soc);
    soc.load_words(l.program, &program.to_words())?;
    soc.load_words(l.input, input)?;
    let config_cycles = soc.configure(
        &[(0, l.program), (1, l.input), (2, l.output)],
        program.len() as u32,
    )?;
    let report = soc.start_and_wait(50_000_000)?;
    let outputs = soc.read_words(l.output, words_out)?;
    Ok((
        config_cycles + report.machine_cycles(),
        report.words_transferred,
        outputs,
    ))
}

/// A deterministic pseudo-random generator shared by the experiments
/// (keeps paper-reproduction runs identical between invocations).
fn lcg(seed: u32) -> impl FnMut() -> u32 {
    let mut state = seed;
    move || {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        state
    }
}

/// The IDCT row of Table I: one 8×8 block offloaded through the OCP
/// versus the time-optimized software IDCT.
///
/// # Errors
///
/// Propagates system-level failures as [`AppError`].
pub fn idct_experiment(config: &ExperimentConfig) -> Result<Table1Row, AppError> {
    let mut rnd = lcg(0xC0FF_EE01);
    let coeffs: Vec<i32> = (0..BLOCK_LEN)
        .map(|_| ((rnd() >> 16) as i32 % 2048) - 1024)
        .collect();
    let words: Vec<u32> = coeffs.iter().map(|&c| c as u32).collect();

    let program = offload_microcode(
        BLOCK_LEN as u32,
        BLOCK_LEN as u32,
        config.burst.min(BLOCK_LEN as u16),
        0,
    )?;
    let (machine_cycles, words_moved, hw_out) = run_offload(
        Box::new(IdctRac::new()),
        config,
        &program,
        &words,
        BLOCK_LEN,
    )?;
    let os_overhead = config.os.invocation_overhead(words_moved);
    let hw_cycles = machine_cycles + os_overhead;

    let mut cpu = CostModel::new(config.cpu);
    let sw_out = sw_idct_8x8(&mut cpu, &coeffs);
    let sw_cycles = cpu.cycles();

    // Functional check: offloaded result is bit-exact with software.
    let hw_out_i32: Vec<i32> = hw_out.iter().map(|&w| w as i32).collect();
    assert_eq!(hw_out_i32, sw_out, "HW/SW IDCT must agree bit-for-bit");

    Ok(Table1Row {
        name: "IDCT".to_string(),
        latency: IDCT_LATENCY,
        hw_cycles,
        sw_cycles,
        gain: sw_cycles as f64 / hw_cycles as f64,
        machine_cycles,
        os_overhead,
        words: words_moved,
    })
}

/// The DFT row of Table I: one 256-point transform offloaded through
/// the OCP versus the soft-float software FFT.
///
/// # Errors
///
/// Propagates system-level failures as [`AppError`].
pub fn dft_experiment(config: &ExperimentConfig) -> Result<Table1Row, AppError> {
    let n = config.dft_points;
    let mut rnd = lcg(0xDF7_0002);
    let samples: Vec<(i32, i32)> = (0..n)
        .map(|_| {
            let re = ((rnd() >> 16) as i32 % 16384) - 8192;
            let im = ((rnd() >> 16) as i32 % 16384) - 8192;
            (re, im)
        })
        .collect();
    let words: Vec<u32> = samples
        .iter()
        .flat_map(|&(re, im)| [re as u32, im as u32])
        .collect();

    let words_each_way = (n * 2) as u32;
    let program = offload_microcode(words_each_way, words_each_way, config.burst, 0)?;
    // Size the FIFOs to the workload ("FIFO memory is … strongly
    // dependent on the accelerator"): the whole block must fit before
    // `exec` launches the core.
    let mut config = *config;
    config.soc.ocp.fifo_depth = config.soc.ocp.fifo_depth.max(words_each_way as usize);
    let (machine_cycles, words_moved, _hw_out) = run_offload(
        Box::new(DftRac::new(n)),
        &config,
        &program,
        &words,
        words.len(),
    )?;
    let config = &config;
    let os_overhead = config.os.invocation_overhead(words_moved);
    let hw_cycles = machine_cycles + os_overhead;

    let mut cpu = CostModel::new(config.cpu);
    let float_in: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(re, im)| {
            (
                f64::from(re) / f64::from(1 << 15),
                f64::from(im) / f64::from(1 << 15),
            )
        })
        .collect();
    let _ = sw_fft_f64(&mut cpu, &float_in);
    let sw_cycles = cpu.cycles();

    Ok(Table1Row {
        name: "DFT".to_string(),
        latency: dft_latency(n),
        hw_cycles,
        sw_cycles,
        gain: sw_cycles as f64 / hw_cycles as f64,
        machine_cycles,
        os_overhead,
        words: words_moved,
    })
}

/// Regenerates the paper's **Table I** (both rows, Linux/mmap,
/// interrupt mode).
///
/// # Errors
///
/// Propagates system-level failures as [`AppError`].
pub fn table1() -> Result<Vec<Table1Row>, AppError> {
    let config = ExperimentConfig::paper_linux();
    Ok(vec![idct_experiment(&config)?, dft_experiment(&config)?])
}

/// Result of a pure-transfer experiment (passthrough RAC): the setup
/// behind §V-B's "around 1.5 cycles per word" analysis.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// Machine cycles of the whole offload (config + run).
    pub machine_cycles: u64,
    /// Data words moved (both directions).
    pub words: u64,
    /// Burst length used.
    pub burst: u16,
}

impl TransferReport {
    /// Effective cycles per word, end to end.
    #[must_use]
    pub fn cycles_per_word(&self) -> f64 {
        self.machine_cycles as f64 / self.words as f64
    }
}

/// Moves `words_each_way` words through a zero-latency passthrough RAC
/// and back, measuring pure integration overhead.
///
/// # Errors
///
/// Propagates system-level failures as [`AppError`].
pub fn transfer_experiment(
    config: &ExperimentConfig,
    words_each_way: u32,
) -> Result<TransferReport, AppError> {
    use ouessant_rac::passthrough::PassthroughRac;

    let mut rnd = lcg(words_each_way ^ 0xBEEF);
    let input: Vec<u32> = (0..words_each_way).map(|_| rnd()).collect();
    let program = offload_microcode(
        words_each_way,
        words_each_way,
        config.burst,
        u16::try_from(words_each_way).unwrap_or(0),
    )?;
    let (machine_cycles, words, out) = run_offload(
        Box::new(PassthroughRac::new(0)),
        config,
        &program,
        &input,
        input.len(),
    )?;
    assert_eq!(out, input, "passthrough must deliver the data unchanged");
    Ok(TransferReport {
        machine_cycles,
        words,
        burst: config.burst,
    })
}

/// Convenience: a DFT over raw `f64` samples through the accelerator,
/// demonstrating the "software library" transparency of §II-B (the user
/// never sees registers or microcode).
///
/// # Errors
///
/// Propagates system-level failures as [`AppError`].
pub fn accelerated_dft(
    config: &ExperimentConfig,
    input: &[(f64, f64)],
) -> Result<Vec<(f64, f64)>, AppError> {
    let n = input.len();
    let samples: Vec<u32> = input
        .iter()
        .flat_map(|&(re, im)| [to_q15(re) as u32, to_q15(im) as u32])
        .collect();
    let words_each_way = (n * 2) as u32;
    let program = offload_microcode(words_each_way, words_each_way, config.burst, 0)?;
    let (_cycles, _words, out) = run_offload(
        Box::new(DftRac::new(n)),
        config,
        &program,
        &samples,
        samples.len(),
    )?;
    Ok(out
        .chunks_exact(2)
        .map(|w| {
            (
                f64::from(w[0] as i32) / f64::from(1 << 15),
                f64::from(w[1] as i32) / f64::from(1 << 15),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 2);
        let idct = &rows[0];
        let dft = &rows[1];

        // Lat. column is exact.
        assert_eq!(idct.latency, 18);
        assert_eq!(dft.latency, 2485);

        // Paper: IDCT HW 3000, SW 5000, gain 1.67.
        assert!(
            (2_000..=4_500).contains(&idct.hw_cycles),
            "IDCT HW {} should be near 3000",
            idct.hw_cycles
        );
        assert!(
            (3_500..=6_500).contains(&idct.sw_cycles),
            "IDCT SW {} should be near 5000",
            idct.sw_cycles
        );
        assert!(
            idct.gain > 1.0 && idct.gain < 3.0,
            "IDCT gain {} should be modest (paper: 1.67)",
            idct.gain
        );

        // Paper: DFT HW 7000, SW 600k, gain 85.
        assert!(
            (5_500..=8_500).contains(&dft.hw_cycles),
            "DFT HW {} should be near 7000",
            dft.hw_cycles
        );
        assert!(
            (450_000..=750_000).contains(&dft.sw_cycles),
            "DFT SW {} should be near 600k",
            dft.sw_cycles
        );
        assert!(
            dft.gain > 50.0 && dft.gain < 120.0,
            "DFT gain {} should be near 85",
            dft.gain
        );

        // Orderings the paper's story depends on.
        assert!(dft.gain > idct.gain * 10.0, "DFT gain dwarfs IDCT gain");
        assert!(idct.gain > 1.0, "even the IDCT wins under Linux");
    }

    #[test]
    fn dft_words_match_paper_accounting() {
        let row = dft_experiment(&ExperimentConfig::paper_linux()).unwrap();
        assert_eq!(row.words, 1024, "the paper's '1024 32-bits words'");
    }

    #[test]
    fn baremetal_dft_near_4000() {
        let row = dft_experiment(&ExperimentConfig::paper_baremetal()).unwrap();
        assert_eq!(row.os_overhead, 0);
        assert!(
            (3_400..=4_600).contains(&row.machine_cycles),
            "baremetal DFT {} should be near the paper's 4000",
            row.machine_cycles
        );
    }

    #[test]
    fn linux_overhead_near_3000() {
        let bare = dft_experiment(&ExperimentConfig::paper_baremetal()).unwrap();
        let linux = dft_experiment(&ExperimentConfig::paper_linux()).unwrap();
        let overhead = linux.hw_cycles - bare.hw_cycles;
        assert!(
            (2_500..=3_500).contains(&overhead),
            "Linux overhead {overhead} should be near the paper's 3000"
        );
    }

    #[test]
    fn transfer_efficiency_near_paper() {
        // §V-B: "around 1.5 cycles per word were required".
        let row = dft_experiment(&ExperimentConfig::paper_baremetal()).unwrap();
        let compute = dft_latency(256);
        let transfer_cycles = row.machine_cycles.saturating_sub(compute);
        let per_word = transfer_cycles as f64 / row.words as f64;
        assert!(
            (1.0..=2.0).contains(&per_word),
            "{per_word:.2} cycles/word should be near 1.5"
        );
    }

    #[test]
    fn accelerated_dft_is_transparent() {
        let input: Vec<(f64, f64)> = (0..64)
            .map(|t| ((t as f64 * 0.3).sin() * 0.4, 0.0))
            .collect();
        let out = accelerated_dft(&ExperimentConfig::paper_linux(), &input).unwrap();
        let golden = ouessant_rac::dft::dft_f64(&input);
        for ((ar, ai), (gr, gi)) in out.iter().zip(&golden) {
            assert!((ar - gr).abs() < 0.01 && (ai - gi).abs() < 0.01);
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = dft_experiment(&ExperimentConfig::paper_linux()).unwrap();
        let b = dft_experiment(&ExperimentConfig::paper_linux()).unwrap();
        assert_eq!(a.hw_cycles, b.hw_cycles);
        assert_eq!(a.sw_cycles, b.sw_cycles);
    }
}
