//! The instrumented, time-optimized software baselines (Table I's *SW*
//! column).
//!
//! Two kernels, mirroring the paper's two accelerators:
//!
//! * [`sw_idct_8x8`] — a fast fixed-point 2-D IDCT using the even/odd
//!   butterfly decomposition (half the multiplies of the direct form).
//!   Because the decomposition only *regroups* the same 64-bit integer
//!   accumulations, its output is **bit-exact** with the hardware data
//!   path [`ouessant_rac::idct::idct_2d_fixed`] — software fallback and
//!   accelerator produce identical pixels.
//! * [`sw_fft_f64`] — a radix-2 decimation-in-time FFT over `f64`.
//!   The Leon3 has no FPU, so every double operation is charged at
//!   soft-float helper cost; this is what makes the paper's software
//!   DFT cost 600·10³ cycles while the hardware core needs 2485.
//!
//! Both kernels thread a [`CostModel`] and charge their dynamic
//! operations explicitly; the counts follow what a compiler would emit
//! for the inner loops (constants in registers, one load per array
//! access, one branch per loop iteration).

use std::f64::consts::PI;

use crate::cpu::CostModel;

/// Fractional bits of the IDCT cosine table (matches the RAC data path).
const SCALE_BITS: u32 = 14;
/// Extra precision bits between the two 1-D passes (matches the RAC).
const PASS_BITS: u32 = 3;

fn cos_table() -> [[i32; 8]; 8] {
    let mut t = [[0i32; 8]; 8];
    for (u, row) in t.iter_mut().enumerate() {
        let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
        for (x, e) in row.iter_mut().enumerate() {
            let v = cu / 2.0 * ((2 * x as u32 + 1) as f64 * u as f64 * PI / 16.0).cos();
            *e = (v * f64::from(1 << SCALE_BITS)).round() as i32;
        }
    }
    t
}

/// One 8-point 1-D IDCT with even/odd decomposition, charging ops.
///
/// Accumulates `even[x] = Σ_{u even} in[u]·T[u][x]` and
/// `odd[x] = Σ_{u odd} in[u]·T[u][x]` for `x = 0..4`, then
/// `out[x] = even + odd`, `out[7-x] = even − odd` — exactly the direct
/// form's sums regrouped, so the rounding of the final shift is
/// unchanged.
fn idct_1d_fast(
    cpu: &mut CostModel,
    table: &[[i32; 8]; 8],
    input: &[i64; 8],
    shift: u32,
) -> [i64; 8] {
    let mut out = [0i64; 8];
    for x in 0..4 {
        let mut even: i64 = 0;
        let mut odd: i64 = 0;
        for u in (0..8).step_by(2) {
            // load coefficient, multiply-accumulate (table in registers).
            cpu.load(1);
            cpu.mul(1);
            cpu.alu(1);
            even += input[u] * i64::from(table[u][x]);
        }
        for u in (1..8).step_by(2) {
            cpu.load(1);
            cpu.mul(1);
            cpu.alu(1);
            odd += input[u] * i64::from(table[u][x]);
        }
        // Combine, round and shift both mirror outputs.
        cpu.alu(6); // add, sub, two rounding adds, two shifts
        cpu.store(2);
        cpu.branch(1); // loop
        let round = 1i64 << (shift - 1);
        out[x] = (even + odd + round) >> shift;
        out[7 - x] = (even - odd + round) >> shift;
    }
    out
}

/// The time-optimized software 2-D IDCT (bit-exact with the RAC).
///
/// # Panics
///
/// Panics if `coeffs` is not 64 elements long.
///
/// # Examples
///
/// ```
/// use ouessant_soc::cpu::CostModel;
/// use ouessant_soc::sw::sw_idct_8x8;
/// use ouessant_rac::idct::idct_2d_fixed;
///
/// let coeffs: Vec<i32> = (0..64).map(|i| (i * 31 % 800) - 400).collect();
/// let mut cpu = CostModel::leon3();
/// let sw = sw_idct_8x8(&mut cpu, &coeffs);
/// assert_eq!(sw, idct_2d_fixed(&coeffs)); // bit-exact
/// assert!(cpu.cycles() > 1_000); // and it costs real CPU time
/// ```
#[must_use]
pub fn sw_idct_8x8(cpu: &mut CostModel, coeffs: &[i32]) -> Vec<i32> {
    assert_eq!(coeffs.len(), 64, "an 8x8 block has 64 coefficients");
    cpu.call(1);
    let table = cos_table(); // compile-time constant: no charged ops
    let mut tmp = [0i64; 64];
    // Pass 1 over rows.
    for r in 0..8 {
        cpu.branch(1);
        cpu.alu(2); // row index arithmetic
        let mut row = [0i64; 8];
        for u in 0..8 {
            cpu.load(1);
            row[u] = i64::from(coeffs[r * 8 + u]);
        }
        let out = idct_1d_fast(cpu, &table, &row, SCALE_BITS - PASS_BITS);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&out);
    }
    // Pass 2 over columns.
    let mut result = vec![0i32; 64];
    for c in 0..8 {
        cpu.branch(1);
        cpu.alu(2);
        let mut col = [0i64; 8];
        for r in 0..8 {
            cpu.load(1);
            col[r] = tmp[r * 8 + c];
        }
        let out = idct_1d_fast(cpu, &table, &col, SCALE_BITS + PASS_BITS);
        for r in 0..8 {
            cpu.store(1);
            result[r * 8 + c] = out[r] as i32;
        }
    }
    result
}

/// The time-optimized software DFT: radix-2 DIT FFT over `f64`, scaled
/// by `1/N` like the hardware core, with soft-float costing.
///
/// # Panics
///
/// Panics unless `input.len()` is a power of two ≥ 2.
///
/// # Examples
///
/// ```
/// use ouessant_soc::cpu::CostModel;
/// use ouessant_soc::sw::sw_fft_f64;
///
/// let input = vec![(1.0, 0.0); 256];
/// let mut cpu = CostModel::leon3();
/// let out = sw_fft_f64(&mut cpu, &input);
/// assert!((out[0].0 - 1.0).abs() < 1e-9); // DC bin = mean
/// // The paper's SW figure for N=256: 600·10³ cycles.
/// assert!(cpu.cycles() > 400_000 && cpu.cycles() < 800_000);
/// ```
#[must_use]
pub fn sw_fft_f64(cpu: &mut CostModel, input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "FFT size must be a power of two"
    );
    let stages = n.trailing_zeros();
    cpu.call(1);

    // Bit-reversal copy.
    let mut data: Vec<(f64, f64)> = vec![(0.0, 0.0); n];
    for (i, &x) in input.iter().enumerate() {
        cpu.alu(4); // reversal arithmetic
        cpu.load(2);
        cpu.store(2);
        cpu.branch(1);
        let j = i.reverse_bits() >> (usize::BITS - stages);
        data[j] = x;
    }

    // Twiddle table (precomputed once per program in a real decoder; we
    // charge the loads at use sites, not the trigonometry here).
    let twiddle: Vec<(f64, f64)> = (0..n / 2)
        .map(|k| {
            let angle = -2.0 * PI * k as f64 / n as f64;
            (angle.cos(), angle.sin())
        })
        .collect();

    let mut half = 1usize;
    for _ in 0..stages {
        cpu.branch(1);
        let step = n / (2 * half);
        for group in 0..step {
            cpu.branch(1);
            cpu.alu(2);
            for pair in 0..half {
                // Complex butterfly: t = W·b; (a, b) = (a+t, a−t).
                cpu.branch(1);
                cpu.alu(6); // index arithmetic
                cpu.load(6); // a, b, W (2 words each)
                cpu.fmul(4);
                cpu.fadd(6);
                cpu.store(4);
                let top = group * 2 * half + pair;
                let bot = top + half;
                let (wr, wi) = twiddle[pair * step];
                let (br, bi) = data[bot];
                let tr = wr * br - wi * bi;
                let ti = wr * bi + wi * br;
                let (ar, ai) = data[top];
                data[top] = (ar + tr, ai + ti);
                data[bot] = (ar - tr, ai - ti);
            }
        }
        half *= 2;
    }

    // Scale by 1/N (multiply by the constant 1/n).
    let inv_n = 1.0 / n as f64;
    for v in &mut data {
        cpu.load(2);
        cpu.fmul(2);
        cpu.store(2);
        cpu.branch(1);
        v.0 *= inv_n;
        v.1 *= inv_n;
    }
    data
}

/// A direct (O(N²)) software DFT, charged the same way — the *naive*
/// baseline that a "time-optimized" implementation (the FFT above)
/// improves on. Used by the benches to show the optimization headroom
/// inside the software column itself.
#[must_use]
pub fn sw_dft_direct_f64(cpu: &mut CostModel, input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    cpu.call(1);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        cpu.branch(1);
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &(xr, xi)) in input.iter().enumerate() {
            cpu.branch(1);
            cpu.alu(4);
            cpu.load(4);
            cpu.fmul(4);
            cpu.fadd(4);
            let angle = -2.0 * PI * ((k * t) % n) as f64 / n as f64;
            let (s, c) = angle.sin_cos();
            re += xr * c - xi * s;
            im += xr * s + xi * c;
        }
        cpu.fmul(2);
        cpu.store(2);
        out.push((re / n as f64, im / n as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_rac::dft::dft_f64;
    use ouessant_rac::idct::{idct_2d_f64, idct_2d_fixed};

    fn pseudo_coeffs(seed: u32, len: usize, range: i32) -> Vec<i32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                ((state >> 16) as i32 % range) - range / 2
            })
            .collect()
    }

    #[test]
    fn sw_idct_bit_exact_with_hardware() {
        for seed in [1u32, 99, 0xABCD] {
            let coeffs = pseudo_coeffs(seed, 64, 2048);
            let mut cpu = CostModel::leon3();
            assert_eq!(sw_idct_8x8(&mut cpu, &coeffs), idct_2d_fixed(&coeffs));
        }
    }

    #[test]
    fn sw_idct_close_to_golden() {
        let coeffs = pseudo_coeffs(7, 64, 1024);
        let mut cpu = CostModel::leon3();
        let sw = sw_idct_8x8(&mut cpu, &coeffs);
        let golden = idct_2d_f64(&coeffs.iter().map(|&c| f64::from(c)).collect::<Vec<_>>());
        for (s, g) in sw.iter().zip(&golden) {
            assert!((f64::from(*s) - g).abs() <= 1.0);
        }
    }

    #[test]
    fn sw_idct_cost_matches_paper_order() {
        // Table I: SW IDCT = 5000 cycles on the Leon3.
        let coeffs = pseudo_coeffs(3, 64, 2048);
        let mut cpu = CostModel::leon3();
        let _ = sw_idct_8x8(&mut cpu, &coeffs);
        let cycles = cpu.cycles();
        assert!(
            (3_500..=6_500).contains(&cycles),
            "SW IDCT cost {cycles} should be near the paper's 5000"
        );
    }

    #[test]
    fn sw_fft_matches_reference() {
        let n = 256;
        let input: Vec<(f64, f64)> = (0..n)
            .map(|t| {
                let x = t as f64;
                ((x * 0.1).sin() * 0.4, (x * 0.07).cos() * 0.3)
            })
            .collect();
        let mut cpu = CostModel::leon3();
        let fft = sw_fft_f64(&mut cpu, &input);
        let reference = dft_f64(&input);
        for ((fr, fi), (gr, gi)) in fft.iter().zip(&reference) {
            assert!((fr - gr).abs() < 1e-9 && (fi - gi).abs() < 1e-9);
        }
    }

    #[test]
    fn sw_fft_cost_matches_paper_order() {
        // Table I: SW DFT (256 points) = 600·10³ cycles.
        let input = vec![(0.5, -0.25); 256];
        let mut cpu = CostModel::leon3();
        let _ = sw_fft_f64(&mut cpu, &input);
        let cycles = cpu.cycles();
        assert!(
            (450_000..=750_000).contains(&cycles),
            "SW DFT cost {cycles} should be near the paper's 600k"
        );
    }

    #[test]
    fn direct_dft_slower_than_fft() {
        let input = vec![(0.1, 0.2); 64];
        let mut fft_cpu = CostModel::leon3();
        let mut direct_cpu = CostModel::leon3();
        let a = sw_fft_f64(&mut fft_cpu, &input);
        let b = sw_dft_direct_f64(&mut direct_cpu, &input);
        for ((ar, ai), (br, bi)) in a.iter().zip(&b) {
            assert!((ar - br).abs() < 1e-9 && (ai - bi).abs() < 1e-9);
        }
        assert!(
            direct_cpu.cycles() > 3 * fft_cpu.cycles(),
            "direct {} vs fft {}",
            direct_cpu.cycles(),
            fft_cpu.cycles()
        );
    }

    #[test]
    fn fft_cost_scales_n_log_n() {
        let cost = |n: usize| {
            let input = vec![(0.1, 0.0); n];
            let mut cpu = CostModel::leon3();
            let _ = sw_fft_f64(&mut cpu, &input);
            cpu.cycles() as f64
        };
        let c128 = cost(128);
        let c512 = cost(512);
        // N log N: 512·9 / 128·7 ≈ 5.1×.
        let ratio = c512 / c128;
        assert!((4.0..=6.5).contains(&ratio), "ratio {ratio}");
    }
}
