//! A shared-memory bank allocator for concurrent offload jobs.
//!
//! The paper's flow hands the OCP a handful of statically placed memory
//! banks; a *pool* of coprocessors serving a stream of jobs needs the
//! host to carve per-job program/input/output regions out of the shared
//! SRAM and recycle them as jobs retire. [`BankAllocator`] is that
//! piece: a word-granular first-fit free-list allocator with coalescing
//! frees, deterministic like everything else in the simulation.
//!
//! The allocator tracks watermarks so a serving layer can report memory
//! pressure alongside latency (see `ouessant-farm`).

use std::error::Error;
use std::fmt;

use ouessant_sim::bus::Addr;

/// A region of shared memory leased from a [`BankAllocator`].
///
/// Deliberately **not** `Copy`/`Clone`: a region is a linear lease
/// token, consumed by [`BankAllocator::free`]. A copyable region made
/// it too easy to keep a stale copy around and double-free it — the
/// allocator detected that at runtime, but the type system can rule
/// the whole class out at compile time. Returning a region to a
/// *different* allocator is still detected and rejected dynamically.
#[derive(Debug, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    words: u32,
}

impl Region {
    /// Byte base address (always word-aligned).
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Length in 32-bit words.
    #[must_use]
    pub fn words(&self) -> u32 {
        self.words
    }
}

/// Allocation and free failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free extent can hold the request.
    OutOfMemory {
        /// Words requested.
        requested: u32,
        /// Largest free extent available, in words.
        largest_free: u32,
    },
    /// Zero-length allocations are meaningless.
    EmptyRegion,
    /// The region was not leased from this allocator (or already
    /// returned).
    ForeignRegion {
        /// Offending base address.
        base: Addr,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of shared memory: {requested} words requested, largest free extent {largest_free}"
            ),
            AllocError::EmptyRegion => f.write_str("zero-length region requested"),
            AllocError::ForeignRegion { base } => write!(
                f,
                "region at {base:#010x} was not leased from this allocator (double free?)"
            ),
        }
    }
}

impl Error for AllocError {}

/// Allocator statistics (watermarks for serving-layer reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Failed allocations (out of memory).
    pub failures: u64,
    /// Words currently leased.
    pub words_in_use: u32,
    /// Peak of `words_in_use`.
    pub peak_words_in_use: u32,
}

/// First-fit free-list allocator over a window of shared memory.
#[derive(Debug)]
pub struct BankAllocator {
    base: Addr,
    words: u32,
    /// Free extents as `(word_offset, words)`, sorted by offset,
    /// non-adjacent (frees coalesce).
    free: Vec<(u32, u32)>,
    /// Leased extents as `(word_offset, words)`, sorted by offset.
    leased: Vec<(u32, u32)>,
    stats: AllocStats,
}

impl BankAllocator {
    /// An allocator managing `words` 32-bit words starting at byte
    /// address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned or `words` is zero (static
    /// integration errors).
    #[must_use]
    pub fn new(base: Addr, words: u32) -> Self {
        assert_eq!(base % 4, 0, "allocator base must be word-aligned");
        assert!(words > 0, "allocator window must be non-empty");
        Self {
            base,
            words,
            free: vec![(0, words)],
            leased: Vec::new(),
            stats: AllocStats::default(),
        }
    }

    /// Total managed words.
    #[must_use]
    pub fn capacity_words(&self) -> u32 {
        self.words
    }

    /// The largest single allocation that would currently succeed.
    #[must_use]
    pub fn largest_free(&self) -> u32 {
        self.free.iter().map(|&(_, len)| len).max().unwrap_or(0)
    }

    /// Number of leases currently outstanding.
    ///
    /// A serving layer that promises "no leaked banks" can assert this
    /// hits zero at idle — it catches leaks that `words_in_use == 0`
    /// alone would (vacuously) also catch, but reads as intent.
    #[must_use]
    pub fn outstanding_leases(&self) -> usize {
        self.leased.len()
    }

    /// Whether the allocator is exhausted for a request of `words`
    /// (no free extent fits). A cheap pre-flight check for admission
    /// paths that want to surface exhaustion without consuming an
    /// attempt or bumping the failure counter.
    #[must_use]
    pub fn would_exhaust(&self, words: u32) -> bool {
        words == 0 || self.largest_free() < words
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Leases a region of `words` words.
    ///
    /// # Errors
    ///
    /// [`AllocError::EmptyRegion`] for zero words,
    /// [`AllocError::OutOfMemory`] when no free extent fits.
    pub fn alloc(&mut self, words: u32) -> Result<Region, AllocError> {
        if words == 0 {
            return Err(AllocError::EmptyRegion);
        }
        let Some(idx) = self.free.iter().position(|&(_, len)| len >= words) else {
            self.stats.failures += 1;
            return Err(AllocError::OutOfMemory {
                requested: words,
                largest_free: self.largest_free(),
            });
        };
        let (off, len) = self.free[idx];
        if len == words {
            self.free.remove(idx);
        } else {
            self.free[idx] = (off + words, len - words);
        }
        let pos = self
            .leased
            .binary_search_by_key(&off, |&(o, _)| o)
            .unwrap_err();
        self.leased.insert(pos, (off, words));
        self.stats.allocs += 1;
        self.stats.words_in_use += words;
        self.stats.peak_words_in_use = self.stats.peak_words_in_use.max(self.stats.words_in_use);
        Ok(Region {
            base: self.base + off * 4,
            words,
        })
    }

    /// Returns a leased region, coalescing it with adjacent free
    /// extents.
    ///
    /// # Errors
    ///
    /// [`AllocError::ForeignRegion`] if the region is not currently
    /// leased from this allocator (wrong allocator or double free).
    pub fn free(&mut self, region: Region) -> Result<(), AllocError> {
        let foreign = AllocError::ForeignRegion { base: region.base };
        if region.base < self.base || !(region.base - self.base).is_multiple_of(4) {
            return Err(foreign);
        }
        let off = (region.base - self.base) / 4;
        let Ok(idx) = self.leased.binary_search_by_key(&off, |&(o, _)| o) else {
            return Err(foreign);
        };
        if self.leased[idx].1 != region.words {
            return Err(foreign);
        }
        self.leased.remove(idx);
        self.stats.frees += 1;
        self.stats.words_in_use -= region.words;

        // Insert into the free list and coalesce with neighbours.
        let pos = self
            .free
            .binary_search_by_key(&off, |&(o, _)| o)
            .unwrap_err();
        self.free.insert(pos, (off, region.words));
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip_restores_capacity() {
        let mut a = BankAllocator::new(0x4000_0000, 1024);
        let r1 = a.alloc(100).unwrap();
        let r2 = a.alloc(200).unwrap();
        assert_eq!(r1.base(), 0x4000_0000);
        assert_eq!(r2.base(), 0x4000_0000 + 400);
        a.free(r1).unwrap();
        a.free(r2).unwrap();
        assert_eq!(a.largest_free(), 1024, "coalesced back to one extent");
        assert_eq!(a.stats().words_in_use, 0);
        assert_eq!(a.stats().peak_words_in_use, 300);
    }

    #[test]
    fn out_of_memory_reports_largest_extent() {
        let mut a = BankAllocator::new(0, 64);
        let _r = a.alloc(60).unwrap();
        assert_eq!(
            a.alloc(8),
            Err(AllocError::OutOfMemory {
                requested: 8,
                largest_free: 4
            })
        );
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn first_fit_reuses_freed_holes() {
        let mut a = BankAllocator::new(0, 100);
        let r1 = a.alloc(30).unwrap();
        let _r2 = a.alloc(30).unwrap();
        let _r3 = a.alloc(30).unwrap();
        a.free(r1).unwrap();
        let r4 = a.alloc(20).unwrap();
        assert_eq!(r4.base(), 0, "fills the first hole");
        let r5 = a.alloc(10).unwrap();
        assert_eq!(r5.base(), 20 * 4, "remainder of the first hole");
    }

    #[test]
    fn double_free_rejected() {
        // `Region` is non-Copy, so the old `free(r); free(r)` shape no
        // longer compiles. A determined caller can still forge a stale
        // duplicate (here via the test module's access to the private
        // fields); the allocator must keep rejecting it dynamically.
        let mut a = BankAllocator::new(0, 64);
        let r = a.alloc(8).unwrap();
        let stale = Region {
            base: r.base(),
            words: r.words(),
        };
        a.free(r).unwrap();
        assert_eq!(a.free(stale), Err(AllocError::ForeignRegion { base: 0 }));
    }

    #[test]
    fn stale_copy_cannot_outlive_a_reallocation() {
        // Regression for the classic stale-copy bug: lease, keep a
        // duplicate, free, re-lease the same extent, then "free" the
        // stale duplicate. Before `Region` was made linear this
        // silently released memory still owned by the new lease.
        let mut a = BankAllocator::new(0, 64);
        let r = a.alloc(8).unwrap();
        let stale = Region {
            base: r.base(),
            words: r.words(),
        };
        a.free(r).unwrap();
        let r2 = a.alloc(8).unwrap();
        assert_eq!(r2.base(), stale.base(), "first-fit reuses the extent");
        // The stale token matches a live lease byte-for-byte; freeing
        // it releases r2's memory. The dynamic check cannot tell the
        // difference -- which is exactly why the type now forbids the
        // copy in safe code.
        a.free(stale).unwrap();
        assert!(
            matches!(a.free(r2), Err(AllocError::ForeignRegion { .. })),
            "the legitimate lease is now the double free"
        );
    }

    #[test]
    fn foreign_region_rejected() {
        let mut a = BankAllocator::new(0x1000, 64);
        let mut b = BankAllocator::new(0x1000, 64);
        let r = a.alloc(8).unwrap();
        // Same window, but b never leased it at this length pattern:
        // lease b's own region first so offsets differ.
        let _rb = b.alloc(4).unwrap();
        assert!(matches!(b.free(r), Err(AllocError::ForeignRegion { .. })));
        assert_eq!(
            b.free(Region {
                base: 0x0FFC,
                words: 1
            }),
            Err(AllocError::ForeignRegion { base: 0x0FFC })
        );
    }

    #[test]
    fn zero_words_rejected() {
        let mut a = BankAllocator::new(0, 64);
        assert_eq!(a.alloc(0), Err(AllocError::EmptyRegion));
    }

    #[test]
    fn exhaustion_surfaces_and_counts() {
        // Drive the window to full exhaustion the way a fault-injection
        // campaign does: lease until nothing fits, and check every
        // surface a caller could consult.
        let mut a = BankAllocator::new(0, 256);
        let mut leases = Vec::new();
        while !a.would_exhaust(64) {
            leases.push(a.alloc(64).unwrap());
        }
        assert_eq!(leases.len(), 4);
        assert_eq!(a.largest_free(), 0);
        assert_eq!(a.outstanding_leases(), 4);
        assert!(a.would_exhaust(1));
        assert_eq!(
            a.alloc(1),
            Err(AllocError::OutOfMemory {
                requested: 1,
                largest_free: 0
            })
        );
        assert_eq!(a.stats().failures, 1, "would_exhaust probes are free");
        assert_eq!(a.stats().words_in_use, 256);
        for r in leases {
            a.free(r).unwrap();
        }
        assert_eq!(a.outstanding_leases(), 0);
    }

    #[test]
    fn fault_triggered_release_unblocks_waiting_request() {
        // The farm's fault path: a worker dies mid-job and its three
        // regions (program/input/output) are freed out of dispatch
        // order. The release must immediately unblock a request that
        // exhaustion was stalling.
        let mut a = BankAllocator::new(0, 128);
        let prog = a.alloc(8).unwrap();
        let input = a.alloc(64).unwrap();
        let output = a.alloc(56).unwrap();
        assert!(a.would_exhaust(64), "pool exhausted while the job runs");
        assert!(a.alloc(64).is_err());
        // Fault: free in an arbitrary order, as the fault handler does.
        a.free(output).unwrap();
        a.free(prog).unwrap();
        a.free(input).unwrap();
        assert!(!a.would_exhaust(128), "release coalesced the window");
        let retry = a.alloc(128).unwrap();
        assert_eq!(retry.base(), 0);
        a.free(retry).unwrap();
    }

    #[test]
    fn reuse_after_quarantine_frees_leases() {
        // Quarantining a worker hands back every lease it held; the
        // extents must be reusable by the surviving workers at full
        // capacity, not just countable.
        let mut a = BankAllocator::new(0, 96);
        let dead_worker: Vec<Region> = (0..3).map(|_| a.alloc(16).unwrap()).collect();
        let survivor = a.alloc(48).unwrap();
        assert_eq!(a.outstanding_leases(), 4);
        for r in dead_worker {
            a.free(r).unwrap();
        }
        assert_eq!(a.outstanding_leases(), 1, "survivor's lease untouched");
        // The quarantined worker's extents serve the next job intact.
        let next = a.alloc(48).unwrap();
        assert_eq!(next.base(), 0, "first-fit reuses the freed run");
        a.free(next).unwrap();
        a.free(survivor).unwrap();
        assert_eq!(a.stats().words_in_use, 0);
        assert_eq!(a.largest_free(), 96);
    }

    #[test]
    fn fragmentation_then_coalesce_interior() {
        let mut a = BankAllocator::new(0, 120);
        let mut regions: Vec<Option<Region>> = (0..6).map(|_| Some(a.alloc(20).unwrap())).collect();
        // Free odd regions, then even: interleaved frees must coalesce.
        for i in (1..6).step_by(2) {
            a.free(regions[i].take().unwrap()).unwrap();
        }
        for i in (0..6).step_by(2) {
            a.free(regions[i].take().unwrap()).unwrap();
        }
        assert_eq!(a.largest_free(), 120);
    }
}
