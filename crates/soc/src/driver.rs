//! The user-facing driver API of the paper's §IV.
//!
//! "One aim of Ouessant is to provide seamless hardware acceleration
//! for end users. … Integrating an hardware accelerator using an OCP in
//! a software project requires very little modification." §IV describes
//! the two environments — baremetal (trivial) and Linux, where the
//! driver's job is to avoid user/kernel data copies; "in the Ouessant
//! Linux driver, the mmap solution is used. This allows kernel space
//! memory to be mapped in user space applications."
//!
//! [`OuessantDevice`] is that driver's API surface, with the cycle cost
//! of every crossing charged according to the configured [`OsModel`]:
//!
//! * [`OuessantDevice::open`] — `open(2)` + buffer setup (one-time);
//! * [`OuessantDevice::write_input`]-style buffer accesses: free under the mmap
//!   driver (shared pages), `copy_from_user` under the copying driver;
//! * [`OuessantDevice::submit_and_wait`] — the ioctl/read pair: two
//!   syscalls + driver bookkeeping + cache management, then the offload.

use std::error::Error;
use std::fmt;

use ouessant_isa::Program;
use ouessant_rac::rac::Rac;
use ouessant_sim::bus::Addr;
use ouessant_verify::{verify, Analysis, VerifyConfig};

use crate::os::OsModel;
use crate::soc::{Soc, SocConfig, SocError};

/// One-time cost of `open(2)` plus driver buffer allocation and (for
/// the mmap driver) the `mmap(2)` call, in cycles.
pub const OPEN_COST_CYCLES: u64 = 2_500;

/// The device's shared buffers, as bank assignments.
const PROGRAM_BANK: u8 = 0;
const INPUT_BANK: u8 = 1;
const OUTPUT_BANK: u8 = 2;

/// Errors surfaced by the driver API.
#[derive(Debug)]
pub enum DriverError {
    /// The underlying system failed.
    Soc(SocError),
    /// A buffer access was out of range.
    BufferOverrun {
        /// Requested length in words.
        requested: usize,
        /// Buffer capacity in words.
        capacity: usize,
    },
    /// `submit_and_wait` called before microcode was loaded.
    NoMicrocode,
    /// The static analyzer found error-severity defects in the
    /// microcode (bank overrun, unjoined launch, FIFO misuse, …).
    RejectedMicrocode(Analysis),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Soc(e) => write!(f, "{e}"),
            DriverError::BufferOverrun {
                requested,
                capacity,
            } => write!(
                f,
                "buffer access of {requested} words exceeds the {capacity}-word buffer"
            ),
            DriverError::NoMicrocode => f.write_str("no microcode loaded"),
            DriverError::RejectedMicrocode(analysis) => write!(
                f,
                "microcode rejected by the static analyzer ({} error(s)): {}",
                analysis.error_count(),
                analysis
            ),
        }
    }
}

impl Error for DriverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DriverError::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SocError> for DriverError {
    fn from(e: SocError) -> Self {
        DriverError::Soc(e)
    }
}

/// Accounting of one driver call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverStats {
    /// Machine cycles of the offload itself.
    pub machine_cycles: u64,
    /// OS cycles charged (syscalls, driver, cache, copies).
    pub os_cycles: u64,
    /// Words moved by the OCP.
    pub words_transferred: u64,
}

impl DriverStats {
    /// Total cycles of the call as seen by the application.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.machine_cycles + self.os_cycles
    }
}

/// A handle to an Ouessant coprocessor, in the style of the §IV Linux
/// driver.
///
/// # Examples
///
/// ```
/// use ouessant_isa::assemble;
/// use ouessant_rac::passthrough::PassthroughRac;
/// use ouessant_soc::driver::OuessantDevice;
/// use ouessant_soc::os::OsModel;
///
/// let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::linux_mmap());
/// dev.load_microcode(&assemble("mvtc BANK1,0,DMA8,FIFO0\nexecs 8\nmvfc BANK2,0,DMA8,FIFO0\neop")?)?;
/// dev.write_input(&[1, 2, 3, 4, 5, 6, 7, 8])?;   // zero-copy: mmap'ed buffer
/// let stats = dev.submit_and_wait()?;             // ioctl + wait
/// assert_eq!(dev.read_output(8)?, vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// assert!(stats.os_cycles >= 3_000);              // the Linux crossing
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OuessantDevice {
    soc: Soc,
    os: OsModel,
    microcode_len: Option<u32>,
    program_at: Addr,
    input_at: Addr,
    output_at: Addr,
    buffer_words: usize,
    fifo_depth: usize,
    /// Cumulative OS cycles charged since `open`.
    os_cycles_total: u64,
}

impl OuessantDevice {
    /// Opens the device: allocates the kernel buffers and (for the mmap
    /// driver) maps them into the application.
    #[must_use]
    pub fn open(rac: Box<dyn Rac>, os: OsModel) -> Self {
        Self::open_with_config(rac, os, SocConfig::default())
    }

    /// Opens the device on a specific SoC configuration.
    #[must_use]
    pub fn open_with_config(rac: Box<dyn Rac>, os: OsModel, config: SocConfig) -> Self {
        let fifo_depth = config.ocp.fifo_depth;
        let soc = Soc::new(rac, config);
        let ram = config.ram_base;
        Self {
            soc,
            os,
            microcode_len: None,
            program_at: ram,
            input_at: ram + 0x4000,
            output_at: ram + 0x2_0000,
            buffer_words: 0x1_0000 / 4,
            fifo_depth,
            os_cycles_total: OPEN_COST_CYCLES,
        }
    }

    /// The OS model in effect.
    #[must_use]
    pub fn os(&self) -> OsModel {
        self.os
    }

    /// Capacity of the input/output buffers, in words.
    #[must_use]
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_words
    }

    /// Cumulative OS cycles charged since `open` (including the open
    /// itself).
    #[must_use]
    pub fn os_cycles_total(&self) -> u64 {
        self.os_cycles_total
    }

    /// The static-analyzer view of this device's memory map: program,
    /// input and output banks sized to the driver buffers, everything
    /// else unmapped, FIFO depth from the SoC configuration.
    fn verify_config(&self) -> VerifyConfig {
        let words = self.buffer_words as u32;
        VerifyConfig::job_map(words, words, words).with_fifo_depth(self.fifo_depth as u32)
    }

    /// Loads microcode into the device's program buffer, after running
    /// the static analyzer against this device's memory map — defective
    /// microcode is rejected before it ever reaches the hardware.
    ///
    /// # Errors
    ///
    /// [`DriverError::RejectedMicrocode`] if the analyzer reports any
    /// error-severity diagnostic, [`DriverError::BufferOverrun`] if the
    /// program exceeds the buffer, or a propagated [`SocError`].
    pub fn load_microcode(&mut self, program: &Program) -> Result<(), DriverError> {
        let analysis = verify(program, &self.verify_config());
        if analysis.has_errors() {
            return Err(DriverError::RejectedMicrocode(analysis));
        }
        self.load_microcode_raw(program)
    }

    /// Loads microcode without running the static analyzer.
    ///
    /// Only available behind the `unchecked-microcode` feature: the
    /// fault-injection suites need to plant microcode the analyzer
    /// would (correctly) reject and watch the hardware cope.
    ///
    /// # Errors
    ///
    /// [`DriverError::BufferOverrun`] if the program exceeds the
    /// buffer, or a propagated [`SocError`].
    #[cfg(feature = "unchecked-microcode")]
    pub fn load_microcode_unchecked(&mut self, program: &Program) -> Result<(), DriverError> {
        self.load_microcode_raw(program)
    }

    fn load_microcode_raw(&mut self, program: &Program) -> Result<(), DriverError> {
        let words = program.to_words();
        self.check_len(words.len())?;
        self.soc.load_words(self.program_at, &words)?;
        self.microcode_len = Some(program.len() as u32);
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), DriverError> {
        if len > self.buffer_words {
            Err(DriverError::BufferOverrun {
                requested: len,
                capacity: self.buffer_words,
            })
        } else {
            Ok(())
        }
    }

    /// Writes the input buffer. Under the mmap driver this is a plain
    /// store into shared pages (no OS cost); under the copying driver
    /// the words cross the user/kernel boundary.
    ///
    /// # Errors
    ///
    /// [`DriverError::BufferOverrun`] or a propagated [`SocError`].
    pub fn write_input(&mut self, words: &[u32]) -> Result<(), DriverError> {
        self.check_len(words.len())?;
        if let OsModel::LinuxCopy { per_word, .. } = self.os {
            self.os_cycles_total += words.len() as u64 * per_word;
        }
        self.soc.load_words(self.input_at, words)?;
        Ok(())
    }

    /// Reads the output buffer (same copy rules as
    /// [`OuessantDevice::write_input`]).
    ///
    /// # Errors
    ///
    /// [`DriverError::BufferOverrun`] or a propagated [`SocError`].
    pub fn read_output(&mut self, words: usize) -> Result<Vec<u32>, DriverError> {
        self.check_len(words)?;
        if let OsModel::LinuxCopy { per_word, .. } = self.os {
            self.os_cycles_total += words as u64 * per_word;
        }
        Ok(self.soc.read_words(self.output_at, words)?)
    }

    /// Submits the offload and blocks until completion — the driver's
    /// ioctl + wait path, charging the OS crossing.
    ///
    /// # Errors
    ///
    /// [`DriverError::NoMicrocode`] before [`OuessantDevice::load_microcode`],
    /// or a propagated [`SocError`] (fault, timeout).
    pub fn submit_and_wait(&mut self) -> Result<DriverStats, DriverError> {
        let prog_len = self.microcode_len.ok_or(DriverError::NoMicrocode)?;
        let config_cycles = self.soc.configure(
            &[
                (PROGRAM_BANK, self.program_at),
                (INPUT_BANK, self.input_at),
                (OUTPUT_BANK, self.output_at),
            ],
            prog_len,
        )?;
        let report = self.soc.start_and_wait(100_000_000)?;
        // The fixed OS crossing; per-word copy costs were charged at the
        // buffer accesses (where the copies actually happen).
        let os_cycles = match self.os {
            OsModel::Baremetal => 0,
            OsModel::LinuxMmap {
                syscall,
                driver,
                cache,
            }
            | OsModel::LinuxCopy {
                syscall,
                driver,
                cache,
                ..
            } => 2 * syscall + driver + cache,
        };
        self.os_cycles_total += os_cycles;
        Ok(DriverStats {
            machine_cycles: config_cycles + report.machine_cycles(),
            os_cycles,
            words_transferred: report.words_transferred,
        })
    }

    /// The underlying system, for inspection.
    #[must_use]
    pub fn soc(&self) -> &Soc {
        &self.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_isa::assemble;
    use ouessant_rac::passthrough::PassthroughRac;

    fn program() -> Program {
        assemble("mvtc BANK1,0,DMA16,FIFO0\nexecs 16\nmvfc BANK2,0,DMA16,FIFO0\neop").unwrap()
    }

    #[test]
    fn round_trip_through_device() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::linux_mmap());
        dev.load_microcode(&program()).unwrap();
        let input: Vec<u32> = (0..16).map(|i| i * 3).collect();
        dev.write_input(&input).unwrap();
        let stats = dev.submit_and_wait().unwrap();
        assert_eq!(dev.read_output(16).unwrap(), input);
        assert_eq!(stats.words_transferred, 32);
        assert_eq!(stats.os_cycles, 3_000);
    }

    #[test]
    fn submit_without_microcode_rejected() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::Baremetal);
        assert!(matches!(
            dev.submit_and_wait(),
            Err(DriverError::NoMicrocode)
        ));
    }

    #[test]
    fn baremetal_has_no_os_cost_per_call() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::Baremetal);
        dev.load_microcode(&program()).unwrap();
        dev.write_input(&[9; 16]).unwrap();
        let stats = dev.submit_and_wait().unwrap();
        assert_eq!(stats.os_cycles, 0);
    }

    #[test]
    fn copying_driver_charges_buffer_accesses() {
        let mut mmap_dev =
            OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::linux_mmap());
        let mut copy_dev =
            OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::linux_copy());
        for dev in [&mut mmap_dev, &mut copy_dev] {
            dev.load_microcode(&program()).unwrap();
            dev.write_input(&[1; 16]).unwrap();
            dev.submit_and_wait().unwrap();
            let _ = dev.read_output(16).unwrap();
        }
        assert!(
            copy_dev.os_cycles_total() > mmap_dev.os_cycles_total(),
            "copies must cost extra: {} vs {}",
            copy_dev.os_cycles_total(),
            mmap_dev.os_cycles_total()
        );
    }

    #[test]
    fn oversized_buffer_access_rejected() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::Baremetal);
        let too_big = vec![0u32; dev.buffer_capacity() + 1];
        assert!(matches!(
            dev.write_input(&too_big),
            Err(DriverError::BufferOverrun { .. })
        ));
        assert!(matches!(
            dev.read_output(dev.buffer_capacity() + 1),
            Err(DriverError::BufferOverrun { .. })
        ));
    }

    #[test]
    fn defective_microcode_rejected_before_load() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::Baremetal);
        // An execn that is never joined: the analyzer flags it, and the
        // device must refuse to arm the program at all.
        let bad = assemble("mvtc BANK1,0,DMA16,FIFO0\nexecn 16\neop").unwrap();
        match dev.load_microcode(&bad) {
            Err(DriverError::RejectedMicrocode(analysis)) => {
                assert!(analysis.has_errors());
                assert!(analysis.to_string().contains("unjoined-launch"));
            }
            other => panic!("expected RejectedMicrocode, got {other:?}"),
        }
        // Nothing was armed: submission still reports NoMicrocode.
        assert!(matches!(
            dev.submit_and_wait(),
            Err(DriverError::NoMicrocode)
        ));
    }

    #[test]
    fn out_of_bounds_burst_rejected_before_load() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::Baremetal);
        let bad = assemble("mvtc BANK1,16256,DMA256,FIFO0\nexecs\neop").unwrap();
        let err = dev.load_microcode(&bad).unwrap_err();
        assert!(err.to_string().contains("bank-overflow"), "{err}");
    }

    #[cfg(feature = "unchecked-microcode")]
    #[test]
    fn unchecked_load_bypasses_the_analyzer() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::Baremetal);
        let bad = assemble("mvtc BANK1,16256,DMA256,FIFO0\nexecs\neop").unwrap();
        assert!(dev.load_microcode(&bad).is_err());
        dev.load_microcode_unchecked(&bad)
            .expect("the bypass must load what the analyzer rejects");
    }

    #[test]
    fn repeated_submissions_reuse_microcode() {
        let mut dev = OuessantDevice::open(Box::new(PassthroughRac::new(0)), OsModel::linux_mmap());
        dev.load_microcode(&program()).unwrap();
        for round in 0..3u32 {
            let input: Vec<u32> = (0..16).map(|i| round * 100 + i).collect();
            dev.write_input(&input).unwrap();
            dev.submit_and_wait().unwrap();
            assert_eq!(dev.read_output(16).unwrap(), input, "round {round}");
        }
        // open + 3 × crossing.
        assert_eq!(dev.os_cycles_total(), OPEN_COST_CYCLES + 3 * 3_000);
    }
}
