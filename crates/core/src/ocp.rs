//! The assembled Ouessant coprocessor.
//!
//! [`Ocp`] wires the three blocks of Figure 1 together — bus interface,
//! controller, RAC — and is what a SoC instantiates: one slave window
//! for the configuration registers, one bus master for the DMA
//! transfers, one interrupt line, and a `tick` to advance everything one
//! clock cycle.

use ouessant_rac::rac::{Rac, RacSocket};
use ouessant_sim::bus::Addr;
use ouessant_sim::{Cycle, SystemBus};

use crate::controller::{Controller, ControllerStats, ExecError};
use crate::interface::{DmaPort, IrqLine, RegSlavePort};
use crate::regs::RegsHandle;

/// Static OCP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcpConfig {
    /// Depth of each RAC FIFO in 32-bit words.
    ///
    /// "FIFO memory is inferred as BRAM, and strongly dependent on the
    /// accelerator" — the DFT needs 512-word FIFOs, the IDCT 64.
    pub fifo_depth: usize,
}

impl Default for OcpConfig {
    fn default() -> Self {
        Self { fifo_depth: 1024 }
    }
}

/// Aggregated statistics of one OCP (see also [`ControllerStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OcpStats {
    /// Controller-level statistics.
    pub controller: ControllerStats,
    /// Cycles the OCP has been ticked in total.
    pub total_cycles: u64,
}

/// A completion event: one program run finished (the D bit rose).
///
/// Snapshot of the counters a dispatcher wants when deciding what to
/// schedule next, without re-reading the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcpCompletion {
    /// OCP-local cycle count at completion.
    pub at_cycle: u64,
    /// Program runs completed since reset (including this one).
    pub runs_completed: u64,
    /// Words DMA-transferred since reset.
    pub words_transferred: u64,
}

/// Callback invoked from [`Ocp::tick`] when a run completes.
pub type CompletionCallback = Box<dyn FnMut(&OcpCompletion)>;

/// The per-OCP hang watchdog.
///
/// Armed by the host with a cycle budget; pulsed by *observable
/// progress* — a retired instruction or a completed transfer word
/// (the DMA-beat proxy the controller exposes). When the budget runs
/// out with no progress the watchdog bites:
/// [`ExecError::Hang`] is raised exactly as a hardware watchdog would
/// pull the fault line, and the normal recovery path takes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Watchdog {
    /// Cycles of no progress tolerated before the bite.
    budget: u64,
    /// Cycles left until the bite (reloaded to `budget` on progress).
    remaining: u64,
    /// Progress signature: `(instructions_retired, words_transferred)`.
    progress: (u64, u64),
}

/// An Ouessant coprocessor instance.
///
/// See the [crate documentation](crate) for a full integration example.
pub struct Ocp {
    regs: RegsHandle,
    irq: IrqLine,
    controller: Controller,
    socket: RacSocket,
    base: Addr,
    total_cycles: u64,
    /// Edge detector for the D bit (a start clears D, re-arming it).
    done_seen: bool,
    pending_event: Option<OcpCompletion>,
    on_complete: Option<CompletionCallback>,
    watchdog: Option<Watchdog>,
}

impl std::fmt::Debug for Ocp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ocp")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("controller", &self.controller)
            .field("total_cycles", &self.total_cycles)
            .field("done_seen", &self.done_seen)
            .field("pending_event", &self.pending_event)
            .field("on_complete", &self.on_complete.is_some())
            .finish_non_exhaustive()
    }
}

impl Ocp {
    /// Creates an OCP around `rac`, registers its master port on `bus`
    /// and maps its register window at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is unaligned or overlaps an existing slave
    /// (static integration errors, as in [`ouessant_sim::Bus::add_slave`]).
    #[must_use]
    pub fn attach(
        bus: &mut dyn SystemBus,
        base: Addr,
        rac: Box<dyn Rac>,
        config: OcpConfig,
    ) -> Self {
        let regs = RegsHandle::new();
        bus.add_slave_boxed(base, Box::new(RegSlavePort::new(regs.clone())));
        let master = bus.register_master("ocp");
        let controller = Controller::new(DmaPort::new(master));
        let socket = RacSocket::new(rac, config.fifo_depth);
        Self {
            regs,
            irq: IrqLine::new(),
            controller,
            socket,
            base,
            total_cycles: 0,
            done_seen: false,
            pending_event: None,
            on_complete: None,
            watchdog: None,
        }
    }

    /// The register-file handle (host configuration side).
    #[must_use]
    pub fn regs(&self) -> &RegsHandle {
        &self.regs
    }

    /// The base address of the register window.
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The interrupt line (clone it into the CPU model).
    #[must_use]
    pub fn irq(&self) -> &IrqLine {
        &self.irq
    }

    /// The controller (state inspection).
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The RAC socket (FIFO inspection in tests).
    #[must_use]
    pub fn socket(&self) -> &RacSocket {
        &self.socket
    }

    /// The bus identity of the DMA master port, for attributing
    /// per-master bus statistics (grants, beats, contention) to this
    /// OCP.
    #[must_use]
    pub fn bus_master(&self) -> ouessant_sim::bus::MasterId {
        self.controller.master()
    }

    /// The fault that stopped the controller, if any.
    #[must_use]
    pub fn fault(&self) -> Option<&ExecError> {
        self.controller.fault()
    }

    /// Whether the coprocessor is mid-program.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.controller.is_active()
    }

    /// Pre-loads microcode directly into the program store (standalone
    /// mode; normal operation fetches it from bank 0 on start).
    pub fn preload_program(&mut self, words: &[u32]) {
        self.controller.preload_program(words);
    }

    /// Forces the controller into its faulted state with `error` (see
    /// [`Controller::inject_fault`]) — the chaos-testing seam a serving
    /// layer uses to exercise fault containment and recovery.
    pub fn inject_fault(&mut self, error: ExecError) {
        self.controller.inject_fault(error);
    }

    /// Freezes the controller FSM mid-handshake (see
    /// [`Controller::inject_wedge`]): the silent-hang chaos seam. Only
    /// the watchdog or a host [`Ocp::abort`] gets the worker back.
    pub fn inject_wedge(&mut self) {
        self.controller.inject_wedge();
    }

    /// Whether the controller FSM is frozen by [`Ocp::inject_wedge`].
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.controller.is_wedged()
    }

    /// Stalls the RAC for `cycles` extra cycles (see
    /// [`RacSocket::inject_stall`]): the slow-compute chaos seam. The
    /// accelerator stays busy and frozen for the stall, so `exec`
    /// latency stretches by exactly `cycles`.
    pub fn inject_rac_stall(&mut self, cycles: u64) {
        self.socket.inject_stall(cycles);
    }

    /// Arms the hang watchdog with `budget` cycles: if the controller
    /// stays active for `budget` consecutive cycles without retiring an
    /// instruction or completing a transfer word, the run faults with
    /// [`ExecError::Hang`] and the normal recovery path applies.
    ///
    /// Re-arming reloads the budget. The budget must exceed the
    /// longest *legitimate* progress-free window of the microcode —
    /// `wait N` and a full RAC compute both count as no-progress, so a
    /// budget below Table I's compute latencies bites healthy runs.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn arm_watchdog(&mut self, budget: u64) {
        assert!(budget > 0, "watchdog budget must be nonzero");
        let stats = self.controller.stats();
        self.watchdog = Some(Watchdog {
            budget,
            remaining: budget,
            progress: (stats.instructions_retired, stats.words_transferred),
        });
    }

    /// Disarms the hang watchdog.
    pub fn disarm_watchdog(&mut self) {
        self.watchdog = None;
    }

    /// Cycles left before the armed watchdog bites (`None` when
    /// disarmed).
    #[must_use]
    pub fn watchdog_remaining(&self) -> Option<u64> {
        self.watchdog.map(|w| w.remaining)
    }

    /// Host-side cancel of a running job: disarms the watchdog, faults
    /// an active controller with [`ExecError::Aborted`], and drives the
    /// [`Ocp::try_recover`] machinery (drain in-flight DMA, reset the
    /// controller, release the RAC and FIFOs).
    ///
    /// Returns `true` once the OCP is back to a clean idle state; an
    /// already-idle unfaulted OCP aborts trivially. Returns `false`
    /// while a DMA burst is still in flight — keep ticking the bus and
    /// retry (or re-call `try_recover`), exactly as after any fault.
    pub fn abort(&mut self, bus: &mut dyn SystemBus) -> bool {
        self.watchdog = None;
        if self.controller.is_active() {
            self.controller.inject_fault(ExecError::Aborted);
        }
        if self.controller.fault().is_none() {
            // Idle and clean (e.g. the microcode `halt`ed without
            // raising D): nothing to cancel, but scrub to the same
            // power-on contract a recovery gives — FIFOs empty, RAC
            // (and a DPR slot's configuration) reset, no stale event
            // or interrupt.
            self.socket.reset();
            self.pending_event = None;
            self.irq.clear();
            return true;
        }
        self.try_recover(bus)
    }

    /// Attempts to recover a faulted coprocessor to a clean idle state:
    /// the controller FSM is reset ([`Controller::try_reset`]), the RAC
    /// and both FIFOs are returned to power-on state (stale words from
    /// the dead job must never leak into the next one), and any
    /// pending completion event or raised interrupt is discarded.
    ///
    /// Returns `false` while a DMA burst issued before the fault is
    /// still in flight — keep ticking the bus and retry; the reset
    /// refuses to orphan a live transaction.
    pub fn try_recover(&mut self, bus: &mut dyn SystemBus) -> bool {
        if !self.controller.try_reset(bus) {
            return false;
        }
        self.socket.reset();
        self.pending_event = None;
        self.irq.clear();
        self.watchdog = None;
        true
    }

    /// Advances the whole coprocessor one clock cycle: the RAC always
    /// runs (it is an independent piece of hardware); the controller
    /// FSM steps alongside it.
    pub fn tick(&mut self, bus: &mut dyn SystemBus) {
        self.total_cycles += 1;
        self.socket.tick();
        self.controller
            .tick(bus, &self.regs, &mut self.socket, &self.irq);

        // Watchdog: pulse on progress, count down otherwise, bite at
        // zero. Only an *active* controller is watched — an idle or
        // already-faulted one holds the countdown.
        if let Some(wd) = &mut self.watchdog {
            if self.controller.is_active() {
                let stats = self.controller.stats();
                let progress = (stats.instructions_retired, stats.words_transferred);
                if progress == wd.progress {
                    wd.remaining -= 1;
                    if wd.remaining == 0 {
                        let budget = wd.budget;
                        self.watchdog = None;
                        self.controller.inject_fault(ExecError::Hang { budget });
                    }
                } else {
                    wd.progress = progress;
                    wd.remaining = wd.budget;
                }
            }
        }

        // Completion edge: the D bit rose this cycle (a start clears D,
        // so back-to-back runs produce one event each).
        let done = self.regs.done();
        if done && !self.done_seen {
            let stats = self.controller.stats();
            let event = OcpCompletion {
                at_cycle: self.total_cycles,
                runs_completed: stats.runs_completed,
                words_transferred: stats.words_transferred,
            };
            if let Some(cb) = self.on_complete.as_mut() {
                cb(&event);
            }
            self.pending_event = Some(event);
        }
        self.done_seen = done;
    }

    /// Non-blocking completion poll for dispatchers: returns the event
    /// for a finished run exactly once, acknowledging the interrupt
    /// line as a side effect (the dispatcher *is* the handler).
    ///
    /// A pool scheduler calls this every cycle instead of re-reading
    /// the D bit and manually clearing the IRQ.
    pub fn poll_completion(&mut self) -> Option<OcpCompletion> {
        let event = self.pending_event.take();
        if event.is_some() && self.irq.is_raised() {
            self.irq.clear();
        }
        event
    }

    /// Registers a callback fired from [`Ocp::tick`] at every run
    /// completion (IRQ-style delivery; [`Ocp::poll_completion`] still
    /// observes the same events).
    pub fn set_on_complete(&mut self, callback: CompletionCallback) {
        self.on_complete = Some(callback);
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> OcpStats {
        OcpStats {
            controller: self.controller.stats(),
            total_cycles: self.total_cycles,
        }
    }
}

impl ouessant_sim::NextEvent for Ocp {
    /// Combines the controller's horizon (refined with the socket's, so
    /// `RacWait` exposes the RAC's compute countdown) and the socket's
    /// own horizon, with two guards:
    ///
    /// * an armed-but-unconsumed S bit or an undelivered completion
    ///   event forces single-stepping (the next tick is an event);
    /// * an *active* controller whose combined horizon is `None` (e.g.
    ///   `wrac` parked on an idle RAC, or `sync` stuck on a FIFO the
    ///   RAC will never drain) also single-steps — the OCP never
    ///   declares a busy worker quiescent, it just stops predicting.
    ///
    /// An armed watchdog over an active controller bounds the window
    /// by its remaining budget, so the bite always lands on a real
    /// tick — identical cycle in single-step and fast-forward modes. A
    /// *wedged* controller is the one active state exempt from the
    /// single-step safety net: it provably cannot transition by
    /// itself, so the watchdog budget (or, unarmed, quiescence) is the
    /// honest horizon and a hang window can be leapt in one go.
    fn horizon(&self) -> Option<Cycle> {
        if self.pending_event.is_some() || self.regs.start_pending() {
            return Some(Cycle::new(1));
        }
        let mut h = ouessant_sim::min_horizon(
            self.controller.horizon_with(&self.socket),
            self.socket.horizon(),
        );
        if let Some(wd) = &self.watchdog {
            if self.controller.is_active() {
                h = ouessant_sim::min_horizon(h, Some(Cycle::new(wd.remaining.max(1))));
            }
        }
        if h.is_none() && self.controller.is_active() && !self.controller.is_wedged() {
            return Some(Cycle::new(1));
        }
        h
    }

    /// Replays `cycles` pure ticks: the cycle counter, the socket's
    /// busy accounting and countdowns, and the controller's counters
    /// all move exactly as `cycles` real ticks would have moved them.
    /// The D-bit edge detector needs no replay — D only changes on
    /// controller transitions, which are never inside a pure window.
    fn advance(&mut self, cycles: Cycle) {
        self.total_cycles += cycles.count();
        self.socket.advance(cycles);
        self.controller.advance(cycles);
        // Watchdog countdown: a pure window by definition has no
        // progress pulses, so every skipped tick decrements — exactly
        // what `tick` would have done. The horizon clamps windows to
        // `remaining - 1`, so the bite itself always happens in `tick`.
        if let Some(wd) = &mut self.watchdog {
            if self.controller.is_active() {
                debug_assert!(
                    cycles.count() < wd.remaining,
                    "advanced past the watchdog bite"
                );
                wd.remaining -= cycles.count();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_isa::{assemble, Program, ProgramBuilder};
    use ouessant_rac::idct::{idct_2d_fixed, IdctRac};
    use ouessant_rac::passthrough::PassthroughRac;
    use ouessant_sim::bus::{Bus, BusConfig};
    use ouessant_sim::memory::{Sram, SramConfig};

    const RAM_BASE: Addr = 0x4000_0000;
    const OCP_BASE: Addr = 0x8000_0000;

    struct Fixture {
        bus: Bus,
        ocp: Ocp,
    }

    fn fixture(rac: Box<dyn Rac>) -> Fixture {
        let mut bus = Bus::new(BusConfig::default());
        let _cpu = bus.register_master("cpu");
        bus.add_slave(RAM_BASE, Sram::with_words(16384, SramConfig::no_wait()));
        let ocp = Ocp::attach(&mut bus, OCP_BASE, rac, OcpConfig::default());
        Fixture { bus, ocp }
    }

    impl Fixture {
        fn load_program(&mut self, program: &Program) {
            for (i, w) in program.to_words().iter().enumerate() {
                self.bus.debug_write(RAM_BASE + (i as u32) * 4, *w).unwrap();
            }
            self.ocp.regs().set_bank(0, RAM_BASE).unwrap();
            self.ocp.regs().set_prog_size(program.len() as u32).unwrap();
        }

        fn run(&mut self, max_cycles: u64) -> u64 {
            self.ocp.regs().start();
            let mut cycles = 0;
            while !self.ocp.regs().done() {
                self.ocp.tick(&mut self.bus);
                ouessant_sim::SystemBus::tick(&mut self.bus);
                cycles += 1;
                if let Some(f) = self.ocp.fault() {
                    panic!("OCP faulted after {cycles} cycles: {f}");
                }
                assert!(cycles <= max_cycles, "OCP did not finish");
            }
            cycles
        }
    }

    #[test]
    fn dma_round_trip_through_passthrough() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program =
            assemble("mvtc BANK1,0,DMA16,FIFO0\nexecs 16\nmvfc BANK2,0,DMA16,FIFO0\neop").unwrap();
        fx.load_program(&program);
        fx.ocp.regs().set_bank(1, RAM_BASE + 0x1000).unwrap();
        fx.ocp.regs().set_bank(2, RAM_BASE + 0x2000).unwrap();
        for i in 0..16u32 {
            fx.bus
                .debug_write(RAM_BASE + 0x1000 + i * 4, 0xA000_0000 + i)
                .unwrap();
        }
        fx.run(10_000);
        for i in 0..16u32 {
            assert_eq!(
                fx.bus.debug_read(RAM_BASE + 0x2000 + i * 4).unwrap(),
                0xA000_0000 + i
            );
        }
        let stats = fx.ocp.stats();
        assert_eq!(stats.controller.words_transferred, 32);
        assert_eq!(stats.controller.runs_completed, 1);
    }

    #[test]
    fn idct_offload_matches_data_path() {
        let mut fx = fixture(Box::new(IdctRac::new()));
        let program = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0)
            .unwrap()
            .execs()
            .mvfc(2, 0, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        fx.load_program(&program);
        fx.ocp.regs().set_bank(1, RAM_BASE + 0x1000).unwrap();
        fx.ocp.regs().set_bank(2, RAM_BASE + 0x2000).unwrap();
        let coeffs: Vec<i32> = (0..64).map(|i| (i * 91 % 1001) - 500).collect();
        for (i, &c) in coeffs.iter().enumerate() {
            fx.bus
                .debug_write(RAM_BASE + 0x1000 + (i as u32) * 4, c as u32)
                .unwrap();
        }
        fx.run(100_000);
        let expected = idct_2d_fixed(&coeffs);
        for (i, &e) in expected.iter().enumerate() {
            let got = fx
                .bus
                .debug_read(RAM_BASE + 0x2000 + (i as u32) * 4)
                .unwrap() as i32;
            assert_eq!(got, e, "output word {i}");
        }
    }

    #[test]
    fn irq_raised_only_when_enabled() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program = assemble("eop").unwrap();
        fx.load_program(&program);

        // Polling mode: IE clear → no interrupt.
        fx.run(10_000);
        assert!(!fx.ocp.irq().is_raised());

        // Interrupt mode.
        fx.ocp.regs().set_irq_enabled(true);
        fx.run(10_000);
        assert!(fx.ocp.irq().is_raised());
        fx.ocp.irq().clear();
        assert!(!fx.ocp.irq().is_raised());
    }

    #[test]
    fn halt_does_not_set_done() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program = assemble("halt").unwrap();
        fx.load_program(&program);
        fx.ocp.regs().start();
        for _ in 0..1000 {
            fx.ocp.tick(&mut fx.bus);
            ouessant_sim::SystemBus::tick(&mut fx.bus);
        }
        assert!(!fx.ocp.regs().done());
        assert!(!fx.ocp.is_active());
        assert!(fx.ocp.fault().is_none());
    }

    #[test]
    fn looped_program_equals_unrolled() {
        // The extension ISA loop moves the same data as Figure 4's
        // unrolled form.
        let unrolled = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 256, 64, 0)
            .unwrap()
            .execs_op(256)
            .transfer_from_coprocessor(2, 0, 256, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let looped = assemble(
            "
            ldc R0,4
            ldo O0,0
            in_loop:
                mvtcr BANK1,O0,DMA64,FIFO0
                djnz R0,in_loop
            execs 256
            ldc R1,4
            ldo O1,0
            out_loop:
                mvfcr BANK2,O1,DMA64,FIFO0
                djnz R1,out_loop
            eop
            ",
        )
        .unwrap();

        let mut results = Vec::new();
        for program in [&unrolled, &looped] {
            let mut fx = fixture(Box::new(PassthroughRac::new(0)));
            fx.load_program(program);
            fx.ocp.regs().set_bank(1, RAM_BASE + 0x1000).unwrap();
            fx.ocp.regs().set_bank(2, RAM_BASE + 0x4000).unwrap();
            for i in 0..256u32 {
                fx.bus
                    .debug_write(RAM_BASE + 0x1000 + i * 4, i * 7)
                    .unwrap();
            }
            fx.run(100_000);
            let out: Vec<u32> = (0..256u32)
                .map(|i| fx.bus.debug_read(RAM_BASE + 0x4000 + i * 4).unwrap())
                .collect();
            results.push(out);
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn unconfigured_bank_faults() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program = assemble("mvtc BANK3,0,DMA8,FIFO0\neop").unwrap();
        fx.load_program(&program);
        fx.ocp.regs().start();
        let mut faulted = false;
        for _ in 0..10_000 {
            fx.ocp.tick(&mut fx.bus);
            ouessant_sim::SystemBus::tick(&mut fx.bus);
            if fx.ocp.fault().is_some() {
                faulted = true;
                break;
            }
        }
        assert!(faulted, "transfer to unconfigured bank must fault");
        assert!(!fx.ocp.regs().done());
    }

    #[test]
    fn bad_prog_size_faults() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        fx.ocp.regs().set_bank(0, RAM_BASE).unwrap();
        // Bypass the validated setter, as a buggy driver would.
        fx.ocp.regs().with_mut(|r| {
            r.bus_write(crate::regs::REG_PROG_SIZE, 0);
        });
        fx.ocp.regs().start();
        for _ in 0..10 {
            fx.ocp.tick(&mut fx.bus);
            ouessant_sim::SystemBus::tick(&mut fx.bus);
        }
        assert!(matches!(
            fx.ocp.fault(),
            Some(ExecError::BadProgSize { size: 0 })
        ));
    }

    #[test]
    fn wait_instruction_adds_exact_cycles() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let base_prog = assemble("eop").unwrap();
        fx.load_program(&base_prog);
        let base_cycles = fx.run(10_000);

        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let wait_prog = assemble("wait 100\neop").unwrap();
        fx.load_program(&wait_prog);
        let wait_cycles = fx.run(10_000);
        // wait adds its 100 cycles plus one fetch/decode pair (+1 for
        // the extra program word in the load burst).
        let delta = wait_cycles - base_cycles;
        assert!(
            (100..=110).contains(&delta),
            "wait 100 added {delta} cycles"
        );
    }

    #[test]
    fn back_to_back_runs() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program =
            assemble("mvtc BANK1,0,DMA4,FIFO0\nexecs 4\nmvfc BANK2,0,DMA4,FIFO0\neop").unwrap();
        fx.load_program(&program);
        fx.ocp.regs().set_bank(1, RAM_BASE + 0x1000).unwrap();
        fx.ocp.regs().set_bank(2, RAM_BASE + 0x2000).unwrap();
        for run in 0..3u32 {
            for i in 0..4u32 {
                fx.bus
                    .debug_write(RAM_BASE + 0x1000 + i * 4, run * 100 + i)
                    .unwrap();
            }
            fx.run(10_000);
            for i in 0..4u32 {
                assert_eq!(
                    fx.bus.debug_read(RAM_BASE + 0x2000 + i * 4).unwrap(),
                    run * 100 + i,
                    "run {run} word {i}"
                );
            }
        }
        assert_eq!(fx.ocp.stats().controller.runs_completed, 3);
    }

    #[test]
    fn completion_events_fire_once_per_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program =
            assemble("mvtc BANK1,0,DMA4,FIFO0\nexecs 4\nmvfc BANK2,0,DMA4,FIFO0\neop").unwrap();
        fx.load_program(&program);
        fx.ocp.regs().set_bank(1, RAM_BASE + 0x1000).unwrap();
        fx.ocp.regs().set_bank(2, RAM_BASE + 0x2000).unwrap();
        fx.ocp.regs().set_irq_enabled(true);

        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = fired.clone();
        fx.ocp
            .set_on_complete(Box::new(move |e| sink.borrow_mut().push(e.runs_completed)));

        assert!(fx.ocp.poll_completion().is_none(), "no event before a run");
        for run in 1..=3u64 {
            fx.run(10_000);
            let event = fx.ocp.poll_completion().expect("event after run");
            assert_eq!(event.runs_completed, run);
            assert!(
                !fx.ocp.irq().is_raised(),
                "poll_completion acknowledges the IRQ"
            );
            assert!(fx.ocp.poll_completion().is_none(), "event delivered once");
            // Ticking an idle, still-done OCP must not re-fire the edge.
            for _ in 0..50 {
                fx.ocp.tick(&mut fx.bus);
                ouessant_sim::SystemBus::tick(&mut fx.bus);
            }
            assert!(fx.ocp.poll_completion().is_none());
        }
        assert_eq!(*fired.borrow(), vec![1, 2, 3], "callback saw each run once");
    }

    #[test]
    fn debug_registers_readable_over_bus() {
        let mut fx = fixture(Box::new(PassthroughRac::new(0)));
        let program =
            assemble("mvtc BANK1,0,DMA8,FIFO0\nexecs 8\nmvfc BANK2,0,DMA8,FIFO0\neop").unwrap();
        fx.load_program(&program);
        fx.ocp.regs().set_bank(1, RAM_BASE + 0x1000).unwrap();
        fx.ocp.regs().set_bank(2, RAM_BASE + 0x2000).unwrap();
        fx.run(10_000);
        let retired = fx
            .bus
            .debug_read(OCP_BASE + crate::regs::REG_DBG_RETIRED)
            .unwrap();
        assert_eq!(retired, 4);
        let words = fx
            .bus
            .debug_read(OCP_BASE + crate::regs::REG_DBG_WORDS)
            .unwrap();
        assert_eq!(words, 16);
    }
}
