//! # The Ouessant coprocessor (OCP)
//!
//! This crate is the paper's primary contribution: a microcontroller-based
//! integration layer that wraps a user-defined accelerator (a *RAC*, see
//! `ouessant-rac`) behind a tiny dedicated instruction set (see
//! `ouessant-isa`), so that data transfer and execution management run
//! with minimal CPU intervention.
//!
//! An OCP is "divided into 3 main parts, which represent the different
//! abstraction levels used to integrate the accelerator" (Figure 1):
//!
//! ```text
//!   Bus ──► [ Bus interface ] ──► [ Ouessant controller ] ──► [ RAC ]
//!              (regs.rs,              (controller.rs)        (ouessant-rac)
//!               interface.rs)
//! ```
//!
//! * [`regs`] — the 10 memory-mapped configuration registers of
//!   Figure 3: control (S/IE/D bits), program size, and the 8 memory
//!   bank base addresses;
//! * [`banks`] — the internal bank/offset address representation and its
//!   translation to system addresses ("a simple virtualization scheme
//!   … used to offer dynamic data management");
//! * [`controller`] — the unpipelined fetch/decode/execute
//!   microcontroller that runs the microcode;
//! * [`interface`] — the bus-facing logic: the slave register port and
//!   the master DMA port (the bus master/slave FSMs of Figure 3);
//! * [`ocp`] — the assembled coprocessor and its host-side handle.
//!
//! ## Example
//!
//! Integrate a passthrough accelerator, run a microcode program and read
//! the result back — an OCP acting as a memory-to-memory DMA:
//!
//! ```
//! use ouessant::ocp::{Ocp, OcpConfig};
//! use ouessant_isa::assemble;
//! use ouessant_rac::passthrough::PassthroughRac;
//! use ouessant_sim::bus::{Bus, BusConfig};
//! use ouessant_sim::memory::{Sram, SramConfig};
//! use ouessant_sim::SystemBus;
//!
//! let mut bus = Bus::new(BusConfig::default());
//! let _cpu = bus.register_master("cpu");
//! bus.add_slave(0x4000_0000, Sram::with_words(4096, SramConfig::no_wait()));
//! let mut ocp = Ocp::attach(&mut bus, 0x8000_0000, Box::new(PassthroughRac::new(0)),
//!                           OcpConfig::default());
//!
//! // Microcode: move 8 words from bank 1 through the RAC into bank 2.
//! let program = assemble("mvtc BANK1,0,DMA8,FIFO0\nexecs 8\nmvfc BANK2,0,DMA8,FIFO0\neop")?;
//!
//! // Host setup (un-timed debug writes stand in for the CPU driver).
//! for (i, w) in program.to_words().iter().enumerate() {
//!     bus.debug_write(0x4000_0000 + (i as u32) * 4, *w)?; // program @ bank 0
//! }
//! for i in 0..8u32 {
//!     bus.debug_write(0x4000_1000 + i * 4, 0xC0DE_0000 + i)?; // input @ bank 1
//! }
//! ocp.regs().set_bank(0, 0x4000_0000)?;
//! ocp.regs().set_bank(1, 0x4000_1000)?;
//! ocp.regs().set_bank(2, 0x4000_2000)?;
//! ocp.regs().set_prog_size(program.len() as u32)?;
//! ocp.regs().start();
//!
//! let mut fuel = 100_000;
//! while !ocp.regs().done() {
//!     ocp.tick(&mut bus);
//!     bus.tick();
//!     fuel -= 1;
//!     assert!(fuel > 0);
//! }
//! assert_eq!(bus.debug_read(0x4000_2000)?, 0xC0DE_0000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banks;
pub mod controller;
pub mod hls;
pub mod interface;
pub mod ocp;
pub mod regs;

pub use banks::{BankTranslation, TranslateError};
pub use controller::{Controller, ControllerState, ExecError};
pub use interface::{IrqLine, RegSlavePort};
pub use ocp::{CompletionCallback, Ocp, OcpCompletion, OcpConfig, OcpStats};
pub use regs::{RegisterFile, RegsHandle, CTRL_D, CTRL_IE, CTRL_S};
