//! The bus-facing half of the OCP: slave register port, master DMA
//! port, and the interrupt line.
//!
//! Figure 3 splits the interface into "one \[part\] which is dependent on
//! the system bus, and one which is independent". The bus-dependent part
//! is the `SystemBus` implementation (AHB-like or AXI-like, in
//! `ouessant-sim`); this module is the independent part plus the two
//! attachment points:
//!
//! * [`RegSlavePort`] — exposes the shared [`RegsHandle`] register file
//!   as a bus slave (the "bus slave FSM" + configuration data
//!   multiplexer);
//! * [`DmaPort`] — the "bus master FSM": issues the burst transactions
//!   the controller requests after bank translation;
//! * [`IrqLine`] — the GPP interrupt wire driven on `eop`.

use std::cell::Cell;
use std::rc::Rc;

use ouessant_sim::bus::{
    Addr, BusError, BusSlave, Completion, MasterId, PortState, SlaveFault, TxnRequest,
};
use ouessant_sim::SystemBus;

use crate::regs::RegsHandle;

/// Size of the OCP's slave window in bytes (configuration registers at
/// `0x00..0x28` plus the read-only debug window at `0x40..0x50`).
pub const SLAVE_WINDOW_BYTES: u32 = 0x80;

/// The OCP's registers exposed as a bus slave.
///
/// Register accesses are single-cycle (no wait states): the register
/// file is on-chip, unlike the external SRAM.
#[derive(Debug, Clone)]
pub struct RegSlavePort {
    regs: RegsHandle,
}

impl RegSlavePort {
    /// Wraps a register-file handle.
    #[must_use]
    pub fn new(regs: RegsHandle) -> Self {
        Self { regs }
    }
}

impl BusSlave for RegSlavePort {
    fn name(&self) -> &str {
        "ocp.regs"
    }

    fn size(&self) -> u32 {
        SLAVE_WINDOW_BYTES
    }

    fn read_word(&mut self, offset: u32) -> Result<u32, SlaveFault> {
        self.regs
            .with(|r| r.bus_read(offset))
            .ok_or_else(|| SlaveFault {
                reason: format!("no OCP register at offset {offset:#x}"),
            })
    }

    fn write_word(&mut self, offset: u32, value: u32) -> Result<(), SlaveFault> {
        if self.regs.with_mut(|r| r.bus_write(offset, value)) {
            Ok(())
        } else {
            Err(SlaveFault {
                reason: format!("OCP register at offset {offset:#x} is not writable"),
            })
        }
    }
}

/// The interrupt wire from the OCP to the GPP.
///
/// Level-triggered: raised on `eop` when the IE bit is set, cleared by
/// the handler via [`IrqLine::clear`].
#[derive(Debug, Clone, Default)]
pub struct IrqLine {
    raised: Rc<Cell<bool>>,
}

impl IrqLine {
    /// A deasserted line.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts the line.
    pub fn raise(&self) {
        self.raised.set(true);
    }

    /// Deasserts the line (interrupt acknowledged).
    pub fn clear(&self) {
        self.raised.set(false);
    }

    /// Whether the line is asserted.
    #[must_use]
    pub fn is_raised(&self) -> bool {
        self.raised.get()
    }
}

/// The bus-master FSM: one outstanding burst on behalf of the
/// controller.
#[derive(Debug, Clone, Copy)]
pub struct DmaPort {
    master: MasterId,
}

impl DmaPort {
    /// Wraps a master id registered on the system bus.
    #[must_use]
    pub fn new(master: MasterId) -> Self {
        Self { master }
    }

    /// The underlying master id.
    #[must_use]
    pub fn master(&self) -> MasterId {
        self.master
    }

    /// Issues a burst read of `beats` words at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] (busy, unmapped, boundary, …).
    pub fn begin_read(
        &self,
        bus: &mut dyn SystemBus,
        addr: Addr,
        beats: u16,
    ) -> Result<(), BusError> {
        bus.try_begin(self.master, TxnRequest::read(addr, beats))
    }

    /// Issues a burst write of `data` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`].
    pub fn begin_write(
        &self,
        bus: &mut dyn SystemBus,
        addr: Addr,
        data: Vec<u32>,
    ) -> Result<(), BusError> {
        bus.try_begin(self.master, TxnRequest::write(addr, data))
    }

    /// Whether a transaction is still in flight.
    #[must_use]
    pub fn is_pending(&self, bus: &dyn SystemBus) -> bool {
        bus.poll(self.master) == PortState::Pending
    }

    /// Retires a finished transaction, if any.
    pub fn take_completion(&self, bus: &mut dyn SystemBus) -> Option<Result<Completion, BusError>> {
        bus.take_completion(self.master)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{CTRL_IE, CTRL_S, REG_CTRL, REG_PROG_SIZE};
    use ouessant_sim::bus::{Bus, BusConfig};

    #[test]
    fn slave_port_reads_and_writes_registers() {
        let regs = RegsHandle::new();
        let mut port = RegSlavePort::new(regs.clone());
        port.write_word(REG_PROG_SIZE, 18).unwrap();
        assert_eq!(port.read_word(REG_PROG_SIZE).unwrap(), 18);
        regs.with(|r| assert_eq!(r.prog_size(), 18));
    }

    #[test]
    fn slave_port_faults_on_holes() {
        let mut port = RegSlavePort::new(RegsHandle::new());
        assert!(port.read_word(0x30).is_err());
        assert!(port.write_word(0x40, 1).is_err(), "debug window read-only");
    }

    #[test]
    fn slave_port_visible_through_bus() {
        let regs = RegsHandle::new();
        let mut bus = Bus::new(BusConfig::default());
        let cpu = bus.register_master("cpu");
        bus.add_slave(0x8000_0000, RegSlavePort::new(regs.clone()));
        bus.try_begin(
            cpu,
            TxnRequest::write_word(0x8000_0000 + REG_CTRL, CTRL_S | CTRL_IE),
        )
        .unwrap();
        bus.run_to_completion(cpu).unwrap();
        assert!(regs.with_mut(|r| r.take_start()));
        assert!(regs.with(|r| r.irq_enabled()));
    }

    #[test]
    fn irq_line_raise_clear() {
        let line = IrqLine::new();
        let observer = line.clone();
        assert!(!observer.is_raised());
        line.raise();
        assert!(observer.is_raised());
        observer.clear();
        assert!(!line.is_raised());
    }

    #[test]
    fn dma_port_round_trip() {
        use ouessant_sim::memory::{Sram, SramConfig};
        let mut bus = Bus::new(BusConfig::default());
        let m = bus.register_master("ocp");
        bus.add_slave(0, Sram::with_words(64, SramConfig::no_wait()));
        let dma = DmaPort::new(m);
        dma.begin_write(&mut bus, 0, vec![1, 2, 3]).unwrap();
        while dma.is_pending(&bus) {
            SystemBus::tick(&mut bus);
        }
        dma.take_completion(&mut bus).unwrap().unwrap();
        dma.begin_read(&mut bus, 0, 3).unwrap();
        while dma.is_pending(&bus) {
            SystemBus::tick(&mut bus);
        }
        let c = dma.take_completion(&mut bus).unwrap().unwrap();
        assert_eq!(c.data, vec![1, 2, 3]);
    }
}
