//! Bank/offset internal addressing and its translation to system
//! addresses.
//!
//! "In the Ouessant approach, memory is divided in different banks. A
//! memory bank is defined as a set of contiguous memory words. An
//! internal address is a memory bank id with an offset inside this bank.
//! This is a simple virtualization scheme, which is used to offer
//! dynamic data management in Ouessant. Actual location of data is
//! irrelevant when designing the coprocessor or writing the firmware.
//! Banks location can then be configured at runtime." (§III-C)
//!
//! "The translation mechanism is quite simple. The controller sets a
//! bank id and an offset when it requires data transfer. The interface
//! selects the correct bank address in its configuration registers. It
//! then adds the offset, in order to obtain the complete correct address
//! in the system."

use std::error::Error;
use std::fmt;

use ouessant_isa::operands::Bank;

use crate::regs::RegisterFile;

/// By convention, bank 0 holds the microcode: "the OCP microcode is
/// located in the memory", and the program-fetch unit reads it from this
/// bank when the S bit is written. Figure 4's data accordingly lives in
/// banks 1 and 2.
pub const PROGRAM_BANK: usize = 0;

/// Error translating an internal address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// The selected bank register still holds its reset value of zero —
    /// the host never configured it.
    UnconfiguredBank {
        /// Bank index.
        bank: u8,
    },
    /// Base + offset overflowed the 32-bit address space.
    AddressOverflow {
        /// Bank index.
        bank: u8,
        /// Word offset that overflowed.
        offset: u32,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnconfiguredBank { bank } => {
                write!(f, "bank {bank} base register was never configured")
            }
            TranslateError::AddressOverflow { bank, offset } => write!(
                f,
                "bank {bank} base + word offset {offset} overflows the address space"
            ),
        }
    }
}

impl Error for TranslateError {}

/// The translation unit: the adder + bank multiplexer of Figure 3.
///
/// Stateless; reads the bank base registers out of the shared
/// [`RegisterFile`] at translation time, which is what makes bank
/// placement a *runtime* decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankTranslation;

impl BankTranslation {
    /// Creates the translation unit.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Translates `bank` + word `offset` into a system byte address.
    ///
    /// # Errors
    ///
    /// [`TranslateError::UnconfiguredBank`] if the bank register is 0,
    /// [`TranslateError::AddressOverflow`] on 32-bit overflow.
    pub fn translate(
        &self,
        regs: &RegisterFile,
        bank: Bank,
        word_offset: u32,
    ) -> Result<u32, TranslateError> {
        let base = regs.bank_base(bank.index());
        if base == 0 {
            return Err(TranslateError::UnconfiguredBank { bank: bank.value() });
        }
        let byte_offset = u64::from(word_offset) * 4;
        let addr = u64::from(base) + byte_offset;
        u32::try_from(addr).map_err(|_| TranslateError::AddressOverflow {
            bank: bank.value(),
            offset: word_offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs_with_bank(index: usize, base: u32) -> RegisterFile {
        let mut r = RegisterFile::new();
        r.bus_write(crate::regs::REG_BANK0 + 4 * index as u32, base);
        r
    }

    #[test]
    fn base_plus_word_offset() {
        let regs = regs_with_bank(1, 0x4000_1000);
        let t = BankTranslation::new();
        let addr = t.translate(&regs, Bank::new(1).unwrap(), 64).unwrap();
        assert_eq!(addr, 0x4000_1000 + 64 * 4);
    }

    #[test]
    fn unconfigured_bank_rejected() {
        let regs = RegisterFile::new();
        let t = BankTranslation::new();
        assert_eq!(
            t.translate(&regs, Bank::new(5).unwrap(), 0),
            Err(TranslateError::UnconfiguredBank { bank: 5 })
        );
    }

    #[test]
    fn overflow_rejected() {
        let regs = regs_with_bank(2, 0xFFFF_FFF0);
        let t = BankTranslation::new();
        assert_eq!(
            t.translate(&regs, Bank::new(2).unwrap(), 16),
            Err(TranslateError::AddressOverflow {
                bank: 2,
                offset: 16
            })
        );
    }

    #[test]
    fn runtime_reconfiguration_takes_effect() {
        // "Banks location can then be configured at runtime."
        let mut regs = regs_with_bank(1, 0x1000);
        let t = BankTranslation::new();
        let b = Bank::new(1).unwrap();
        assert_eq!(t.translate(&regs, b, 0).unwrap(), 0x1000);
        regs.bus_write(crate::regs::REG_BANK0 + 4, 0x2000);
        assert_eq!(t.translate(&regs, b, 0).unwrap(), 0x2000);
    }

    #[test]
    fn error_display() {
        assert!(TranslateError::UnconfiguredBank { bank: 3 }
            .to_string()
            .contains("bank 3"));
    }
}
