//! The OCP configuration register file (Figure 3).
//!
//! "Configuration is stored on 10 registers. The first register is a
//! control register. In the current version, only 3 bits are used, one
//! for starting the coprocessor (bit S), one to enable interrupt (bit
//! IE), and one to signal whether data processing is finished or not
//! (bit D). The second register is the number of instructions in the
//! program. The remaining registers are used to store memory banks
//! location in the system."
//!
//! The register file is the *shared state* between the bus slave port
//! (CPU side) and the controller (coprocessor side); [`RegsHandle`] is
//! the `Rc<RefCell<…>>` both sides hold.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use ouessant_isa::operands::{MAX_PROGRAM_LEN, NUM_BANKS};

/// Byte offset of the control register.
pub const REG_CTRL: u32 = 0x00;
/// Byte offset of the program-size register.
pub const REG_PROG_SIZE: u32 = 0x04;
/// Byte offset of the first bank base register (bank *k* lives at
/// `0x08 + 4k`, so bank 7 is at `0x24` as in Figure 3).
pub const REG_BANK0: u32 = 0x08;
/// Number of configuration registers (control + size + 8 banks).
pub const NUM_CONFIG_REGS: u32 = 10;

/// Control-register bit S: start the coprocessor.
pub const CTRL_S: u32 = 1 << 0;
/// Control-register bit IE: enable the completion interrupt.
pub const CTRL_IE: u32 = 1 << 1;
/// Control-register bit D: data processing finished.
pub const CTRL_D: u32 = 1 << 2;

/// Read-only debug/status window (reproduction extension, documented in
/// DESIGN.md): current controller state id.
pub const REG_DBG_STATE: u32 = 0x40;
/// Debug: instructions retired since start.
pub const REG_DBG_RETIRED: u32 = 0x44;
/// Debug: words transferred since start.
pub const REG_DBG_WORDS: u32 = 0x48;
/// Debug: current program counter.
pub const REG_DBG_PC: u32 = 0x4C;

/// Error configuring the register file from the host side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Bank index beyond the 8 banks of the interface.
    BadBank {
        /// The offending index.
        index: u8,
    },
    /// Program size of zero or beyond the program store.
    BadProgSize {
        /// The offending size in instructions.
        size: u32,
    },
    /// A bank base address that is not word-aligned.
    UnalignedBase {
        /// The offending address.
        base: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadBank { index } => write!(f, "bank index {index} out of range (0..8)"),
            ConfigError::BadProgSize { size } => write!(
                f,
                "program size {size} invalid (1..={MAX_PROGRAM_LEN} instructions)"
            ),
            ConfigError::UnalignedBase { base } => {
                write!(f, "bank base {base:#010x} is not word-aligned")
            }
        }
    }
}

impl Error for ConfigError {}

/// The raw register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    ctrl: u32,
    prog_size: u32,
    banks: [u32; NUM_BANKS as usize],
    /// Set by a CPU write of S; consumed by the controller.
    start_pending: bool,
    /// Debug mirrors maintained by the controller.
    dbg_state: u32,
    dbg_retired: u32,
    dbg_words: u32,
    dbg_pc: u32,
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// A register file with all registers zeroed.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ctrl: 0,
            prog_size: 0,
            banks: [0; NUM_BANKS as usize],
            start_pending: false,
            dbg_state: 0,
            dbg_retired: 0,
            dbg_words: 0,
            dbg_pc: 0,
        }
    }

    /// Bus-visible read at byte `offset` (both config and debug
    /// windows).
    #[must_use]
    pub fn bus_read(&self, offset: u32) -> Option<u32> {
        match offset {
            REG_CTRL => Some(self.ctrl),
            REG_PROG_SIZE => Some(self.prog_size),
            o if (REG_BANK0..REG_BANK0 + 4 * u32::from(NUM_BANKS)).contains(&o) && o % 4 == 0 => {
                Some(self.banks[((o - REG_BANK0) / 4) as usize])
            }
            REG_DBG_STATE => Some(self.dbg_state),
            REG_DBG_RETIRED => Some(self.dbg_retired),
            REG_DBG_WORDS => Some(self.dbg_words),
            REG_DBG_PC => Some(self.dbg_pc),
            _ => None,
        }
    }

    /// Bus-visible write at byte `offset`.
    ///
    /// Returns `false` for offsets that are not writable (debug window,
    /// holes). Writing `CTRL` with the S bit set arms `start_pending`
    /// and clears the D bit; the D bit itself is read-only from the bus
    /// (only the controller sets it), as in the paper's interface.
    pub fn bus_write(&mut self, offset: u32, value: u32) -> bool {
        match offset {
            REG_CTRL => {
                let d = self.ctrl & CTRL_D;
                self.ctrl = (value & (CTRL_S | CTRL_IE)) | d;
                if value & CTRL_S != 0 {
                    self.start_pending = true;
                    self.ctrl &= !CTRL_D;
                }
                true
            }
            REG_PROG_SIZE => {
                self.prog_size = value;
                true
            }
            o if (REG_BANK0..REG_BANK0 + 4 * u32::from(NUM_BANKS)).contains(&o) && o % 4 == 0 => {
                self.banks[((o - REG_BANK0) / 4) as usize] = value;
                true
            }
            _ => false,
        }
    }

    /// The control register value.
    #[must_use]
    pub fn ctrl(&self) -> u32 {
        self.ctrl
    }

    /// Whether the D (done) bit is set.
    #[must_use]
    pub fn done(&self) -> bool {
        self.ctrl & CTRL_D != 0
    }

    /// Whether the IE (interrupt enable) bit is set.
    #[must_use]
    pub fn irq_enabled(&self) -> bool {
        self.ctrl & CTRL_IE != 0
    }

    /// Program size in instructions.
    #[must_use]
    pub fn prog_size(&self) -> u32 {
        self.prog_size
    }

    /// Base address of bank `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`; bank ids from decoded instructions are
    /// always in range.
    #[must_use]
    pub fn bank_base(&self, index: usize) -> u32 {
        self.banks[index]
    }

    /// Whether a start request is armed but not yet consumed by the
    /// controller (used by the fast-forward kernel: a pending S bit
    /// means the next controller tick is an event).
    #[must_use]
    pub fn start_pending(&self) -> bool {
        self.start_pending
    }

    /// Controller side: consumes a pending start request.
    pub fn take_start(&mut self) -> bool {
        let pending = self.start_pending;
        self.start_pending = false;
        if pending {
            self.ctrl &= !CTRL_S; // S auto-clears once the OCP launches
        }
        pending
    }

    /// Controller side: sets the D bit (end of program).
    pub fn set_done(&mut self) {
        self.ctrl |= CTRL_D;
    }

    /// Controller side: updates the debug mirrors.
    pub fn set_debug(&mut self, state: u32, retired: u32, words: u32, pc: u32) {
        self.dbg_state = state;
        self.dbg_retired = retired;
        self.dbg_words = words;
        self.dbg_pc = pc;
    }
}

/// Shared handle to the register file: one side is mapped on the bus
/// (see [`crate::interface::RegSlavePort`]), the other drives the
/// controller and the host-convenience setters below.
#[derive(Debug, Clone, Default)]
pub struct RegsHandle {
    inner: Rc<RefCell<RegisterFile>>,
}

impl RegsHandle {
    /// A fresh register file.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with shared access to the registers.
    pub fn with<R>(&self, f: impl FnOnce(&RegisterFile) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Runs `f` with exclusive access to the registers.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut RegisterFile) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Whether a start request is armed but not yet consumed (see
    /// [`RegisterFile::start_pending`]).
    #[must_use]
    pub fn start_pending(&self) -> bool {
        self.with(RegisterFile::start_pending)
    }

    /// Host helper: configures bank `index` at `base` (validated).
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadBank`] or [`ConfigError::UnalignedBase`].
    pub fn set_bank(&self, index: u8, base: u32) -> Result<(), ConfigError> {
        if index >= NUM_BANKS as u8 {
            return Err(ConfigError::BadBank { index });
        }
        if !base.is_multiple_of(4) {
            return Err(ConfigError::UnalignedBase { base });
        }
        self.with_mut(|r| r.banks[usize::from(index)] = base);
        Ok(())
    }

    /// Host helper: sets the program size in instructions (validated).
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadProgSize`] for zero or beyond the store.
    pub fn set_prog_size(&self, size: u32) -> Result<(), ConfigError> {
        if size == 0 || size as usize > MAX_PROGRAM_LEN {
            return Err(ConfigError::BadProgSize { size });
        }
        self.with_mut(|r| r.prog_size = size);
        Ok(())
    }

    /// Host helper: enables or disables the completion interrupt.
    pub fn set_irq_enabled(&self, enabled: bool) {
        self.with_mut(|r| {
            if enabled {
                r.ctrl |= CTRL_IE;
            } else {
                r.ctrl &= !CTRL_IE;
            }
        });
    }

    /// Host helper: writes the S bit, arming the coprocessor.
    pub fn start(&self) {
        self.with_mut(|r| {
            let ie = r.ctrl & CTRL_IE;
            r.bus_write(REG_CTRL, CTRL_S | ie);
        });
    }

    /// Whether the D bit is set.
    #[must_use]
    pub fn done(&self) -> bool {
        self.with(RegisterFile::done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_register_offsets() {
        assert_eq!(REG_CTRL, 0x0);
        assert_eq!(REG_PROG_SIZE, 0x4);
        assert_eq!(REG_BANK0, 0x8);
        assert_eq!(REG_BANK0 + 4 * 7, 0x24); // bank 7 at 0x24, as drawn
        assert_eq!(NUM_CONFIG_REGS, 10);
    }

    #[test]
    fn bus_read_write_banks() {
        let mut r = RegisterFile::new();
        assert!(r.bus_write(REG_BANK0 + 4 * 3, 0x4000_1000));
        assert_eq!(r.bus_read(REG_BANK0 + 4 * 3), Some(0x4000_1000));
        assert_eq!(r.bank_base(3), 0x4000_1000);
    }

    #[test]
    fn unknown_offsets_rejected() {
        let mut r = RegisterFile::new();
        assert_eq!(r.bus_read(0x28), None); // hole between config and debug
        assert!(!r.bus_write(0x28, 1));
        assert!(!r.bus_write(REG_DBG_STATE, 1)); // debug window read-only
    }

    #[test]
    fn start_bit_arms_and_clears_done() {
        let mut r = RegisterFile::new();
        r.set_done();
        assert!(r.done());
        r.bus_write(REG_CTRL, CTRL_S);
        assert!(!r.done(), "starting clears D");
        assert!(r.take_start());
        assert!(!r.take_start(), "start is consumed once");
        assert_eq!(r.ctrl() & CTRL_S, 0, "S auto-clears on launch");
    }

    #[test]
    fn d_bit_not_writable_from_bus() {
        let mut r = RegisterFile::new();
        r.bus_write(REG_CTRL, CTRL_D);
        assert!(!r.done(), "bus cannot set D directly");
        r.set_done();
        r.bus_write(REG_CTRL, CTRL_IE); // rewrite without S keeps D
        assert!(r.done());
    }

    #[test]
    fn ie_bit_round_trips() {
        let mut r = RegisterFile::new();
        r.bus_write(REG_CTRL, CTRL_IE);
        assert!(r.irq_enabled());
        r.bus_write(REG_CTRL, 0);
        assert!(!r.irq_enabled());
    }

    #[test]
    fn handle_validation() {
        let h = RegsHandle::new();
        assert!(h.set_bank(7, 0x1000).is_ok());
        assert_eq!(h.set_bank(8, 0), Err(ConfigError::BadBank { index: 8 }));
        assert_eq!(
            h.set_bank(0, 3),
            Err(ConfigError::UnalignedBase { base: 3 })
        );
        assert!(h.set_prog_size(18).is_ok());
        assert_eq!(
            h.set_prog_size(0),
            Err(ConfigError::BadProgSize { size: 0 })
        );
        assert_eq!(
            h.set_prog_size(1025),
            Err(ConfigError::BadProgSize { size: 1025 })
        );
    }

    #[test]
    fn handle_start_preserves_ie() {
        let h = RegsHandle::new();
        h.set_irq_enabled(true);
        h.start();
        h.with(|r| {
            assert!(r.irq_enabled());
        });
        assert!(h.with_mut(RegisterFile::take_start));
    }

    #[test]
    fn debug_mirrors() {
        let mut r = RegisterFile::new();
        r.set_debug(2, 10, 640, 9);
        assert_eq!(r.bus_read(REG_DBG_STATE), Some(2));
        assert_eq!(r.bus_read(REG_DBG_RETIRED), Some(10));
        assert_eq!(r.bus_read(REG_DBG_WORDS), Some(640));
        assert_eq!(r.bus_read(REG_DBG_PC), Some(9));
    }

    #[test]
    fn config_error_messages() {
        assert!(ConfigError::BadBank { index: 9 }
            .to_string()
            .contains("bank"));
        assert!(ConfigError::BadProgSize { size: 0 }
            .to_string()
            .contains("program size"));
    }
}
