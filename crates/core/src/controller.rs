//! The Ouessant controller: an unpipelined fetch/decode/execute
//! microcontroller.
//!
//! "Ouessant controller is responsible for instruction decoding and
//! actual control of data transfer and coprocessor operations based on
//! provided microcode. It is based on a classical unpipelined
//! Fetch/Decode/Execute microcontroller architecture. It roughly
//! consists of a Finite State Machine to control execution, and of
//! registers to store the state it is in." (§III-D)
//!
//! Timing model (one `tick` = one clock cycle):
//!
//! * start handshake: 1 cycle to observe the S bit, then a burst read of
//!   the whole program from bank 0 into the internal program store;
//! * each instruction costs 1 fetch + 1 decode cycle, plus its execute
//!   time: transfers occupy the bus for their burst, `exec` waits for the
//!   RAC, register operations take a single cycle.

use std::error::Error;
use std::fmt;

use ouessant_isa::operands::{Bank, BurstLen, FifoId, MAX_PROGRAM_LEN};
use ouessant_isa::{DecodeError, Instruction};
use ouessant_rac::rac::RacSocket;
use ouessant_sim::bus::{BusError, MasterId};
use ouessant_sim::{Cycle, NextEvent, SystemBus};

use crate::banks::{BankTranslation, TranslateError, PROGRAM_BANK};
use crate::interface::{DmaPort, IrqLine};
use crate::regs::RegsHandle;

/// A fatal condition that stops the controller (debug-visible; the D bit
/// is *not* set, so the host driver times out and reads the state
/// register).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program-size register is zero or beyond the program store.
    BadProgSize {
        /// Value found in the register.
        size: u32,
    },
    /// An instruction word failed to decode.
    BadInstruction {
        /// Program counter of the word.
        pc: u16,
        /// Decoder diagnosis.
        source: DecodeError,
    },
    /// Bank translation failed.
    Translate(TranslateError),
    /// The system bus reported an error.
    Bus(BusError),
    /// The program counter ran past the end of the program (missing
    /// `eop`/`halt` — prevented for assembled programs by validation).
    PcOverrun {
        /// The overrunning pc.
        pc: u16,
    },
    /// An `rcfg` instruction targeted a static accelerator or a
    /// non-existent configuration slot.
    Reconfig {
        /// The requested slot.
        slot: u16,
        /// Number of slots the accelerator offers (0 for static RACs).
        available: usize,
    },
    /// A fault forced from outside through
    /// [`Controller::inject_fault`] — a chaos-testing harness standing
    /// in for radiation upsets, clock glitches or logic bugs the
    /// simulation does not model organically. The controller itself
    /// never raises it.
    Injected {
        /// Harness-supplied cause tag.
        cause: &'static str,
    },
    /// The OCP watchdog expired: the controller made no observable
    /// progress (no instruction retired, no word transferred) for a
    /// whole cycle budget. Raised by the watchdog hardware, never by
    /// the FSM itself.
    Hang {
        /// The cycle budget that was exhausted.
        budget: u64,
    },
    /// The host cancelled the run through the OCP abort path. Like a
    /// hardware abort line: the FSM stops where it stands and recovery
    /// drains whatever the bus still owes.
    Aborted,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadProgSize { size } => {
                write!(f, "program size register holds invalid value {size}")
            }
            ExecError::BadInstruction { pc, source } => {
                write!(f, "instruction at pc {pc} failed to decode: {source}")
            }
            ExecError::Translate(e) => write!(f, "{e}"),
            ExecError::Bus(e) => write!(f, "bus error during transfer: {e}"),
            ExecError::PcOverrun { pc } => write!(f, "program counter overran program at {pc}"),
            ExecError::Reconfig { slot, available } => write!(
                f,
                "rcfg slot {slot} invalid ({available} configurations available)"
            ),
            ExecError::Injected { cause } => write!(f, "injected fault: {cause}"),
            ExecError::Hang { budget } => write!(
                f,
                "watchdog expired: no progress for {budget} cycles (hung handshake or runaway loop)"
            ),
            ExecError::Aborted => write!(f, "run aborted by host"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::BadInstruction { source, .. } => Some(source),
            ExecError::Translate(e) => Some(e),
            ExecError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TranslateError> for ExecError {
    fn from(e: TranslateError) -> Self {
        ExecError::Translate(e)
    }
}

impl From<BusError> for ExecError {
    fn from(e: BusError) -> Self {
        ExecError::Bus(e)
    }
}

/// The controller's FSM state (readable through the debug register
/// window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerState {
    /// Waiting for the S bit.
    Idle,
    /// Program burst-read from bank 0 in flight.
    LoadProgram,
    /// Reading the instruction at `pc` from the program store.
    Fetch,
    /// Decoding the fetched word.
    Decode,
    /// Dispatching the decoded instruction.
    Execute,
    /// Transfer waiting for FIFO space (mvtc) or occupancy (mvfc).
    TransferFifoWait,
    /// Transfer burst in flight on the system bus.
    TransferBusWait,
    /// Waiting for the RAC's `end_op`.
    RacWait,
    /// `wait` instruction counting down.
    WaitCycles {
        /// Cycles remaining.
        left: u16,
    },
    /// `sync` instruction waiting for all FIFOs to drain.
    SyncWait,
    /// Partial bitstream loading into the RAC slot (`rcfg`).
    ReconfigWait {
        /// Cycles remaining of the bitstream transfer.
        left: u64,
    },
    /// Stopped on a fatal error.
    Faulted(ExecError),
}

impl ControllerState {
    /// A stable numeric id for the debug state register.
    #[must_use]
    pub fn id(&self) -> u32 {
        match self {
            ControllerState::Idle => 0,
            ControllerState::LoadProgram => 1,
            ControllerState::Fetch => 2,
            ControllerState::Decode => 3,
            ControllerState::Execute => 4,
            ControllerState::TransferFifoWait => 5,
            ControllerState::TransferBusWait => 6,
            ControllerState::RacWait => 7,
            ControllerState::WaitCycles { .. } => 8,
            ControllerState::SyncWait => 9,
            ControllerState::ReconfigWait { .. } => 10,
            ControllerState::Faulted(_) => 15,
        }
    }
}

/// Statistics the controller gathers per program run (the measurements
/// behind the paper's §V-B transfer-efficiency analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Cycles from observing the S bit to setting D (whole offload).
    pub active_cycles: u64,
    /// Cycles spent loading the program from memory.
    pub program_load_cycles: u64,
    /// Data words moved by mvtc/mvfc (excludes the program fetch).
    pub words_transferred: u64,
    /// Cycles during which a data transfer was in flight on the bus.
    pub transfer_cycles: u64,
    /// Cycles spent waiting for the RAC.
    pub rac_wait_cycles: u64,
    /// Instructions retired.
    pub instructions_retired: u64,
    /// Completed program runs.
    pub runs_completed: u64,
}

impl ControllerStats {
    /// Effective transfer cost in cycles per word, the paper's §V-B
    /// metric ("around 1.5 cycles per word were required").
    ///
    /// Includes the per-instruction overhead of issuing the transfers
    /// but not the RAC compute time.
    #[must_use]
    pub fn cycles_per_word(&self) -> f64 {
        if self.words_transferred == 0 {
            return 0.0;
        }
        // Per-transfer-instruction fetch/decode/issue overhead is part
        // of moving data, so charge transfer_cycles plus three cycles
        // per retired transfer instruction — conservatively approximated
        // by the recorded transfer bus cycles only when instruction
        // counts are unavailable.
        self.transfer_cycles as f64 / self.words_transferred as f64
    }
}

#[derive(Debug)]
enum PendingTransfer {
    /// Read from memory into input FIFO `fifo`.
    ToCoprocessor { fifo: FifoId },
    /// Write from output FIFO to memory (payload already popped).
    FromCoprocessor,
}

/// The controller: FSM + program store + extension registers.
#[derive(Debug)]
pub struct Controller {
    state: ControllerState,
    dma: DmaPort,
    xlate: BankTranslation,
    program: Vec<u32>,
    pc: u16,
    prog_len: u16,
    current: Option<Instruction>,
    pending_transfer: Option<PendingTransfer>,
    counters: [u16; 4],
    offset_regs: [u16; 4],
    preloaded: bool,
    wedged: bool,
    stats: ControllerStats,
    started_at: u64,
    cycle: u64,
}

impl Controller {
    /// Creates an idle controller whose transfers go through `dma`.
    #[must_use]
    pub fn new(dma: DmaPort) -> Self {
        Self {
            state: ControllerState::Idle,
            dma,
            xlate: BankTranslation::new(),
            program: Vec::new(),
            pc: 0,
            prog_len: 0,
            current: None,
            pending_transfer: None,
            counters: [0; 4],
            offset_regs: [0; 4],
            preloaded: false,
            wedged: false,
            stats: ControllerStats::default(),
            started_at: 0,
            cycle: 0,
        }
    }

    /// The current FSM state.
    #[must_use]
    pub fn state(&self) -> &ControllerState {
        &self.state
    }

    /// The bus identity of the DMA master port (for per-master bus
    /// statistics).
    #[must_use]
    pub fn master(&self) -> MasterId {
        self.dma.master()
    }

    /// Whether the controller is executing a program.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(
            self.state,
            ControllerState::Idle | ControllerState::Faulted(_)
        )
    }

    /// The fault that stopped the controller, if any.
    #[must_use]
    pub fn fault(&self) -> Option<&ExecError> {
        match &self.state {
            ControllerState::Faulted(e) => Some(e),
            _ => None,
        }
    }

    /// Run statistics.
    #[must_use]
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Current program counter (for the debug window).
    #[must_use]
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Pre-loads the program store directly, bypassing the bank-0 fetch
    /// (standalone mode: the paper's §VI mentions "standalone operation
    /// … to provide control for processor-free designs").
    pub fn preload_program(&mut self, words: &[u32]) {
        self.program = words.to_vec();
        self.prog_len = words.len() as u16;
        self.preloaded = true;
    }

    fn set_fault(&mut self, e: ExecError) {
        self.state = ControllerState::Faulted(e);
        // A fault supersedes a wedge: the FSM is parked in `Faulted`
        // either way and recovery clears both.
        self.wedged = false;
    }

    /// Freezes the FSM mid-handshake without faulting it: the state
    /// (and every countdown inside it) stops dead, exactly like a DMA
    /// or FIFO handshake whose partner never answers. Only the
    /// watchdog, an injected fault, or a host abort gets out. No-op
    /// unless the controller is active.
    ///
    /// This is the chaos seam for *silent* hangs — the failure mode
    /// [`Controller::inject_fault`] cannot model, because a crash is
    /// host-visible through the state register while a wedge is not.
    pub fn inject_wedge(&mut self) {
        if self.is_active() {
            self.wedged = true;
        }
    }

    /// Whether the FSM is frozen by [`Controller::inject_wedge`].
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Forces the controller into [`ControllerState::Faulted`] with
    /// `error`, exactly as if the FSM had raised it itself.
    ///
    /// This is the fault-injection seam for chaos testing and
    /// fault-containment experiments: a serving layer can kill a worker
    /// mid-job and exercise its recovery path without building a broken
    /// bus or corrupt microcode first. Any bus transaction in flight
    /// keeps running to completion on the bus side (hardware cannot
    /// recall an issued burst); [`Controller::try_reset`] drains it.
    pub fn inject_fault(&mut self, error: ExecError) {
        self.set_fault(error);
    }

    /// Attempts to return a faulted (or idle) controller to
    /// [`ControllerState::Idle`] so it can accept a new start.
    ///
    /// Recovery must not leave a phantom bus transaction behind: if the
    /// DMA port still has a burst outstanding the reset is refused and
    /// `false` is returned — keep ticking the bus and retry. A waiting
    /// completion (the burst finished after the fault) is discarded.
    /// Program store, loop counters, offset registers and any pending
    /// transfer are cleared; cumulative statistics are kept. A program
    /// installed with [`Controller::preload_program`] survives the
    /// reset (standalone mode has no bank-0 copy to refetch).
    pub fn try_reset(&mut self, bus: &mut dyn SystemBus) -> bool {
        // Retire a completion that landed after the fault, then make
        // sure nothing is still in flight.
        let _ = self.dma.take_completion(bus);
        if self.dma.is_pending(bus) {
            return false;
        }
        self.state = ControllerState::Idle;
        self.wedged = false;
        self.current = None;
        self.pending_transfer = None;
        self.pc = 0;
        self.counters = [0; 4];
        self.offset_regs = [0; 4];
        if !self.preloaded {
            self.program.clear();
            self.prog_len = 0;
        }
        true
    }

    fn retire(&mut self) {
        self.stats.instructions_retired += 1;
        self.pc += 1;
        self.current = None;
        self.state = ControllerState::Fetch;
    }

    /// The fast-forward horizon refined with the RAC socket the
    /// controller is waiting on.
    ///
    /// The standalone [`NextEvent`] impl must answer `Some(1)` for
    /// [`ControllerState::RacWait`] because the controller alone cannot
    /// see when `end_op` will fire; the embedding OCP owns both halves
    /// and can substitute the socket's horizon — which is where the
    /// Table I compute latencies (the big idle windows) live.
    #[must_use]
    pub fn horizon_with(&self, socket: &RacSocket) -> Option<Cycle> {
        if self.wedged {
            // A wedged FSM never changes state on its own; only the
            // watchdog (merged by the embedding OCP) bounds the window.
            return None;
        }
        match &self.state {
            // Ticks in RacWait only bump `rac_wait_cycles` until the
            // socket deasserts busy, so the socket's own horizon bounds
            // the window. A quiescent socket (idle RAC) means `end_op`
            // never fires — the embedding OCP turns that into a
            // single-step safety net while the controller is active.
            ControllerState::RacWait => socket.horizon(),
            _ => self.horizon(),
        }
    }

    /// Advances the controller one clock cycle.
    ///
    /// `irq` is the GPP interrupt line, `regs` the shared register file,
    /// `socket` the RAC with its FIFOs (ticked separately by the OCP).
    pub fn tick(
        &mut self,
        bus: &mut dyn SystemBus,
        regs: &RegsHandle,
        socket: &mut RacSocket,
        irq: &IrqLine,
    ) {
        self.step_fsm(bus, regs, socket, irq);
        let (state_id, retired, words, pc) = (
            self.state.id(),
            self.stats.instructions_retired as u32,
            self.stats.words_transferred as u32,
            u32::from(self.pc),
        );
        regs.with_mut(|r| r.set_debug(state_id, retired, words, pc));
    }

    /// One FSM step; the public [`Controller::tick`] wraps it so the
    /// debug registers are refreshed on every exit path.
    #[allow(clippy::too_many_lines)] // one arm per FSM state, kept together deliberately
    fn step_fsm(
        &mut self,
        bus: &mut dyn SystemBus,
        regs: &RegsHandle,
        socket: &mut RacSocket,
        irq: &IrqLine,
    ) {
        self.cycle += 1;
        if self.is_active() {
            self.stats.active_cycles += 1;
        }
        if self.wedged {
            // Frozen handshake: the state (and any countdown inside
            // it) holds; per-state statistics do not accrue because no
            // work is happening.
            return;
        }
        match std::mem::replace(&mut self.state, ControllerState::Idle) {
            ControllerState::Idle => {
                if regs.with_mut(|r| r.take_start()) {
                    let size = regs.with(|r| r.prog_size());
                    if size == 0 || size as usize > MAX_PROGRAM_LEN {
                        self.set_fault(ExecError::BadProgSize { size });
                        return;
                    }
                    self.started_at = self.cycle;
                    self.stats.active_cycles += 1; // count the start cycle
                    self.prog_len = size as u16;
                    self.counters = [0; 4];
                    self.offset_regs = [0; 4];
                    if self.preloaded {
                        // Standalone mode (§VI): the microcode sits in an
                        // internal ROM, no bank-0 fetch needed.
                        self.pc = 0;
                        self.state = ControllerState::Fetch;
                        return;
                    }
                    // Burst-read the whole microcode from bank 0.
                    let bank0 = Bank::new(PROGRAM_BANK as u8).expect("bank 0 valid");
                    let addr = match regs.with(|r| self.xlate.translate(r, bank0, 0)) {
                        Ok(a) => a,
                        Err(e) => {
                            self.set_fault(e.into());
                            return;
                        }
                    };
                    if let Err(e) = self.dma.begin_read(bus, addr, self.prog_len) {
                        self.set_fault(e.into());
                        return;
                    }
                    self.state = ControllerState::LoadProgram;
                } else {
                    self.state = ControllerState::Idle;
                }
            }
            ControllerState::LoadProgram => {
                self.stats.program_load_cycles += 1;
                match self.dma.take_completion(bus) {
                    None => self.state = ControllerState::LoadProgram,
                    Some(Err(e)) => {
                        self.set_fault(e.into());
                    }
                    Some(Ok(c)) => {
                        self.program = c.data;
                        self.pc = 0;
                        self.state = ControllerState::Fetch;
                    }
                }
            }
            ControllerState::Fetch => {
                if usize::from(self.pc) >= self.program.len() {
                    self.set_fault(ExecError::PcOverrun { pc: self.pc });
                    return;
                }
                self.state = ControllerState::Decode;
            }
            ControllerState::Decode => {
                let word = self.program[usize::from(self.pc)];
                match Instruction::decode(word) {
                    Ok(insn) => {
                        self.current = Some(insn);
                        self.state = ControllerState::Execute;
                    }
                    Err(source) => {
                        self.set_fault(ExecError::BadInstruction {
                            pc: self.pc,
                            source,
                        });
                    }
                }
            }
            ControllerState::Execute => {
                let insn = self.current.expect("decode set current");
                self.dispatch(insn, bus, regs, socket, irq);
            }
            ControllerState::TransferFifoWait => {
                let insn = self.current.expect("transfer in progress");
                self.try_issue_transfer(insn, bus, regs, socket);
            }
            ControllerState::TransferBusWait => {
                self.stats.transfer_cycles += 1;
                match self.dma.take_completion(bus) {
                    None => self.state = ControllerState::TransferBusWait,
                    Some(Err(e)) => {
                        self.set_fault(e.into());
                    }
                    Some(Ok(c)) => {
                        // Reads deliver their payload into the input FIFO
                        // here; writes were counted when their payload was
                        // popped at issue time.
                        if let Some(PendingTransfer::ToCoprocessor { fifo }) =
                            self.pending_transfer.take()
                        {
                            for w in &c.data {
                                socket
                                    .push_input(fifo.index(), *w)
                                    .expect("space reserved before issue");
                            }
                            self.stats.words_transferred += c.data.len() as u64;
                        }
                        self.retire();
                    }
                }
            }
            ControllerState::RacWait => {
                self.stats.rac_wait_cycles += 1;
                if socket.busy() {
                    self.state = ControllerState::RacWait;
                } else {
                    self.retire();
                }
            }
            ControllerState::WaitCycles { left } => {
                if left > 1 {
                    self.state = ControllerState::WaitCycles { left: left - 1 };
                } else {
                    self.retire();
                }
            }
            ControllerState::SyncWait => {
                if socket.all_fifos_empty() {
                    self.retire();
                } else {
                    self.state = ControllerState::SyncWait;
                }
            }
            ControllerState::ReconfigWait { left } => {
                if left > 1 {
                    self.state = ControllerState::ReconfigWait { left: left - 1 };
                } else {
                    self.retire();
                }
            }
            ControllerState::Faulted(e) => {
                self.state = ControllerState::Faulted(e);
            }
        }
    }

    fn dispatch(
        &mut self,
        insn: Instruction,
        bus: &mut dyn SystemBus,
        regs: &RegsHandle,
        socket: &mut RacSocket,
        irq: &IrqLine,
    ) {
        match insn {
            Instruction::Nop => self.retire(),
            Instruction::Mvtc { .. }
            | Instruction::Mvfc { .. }
            | Instruction::Mvtcr { .. }
            | Instruction::Mvfcr { .. } => {
                self.try_issue_transfer(insn, bus, regs, socket);
            }
            Instruction::Exec { op } => {
                socket.start(op);
                self.state = ControllerState::RacWait;
            }
            Instruction::Execn { op } => {
                socket.start(op);
                self.retire();
            }
            Instruction::Wrac => {
                self.state = ControllerState::RacWait;
            }
            Instruction::Eop => {
                regs.with_mut(|r| r.set_done());
                if regs.with(|r| r.irq_enabled()) {
                    irq.raise();
                }
                self.stats.instructions_retired += 1;
                self.stats.runs_completed += 1;
                self.current = None;
                self.state = ControllerState::Idle;
            }
            Instruction::Halt => {
                self.stats.instructions_retired += 1;
                self.current = None;
                self.state = ControllerState::Idle;
            }
            Instruction::Ldc { counter, imm } => {
                self.counters[counter.index()] = imm;
                self.retire();
            }
            Instruction::Djnz { counter, target } => {
                let c = &mut self.counters[counter.index()];
                if *c > 0 {
                    *c -= 1;
                }
                if *c > 0 {
                    self.stats.instructions_retired += 1;
                    self.pc = target.value();
                    self.current = None;
                    self.state = ControllerState::Fetch;
                } else {
                    self.retire();
                }
            }
            Instruction::Ldo { reg, imm } => {
                self.offset_regs[reg.index()] = imm;
                self.retire();
            }
            Instruction::Addo { reg, delta } => {
                let v = i32::from(self.offset_regs[reg.index()]) + i32::from(delta);
                self.offset_regs[reg.index()] = (v.rem_euclid(1 << 14)) as u16;
                self.retire();
            }
            Instruction::Wait { cycles } => {
                if cycles == 0 {
                    self.retire();
                } else {
                    self.state = ControllerState::WaitCycles { left: cycles };
                }
            }
            Instruction::Sync => {
                self.state = ControllerState::SyncWait;
            }
            Instruction::Rcfg { slot } => {
                use ouessant_rac::rac::ReconfigResponse;
                match socket.reconfigure(slot) {
                    ReconfigResponse::Started { cycles } if cycles > 0 => {
                        self.state = ControllerState::ReconfigWait { left: cycles };
                    }
                    ReconfigResponse::Started { .. } => self.retire(),
                    ReconfigResponse::Unsupported => {
                        self.set_fault(ExecError::Reconfig { slot, available: 0 });
                    }
                    ReconfigResponse::BadSlot { available } => {
                        self.set_fault(ExecError::Reconfig { slot, available });
                    }
                }
            }
        }
    }

    fn try_issue_transfer(
        &mut self,
        insn: Instruction,
        bus: &mut dyn SystemBus,
        regs: &RegsHandle,
        socket: &mut RacSocket,
    ) {
        // Resolve direction, bank, offset, burst, fifo.
        let (to_coprocessor, bank, word_offset, burst, fifo, post_inc_reg) = match insn {
            Instruction::Mvtc {
                bank,
                offset,
                burst,
                fifo,
            } => (true, bank, u32::from(offset.value()), burst, fifo, None),
            Instruction::Mvfc {
                bank,
                offset,
                burst,
                fifo,
            } => (false, bank, u32::from(offset.value()), burst, fifo, None),
            Instruction::Mvtcr {
                bank,
                reg,
                burst,
                fifo,
            } => (
                true,
                bank,
                u32::from(self.offset_regs[reg.index()]),
                burst,
                fifo,
                Some(reg),
            ),
            Instruction::Mvfcr {
                bank,
                reg,
                burst,
                fifo,
            } => (
                false,
                bank,
                u32::from(self.offset_regs[reg.index()]),
                burst,
                fifo,
                Some(reg),
            ),
            _ => unreachable!("only transfer instructions reach try_issue_transfer"),
        };

        let words = usize::from(burst.words());
        if to_coprocessor {
            if socket.input_space(fifo.index()) < words {
                self.state = ControllerState::TransferFifoWait;
                return;
            }
        } else if socket.output_available(fifo.index()) < words {
            self.state = ControllerState::TransferFifoWait;
            return;
        }

        let addr = match regs.with(|r| self.xlate.translate(r, bank, word_offset)) {
            Ok(a) => a,
            Err(e) => {
                self.set_fault(e.into());
                return;
            }
        };

        let issue_result = if to_coprocessor {
            self.pending_transfer = Some(PendingTransfer::ToCoprocessor { fifo });
            self.dma.begin_read(bus, addr, burst.words())
        } else {
            let mut payload = Vec::with_capacity(words);
            for _ in 0..words {
                payload.push(
                    socket
                        .pop_output(fifo.index())
                        .expect("occupancy checked above"),
                );
            }
            self.pending_transfer = Some(PendingTransfer::FromCoprocessor);
            self.stats.words_transferred += words as u64;
            self.dma.begin_write(bus, addr, payload)
        };

        if let Err(e) = issue_result {
            self.set_fault(e.into());
            return;
        }
        if let Some(reg) = post_inc_reg {
            let v = u32::from(self.offset_regs[reg.index()]) + u32::from(burst.words());
            self.offset_regs[reg.index()] = (v % (1 << 14)) as u16;
        }
        self.state = ControllerState::TransferBusWait;
    }

    /// Validates a burst against a FIFO depth: a transfer larger than
    /// the FIFO can never complete. Exposed so the host library can warn
    /// at configuration time.
    #[must_use]
    pub fn burst_fits(burst: BurstLen, fifo_depth: usize) -> bool {
        usize::from(burst.words()) <= fifo_depth
    }
}

impl NextEvent for Controller {
    /// The countdown states (`wait`, `rcfg`) expose their full windows;
    /// every other active state may transition on its very next tick.
    ///
    /// `Idle` reports quiescent *from the controller's own view*: a
    /// pending S bit lives in the register file, so the embedding OCP
    /// checks `start_pending` before trusting `None`. `RacWait` is
    /// conservatively `Some(1)` here; [`Controller::horizon_with`]
    /// refines it with the socket's horizon.
    fn horizon(&self) -> Option<Cycle> {
        if self.wedged {
            return None;
        }
        match &self.state {
            ControllerState::Idle | ControllerState::Faulted(_) => None,
            ControllerState::WaitCycles { left } => Some(Cycle::new(u64::from(*left).max(1))),
            ControllerState::ReconfigWait { left } => Some(Cycle::new((*left).max(1))),
            _ => Some(Cycle::new(1)),
        }
    }

    fn advance(&mut self, cycles: Cycle) {
        let n = cycles.count();
        if n == 0 {
            return;
        }
        self.cycle += n;
        if self.is_active() {
            self.stats.active_cycles += n;
        }
        if self.wedged {
            // Frozen: mirror the wedged `step_fsm` early return — only
            // the cycle and active counters move.
            return;
        }
        match &mut self.state {
            // Idle / faulted ticks only advance the cycle counter (a
            // start cannot be pending, or the horizon was 1).
            ControllerState::Idle | ControllerState::Faulted(_) => {}
            ControllerState::WaitCycles { left } => {
                debug_assert!(n < u64::from(*left), "advanced past the wait window");
                *left -= n as u16;
            }
            ControllerState::ReconfigWait { left } => {
                debug_assert!(n < *left, "advanced past the bitstream load");
                *left -= n;
            }
            // Waiting on `end_op`: each skipped tick would have charged
            // one RAC-wait cycle.
            ControllerState::RacWait => self.stats.rac_wait_cycles += n,
            s => debug_assert!(false, "advance in non-pure state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_ids_are_distinct() {
        let states = [
            ControllerState::Idle,
            ControllerState::LoadProgram,
            ControllerState::Fetch,
            ControllerState::Decode,
            ControllerState::Execute,
            ControllerState::TransferFifoWait,
            ControllerState::TransferBusWait,
            ControllerState::RacWait,
            ControllerState::WaitCycles { left: 1 },
            ControllerState::SyncWait,
            ControllerState::ReconfigWait { left: 1 },
            ControllerState::Faulted(ExecError::PcOverrun { pc: 0 }),
        ];
        let mut ids: Vec<u32> = states.iter().map(ControllerState::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), states.len());
    }

    #[test]
    fn burst_fits_check() {
        assert!(Controller::burst_fits(BurstLen::new(64).unwrap(), 64));
        assert!(!Controller::burst_fits(BurstLen::new(65).unwrap(), 64));
    }

    #[test]
    fn exec_error_messages() {
        let e = ExecError::BadProgSize { size: 0 };
        assert!(e.to_string().contains("program size"));
        let e = ExecError::PcOverrun { pc: 7 };
        assert!(e.to_string().contains('7'));
    }

    // Full FSM behaviour is exercised through the Ocp in ocp.rs tests
    // and the cross-crate integration tests.
}
