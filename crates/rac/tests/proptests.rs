//! Randomized invariant tests for the accelerator data paths:
//! fixed-point kernels track their floating-point golden models over
//! arbitrary inputs, and the streaming RACs preserve their algebraic
//! identities.
//!
//! Formerly `proptest` properties; now driven by the in-repo seeded
//! generator so the workspace tests fully offline.

use ouessant_rac::dft::{dft_f64, dft_fixed, dft_latency};
use ouessant_rac::fixed::{from_q15, q15_mul, Q15_ONE};
use ouessant_rac::idct::{idct_2d_f64, idct_2d_fixed};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::rac::RacSocket;
use ouessant_sim::rng::XorShift64;

fn coeff_block(rng: &mut XorShift64, lo: i32, hi: i32) -> Vec<i32> {
    (0..64).map(|_| rng.gen_range_i32(lo..hi)).collect()
}

/// Fixed-point 2-D IDCT tracks the f64 reference within one LSB for
/// the full JPEG coefficient range.
#[test]
fn idct_fixed_tracks_golden() {
    let mut rng = XorShift64::new(0xAC_0001);
    for _ in 0..48 {
        let coeffs = coeff_block(&mut rng, -2048, 2048);
        let fixed = idct_2d_fixed(&coeffs);
        let golden = idct_2d_f64(&coeffs.iter().map(|&c| f64::from(c)).collect::<Vec<_>>());
        for (f, g) in fixed.iter().zip(&golden) {
            assert!((f64::from(*f) - g).abs() <= 1.0, "fixed {f} vs golden {g}");
        }
    }
}

/// IDCT linearity: IDCT(a + b) == IDCT(a) + IDCT(b) within rounding.
#[test]
fn idct_is_linear() {
    let mut rng = XorShift64::new(0xAC_0002);
    for _ in 0..48 {
        let a = coeff_block(&mut rng, -900, 901);
        let b = coeff_block(&mut rng, -900, 901);
        let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ia = idct_2d_fixed(&a);
        let ib = idct_2d_fixed(&b);
        let isum = idct_2d_fixed(&sum);
        for i in 0..64 {
            let linear = ia[i] + ib[i];
            assert!(
                (isum[i] - linear).abs() <= 2,
                "index {i}: {} vs {}",
                isum[i],
                linear
            );
        }
    }
}

fn bounded_samples(rng: &mut XorShift64, count: usize) -> Vec<(i32, i32)> {
    (0..count)
        .map(|_| {
            (
                rng.gen_range_i32(-Q15_ONE / 2..Q15_ONE / 2),
                rng.gen_range_i32(-Q15_ONE / 2..Q15_ONE / 2),
            )
        })
        .collect()
}

/// Fixed-point FFT tracks the f64 reference (scaled DFT) over
/// arbitrary Q15 inputs.
#[test]
fn dft_fixed_tracks_golden() {
    let mut rng = XorShift64::new(0xAC_0003);
    for _ in 0..48 {
        let log_n = rng.gen_range_u32(3..7);
        let samples = bounded_samples(&mut rng, 1 << log_n);
        let golden = dft_f64(
            &samples
                .iter()
                .map(|&(r, i)| (from_q15(r), from_q15(i)))
                .collect::<Vec<_>>(),
        );
        let fixed = dft_fixed(&samples);
        let bound = 24.0 / f64::from(Q15_ONE);
        for ((fr, fi), (gr, gi)) in fixed.iter().zip(&golden) {
            assert!((from_q15(*fr) - gr).abs() < bound);
            assert!((from_q15(*fi) - gi).abs() < bound);
        }
    }
}

/// Parseval-flavoured bound: the scaled DFT of a bounded signal is
/// bounded (no internal overflow for |x| <= 0.5).
#[test]
fn dft_never_overflows_for_bounded_input() {
    let mut rng = XorShift64::new(0xAC_0004);
    for _ in 0..48 {
        let samples = bounded_samples(&mut rng, 64);
        for (re, im) in dft_fixed(&samples) {
            assert!(re.abs() <= Q15_ONE && im.abs() <= Q15_ONE);
        }
    }
}

/// The latency model is monotone and superlinear in N.
#[test]
fn dft_latency_monotone() {
    for log_n in 3u32..12 {
        let n = 1usize << log_n;
        assert!(dft_latency(2 * n) > dft_latency(n));
        assert!(dft_latency(2 * n) < 4 * dft_latency(n));
    }
}

/// Q15 multiplication is commutative and bounded.
#[test]
fn q15_mul_properties() {
    let mut rng = XorShift64::new(0xAC_0005);
    for _ in 0..5000 {
        let a = rng.gen_range_i32(-Q15_ONE..Q15_ONE + 1);
        let b = rng.gen_range_i32(-Q15_ONE..Q15_ONE + 1);
        assert_eq!(q15_mul(a, b), q15_mul(b, a));
        // |a*b| <= |a| for |b| <= 1.0 (plus rounding slack).
        assert!(q15_mul(a, b).abs() <= a.abs().max(1) + 1);
    }
}

/// A passthrough RAC delivers any word stream unchanged, in order,
/// for any FIFO depth that can hold the stream.
#[test]
fn passthrough_preserves_streams() {
    let mut rng = XorShift64::new(0xAC_0006);
    for _ in 0..48 {
        let n = rng.gen_range_u32(1..200) as usize;
        let words = rng.vec_u32(n);
        let mut socket = RacSocket::new(Box::new(PassthroughRac::new(0)), words.len().max(4));
        for &w in &words {
            socket.push_input(0, w).expect("depth sized to stream");
        }
        socket.start(u16::try_from(words.len()).expect("test sizes fit"));
        socket.run_until_done(1_000_000);
        for &w in &words {
            assert_eq!(socket.pop_output(0).expect("present"), w);
        }
    }
}
