//! Property tests for the accelerator data paths: fixed-point kernels
//! track their floating-point golden models over arbitrary inputs, and
//! the streaming RACs preserve their algebraic identities.

use proptest::prelude::*;

use ouessant_rac::dft::{dft_f64, dft_fixed, dft_latency};
use ouessant_rac::fixed::{from_q15, q15_mul, Q15_ONE};
use ouessant_rac::idct::{idct_2d_f64, idct_2d_fixed};
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::rac::RacSocket;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed-point 2-D IDCT tracks the f64 reference within one LSB for
    /// the full JPEG coefficient range.
    #[test]
    fn idct_fixed_tracks_golden(coeffs in prop::collection::vec(-2048i32..=2047, 64)) {
        let fixed = idct_2d_fixed(&coeffs);
        let golden = idct_2d_f64(&coeffs.iter().map(|&c| f64::from(c)).collect::<Vec<_>>());
        for (f, g) in fixed.iter().zip(&golden) {
            prop_assert!((f64::from(*f) - g).abs() <= 1.0, "fixed {f} vs golden {g}");
        }
    }

    /// IDCT linearity: IDCT(a + b) == IDCT(a) + IDCT(b) within rounding.
    #[test]
    fn idct_is_linear(
        a in prop::collection::vec(-900i32..=900, 64),
        b in prop::collection::vec(-900i32..=900, 64),
    ) {
        let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ia = idct_2d_fixed(&a);
        let ib = idct_2d_fixed(&b);
        let isum = idct_2d_fixed(&sum);
        for i in 0..64 {
            let linear = ia[i] + ib[i];
            prop_assert!(
                (isum[i] - linear).abs() <= 2,
                "index {i}: {} vs {}",
                isum[i],
                linear
            );
        }
    }

    /// Fixed-point FFT tracks the f64 reference (scaled DFT) over
    /// arbitrary Q15 inputs.
    #[test]
    fn dft_fixed_tracks_golden(
        log_n in 3u32..=6,
        seed_samples in prop::collection::vec(
            (-Q15_ONE / 2..Q15_ONE / 2, -Q15_ONE / 2..Q15_ONE / 2),
            64,
        )
    ) {
        let samples = &seed_samples[..1 << log_n];
        let golden = dft_f64(
            &samples.iter().map(|&(r, i)| (from_q15(r), from_q15(i))).collect::<Vec<_>>(),
        );
        let fixed = dft_fixed(samples);
        let bound = 24.0 / f64::from(Q15_ONE);
        for ((fr, fi), (gr, gi)) in fixed.iter().zip(&golden) {
            prop_assert!((from_q15(*fr) - gr).abs() < bound);
            prop_assert!((from_q15(*fi) - gi).abs() < bound);
        }
    }

    /// Parseval-flavoured bound: the scaled DFT of a bounded signal is
    /// bounded (no internal overflow for |x| <= 0.5).
    #[test]
    fn dft_never_overflows_for_bounded_input(
        samples in prop::collection::vec(
            (-Q15_ONE / 2..Q15_ONE / 2, -Q15_ONE / 2..Q15_ONE / 2),
            64,
        )
    ) {
        for (re, im) in dft_fixed(&samples) {
            prop_assert!(re.abs() <= Q15_ONE && im.abs() <= Q15_ONE);
        }
    }

    /// The latency model is monotone and superlinear in N.
    #[test]
    fn dft_latency_monotone(log_n in 3u32..12) {
        let n = 1usize << log_n;
        prop_assert!(dft_latency(2 * n) > dft_latency(n));
        prop_assert!(dft_latency(2 * n) < 4 * dft_latency(n));
    }

    /// Q15 multiplication is commutative and bounded.
    #[test]
    fn q15_mul_properties(a in -Q15_ONE..=Q15_ONE, b in -Q15_ONE..=Q15_ONE) {
        prop_assert_eq!(q15_mul(a, b), q15_mul(b, a));
        // |a*b| <= |a| for |b| <= 1.0 (plus rounding slack).
        prop_assert!(q15_mul(a, b).abs() <= a.abs().max(1) + 1);
    }

    /// A passthrough RAC delivers any word stream unchanged, in order,
    /// for any FIFO depth that can hold the stream.
    #[test]
    fn passthrough_preserves_streams(
        words in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        let mut socket = RacSocket::new(Box::new(PassthroughRac::new(0)), words.len().max(4));
        for &w in &words {
            socket.push_input(0, w).expect("depth sized to stream");
        }
        socket.start(u16::try_from(words.len()).expect("test sizes fit"));
        socket.run_until_done(1_000_000);
        for &w in &words {
            prop_assert_eq!(socket.pop_output(0).expect("present"), w);
        }
    }
}
