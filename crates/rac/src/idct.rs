//! The 2-D Inverse Discrete Cosine Transform RAC.
//!
//! The paper's first evaluation accelerator is "a locally developed 2D
//! Inverse Discrete Cosine Transform (IDCT) for JPEG decoding" with a
//! processing latency of 18 cycles per 8×8 block (Table I, *Lat.*). This
//! module provides:
//!
//! * [`idct_2d_f64`] — the real-valued reference (golden model);
//! * [`idct_2d_fixed`] — the bit-exact integer data path used by both
//!   the RAC and the software baseline (so hardware offload and software
//!   fallback produce identical pixels, as a JPEG decoder requires);
//! * [`IdctRac`] — the accelerator: one 64-word block in, 18 cycles of
//!   compute, one 64-word block out.
//!
//! The fixed-point data path is a direct-form separable IDCT with a
//! 14-bit cosine table and 64-bit accumulators; its error versus the
//! golden model is below one LSB for JPEG-range coefficients (verified
//! by property tests).

use std::f64::consts::PI;

use crate::block::{BlockKernel, BlockRac};

/// Words per 8×8 block (one coefficient per 32-bit word).
pub const BLOCK_LEN: usize = 64;

/// The paper's processing latency for one block, in cycles.
pub const IDCT_LATENCY: u64 = 18;

/// Fractional bits of the cosine table.
const SCALE_BITS: u32 = 14;
/// Extra precision bits carried between the two 1-D passes.
const PASS_BITS: u32 = 3;

/// `table[u][x]` = `c(u)/2 · cos((2x+1)uπ/16)` in `SCALE_BITS` fixed
/// point, with `c(0) = 1/√2` and `c(u>0) = 1`.
fn cos_table() -> [[i32; 8]; 8] {
    let mut t = [[0i32; 8]; 8];
    for (u, row) in t.iter_mut().enumerate() {
        let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
        for (x, e) in row.iter_mut().enumerate() {
            let v = cu / 2.0 * ((2 * x as u32 + 1) as f64 * u as f64 * PI / 16.0).cos();
            *e = (v * f64::from(1 << SCALE_BITS)).round() as i32;
        }
    }
    t
}

/// Reference 2-D IDCT over `f64`, row-column decomposition.
///
/// `coeffs` and the result are in row-major order.
///
/// # Panics
///
/// Panics if `coeffs` is not 64 elements long.
#[must_use]
pub fn idct_2d_f64(coeffs: &[f64]) -> Vec<f64> {
    assert_eq!(coeffs.len(), BLOCK_LEN, "an 8x8 block has 64 coefficients");
    let idct_1d = |input: &[f64; 8]| -> [f64; 8] {
        let mut out = [0.0f64; 8];
        for (x, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (u, &s) in input.iter().enumerate() {
                let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                acc += cu / 2.0 * s * ((2 * x as u32 + 1) as f64 * u as f64 * PI / 16.0).cos();
            }
            *o = acc;
        }
        out
    };
    // Rows, then columns.
    let mut tmp = [0.0f64; BLOCK_LEN];
    for r in 0..8 {
        let mut row = [0.0f64; 8];
        row.copy_from_slice(&coeffs[r * 8..r * 8 + 8]);
        let out = idct_1d(&row);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&out);
    }
    let mut result = vec![0.0f64; BLOCK_LEN];
    for c in 0..8 {
        let mut col = [0.0f64; 8];
        for r in 0..8 {
            col[r] = tmp[r * 8 + c];
        }
        let out = idct_1d(&col);
        for r in 0..8 {
            result[r * 8 + c] = out[r];
        }
    }
    result
}

/// Bit-exact integer 2-D IDCT (the hardware data path).
///
/// Input coefficients are `i32` in the JPEG dequantized range
/// (±2048·scale); the output is the reconstructed sample block. The
/// identical function is called by the software baseline in
/// `ouessant-soc`, so accelerator and CPU agree bit-for-bit.
///
/// # Panics
///
/// Panics if `coeffs` is not 64 elements long.
#[must_use]
pub fn idct_2d_fixed(coeffs: &[i32]) -> Vec<i32> {
    assert_eq!(coeffs.len(), BLOCK_LEN, "an 8x8 block has 64 coefficients");
    let table = cos_table();
    // Pass 1 (rows): keep PASS_BITS extra fraction bits.
    let mut tmp = [0i64; BLOCK_LEN];
    for r in 0..8 {
        for x in 0..8 {
            let mut acc: i64 = 0;
            for u in 0..8 {
                acc += i64::from(coeffs[r * 8 + u]) * i64::from(table[u][x]);
            }
            let shift = SCALE_BITS - PASS_BITS;
            tmp[r * 8 + x] = (acc + (1 << (shift - 1))) >> shift;
        }
    }
    // Pass 2 (columns): remove table scale plus the extra pass bits.
    let mut out = vec![0i32; BLOCK_LEN];
    for c in 0..8 {
        for x in 0..8 {
            let mut acc: i64 = 0;
            for u in 0..8 {
                acc += tmp[u * 8 + c] * i64::from(table[u][x]);
            }
            let shift = SCALE_BITS + PASS_BITS;
            out[x * 8 + c] = ((acc + (1 << (shift - 1))) >> shift) as i32;
        }
    }
    out
}

/// Kernel description driving [`BlockRac`].
#[derive(Debug, Default)]
pub struct IdctKernel;

impl BlockKernel for IdctKernel {
    fn name(&self) -> &str {
        "idct2d"
    }

    fn input_len(&self, _op: u16) -> usize {
        BLOCK_LEN
    }

    fn latency(&self, _op: u16) -> u64 {
        IDCT_LATENCY
    }

    fn compute(&mut self, _op: u16, input: &[u32]) -> Vec<u32> {
        let coeffs: Vec<i32> = input.iter().map(|&w| w as i32).collect();
        idct_2d_fixed(&coeffs)
            .into_iter()
            .map(|v| v as u32)
            .collect()
    }
}

/// The 2-D IDCT accelerator: the paper's first RAC.
///
/// # Examples
///
/// ```
/// use ouessant_rac::idct::{idct_2d_fixed, IdctRac, BLOCK_LEN};
/// use ouessant_rac::rac::RacSocket;
///
/// let block: Vec<i32> = (0..64).map(|i| if i == 0 { 512 } else { 0 }).collect();
/// let mut socket = RacSocket::new(Box::new(IdctRac::new()), 128);
/// for &c in &block {
///     socket.push_input(0, c as u32)?;
/// }
/// socket.start(0);
/// socket.run_until_done(1_000);
/// let hw: Vec<i32> = (0..BLOCK_LEN)
///     .map(|_| socket.pop_output(0).map(|w| w as i32))
///     .collect::<Result<_, _>>()?;
/// assert_eq!(hw, idct_2d_fixed(&block)); // bit-exact vs the data path
/// # Ok::<(), ouessant_rac::rac::RacError>(())
/// ```
#[derive(Debug)]
pub struct IdctRac {
    inner: BlockRac<IdctKernel>,
}

impl IdctRac {
    /// Creates the IDCT accelerator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: BlockRac::new(IdctKernel),
        }
    }

    /// Blocks processed since the last reset.
    #[must_use]
    pub fn blocks_done(&self) -> u64 {
        self.inner.ops_done()
    }
}

impl Default for IdctRac {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::rac::Rac for IdctRac {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn start(&mut self, op: u16) {
        self.inner.start(op);
    }
    fn busy(&self) -> bool {
        self.inner.busy()
    }
    fn tick(&mut self, io: &mut crate::rac::RacIo<'_>) {
        self.inner.tick(io);
    }
    fn horizon(&self) -> Option<ouessant_sim::Cycle> {
        self.inner.horizon()
    }
    fn advance(&mut self, cycles: ouessant_sim::Cycle) {
        self.inner.advance(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rac::{Rac, RacSocket};

    #[test]
    fn dc_only_block_is_flat() {
        // A DC-only input produces a constant block: out = dc/8.
        let mut coeffs = [0i32; BLOCK_LEN];
        coeffs[0] = 800;
        let out = idct_2d_fixed(&coeffs);
        let expected = 100; // 800 / 8
        for &v in &out {
            assert!((v - expected).abs() <= 1, "got {v}, want ~{expected}");
        }
    }

    #[test]
    fn zero_block_is_zero() {
        let out = idct_2d_fixed(&[0; BLOCK_LEN]);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn fixed_matches_golden_model() {
        // Deterministic pseudo-random JPEG-range coefficients.
        let mut state = 0x1234_5678u32;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((state >> 16) as i32 % 2048) - 1024
        };
        for _ in 0..16 {
            let coeffs: Vec<i32> = (0..BLOCK_LEN).map(|_| next()).collect();
            let golden = idct_2d_f64(&coeffs.iter().map(|&c| f64::from(c)).collect::<Vec<_>>());
            let fixed = idct_2d_fixed(&coeffs);
            for (f, g) in fixed.iter().zip(&golden) {
                assert!((f64::from(*f) - g).abs() <= 1.0, "fixed {f} vs golden {g}");
            }
        }
    }

    #[test]
    fn f64_idct_inverts_known_energy() {
        // Parseval-ish sanity: IDCT of a unit impulse at (0,0) has total
        // energy 1 (orthonormal transform).
        let mut coeffs = vec![0.0; BLOCK_LEN];
        coeffs[0] = 1.0;
        let out = idct_2d_f64(&coeffs);
        let energy: f64 = out.iter().map(|v| v * v).sum();
        assert!((energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rac_latency_matches_table1() {
        let mut s = RacSocket::new(Box::new(IdctRac::new()), 128);
        for i in 0..BLOCK_LEN {
            s.push_input(0, i as u32).unwrap();
        }
        s.start(0);
        // Lat. = 18 compute cycles (+1 cycle pushing into the output
        // FIFO, which the paper's "data transfer not considered" excludes
        // but our end_op includes).
        let cycles = s.run_until_done(1000);
        assert_eq!(cycles, IDCT_LATENCY + 1);
    }

    #[test]
    fn rac_output_matches_data_path() {
        let coeffs: Vec<i32> = (0..64).map(|i| (i * 37 % 503) - 251).collect();
        let mut s = RacSocket::new(Box::new(IdctRac::new()), 128);
        for &c in &coeffs {
            s.push_input(0, c as u32).unwrap();
        }
        s.start(0);
        s.run_until_done(1000);
        let hw: Vec<i32> = (0..BLOCK_LEN)
            .map(|_| s.pop_output(0).unwrap() as i32)
            .collect();
        assert_eq!(hw, idct_2d_fixed(&coeffs));
    }

    #[test]
    fn rac_processes_blocks_back_to_back() {
        let mut s = RacSocket::new(Box::new(IdctRac::new()), 256);
        for round in 0..3 {
            let coeffs: Vec<i32> = (0..64).map(|i| i + round * 100).collect();
            for &c in &coeffs {
                s.push_input(0, c as u32).unwrap();
            }
            s.start(0);
            s.run_until_done(1000);
            let hw: Vec<i32> = (0..BLOCK_LEN)
                .map(|_| s.pop_output(0).unwrap() as i32)
                .collect();
            assert_eq!(hw, idct_2d_fixed(&coeffs), "round {round}");
        }
    }

    #[test]
    fn rac_metadata() {
        let r = IdctRac::new();
        assert_eq!(r.name(), "idct2d");
        assert_eq!(r.num_input_fifos(), 1);
        assert_eq!(r.num_output_fifos(), 1);
        assert!(!r.busy());
    }

    #[test]
    #[should_panic(expected = "64 coefficients")]
    fn wrong_block_size_panics() {
        let _ = idct_2d_fixed(&[0; 32]);
    }
}
