//! The RAC contract and its FIFO harness.
//!
//! Figure 2 of the paper shows the accelerator sitting between an input
//! FIFO (`dout`/`rd_en`/`empty` on the accelerator side) and an output
//! FIFO (`din`/`wr_en`/`full`), launched by a `start_op` pulse and
//! signalling completion with `end_op`. [`Rac`] is that contract;
//! [`RacSocket`] is the surrounding harness, owning one 32-bit
//! [`SyncFifo`] per interface.

use std::error::Error;
use std::fmt;

use ouessant_sim::fifo::{FifoError, SyncFifo};
use ouessant_sim::Cycle;

/// Error type for RAC harness operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RacError {
    /// A FIFO index beyond the accelerator's interface count.
    NoSuchFifo {
        /// The offending index.
        index: usize,
        /// Whether an input (true) or output (false) FIFO was addressed.
        input: bool,
    },
    /// The underlying FIFO rejected the operation.
    Fifo(FifoError),
}

impl fmt::Display for RacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RacError::NoSuchFifo { index, input } => write!(
                f,
                "no {} fifo with index {index}",
                if *input { "input" } else { "output" }
            ),
            RacError::Fifo(e) => write!(f, "{e}"),
        }
    }
}

impl Error for RacError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RacError::Fifo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FifoError> for RacError {
    fn from(e: FifoError) -> Self {
        RacError::Fifo(e)
    }
}

/// The FIFO view handed to a RAC on each tick.
///
/// Indices match the `FIFO<n>` operands of `mvtc` (inputs) and `mvfc`
/// (outputs) in the microcode.
#[derive(Debug)]
pub struct RacIo<'a> {
    /// Input FIFOs: the accelerator pops (`rd_en`) from these.
    pub inputs: &'a mut [SyncFifo<u32>],
    /// Output FIFOs: the accelerator pushes (`wr_en`) into these.
    pub outputs: &'a mut [SyncFifo<u32>],
}

/// A Reconfigurable Acceleration Coprocessor.
///
/// The controller drives a RAC exclusively through this interface:
/// [`Rac::start`] is the `start_op` pulse (with the 16-bit operation tag
/// of `exec`), [`Rac::busy`] is the inverse of `end_op`, and
/// [`Rac::tick`] advances the accelerator one clock cycle with access to
/// its FIFOs.
///
/// Implementations must be deterministic: the same FIFO contents and
/// tick sequence always produce the same outputs.
pub trait Rac {
    /// The accelerator's name (used in traces and resource reports).
    fn name(&self) -> &str;

    /// Number of input FIFO interfaces (default 1; "the number of input
    /// and output interfaces can be adapted according to the accelerator
    /// requirements").
    fn num_input_fifos(&self) -> usize {
        1
    }

    /// Number of output FIFO interfaces (default 1).
    fn num_output_fifos(&self) -> usize {
        1
    }

    /// Returns the accelerator to its power-on state (FIFOs are cleared
    /// by the harness).
    fn reset(&mut self);

    /// The `start_op` pulse. `op` is the 16-bit operation tag from the
    /// `exec`/`execn` instruction; accelerators that need no
    /// configuration ignore it.
    fn start(&mut self, op: u16);

    /// Whether the accelerator is still processing (i.e. `end_op` has
    /// not fired since the last [`Rac::start`]).
    fn busy(&self) -> bool;

    /// Advances one clock cycle.
    fn tick(&mut self, io: &mut RacIo<'_>);

    /// Requests loading configuration `slot` into the accelerator
    /// region (dynamic partial reconfiguration, the paper's §VI work in
    /// progress).
    ///
    /// Static accelerators return [`ReconfigResponse::Unsupported`]
    /// (the default); reconfigurable slots switch their active
    /// configuration and report the bitstream load latency.
    fn reconfigure(&mut self, slot: u16) -> ReconfigResponse {
        let _ = slot;
        ReconfigResponse::Unsupported
    }

    /// Fast-forward horizon (see `ouessant_sim::event::NextEvent`): the
    /// earliest future tick, as a 1-based offset from now, at which the
    /// accelerator's observable state can change.
    ///
    /// The default is maximally conservative — `Some(1)` while busy
    /// (single-step every cycle), `None` when idle (idle ticks must be
    /// no-ops, which holds for every in-tree RAC). Accelerators with a
    /// pure latency countdown (e.g. [`crate::block::BlockRac`]) override
    /// this to expose the whole countdown window.
    fn horizon(&self) -> Option<Cycle> {
        if self.busy() {
            Some(Cycle::new(1))
        } else {
            None
        }
    }

    /// Bulk-applies `cycles` provably-pure ticks in O(1).
    ///
    /// Callers guarantee `cycles ≤ horizon() - 1` (or the RAC is idle).
    /// The default is a no-op, correct for RACs whose idle `tick` does
    /// not touch state; RACs with free-running counters (e.g.
    /// [`crate::passthrough::PassthroughRac`]) must override it to keep
    /// fast-forwarded state bit-identical to ticked state.
    fn advance(&mut self, cycles: Cycle) {
        let _ = cycles;
    }
}

/// Outcome of a [`Rac::reconfigure`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigResponse {
    /// The accelerator is static hardware; `rcfg` is a microcode error.
    Unsupported,
    /// The slot id does not exist.
    BadSlot {
        /// Number of configurations available.
        available: usize,
    },
    /// Reconfiguration started; the region is unusable for `cycles`
    /// clock cycles (bitstream transfer through the ICAP).
    Started {
        /// Reconfiguration latency in cycles.
        cycles: u64,
    },
}

/// The harness around a RAC: the FIFOs of Figure 2 plus tick plumbing.
///
/// [`RacSocket`] is what the OCP embeds; it is also directly usable in
/// tests and benchmarks to exercise an accelerator without a bus or
/// controller (as the paper's authors did in simulation before going to
/// the board).
#[derive(Debug)]
pub struct RacSocket {
    rac: Box<dyn Rac>,
    inputs: Vec<SyncFifo<u32>>,
    outputs: Vec<SyncFifo<u32>>,
    busy_cycles: u64,
    /// Injected slow-silicon stall: while nonzero the accelerator is
    /// frozen (no ticks reach it) but reports busy, stretching the
    /// compute latency by exactly this many cycles.
    stall_left: u64,
}

impl fmt::Debug for dyn Rac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rac({})", self.name())
    }
}

impl RacSocket {
    /// Wraps `rac`, creating one `fifo_depth`-word FIFO per interface.
    ///
    /// # Panics
    ///
    /// Panics if `fifo_depth == 0` or the RAC declares zero interfaces
    /// in both directions.
    #[must_use]
    pub fn new(rac: Box<dyn Rac>, fifo_depth: usize) -> Self {
        assert!(fifo_depth > 0, "fifo depth must be non-zero");
        let n_in = rac.num_input_fifos();
        let n_out = rac.num_output_fifos();
        assert!(n_in + n_out > 0, "RAC declares no FIFO interfaces");
        let inputs = (0..n_in)
            .map(|i| SyncFifo::new(&format!("{}.in{i}", rac.name()), fifo_depth))
            .collect();
        let outputs = (0..n_out)
            .map(|i| SyncFifo::new(&format!("{}.out{i}", rac.name()), fifo_depth))
            .collect();
        Self {
            rac,
            inputs,
            outputs,
            busy_cycles: 0,
            stall_left: 0,
        }
    }

    /// The wrapped accelerator.
    #[must_use]
    pub fn rac(&self) -> &dyn Rac {
        self.rac.as_ref()
    }

    /// Number of input FIFOs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output FIFOs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Pushes one word into input FIFO `index` (the controller side of
    /// `mvtc`).
    ///
    /// # Errors
    ///
    /// [`RacError::NoSuchFifo`] or [`RacError::Fifo`] on overflow.
    pub fn push_input(&mut self, index: usize, word: u32) -> Result<(), RacError> {
        self.inputs
            .get_mut(index)
            .ok_or(RacError::NoSuchFifo { index, input: true })?
            .push(word)
            .map_err(RacError::from)
    }

    /// Pops one word from output FIFO `index` (the controller side of
    /// `mvfc`).
    ///
    /// # Errors
    ///
    /// [`RacError::NoSuchFifo`] or [`RacError::Fifo`] on underflow.
    pub fn pop_output(&mut self, index: usize) -> Result<u32, RacError> {
        self.outputs
            .get_mut(index)
            .ok_or(RacError::NoSuchFifo {
                index,
                input: false,
            })?
            .pop()
            .map_err(RacError::from)
    }

    /// Free space of input FIFO `index`, in words.
    #[must_use]
    pub fn input_space(&self, index: usize) -> usize {
        self.inputs.get(index).map_or(0, SyncFifo::space)
    }

    /// Occupancy of output FIFO `index`, in words.
    #[must_use]
    pub fn output_available(&self, index: usize) -> usize {
        self.outputs.get(index).map_or(0, SyncFifo::len)
    }

    /// Whether every FIFO in both directions is empty (the `sync`
    /// instruction's barrier condition).
    #[must_use]
    pub fn all_fifos_empty(&self) -> bool {
        self.inputs.iter().all(SyncFifo::is_empty) && self.outputs.iter().all(SyncFifo::is_empty)
    }

    /// Pulses `start_op` with operation tag `op`.
    pub fn start(&mut self, op: u16) {
        self.rac.start(op);
    }

    /// Whether the accelerator is processing (an injected stall holds
    /// `busy` asserted — frozen silicon still claims the handshake).
    #[must_use]
    pub fn busy(&self) -> bool {
        self.stall_left > 0 || self.rac.busy()
    }

    /// Injects a slow-compute stall: the accelerator freezes for
    /// `cycles` ticks while still reporting busy, so whatever is
    /// waiting on `end_op` waits that much longer. Stalls accumulate.
    ///
    /// This is the chaos seam for marginal silicon / thermally
    /// throttled fabric — latency faults the FSM-crash seams cannot
    /// model.
    pub fn inject_stall(&mut self, cycles: u64) {
        self.stall_left = self.stall_left.saturating_add(cycles);
    }

    /// Cycles left of injected stall.
    #[must_use]
    pub fn stall_left(&self) -> u64 {
        self.stall_left
    }

    /// Forwards a reconfiguration request to the accelerator.
    pub fn reconfigure(&mut self, slot: u16) -> ReconfigResponse {
        self.rac.reconfigure(slot)
    }

    /// Advances the accelerator one clock cycle (a stalled accelerator
    /// burns the cycle frozen: busy accounting accrues, the RAC does
    /// not tick).
    pub fn tick(&mut self) {
        if self.busy() {
            self.busy_cycles += 1;
        }
        if self.stall_left > 0 {
            self.stall_left -= 1;
            return;
        }
        let mut io = RacIo {
            inputs: &mut self.inputs,
            outputs: &mut self.outputs,
        };
        self.rac.tick(&mut io);
    }

    /// Ticks until `busy()` deasserts, returning the number of cycles
    /// consumed.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator is still busy after `max_cycles`.
    pub fn run_until_done(&mut self, max_cycles: u64) -> u64 {
        let mut cycles = 0;
        while self.rac.busy() {
            self.tick();
            cycles += 1;
            assert!(
                cycles <= max_cycles,
                "{} still busy after {max_cycles} cycles",
                self.rac.name()
            );
        }
        cycles
    }

    /// Fast-forward horizon of the socket: the stall countdown while
    /// one is injected (the frozen accelerator cannot change state any
    /// earlier), otherwise the wrapped accelerator's horizon (the
    /// FIFOs are passive and never constrain it).
    #[must_use]
    pub fn horizon(&self) -> Option<Cycle> {
        if self.stall_left > 0 {
            return Some(Cycle::new(self.stall_left));
        }
        self.rac.horizon()
    }

    /// Bulk-applies `cycles` pure ticks: replays the per-tick
    /// busy-cycle accounting (busyness is constant across a pure
    /// window) and forwards to the accelerator — unless a stall is
    /// pending, in which case the window burns down the stall with the
    /// RAC frozen, exactly as `cycles` real ticks would.
    pub fn advance(&mut self, cycles: Cycle) {
        if self.busy() {
            self.busy_cycles += cycles.count();
        }
        if self.stall_left > 0 {
            debug_assert!(cycles.count() < self.stall_left, "advanced past the stall");
            self.stall_left -= cycles.count();
            return;
        }
        self.rac.advance(cycles);
    }

    /// Resets the accelerator and clears every FIFO.
    pub fn reset(&mut self) {
        self.rac.reset();
        for f in &mut self.inputs {
            f.clear();
        }
        for f in &mut self.outputs {
            f.clear();
        }
        self.busy_cycles = 0;
        self.stall_left = 0;
    }

    /// Total cycles spent with `busy()` asserted.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy RAC that doubles each input word after a fixed delay.
    struct Doubler {
        busy: bool,
        delay_left: u64,
        pending: Vec<u32>,
    }

    impl Doubler {
        fn new() -> Self {
            Self {
                busy: false,
                delay_left: 0,
                pending: Vec::new(),
            }
        }
    }

    impl Rac for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn reset(&mut self) {
            self.busy = false;
            self.pending.clear();
        }
        fn start(&mut self, _op: u16) {
            self.busy = true;
            self.delay_left = 5;
        }
        fn busy(&self) -> bool {
            self.busy
        }
        fn tick(&mut self, io: &mut RacIo<'_>) {
            if !self.busy {
                return;
            }
            while let Ok(w) = io.inputs[0].pop() {
                self.pending.push(w.wrapping_mul(2));
            }
            if self.delay_left > 0 {
                self.delay_left -= 1;
                return;
            }
            for w in self.pending.drain(..) {
                io.outputs[0].push(w).expect("output fifo sized for test");
            }
            self.busy = false;
        }
    }

    #[test]
    fn socket_round_trip() {
        let mut s = RacSocket::new(Box::new(Doubler::new()), 16);
        s.push_input(0, 21).unwrap();
        s.start(0);
        let cycles = s.run_until_done(100);
        assert_eq!(cycles, 6);
        assert_eq!(s.pop_output(0).unwrap(), 42);
        assert!(s.all_fifos_empty());
    }

    #[test]
    fn busy_cycles_counted() {
        let mut s = RacSocket::new(Box::new(Doubler::new()), 16);
        s.push_input(0, 1).unwrap();
        s.start(0);
        s.run_until_done(100);
        assert_eq!(s.busy_cycles(), 6);
    }

    #[test]
    fn bad_fifo_index_rejected() {
        let mut s = RacSocket::new(Box::new(Doubler::new()), 16);
        assert_eq!(
            s.push_input(3, 0),
            Err(RacError::NoSuchFifo {
                index: 3,
                input: true
            })
        );
        assert_eq!(
            s.pop_output(1),
            Err(RacError::NoSuchFifo {
                index: 1,
                input: false
            })
        );
    }

    #[test]
    fn overflow_surfaces_as_rac_error() {
        let mut s = RacSocket::new(Box::new(Doubler::new()), 1);
        s.push_input(0, 1).unwrap();
        assert_eq!(s.push_input(0, 2), Err(RacError::Fifo(FifoError::Overflow)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = RacSocket::new(Box::new(Doubler::new()), 16);
        s.push_input(0, 1).unwrap();
        s.start(0);
        s.reset();
        assert!(!s.busy());
        assert!(s.all_fifos_empty());
        assert_eq!(s.busy_cycles(), 0);
    }

    #[test]
    fn space_and_available_accounting() {
        let mut s = RacSocket::new(Box::new(Doubler::new()), 4);
        assert_eq!(s.input_space(0), 4);
        s.push_input(0, 1).unwrap();
        assert_eq!(s.input_space(0), 3);
        assert_eq!(s.output_available(0), 0);
        s.start(0);
        s.run_until_done(100);
        assert_eq!(s.output_available(0), 1);
    }
}
