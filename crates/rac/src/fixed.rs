//! Fixed-point helpers shared by the accelerator data paths.
//!
//! The paper's accelerators are integer hardware (the Leon3 has no FPU
//! and the Spiral DFT core is generated in fixed point); these helpers
//! define the number formats both the RAC data paths and the software
//! baselines use, so hardware and software produce bit-identical
//! results — exactly the property that made the paper's integration "easy
//! to simulate".

/// Fractional bits of the Q15 sample format used by the DFT path.
pub const Q15_BITS: u32 = 15;

/// One in Q15.
pub const Q15_ONE: i32 = 1 << Q15_BITS;

/// Saturates an `i64` into the `i32` range.
///
/// ```
/// use ouessant_rac::fixed::sat32;
/// assert_eq!(sat32(i64::from(i32::MAX) + 5), i32::MAX);
/// assert_eq!(sat32(-7), -7);
/// ```
#[must_use]
pub fn sat32(v: i64) -> i32 {
    v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
}

/// Saturates an `i64` into the `i16` range.
#[must_use]
pub fn sat16(v: i64) -> i16 {
    v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16
}

/// Multiplies two Q15 values, rounding to nearest (ties away from zero
/// avoided: simple add-half rounding as hardware multipliers do).
///
/// ```
/// use ouessant_rac::fixed::{q15_mul, Q15_ONE};
/// assert_eq!(q15_mul(Q15_ONE, Q15_ONE), Q15_ONE);
/// assert_eq!(q15_mul(Q15_ONE / 2, Q15_ONE / 2), Q15_ONE / 4);
/// ```
#[must_use]
pub fn q15_mul(a: i32, b: i32) -> i32 {
    let p = i64::from(a) * i64::from(b);
    sat32((p + (1 << (Q15_BITS - 1))) >> Q15_BITS)
}

/// Converts a float in `[-1, 1)` to Q15 (rounded, saturated).
#[must_use]
pub fn to_q15(v: f64) -> i32 {
    sat32((v * f64::from(Q15_ONE)).round() as i64)
}

/// Converts a Q15 value to float.
#[must_use]
pub fn from_q15(v: i32) -> f64 {
    f64::from(v) / f64::from(Q15_ONE)
}

/// Packs a complex Q15 sample into the two 32-bit memory words the DFT
/// microcode transfers (real word first, then imaginary — the layout
/// that makes 256 complex points occupy 512 words, giving the paper's
/// 1024 words for input plus output).
#[must_use]
pub fn pack_complex(re: i32, im: i32) -> [u32; 2] {
    [re as u32, im as u32]
}

/// Unpacks a complex sample from its two memory words.
#[must_use]
pub fn unpack_complex(words: [u32; 2]) -> (i32, i32) {
    (words[0] as i32, words[1] as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_bounds() {
        assert_eq!(sat32(i64::MAX), i32::MAX);
        assert_eq!(sat32(i64::MIN), i32::MIN);
        assert_eq!(sat16(40_000), i16::MAX);
        assert_eq!(sat16(-40_000), i16::MIN);
        assert_eq!(sat16(123), 123);
    }

    #[test]
    fn q15_mul_identities() {
        assert_eq!(q15_mul(Q15_ONE, 12345), 12345);
        assert_eq!(q15_mul(0, 9999), 0);
        assert_eq!(q15_mul(-Q15_ONE, 100), -100);
    }

    #[test]
    fn q15_float_round_trip() {
        for v in [-0.999, -0.5, 0.0, 0.25, 0.75] {
            let q = to_q15(v);
            assert!((from_q15(q) - v).abs() < 1.0 / f64::from(Q15_ONE));
        }
    }

    #[test]
    fn to_q15_saturates() {
        assert_eq!(to_q15(10.0), 10 * Q15_ONE); // fits in i32, no clamp needed
        assert_eq!(to_q15(100000.0), i32::MAX);
    }

    #[test]
    fn complex_pack_round_trip() {
        let (re, im) = (-12345, 6789);
        assert_eq!(unpack_complex(pack_complex(re, im)), (re, im));
    }
}
