//! A streaming FIR filter RAC.
//!
//! Not part of the paper's evaluation, but exactly the kind of "dedicated
//! configuration FIFO" accelerator §III-B anticipates: the filter taps
//! arrive on a second input FIFO (`FIFO1`) before samples stream through
//! `FIFO0`. It demonstrates the multi-FIFO side of the RAC contract and
//! gives the integration tests a second streaming accelerator.

use std::collections::VecDeque;

use crate::fixed::{q15_mul, sat32};
use crate::rac::{Rac, RacIo};

/// Maximum number of taps the configuration FIFO accepts.
pub const MAX_TAPS: usize = 64;

/// A streaming Q15 FIR filter with a configuration FIFO for its taps.
///
/// Protocol: push the tap count-tagged start (`start(op)` where `op` is
/// the number of *samples* to filter), with the taps already loaded into
/// input FIFO 1 (one Q15 tap per word, terminated by the `start`). Output
/// is one filtered sample per input sample (zero-padded warm-up).
///
/// # Examples
///
/// ```
/// use ouessant_rac::fir::FirRac;
/// use ouessant_rac::rac::RacSocket;
/// use ouessant_rac::fixed::Q15_ONE;
///
/// let mut s = RacSocket::new(Box::new(FirRac::new()), 256);
/// // Identity filter: single unity tap on the configuration FIFO.
/// s.push_input(1, Q15_ONE as u32)?;
/// for v in [1000u32, 2000, 3000] {
///     s.push_input(0, v)?;
/// }
/// s.start(3);
/// s.run_until_done(10_000);
/// assert_eq!(s.pop_output(0)?, 1000);
/// # Ok::<(), ouessant_rac::rac::RacError>(())
/// ```
#[derive(Debug)]
pub struct FirRac {
    taps: Vec<i32>,
    delay_line: VecDeque<i32>,
    busy: bool,
    samples_left: usize,
    taps_loaded: bool,
}

impl FirRac {
    /// Creates an unconfigured FIR accelerator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            taps: Vec::new(),
            delay_line: VecDeque::new(),
            busy: false,
            samples_left: 0,
            taps_loaded: false,
        }
    }

    /// Currently loaded taps (for inspection).
    #[must_use]
    pub fn taps(&self) -> &[i32] {
        &self.taps
    }
}

impl Default for FirRac {
    fn default() -> Self {
        Self::new()
    }
}

impl Rac for FirRac {
    fn name(&self) -> &str {
        "fir"
    }

    fn num_input_fifos(&self) -> usize {
        2 // FIFO0 = samples, FIFO1 = tap configuration
    }

    fn reset(&mut self) {
        self.taps.clear();
        self.delay_line.clear();
        self.busy = false;
        self.samples_left = 0;
        self.taps_loaded = false;
    }

    fn start(&mut self, op: u16) {
        self.busy = true;
        self.samples_left = usize::from(op);
        self.taps_loaded = false;
        self.taps.clear();
        self.delay_line.clear();
    }

    fn busy(&self) -> bool {
        self.busy
    }

    fn tick(&mut self, io: &mut RacIo<'_>) {
        if !self.busy {
            return;
        }
        if !self.taps_loaded {
            // Drain the configuration FIFO completely, then start
            // filtering. One tap per cycle, like a hardware tap loader.
            if let Ok(w) = io.inputs[1].pop() {
                if self.taps.len() < MAX_TAPS {
                    self.taps.push(w as i32);
                }
                return;
            }
            if self.taps.is_empty() {
                // No taps at all: act as a mute filter with one zero tap.
                self.taps.push(0);
            }
            self.taps_loaded = true;
            self.delay_line = VecDeque::from(vec![0i32; self.taps.len()]);
            return;
        }
        if self.samples_left == 0 {
            self.busy = false;
            return;
        }
        if io.outputs[0].is_full() {
            return; // stall on back-pressure
        }
        if let Ok(w) = io.inputs[0].pop() {
            self.delay_line.pop_back();
            self.delay_line.push_front(w as i32);
            let mut acc: i64 = 0;
            for (tap, sample) in self.taps.iter().zip(self.delay_line.iter()) {
                acc += i64::from(q15_mul(*tap, *sample));
            }
            io.outputs[0]
                .push(sat32(acc) as u32)
                .expect("checked not full");
            self.samples_left -= 1;
            if self.samples_left == 0 {
                self.busy = false; // end_op
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Q15_ONE;
    use crate::rac::RacSocket;

    fn run_fir(taps: &[i32], samples: &[i32]) -> Vec<i32> {
        let mut s = RacSocket::new(Box::new(FirRac::new()), 1024);
        for &t in taps {
            s.push_input(1, t as u32).unwrap();
        }
        for &x in samples {
            s.push_input(0, x as u32).unwrap();
        }
        s.start(u16::try_from(samples.len()).expect("test sizes fit"));
        s.run_until_done(100_000);
        (0..samples.len())
            .map(|_| s.pop_output(0).unwrap() as i32)
            .collect()
    }

    #[test]
    fn identity_filter() {
        let out = run_fir(&[Q15_ONE], &[100, -200, 300]);
        assert_eq!(out, vec![100, -200, 300]);
    }

    #[test]
    fn two_tap_moving_average() {
        let half = Q15_ONE / 2;
        let out = run_fir(&[half, half], &[1000, 3000, 5000]);
        // y[0] = 500 (zero warm-up), y[1] = 2000, y[2] = 4000.
        assert_eq!(out, vec![500, 2000, 4000]);
    }

    #[test]
    fn delay_filter() {
        // Taps [0, 1]: pure one-sample delay.
        let out = run_fir(&[0, Q15_ONE], &[7, 8, 9]);
        assert_eq!(out, vec![0, 7, 8]);
    }

    #[test]
    fn no_taps_mutes() {
        let mut s = RacSocket::new(Box::new(FirRac::new()), 64);
        for &x in &[5i32, 6] {
            s.push_input(0, x as u32).unwrap();
        }
        s.start(2);
        s.run_until_done(10_000);
        assert_eq!(s.pop_output(0).unwrap(), 0);
        assert_eq!(s.pop_output(0).unwrap(), 0);
    }

    #[test]
    fn declares_two_input_fifos() {
        assert_eq!(FirRac::new().num_input_fifos(), 2);
        assert_eq!(FirRac::new().num_output_fifos(), 1);
    }

    #[test]
    fn back_pressure_stalls_without_loss() {
        let mut s = RacSocket::new(Box::new(FirRac::new()), 2);
        s.push_input(1, Q15_ONE as u32).unwrap();
        s.push_input(0, 1).unwrap();
        s.push_input(0, 2).unwrap();
        s.start(4);
        // Output FIFO of depth 2 fills; RAC must stall, not drop.
        for _ in 0..50 {
            s.tick();
        }
        assert!(s.busy());
        assert_eq!(s.pop_output(0).unwrap(), 1);
        assert_eq!(s.pop_output(0).unwrap(), 2);
        s.push_input(0, 3).unwrap();
        s.push_input(0, 4).unwrap();
        s.run_until_done(10_000);
        assert_eq!(s.pop_output(0).unwrap(), 3);
        assert_eq!(s.pop_output(0).unwrap(), 4);
    }
}
