//! # Reconfigurable Acceleration Coprocessors (RACs)
//!
//! In the Ouessant architecture the *RAC* is the user-defined
//! accelerator: "it is user defined, and can be changed independently
//! from other components of the OCP. It uses FIFO-based communication,
//! which is the easiest interfacing solution" (§III-A). This crate
//! provides:
//!
//! * [`rac`] — the [`Rac`] trait (the `start_op`/`end_op` + FIFO contract
//!   of the paper's Figure 2) and [`RacSocket`], the harness that owns
//!   the FIFOs and ticks the accelerator;
//! * [`idct`] — the paper's first evaluation accelerator: a fixed-point
//!   2-D Inverse Discrete Cosine Transform for JPEG decoding, with the
//!   paper's 18-cycle processing latency;
//! * [`dft`] — the paper's second accelerator: an iterative fixed-point
//!   DFT modeled after the Spiral-generated core, with the paper's
//!   2485-cycle latency at 256 points;
//! * [`fir`] — a streaming FIR filter (an additional RAC demonstrating
//!   per-word streaming behaviour);
//! * [`passthrough`] — identity/scaling RACs with configurable latency,
//!   plus a width-adapting RAC reproducing Figure 2's 32 ↔ 96-bit
//!   serializing FIFOs.
//!
//! ## Example
//!
//! Run the IDCT accelerator through its FIFO harness, outside any SoC:
//!
//! ```
//! use ouessant_rac::idct::IdctRac;
//! use ouessant_rac::rac::RacSocket;
//!
//! let mut socket = RacSocket::new(Box::new(IdctRac::new()), 256);
//! // Load one 8x8 block of DCT coefficients (DC-only, value 64).
//! let mut block = [0i32; 64];
//! block[0] = 64 * 8;
//! for c in block {
//!     socket.push_input(0, c as u32)?;
//! }
//! socket.start(0);
//! let cycles = socket.run_until_done(10_000);
//! assert_eq!(cycles, 18 + 1); // Table I latency + 1 cycle into the FIFO
//! # Ok::<(), ouessant_rac::rac::RacError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod dft;
pub mod fir;
pub mod fixed;
pub mod idct;
pub mod matmul;
pub mod passthrough;
pub mod rac;
pub mod slot;

pub use dft::DftRac;
pub use fir::FirRac;
pub use idct::IdctRac;
pub use matmul::MatMulRac;
pub use passthrough::{PassthroughRac, WideFunctionRac};
pub use rac::{Rac, RacError, RacIo, RacSocket, ReconfigResponse};
pub use slot::ReconfigurableSlot;
