//! A reusable "block processing" RAC skeleton.
//!
//! Both of the paper's evaluation accelerators follow the same protocol:
//! the microcode fills the input FIFO with one block of data (`mvtc`),
//! `exec` pulses `start_op`, the accelerator consumes the block, computes
//! for its characteristic latency (the *Lat.* column of Table I), pushes
//! the result block into the output FIFO and raises `end_op`.
//! [`BlockRac`] implements that protocol once, generically over a
//! [`BlockKernel`] supplying the data path and latency model.

use std::fmt;

use ouessant_sim::Cycle;

use crate::rac::{Rac, RacIo};

/// The data path and timing of a block-processing accelerator.
pub trait BlockKernel {
    /// Accelerator name.
    fn name(&self) -> &str;

    /// Words consumed from the input FIFO per operation.
    fn input_len(&self, op: u16) -> usize;

    /// Busy cycles per operation — the paper's *Lat.* figure: "the
    /// required number of cycles to process data \[with\] data transfer
    /// time not considered".
    fn latency(&self, op: u16) -> u64;

    /// Computes the output block from one input block.
    fn compute(&mut self, op: u16, input: &[u32]) -> Vec<u32>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    /// Waiting for the input FIFO to hold the whole block.
    Collecting,
    /// Data path busy; counting down the latency.
    Computing {
        cycles_left: u64,
    },
    /// Pushing results into the output FIFO (stalls while it is full).
    Draining,
}

/// A block-processing RAC built from a [`BlockKernel`].
pub struct BlockRac<K: BlockKernel> {
    kernel: K,
    state: State,
    op: u16,
    staged_output: Vec<u32>,
    drained: usize,
    /// Completed operations since reset.
    ops_done: u64,
}

impl<K: BlockKernel> BlockRac<K> {
    /// Wraps a kernel.
    #[must_use]
    pub fn new(kernel: K) -> Self {
        Self {
            kernel,
            state: State::Idle,
            op: 0,
            staged_output: Vec::new(),
            drained: 0,
            ops_done: 0,
        }
    }

    /// The wrapped kernel.
    #[must_use]
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Operations completed since the last reset.
    #[must_use]
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }
}

impl<K: BlockKernel> fmt::Debug for BlockRac<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockRac")
            .field("kernel", &self.kernel.name())
            .field("state", &self.state)
            .finish()
    }
}

impl<K: BlockKernel> Rac for BlockRac<K> {
    fn name(&self) -> &str {
        self.kernel.name()
    }

    fn reset(&mut self) {
        self.state = State::Idle;
        self.staged_output.clear();
        self.drained = 0;
        self.ops_done = 0;
    }

    fn start(&mut self, op: u16) {
        self.op = op;
        self.state = State::Collecting;
    }

    fn busy(&self) -> bool {
        self.state != State::Idle
    }

    fn tick(&mut self, io: &mut RacIo<'_>) {
        match self.state {
            State::Idle => {}
            State::Collecting => {
                let needed = self.kernel.input_len(self.op);
                if io.inputs[0].len() >= needed {
                    let mut block = Vec::with_capacity(needed);
                    for _ in 0..needed {
                        block.push(io.inputs[0].pop().expect("length checked"));
                    }
                    self.staged_output = self.kernel.compute(self.op, &block);
                    self.drained = 0;
                    // The collect cycle itself counts as the first busy
                    // cycle; remaining latency follows.
                    let lat = self.kernel.latency(self.op).saturating_sub(1);
                    self.state = State::Computing { cycles_left: lat };
                }
            }
            State::Computing { cycles_left } => {
                if cycles_left > 1 {
                    self.state = State::Computing {
                        cycles_left: cycles_left - 1,
                    };
                } else {
                    self.state = State::Draining;
                }
            }
            State::Draining => {
                while self.drained < self.staged_output.len() && !io.outputs[0].is_full() {
                    io.outputs[0]
                        .push(self.staged_output[self.drained])
                        .expect("checked not full");
                    self.drained += 1;
                }
                if self.drained == self.staged_output.len() {
                    self.staged_output.clear();
                    self.ops_done += 1;
                    self.state = State::Idle; // end_op
                }
            }
        }
    }

    fn horizon(&self) -> Option<Cycle> {
        match self.state {
            State::Idle => None,
            // Collecting and draining interact with the FIFOs, whose
            // contents the controller can change any cycle.
            State::Collecting | State::Draining => Some(Cycle::new(1)),
            // The latency countdown is pure: `cycles_left - 1` ticks
            // only decrement the counter, then the transition to
            // `Draining` is the event (a zero-latency kernel moves on
            // its very next tick).
            State::Computing { cycles_left } => Some(Cycle::new(cycles_left.max(1))),
        }
    }

    fn advance(&mut self, cycles: Cycle) {
        let n = cycles.count();
        if n == 0 {
            return;
        }
        match &mut self.state {
            State::Computing { cycles_left } => {
                debug_assert!(n < *cycles_left, "advanced past the compute horizon");
                *cycles_left -= n;
            }
            State::Idle => {} // idle ticks are no-ops
            s => debug_assert!(false, "advance in non-pure state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rac::RacSocket;

    struct Sum4;

    impl BlockKernel for Sum4 {
        fn name(&self) -> &str {
            "sum4"
        }
        fn input_len(&self, _op: u16) -> usize {
            4
        }
        fn latency(&self, _op: u16) -> u64 {
            10
        }
        fn compute(&mut self, _op: u16, input: &[u32]) -> Vec<u32> {
            vec![input.iter().copied().fold(0u32, u32::wrapping_add)]
        }
    }

    #[test]
    fn latency_is_exact() {
        let mut s = RacSocket::new(Box::new(BlockRac::new(Sum4)), 16);
        for w in [1, 2, 3, 4] {
            s.push_input(0, w).unwrap();
        }
        s.start(0);
        // collect(1) + computing(9) + drain(1) = latency 10 + 1 drain.
        let cycles = s.run_until_done(100);
        assert_eq!(cycles, 11);
        assert_eq!(s.pop_output(0).unwrap(), 10);
    }

    #[test]
    fn waits_for_full_block() {
        let mut s = RacSocket::new(Box::new(BlockRac::new(Sum4)), 16);
        s.push_input(0, 1).unwrap();
        s.start(0);
        for _ in 0..50 {
            s.tick();
        }
        assert!(s.busy(), "must wait for the remaining words");
        for w in [2, 3, 4] {
            s.push_input(0, w).unwrap();
        }
        s.run_until_done(100);
        assert_eq!(s.pop_output(0).unwrap(), 10);
    }

    #[test]
    fn drain_stalls_on_full_output_fifo() {
        struct Producer;
        impl BlockKernel for Producer {
            fn name(&self) -> &str {
                "producer"
            }
            fn input_len(&self, _op: u16) -> usize {
                1
            }
            fn latency(&self, _op: u16) -> u64 {
                1
            }
            fn compute(&mut self, _op: u16, _input: &[u32]) -> Vec<u32> {
                (0..8).collect()
            }
        }
        let mut s = RacSocket::new(Box::new(BlockRac::new(Producer)), 4);
        s.push_input(0, 0).unwrap();
        s.start(0);
        for _ in 0..10 {
            s.tick();
        }
        assert!(s.busy(), "output fifo of 4 cannot hold 8 words");
        // Drain the output to unblock.
        for _ in 0..4 {
            s.pop_output(0).unwrap();
        }
        s.run_until_done(100);
        assert_eq!(s.output_available(0), 4);
    }

    #[test]
    fn ops_done_counts() {
        let mut s = RacSocket::new(Box::new(BlockRac::new(Sum4)), 16);
        for round in 0..3u32 {
            for w in 0..4u32 {
                s.push_input(0, round * 4 + w).unwrap();
            }
            s.start(0);
            s.run_until_done(100);
            s.pop_output(0).unwrap();
        }
        // Downcast-free check through the Rac trait is not possible;
        // recreate the socket pattern via a fresh BlockRac instead.
        let mut direct = BlockRac::new(Sum4);
        assert_eq!(direct.ops_done(), 0);
        direct.reset();
        assert_eq!(direct.ops_done(), 0);
    }
}
