//! A dynamically reconfigurable RAC slot.
//!
//! §VI of the paper lists "Dynamic Partial Reconfiguration" as current
//! work in progress: one physical accelerator region whose contents are
//! swapped at runtime by streaming a partial bitstream through the
//! configuration port. [`ReconfigurableSlot`] is the behavioural model:
//! it holds several ready accelerator configurations, exposes the one
//! that is currently "loaded", and charges a bitstream-transfer latency
//! on every swap (triggered by the extension ISA's `rcfg` instruction).

use ouessant_sim::Cycle;

use crate::rac::{Rac, RacIo, ReconfigResponse};

/// Default ICAP-style reconfiguration throughput used to derive a load
/// latency from a bitstream size: 4 bytes per cycle (32-bit ICAP).
pub const ICAP_BYTES_PER_CYCLE: u64 = 4;

/// One configuration in the slot: an accelerator plus the size of its
/// partial bitstream (which determines the swap latency).
struct SlotConfig {
    rac: Box<dyn Rac>,
    reconfig_cycles: u64,
}

/// A reconfigurable accelerator region holding several configurations.
///
/// The slot itself implements [`Rac`], so it plugs into the OCP like
/// any static accelerator; the microcode selects the active
/// configuration with `rcfg <slot>` and the controller stalls for the
/// reported latency — exactly the usage §VI anticipates.
///
/// The FIFO interface counts are the maxima over all configurations
/// (the FIFOs belong to the *static* region in a DPR design).
///
/// # Examples
///
/// ```
/// use ouessant_rac::idct::IdctRac;
/// use ouessant_rac::passthrough::PassthroughRac;
/// use ouessant_rac::rac::{Rac, ReconfigResponse};
/// use ouessant_rac::slot::ReconfigurableSlot;
///
/// let mut slot = ReconfigurableSlot::new()
///     .with_config(Box::new(IdctRac::new()), 120_000)       // bitstream bytes
///     .with_config(Box::new(PassthroughRac::new(0)), 40_000);
/// assert_eq!(slot.active_name(), "idct2d");
/// match slot.reconfigure(1) {
///     ReconfigResponse::Started { cycles } => assert_eq!(cycles, 40_000 / 4),
///     other => panic!("{other:?}"),
/// }
/// assert_eq!(slot.active_name(), "passthrough");
/// ```
pub struct ReconfigurableSlot {
    configs: Vec<SlotConfig>,
    active: usize,
    /// Cycles left until the freshly loaded configuration is usable.
    loading_left: u64,
    /// Swaps performed since reset.
    swaps: u64,
}

impl std::fmt::Debug for ReconfigurableSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReconfigurableSlot")
            .field("configs", &self.configs.len())
            .field("active", &self.active)
            .field("loading_left", &self.loading_left)
            .finish()
    }
}

impl Default for ReconfigurableSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl ReconfigurableSlot {
    /// An empty slot; add configurations with
    /// [`ReconfigurableSlot::with_config`]. Configuration 0 is loaded
    /// initially.
    #[must_use]
    pub fn new() -> Self {
        Self {
            configs: Vec::new(),
            active: 0,
            loading_left: 0,
            swaps: 0,
        }
    }

    /// Adds a configuration with a partial bitstream of
    /// `bitstream_bytes`; the swap latency is
    /// `bitstream_bytes / ICAP_BYTES_PER_CYCLE`.
    #[must_use]
    pub fn with_config(mut self, rac: Box<dyn Rac>, bitstream_bytes: u64) -> Self {
        self.configs.push(SlotConfig {
            rac,
            reconfig_cycles: bitstream_bytes / ICAP_BYTES_PER_CYCLE,
        });
        self
    }

    /// Number of configurations.
    #[must_use]
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// The active configuration's index.
    #[must_use]
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The active configuration's accelerator name.
    ///
    /// # Panics
    ///
    /// Panics if the slot has no configurations.
    #[must_use]
    pub fn active_name(&self) -> &str {
        self.configs[self.active].rac.name()
    }

    /// Swaps performed since the last reset.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The accelerator name of configuration `index`, if it exists.
    #[must_use]
    pub fn config_name(&self, index: usize) -> Option<&str> {
        self.configs.get(index).map(|c| c.rac.name())
    }

    /// The configuration index whose accelerator is called `name`.
    #[must_use]
    pub fn find_config(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c.rac.name() == name)
    }

    /// The cycles an `rcfg` to configuration `index` would cost *right
    /// now*: the full bitstream load for a different configuration, the
    /// one-cycle settle for a reload of the active one. `None` for
    /// unknown indices.
    ///
    /// Schedulers use this to decide whether batching more same-kind
    /// jobs is worth delaying a pending swap.
    #[must_use]
    pub fn swap_cost(&self, index: usize) -> Option<u64> {
        let config = self.configs.get(index)?;
        Some(if index == self.active {
            1
        } else {
            config.reconfig_cycles
        })
    }

    /// Whether a bitstream load is still in progress.
    #[must_use]
    pub fn is_loading(&self) -> bool {
        self.loading_left > 0
    }

    fn active_mut(&mut self) -> &mut dyn Rac {
        self.configs[self.active].rac.as_mut()
    }
}

impl Rac for ReconfigurableSlot {
    fn name(&self) -> &str {
        if self.configs.is_empty() {
            "dpr_slot(empty)"
        } else {
            // The *slot* is the integration unit; traces show the region
            // name, `active_name` the current contents.
            "dpr_slot"
        }
    }

    fn num_input_fifos(&self) -> usize {
        self.configs
            .iter()
            .map(|c| c.rac.num_input_fifos())
            .max()
            .unwrap_or(1)
    }

    fn num_output_fifos(&self) -> usize {
        self.configs
            .iter()
            .map(|c| c.rac.num_output_fifos())
            .max()
            .unwrap_or(1)
    }

    fn reset(&mut self) {
        for c in &mut self.configs {
            c.rac.reset();
        }
        self.active = 0;
        self.loading_left = 0;
        self.swaps = 0;
    }

    fn start(&mut self, op: u16) {
        // A start during loading is a microcode bug in real hardware;
        // behaviourally we let the start take effect once loading ends
        // (busy() already covers the loading window).
        self.active_mut().start(op);
    }

    fn busy(&self) -> bool {
        self.loading_left > 0 || self.configs[self.active].rac.busy()
    }

    fn tick(&mut self, io: &mut RacIo<'_>) {
        if self.loading_left > 0 {
            self.loading_left -= 1;
            return; // region is dark during the bitstream load
        }
        self.active_mut().tick(io);
    }

    fn horizon(&self) -> Option<Cycle> {
        if self.loading_left > 0 {
            // The bitstream load is a pure countdown; the region going
            // live again is the event.
            return Some(Cycle::new(self.loading_left));
        }
        if self.configs.is_empty() {
            return None;
        }
        self.configs[self.active].rac.horizon()
    }

    fn advance(&mut self, cycles: Cycle) {
        let n = cycles.count();
        if n == 0 {
            return;
        }
        if self.loading_left > 0 {
            debug_assert!(n < self.loading_left, "advanced past the bitstream load");
            self.loading_left -= n;
            return; // region is dark during the load, like tick()
        }
        if let Some(c) = self.configs.get_mut(self.active) {
            c.rac.advance(cycles);
        }
    }

    fn reconfigure(&mut self, slot: u16) -> ReconfigResponse {
        let idx = usize::from(slot);
        if idx >= self.configs.len() {
            return ReconfigResponse::BadSlot {
                available: self.configs.len(),
            };
        }
        // Reloading the already-active configuration is a cheap reset
        // (hardware would skip the bitstream; we model a short settle).
        let cycles = if idx == self.active {
            1
        } else {
            self.configs[idx].reconfig_cycles
        };
        self.active = idx;
        self.active_mut().reset();
        self.loading_left = cycles;
        self.swaps += 1;
        ReconfigResponse::Started { cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idct::IdctRac;
    use crate::passthrough::PassthroughRac;
    use crate::rac::RacSocket;

    fn slot() -> ReconfigurableSlot {
        ReconfigurableSlot::new()
            .with_config(Box::new(PassthroughRac::new(0)), 4_000)
            .with_config(Box::new(PassthroughRac::scaling(3, 0)), 8_000)
    }

    #[test]
    fn starts_with_config_zero() {
        let s = slot();
        assert_eq!(s.active_index(), 0);
        assert_eq!(s.active_name(), "passthrough");
        assert!(!s.is_loading());
    }

    #[test]
    fn reconfigure_switches_and_charges_latency() {
        let mut s = slot();
        match s.reconfigure(1) {
            ReconfigResponse::Started { cycles } => assert_eq!(cycles, 2_000),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.active_index(), 1);
        assert!(s.is_loading());
        assert!(s.busy(), "region dark during bitstream load");
    }

    #[test]
    fn bad_slot_reported() {
        let mut s = slot();
        assert_eq!(s.reconfigure(7), ReconfigResponse::BadSlot { available: 2 });
        assert_eq!(s.active_index(), 0, "active config unchanged");
    }

    #[test]
    fn static_rac_reports_unsupported() {
        let mut idct = IdctRac::new();
        assert_eq!(idct.reconfigure(0), ReconfigResponse::Unsupported);
    }

    #[test]
    fn loading_counts_down_through_ticks() {
        let mut socket = RacSocket::new(Box::new(slot()), 64);
        match socket.reconfigure(1) {
            ReconfigResponse::Started { cycles } => {
                for _ in 0..cycles {
                    assert!(socket.busy());
                    socket.tick();
                }
                assert!(!socket.busy(), "load complete");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn behaviour_follows_active_config() {
        let mut socket = RacSocket::new(Box::new(slot()), 64);
        // Config 0: identity.
        socket.push_input(0, 7).unwrap();
        socket.start(1);
        socket.run_until_done(1_000);
        assert_eq!(socket.pop_output(0).unwrap(), 7);
        // Swap to config 1: ×3 scaler.
        let ReconfigResponse::Started { cycles } = socket.reconfigure(1) else {
            panic!("swap failed");
        };
        for _ in 0..cycles {
            socket.tick();
        }
        socket.push_input(0, 7).unwrap();
        socket.start(1);
        socket.run_until_done(1_000_000);
        assert_eq!(socket.pop_output(0).unwrap(), 21);
    }

    #[test]
    fn reload_of_active_config_is_cheap_reset() {
        let mut s = slot();
        match s.reconfigure(0) {
            ReconfigResponse::Started { cycles } => assert_eq!(cycles, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.swaps(), 1);
    }

    #[test]
    fn fifo_counts_are_maxima() {
        use crate::fir::FirRac;
        let s = ReconfigurableSlot::new()
            .with_config(Box::new(PassthroughRac::new(0)), 1_000) // 1 in
            .with_config(Box::new(FirRac::new()), 1_000); // 2 in
        assert_eq!(s.num_input_fifos(), 2);
        assert_eq!(s.num_output_fifos(), 1);
    }

    #[test]
    fn swap_queries_report_cost_and_names() {
        let mut s = slot();
        assert_eq!(s.config_name(0), Some("passthrough"));
        assert_eq!(s.config_name(2), None);
        assert_eq!(s.find_config("passthrough"), Some(0));
        assert_eq!(s.find_config("nope"), None);
        assert_eq!(s.swap_cost(0), Some(1), "reload of active is a settle");
        assert_eq!(s.swap_cost(1), Some(2_000), "8000 bytes / 4 per cycle");
        assert_eq!(s.swap_cost(9), None);
        let _ = s.reconfigure(1);
        assert_eq!(s.swap_cost(1), Some(1), "now active");
        assert_eq!(s.swap_cost(0), Some(1_000));
    }

    #[test]
    fn reset_returns_to_config_zero() {
        let mut s = slot();
        let _ = s.reconfigure(1);
        s.reset();
        assert_eq!(s.active_index(), 0);
        assert!(!s.is_loading());
        assert_eq!(s.swaps(), 0);
    }
}
