//! The iterative DFT RAC, modeled after the Spiral-generated core.
//!
//! The paper's second accelerator is "the Spiral iterative DFT \[which\]
//! can be configured to accept different DFT size, limited to the
//! available FPGA size. In the following experiments, the previously
//! described 256 points DFT was used" (§V-A). Table I reports its
//! processing latency as 2485 cycles.
//!
//! ## Data format
//!
//! One complex sample is two 32-bit words (real, then imaginary), each
//! holding a Q15 fixed-point value — so a 256-point transform moves
//! 512 words in and 512 out, matching the paper's "1024 32-bits words to
//! transfer".
//!
//! ## Latency model
//!
//! The Spiral iterative core processes `log2(N)` stages of `N/2`
//! butterflies through a small number of butterfly units. We model the
//! minimal-area configuration (streaming width 2, two cycles per
//! butterfly, as the paper's area numbers imply) plus a per-transform
//! load/unload and pipeline cost:
//!
//! ```text
//! latency(N) = N·log2(N) + 3N/2 + 53
//! ```
//!
//! calibrated so `latency(256) = 2048 + 384 + 53 = 2485` — exactly the
//! paper's measured figure. The `N·log2 N` term is the butterfly work,
//! `3N/2` the memory load/unload, and `53` the pipeline depth.
//!
//! ## Data path
//!
//! [`dft_fixed`] is an iterative radix-2 decimation-in-time FFT in Q15
//! with a scale-by-½ at every stage (the standard hardware guard against
//! overflow), so the output equals `DFT(x)/N`. [`dft_f64`] is the
//! floating-point golden model with the same `1/N` scaling.

use std::f64::consts::PI;

use crate::block::{BlockKernel, BlockRac};
use crate::fixed::{q15_mul, sat32, to_q15};

/// Default transform size used in the paper's experiments.
pub const PAPER_DFT_POINTS: usize = 256;

/// The paper's measured latency for the 256-point core.
pub const PAPER_DFT_LATENCY: u64 = 2485;

/// Latency model of the Spiral-style iterative core (see module docs).
///
/// # Panics
///
/// Panics unless `n` is a power of two, `8..=4096`.
#[must_use]
pub fn dft_latency(n: usize) -> u64 {
    assert!(
        n.is_power_of_two() && (8..=4096).contains(&n),
        "DFT size must be a power of two in 8..=4096, got {n}"
    );
    let n64 = n as u64;
    let stages = n.trailing_zeros() as u64;
    n64 * stages + 3 * n64 / 2 + 53
}

/// Golden-model DFT over `f64` complex pairs, scaled by `1/N`.
///
/// # Panics
///
/// Panics unless `input.len()` is a power of two.
#[must_use]
pub fn dft_f64(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    assert!(n.is_power_of_two(), "DFT size must be a power of two");
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &(xr, xi)) in input.iter().enumerate() {
            let angle = -2.0 * PI * (k * t % n) as f64 / n as f64;
            let (s, c) = angle.sin_cos();
            re += xr * c - xi * s;
            im += xr * s + xi * c;
        }
        out.push((re / n as f64, im / n as f64));
    }
    out
}

/// Bit-exact Q15 radix-2 DIT FFT with per-stage halving (output =
/// `DFT(x)/N`), the data path of the hardware core *and* of the software
/// baseline's fast variant.
///
/// # Panics
///
/// Panics unless `input.len()` is a power of two in `8..=4096`.
#[must_use]
pub fn dft_fixed(input: &[(i32, i32)]) -> Vec<(i32, i32)> {
    let n = input.len();
    assert!(
        n.is_power_of_two() && (8..=4096).contains(&n),
        "DFT size must be a power of two in 8..=4096, got {n}"
    );
    let stages = n.trailing_zeros();

    // Bit-reversal permutation.
    let mut data: Vec<(i32, i32)> = vec![(0, 0); n];
    for (i, &x) in input.iter().enumerate() {
        let j = i.reverse_bits() >> (usize::BITS - stages);
        data[j] = x;
    }

    // Twiddle table: W_N^k = e^{-2πik/N}, Q15.
    let twiddle: Vec<(i32, i32)> = (0..n / 2)
        .map(|k| {
            let angle = -2.0 * PI * k as f64 / n as f64;
            (to_q15(angle.cos()), to_q15(angle.sin()))
        })
        .collect();

    let mut half = 1usize;
    for _ in 0..stages {
        let step = n / (2 * half);
        for group in 0..step {
            for pair in 0..half {
                let top = group * 2 * half + pair;
                let bot = top + half;
                let w = twiddle[pair * step];
                let (br, bi) = data[bot];
                // W * b in Q15.
                let tr = sat32(i64::from(q15_mul(w.0, br)) - i64::from(q15_mul(w.1, bi)));
                let ti = sat32(i64::from(q15_mul(w.0, bi)) + i64::from(q15_mul(w.1, br)));
                let (ar, ai) = data[top];
                // Scale by 1/2 each stage (hardware overflow guard).
                data[top] = (
                    sat32((i64::from(ar) + i64::from(tr)) >> 1),
                    sat32((i64::from(ai) + i64::from(ti)) >> 1),
                );
                data[bot] = (
                    sat32((i64::from(ar) - i64::from(tr)) >> 1),
                    sat32((i64::from(ai) - i64::from(ti)) >> 1),
                );
            }
        }
        half *= 2;
    }
    data
}

/// Kernel description driving [`BlockRac`].
#[derive(Debug)]
pub struct DftKernel {
    points: usize,
}

impl BlockKernel for DftKernel {
    fn name(&self) -> &str {
        "spiral_dft"
    }

    fn input_len(&self, _op: u16) -> usize {
        self.points * 2
    }

    fn latency(&self, _op: u16) -> u64 {
        dft_latency(self.points)
    }

    fn compute(&mut self, _op: u16, input: &[u32]) -> Vec<u32> {
        let samples: Vec<(i32, i32)> = input
            .chunks_exact(2)
            .map(|w| (w[0] as i32, w[1] as i32))
            .collect();
        dft_fixed(&samples)
            .into_iter()
            .flat_map(|(re, im)| [re as u32, im as u32])
            .collect()
    }
}

/// The iterative DFT accelerator: the paper's second RAC.
///
/// # Examples
///
/// ```
/// use ouessant_rac::dft::{DftRac, PAPER_DFT_LATENCY};
/// use ouessant_rac::rac::RacSocket;
///
/// let rac = DftRac::spiral_256();
/// assert_eq!(rac.latency(), PAPER_DFT_LATENCY); // Table I "Lat."
/// let mut socket = RacSocket::new(Box::new(rac), 1024);
/// for _ in 0..256 {
///     socket.push_input(0, 0)?; // re
///     socket.push_input(0, 0)?; // im
/// }
/// socket.start(0);
/// let cycles = socket.run_until_done(10_000);
/// assert_eq!(cycles, PAPER_DFT_LATENCY + 1);
/// # Ok::<(), ouessant_rac::rac::RacError>(())
/// ```
#[derive(Debug)]
pub struct DftRac {
    inner: BlockRac<DftKernel>,
}

impl DftRac {
    /// A DFT core for `points` complex points.
    ///
    /// # Panics
    ///
    /// Panics unless `points` is a power of two in `8..=4096` (the
    /// paper's "limited to the available FPGA size").
    #[must_use]
    pub fn new(points: usize) -> Self {
        let _ = dft_latency(points); // validates the size
        Self {
            inner: BlockRac::new(DftKernel { points }),
        }
    }

    /// The 256-point configuration used in the paper's experiments.
    #[must_use]
    pub fn spiral_256() -> Self {
        Self::new(PAPER_DFT_POINTS)
    }

    /// Transform size in complex points.
    #[must_use]
    pub fn points(&self) -> usize {
        self.inner.kernel().points
    }

    /// Core latency in cycles (the paper's *Lat.* column).
    #[must_use]
    pub fn latency(&self) -> u64 {
        dft_latency(self.points())
    }

    /// Transforms completed since the last reset.
    #[must_use]
    pub fn transforms_done(&self) -> u64 {
        self.inner.ops_done()
    }
}

impl crate::rac::Rac for DftRac {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn start(&mut self, op: u16) {
        self.inner.start(op);
    }
    fn busy(&self) -> bool {
        self.inner.busy()
    }
    fn tick(&mut self, io: &mut crate::rac::RacIo<'_>) {
        self.inner.tick(io);
    }
    fn horizon(&self) -> Option<ouessant_sim::Cycle> {
        self.inner.horizon()
    }
    fn advance(&mut self, cycles: ouessant_sim::Cycle) {
        self.inner.advance(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{from_q15, Q15_ONE};
    use crate::rac::RacSocket;

    #[test]
    fn latency_calibration_matches_paper() {
        assert_eq!(dft_latency(256), PAPER_DFT_LATENCY);
    }

    #[test]
    fn latency_is_monotonic_in_size() {
        let mut prev = 0;
        for log in 3..=12 {
            let lat = dft_latency(1 << log);
            assert!(lat > prev);
            prev = lat;
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn latency_rejects_non_power_of_two() {
        let _ = dft_latency(300);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        // x = delta: DFT/N is 1/N everywhere.
        let n = 64;
        let mut input = vec![(0i32, 0i32); n];
        input[0] = (Q15_ONE - 1, 0); // ~1.0 in Q15
        let out = dft_fixed(&input);
        let expected = f64::from(Q15_ONE - 1) / n as f64;
        for &(re, im) in &out {
            assert!((f64::from(re) - expected).abs() <= 16.0, "re {re}");
            assert!(f64::from(im).abs() <= 16.0, "im {im}");
        }
    }

    #[test]
    fn dc_input_concentrates_in_bin_zero() {
        let n = 64;
        let amp = Q15_ONE / 2;
        let input = vec![(amp, 0i32); n];
        let out = dft_fixed(&input);
        // Bin 0 holds the mean = amp; every other bin ~0.
        assert!((out[0].0 - amp).abs() <= 32, "bin0 {}", out[0].0);
        for &(re, im) in &out[1..] {
            assert!(re.abs() <= 32 && im.abs() <= 32, "leakage {re},{im}");
        }
    }

    #[test]
    fn fixed_matches_golden_model() {
        let n = 256;
        let mut state = 0xDEAD_BEEFu32;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((state >> 16) as i32 % (Q15_ONE / 2)) - Q15_ONE / 4
        };
        let input: Vec<(i32, i32)> = (0..n).map(|_| (next(), next())).collect();
        let golden = dft_f64(
            &input
                .iter()
                .map(|&(r, i)| (from_q15(r), from_q15(i)))
                .collect::<Vec<_>>(),
        );
        let fixed = dft_fixed(&input);
        for ((fr, fi), (gr, gi)) in fixed.iter().zip(&golden) {
            let err_r = (from_q15(*fr) - gr).abs();
            let err_i = (from_q15(*fi) - gi).abs();
            // Rounding accumulates ~1 LSB per stage; allow a small bound.
            let bound = 32.0 / f64::from(Q15_ONE);
            assert!(err_r < bound && err_i < bound, "err {err_r} {err_i}");
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 128usize;
        let k0 = 5usize;
        let input: Vec<(i32, i32)> = (0..n)
            .map(|t| {
                let angle = 2.0 * PI * (k0 * t) as f64 / n as f64;
                (to_q15(0.5 * angle.cos()), to_q15(0.5 * angle.sin()))
            })
            .collect();
        let out = dft_fixed(&input);
        // e^{+j2πk0t/N} concentrates in bin k0 with amplitude 0.5.
        let peak = out[k0].0;
        assert!(
            (from_q15(peak) - 0.5).abs() < 0.01,
            "peak {} in bin {k0}",
            from_q15(peak)
        );
        for (k, &(re, im)) in out.iter().enumerate() {
            if k != k0 {
                assert!(
                    from_q15(re).abs() < 0.02 && from_q15(im).abs() < 0.02,
                    "leakage at bin {k}"
                );
            }
        }
    }

    #[test]
    fn rac_latency_and_output() {
        let n = 16;
        let rac = DftRac::new(n);
        let lat = rac.latency();
        let mut s = RacSocket::new(Box::new(rac), 4 * n);
        let input: Vec<(i32, i32)> = (0..n as i32).map(|i| (i * 100, -i * 50)).collect();
        for &(re, im) in &input {
            s.push_input(0, re as u32).unwrap();
            s.push_input(0, im as u32).unwrap();
        }
        s.start(0);
        let cycles = s.run_until_done(100_000);
        assert_eq!(cycles, lat + 1);
        let expected = dft_fixed(&input);
        for &(er, ei) in &expected {
            assert_eq!(s.pop_output(0).unwrap() as i32, er);
            assert_eq!(s.pop_output(0).unwrap() as i32, ei);
        }
    }

    #[test]
    fn paper_configuration_words() {
        let rac = DftRac::spiral_256();
        assert_eq!(rac.points(), 256);
        // 512 words in + 512 words out = the paper's 1024 words.
        assert_eq!(rac.points() * 2 * 2, 1024);
    }
}
