//! A blocked matrix-multiply RAC.
//!
//! A third accelerator class beyond the paper's two (transform-style
//! IDCT/DFT): dense linear algebra. It demonstrates the `exec`
//! operation tag carrying *configuration* — the paper notes "a
//! dedicated configuration FIFO can be added if the accelerator
//! requires additional configuration"; for a square matrix multiply the
//! single dimension fits in the 16-bit tag, so no extra FIFO is needed.
//!
//! Protocol: `exec n` consumes two row-major `n×n` `i32` matrices from
//! FIFO0 (A then B) and produces `C = A·B` (wrapping arithmetic, as a
//! fixed-width hardware MAC array would).

use crate::block::{BlockKernel, BlockRac};
use crate::rac::{Rac, RacIo};

/// Maximum supported dimension (bounded by the FIFO/BRAM budget).
pub const MAX_DIM: usize = 64;

/// Reference implementation shared by tests and the software baseline:
/// row-major `n×n` multiply with wrapping arithmetic.
///
/// # Panics
///
/// Panics unless `a` and `b` are `n*n` long and `1 <= n <= 64`.
#[must_use]
pub fn matmul_i32(n: usize, a: &[i32], b: &[i32]) -> Vec<i32> {
    assert!((1..=MAX_DIM).contains(&n), "dimension {n} outside 1..=64");
    assert_eq!(a.len(), n * n, "A must be n*n");
    assert_eq!(b.len(), n * n, "B must be n*n");
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Latency model: a systolic row of `n` MACs computes one output row
/// per `n` cycles after an `n`-cycle fill, so `n² + n` cycles per
/// product, plus load/unload of `2n²` input and `n²` output words at
/// one word per cycle and a small pipeline constant.
#[must_use]
pub fn matmul_latency(n: usize) -> u64 {
    let n = n as u64;
    n * n + n + 3 * n * n + 8
}

/// Kernel description driving [`BlockRac`].
#[derive(Debug, Default)]
pub struct MatMulKernel;

impl BlockKernel for MatMulKernel {
    fn name(&self) -> &str {
        "matmul"
    }

    fn input_len(&self, op: u16) -> usize {
        let n = usize::from(op).clamp(1, MAX_DIM);
        2 * n * n
    }

    fn latency(&self, op: u16) -> u64 {
        matmul_latency(usize::from(op).clamp(1, MAX_DIM))
    }

    fn compute(&mut self, op: u16, input: &[u32]) -> Vec<u32> {
        let n = usize::from(op).clamp(1, MAX_DIM);
        let a: Vec<i32> = input[..n * n].iter().map(|&w| w as i32).collect();
        let b: Vec<i32> = input[n * n..].iter().map(|&w| w as i32).collect();
        matmul_i32(n, &a, &b)
            .into_iter()
            .map(|v| v as u32)
            .collect()
    }
}

/// The matrix-multiply accelerator.
///
/// # Examples
///
/// ```
/// use ouessant_rac::matmul::{matmul_i32, MatMulRac};
/// use ouessant_rac::rac::RacSocket;
///
/// let n = 2;
/// let a = [1, 2, 3, 4];
/// let b = [5, 6, 7, 8];
/// let mut s = RacSocket::new(Box::new(MatMulRac::new()), 64);
/// for &v in a.iter().chain(&b) {
///     s.push_input(0, v as u32)?;
/// }
/// s.start(n as u16);
/// s.run_until_done(10_000);
/// let c: Vec<i32> = (0..4).map(|_| s.pop_output(0).map(|w| w as i32))
///     .collect::<Result<_, _>>()?;
/// assert_eq!(c, matmul_i32(n, &a, &b)); // [19, 22, 43, 50]
/// # Ok::<(), ouessant_rac::rac::RacError>(())
/// ```
#[derive(Debug)]
pub struct MatMulRac {
    inner: BlockRac<MatMulKernel>,
}

impl MatMulRac {
    /// Creates the accelerator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: BlockRac::new(MatMulKernel),
        }
    }

    /// Products computed since reset.
    #[must_use]
    pub fn products_done(&self) -> u64 {
        self.inner.ops_done()
    }
}

impl Default for MatMulRac {
    fn default() -> Self {
        Self::new()
    }
}

impl Rac for MatMulRac {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn start(&mut self, op: u16) {
        self.inner.start(op);
    }
    fn busy(&self) -> bool {
        self.inner.busy()
    }
    fn tick(&mut self, io: &mut RacIo<'_>) {
        self.inner.tick(io);
    }
    fn horizon(&self) -> Option<ouessant_sim::Cycle> {
        self.inner.horizon()
    }
    fn advance(&mut self, cycles: ouessant_sim::Cycle) {
        self.inner.advance(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rac::RacSocket;

    #[test]
    fn identity_matrix_is_neutral() {
        let n = 4;
        let mut ident = vec![0i32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1;
        }
        let m: Vec<i32> = (0..(n * n) as i32).collect();
        assert_eq!(matmul_i32(n, &ident, &m), m);
        assert_eq!(matmul_i32(n, &m, &ident), m);
    }

    #[test]
    fn known_2x2_product() {
        assert_eq!(
            matmul_i32(2, &[1, 2, 3, 4], &[5, 6, 7, 8]),
            vec![19, 22, 43, 50]
        );
    }

    #[test]
    fn associativity_on_small_matrices() {
        let n = 3;
        let a: Vec<i32> = (1..=9).collect();
        let b: Vec<i32> = (2..=10).collect();
        let c: Vec<i32> = (3..=11).collect();
        let left = matmul_i32(n, &matmul_i32(n, &a, &b), &c);
        let right = matmul_i32(n, &a, &matmul_i32(n, &b, &c));
        assert_eq!(left, right);
    }

    #[test]
    fn rac_matches_reference() {
        let n = 8usize;
        let a: Vec<i32> = (0..n * n).map(|i| (i as i32 * 7) % 100 - 50).collect();
        let b: Vec<i32> = (0..n * n).map(|i| (i as i32 * 13) % 90 - 45).collect();
        let mut s = RacSocket::new(Box::new(MatMulRac::new()), 4 * n * n);
        for &v in a.iter().chain(&b) {
            s.push_input(0, v as u32).unwrap();
        }
        s.start(n as u16);
        s.run_until_done(1_000_000);
        let c: Vec<i32> = (0..n * n)
            .map(|_| s.pop_output(0).unwrap() as i32)
            .collect();
        assert_eq!(c, matmul_i32(n, &a, &b));
    }

    #[test]
    fn latency_scales_quadratically() {
        let l8 = matmul_latency(8);
        let l16 = matmul_latency(16);
        let l32 = matmul_latency(32);
        assert!(l16 > 3 * l8 && l16 < 5 * l8);
        assert!(l32 > 3 * l16 && l32 < 5 * l16);
    }

    #[test]
    fn rac_latency_model_respected() {
        let n = 4usize;
        let mut s = RacSocket::new(Box::new(MatMulRac::new()), 4 * n * n);
        for v in 0..(2 * n * n) as u32 {
            s.push_input(0, v).unwrap();
        }
        s.start(n as u16);
        let cycles = s.run_until_done(1_000_000);
        assert_eq!(cycles, matmul_latency(n) + 1);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn oversized_dimension_panics() {
        let _ = matmul_i32(65, &[], &[]);
    }
}
