//! Utility RACs: identity/scaling pipes and the Figure 2 width-adapting
//! harness.
//!
//! These accelerators carry no paper result by themselves, but they make
//! the integration machinery testable in isolation (a passthrough RAC
//! turns an OCP into a memory-to-memory DMA, which is how transfer
//! efficiency is measured) and reproduce the serializing/deserializing
//! FIFO arrangement of Figure 2.

use ouessant_sim::fifo::WidthAdapter;
use ouessant_sim::Cycle;

use crate::rac::{Rac, RacIo};

/// A streaming RAC that forwards each input word to the output after a
/// configurable pipeline delay, optionally multiplying it.
///
/// With `scale == 1` this is an identity pipe: running it under an OCP
/// measures pure integration overhead (no compute), which is the setup
/// behind the paper's ≈1.5 cycles/word transfer analysis.
///
/// Processing model: on `start(op)`, the RAC consumes exactly `op` words
/// (or all currently buffered words if `op == 0`), emitting each after
/// `delay` cycles, then raises `end_op`.
#[derive(Debug)]
pub struct PassthroughRac {
    name: String,
    scale: u32,
    delay: u64,
    busy: bool,
    to_consume: usize,
    /// (ready_at_tick, value) queue.
    in_flight: std::collections::VecDeque<(u64, u32)>,
    tick_count: u64,
}

impl PassthroughRac {
    /// An identity pipe with `delay` cycles of pipeline latency.
    #[must_use]
    pub fn new(delay: u64) -> Self {
        Self::scaling(1, delay)
    }

    /// A pipe multiplying every word by `scale` (wrapping), with
    /// `delay` cycles of latency.
    #[must_use]
    pub fn scaling(scale: u32, delay: u64) -> Self {
        Self {
            name: if scale == 1 {
                "passthrough".to_string()
            } else {
                format!("scale_x{scale}")
            },
            scale,
            delay,
            busy: false,
            to_consume: 0,
            in_flight: std::collections::VecDeque::new(),
            tick_count: 0,
        }
    }
}

impl Rac for PassthroughRac {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.busy = false;
        self.to_consume = 0;
        self.in_flight.clear();
        self.tick_count = 0;
    }

    fn start(&mut self, op: u16) {
        self.busy = true;
        self.to_consume = usize::from(op); // 0 = drain what is buffered
    }

    fn busy(&self) -> bool {
        self.busy
    }

    fn tick(&mut self, io: &mut RacIo<'_>) {
        self.tick_count += 1;
        if !self.busy {
            return;
        }
        // Consume one word per cycle.
        if self.to_consume > 0 || !io.inputs[0].is_empty() {
            if let Ok(w) = io.inputs[0].pop() {
                self.in_flight
                    .push_back((self.tick_count + self.delay, w.wrapping_mul(self.scale)));
                self.to_consume = self.to_consume.saturating_sub(1);
            }
        }
        // Emit words whose delay has elapsed.
        while let Some(&(ready, w)) = self.in_flight.front() {
            if ready <= self.tick_count && !io.outputs[0].is_full() {
                io.outputs[0].push(w).expect("checked not full");
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        if self.to_consume == 0 && io.inputs[0].is_empty() && self.in_flight.is_empty() {
            self.busy = false; // end_op
        }
    }

    // The default `horizon` (busy → next tick, idle → quiescent) is
    // right for this streaming pipe, but its idle tick still counts
    // `tick_count`, so a fast-forwarded idle window must replay that
    // counter to stay bit-identical.
    fn advance(&mut self, cycles: Cycle) {
        debug_assert!(!self.busy, "passthrough advanced while busy");
        self.tick_count += cycles.count();
    }
}

/// A RAC whose core consumes and produces *wide* operands through the
/// serializing/deserializing FIFOs of the paper's Figure 2.
///
/// The controller-facing FIFOs stay 32 bits; internally a
/// [`WidthAdapter`] deserializes `in_width`-bit operands for the core
/// function and a second adapter serializes the `out_width`-bit results
/// back. With `in_width = out_width = 96` this is exactly the paper's
/// figure.
///
/// # Examples
///
/// ```
/// use ouessant_rac::passthrough::WideFunctionRac;
/// use ouessant_rac::rac::RacSocket;
///
/// // A 96-bit core that swaps the two outer 32-bit lanes.
/// let rac = WideFunctionRac::new("lane_swap", 96, 96, 3, |v| {
///     let lo = v & 0xFFFF_FFFF;
///     let mid = (v >> 32) & 0xFFFF_FFFF;
///     let hi = (v >> 64) & 0xFFFF_FFFF;
///     (lo << 64) | (mid << 32) | hi
/// });
/// let mut s = RacSocket::new(Box::new(rac), 64);
/// for w in [1u32, 2, 3] {
///     s.push_input(0, w)?;
/// }
/// s.start(1); // one 96-bit operand
/// s.run_until_done(1_000);
/// assert_eq!(s.pop_output(0)?, 3);
/// assert_eq!(s.pop_output(0)?, 2);
/// assert_eq!(s.pop_output(0)?, 1);
/// # Ok::<(), ouessant_rac::rac::RacError>(())
/// ```
pub struct WideFunctionRac {
    name: String,
    deserializer: WidthAdapter,
    serializer: WidthAdapter,
    core: Box<dyn FnMut(u128) -> u128>,
    latency: u64,
    busy: bool,
    operands_left: usize,
    compute_wait: u64,
}

impl std::fmt::Debug for WideFunctionRac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WideFunctionRac")
            .field("name", &self.name)
            .field("in_width", &self.deserializer.out_width())
            .field("out_width", &self.serializer.in_width())
            .finish()
    }
}

impl WideFunctionRac {
    /// Builds a wide-operand RAC around `core`.
    ///
    /// `latency` is charged per operand. The `start` operation tag gives
    /// the number of operands to process.
    ///
    /// # Panics
    ///
    /// Panics if a width is outside `1..=128` (see [`WidthAdapter`]).
    #[must_use]
    pub fn new(
        name: &str,
        in_width: u32,
        out_width: u32,
        latency: u64,
        core: impl FnMut(u128) -> u128 + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            deserializer: WidthAdapter::new(&format!("{name}.des"), 32, in_width, 4096),
            serializer: WidthAdapter::new(&format!("{name}.ser"), out_width, 32, 4096),
            core: Box::new(core),
            latency,
            busy: false,
            operands_left: 0,
            compute_wait: 0,
        }
    }
}

impl Rac for WideFunctionRac {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.deserializer.clear();
        self.serializer.clear();
        self.busy = false;
        self.operands_left = 0;
        self.compute_wait = 0;
    }

    fn start(&mut self, op: u16) {
        self.busy = true;
        self.operands_left = usize::from(op).max(1);
        self.compute_wait = 0;
    }

    fn busy(&self) -> bool {
        self.busy
    }

    fn tick(&mut self, io: &mut RacIo<'_>) {
        if !self.busy {
            return;
        }
        // Move bus words into the deserializer (one per cycle, like the
        // FIFO control block of Figure 2).
        if !self.deserializer.is_full() {
            if let Ok(w) = io.inputs[0].pop() {
                self.deserializer
                    .push(u128::from(w))
                    .expect("checked not full");
            }
        }
        // Latency countdown per operand.
        if self.compute_wait > 0 {
            self.compute_wait -= 1;
            return;
        }
        // Process one wide operand when available.
        if self.operands_left > 0 {
            if let Some(operand) = self.deserializer.pop() {
                let result = (self.core)(operand);
                self.serializer.push(result).expect("serializer sized");
                self.operands_left -= 1;
                self.compute_wait = self.latency;
            }
        }
        // Drain serializer into the 32-bit output FIFO.
        while self.serializer.has_output() && !io.outputs[0].is_full() {
            let w = self.serializer.pop().expect("has_output checked");
            io.outputs[0].push(w as u32).expect("checked not full");
        }
        if self.operands_left == 0 && !self.serializer.has_output() {
            self.busy = false; // end_op
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rac::RacSocket;

    #[test]
    fn passthrough_is_identity() {
        let mut s = RacSocket::new(Box::new(PassthroughRac::new(0)), 64);
        for w in 0..16u32 {
            s.push_input(0, w).unwrap();
        }
        s.start(16);
        s.run_until_done(1000);
        for w in 0..16u32 {
            assert_eq!(s.pop_output(0).unwrap(), w);
        }
    }

    #[test]
    fn scaling_multiplies() {
        let mut s = RacSocket::new(Box::new(PassthroughRac::scaling(3, 0)), 64);
        for w in [5u32, 7] {
            s.push_input(0, w).unwrap();
        }
        s.start(2);
        s.run_until_done(1000);
        assert_eq!(s.pop_output(0).unwrap(), 15);
        assert_eq!(s.pop_output(0).unwrap(), 21);
    }

    #[test]
    fn delay_adds_cycles() {
        let mut fast = RacSocket::new(Box::new(PassthroughRac::new(0)), 64);
        let mut slow = RacSocket::new(Box::new(PassthroughRac::new(20)), 64);
        for s in [&mut fast, &mut slow] {
            for w in 0..8u32 {
                s.push_input(0, w).unwrap();
            }
            s.start(8);
        }
        let fast_cycles = fast.run_until_done(10_000);
        let slow_cycles = slow.run_until_done(10_000);
        assert!(slow_cycles >= fast_cycles + 20);
    }

    #[test]
    fn passthrough_throughput_is_one_word_per_cycle() {
        let n = 100u32;
        let mut s = RacSocket::new(Box::new(PassthroughRac::new(0)), 256);
        for w in 0..n {
            s.push_input(0, w).unwrap();
        }
        s.start(n as u16);
        let cycles = s.run_until_done(10_000);
        // One pop per cycle plus end detection slack.
        assert!(
            cycles >= u64::from(n) && cycles <= u64::from(n) + 3,
            "{cycles}"
        );
    }

    #[test]
    fn figure2_widths_round_trip() {
        // 96-bit identity core: the output words equal the input words.
        let rac = WideFunctionRac::new("id96", 96, 96, 0, |v| v);
        let mut s = RacSocket::new(Box::new(rac), 64);
        let words = [
            0x1111_1111u32,
            0x2222_2222,
            0x3333_3333,
            0x4444_4444,
            0x5555_5555,
            0x6666_6666,
        ];
        for &w in &words {
            s.push_input(0, w).unwrap();
        }
        s.start(2); // two 96-bit operands
        s.run_until_done(1000);
        for &w in &words {
            assert_eq!(s.pop_output(0).unwrap(), w);
        }
    }

    #[test]
    fn wide_function_applies_core() {
        // 64-bit adder core: adds the two 32-bit lanes, result 32 bits.
        let rac = WideFunctionRac::new("add64", 64, 32, 1, |v| {
            u128::from((v as u32).wrapping_add((v >> 32) as u32))
        });
        let mut s = RacSocket::new(Box::new(rac), 64);
        s.push_input(0, 100).unwrap();
        s.push_input(0, 23).unwrap();
        s.start(1);
        s.run_until_done(1000);
        assert_eq!(s.pop_output(0).unwrap(), 123);
    }

    #[test]
    fn reset_clears_wide_state() {
        let rac = WideFunctionRac::new("id96", 96, 96, 0, |v| v);
        let mut s = RacSocket::new(Box::new(rac), 64);
        s.push_input(0, 1).unwrap();
        s.start(1);
        s.tick();
        s.reset();
        assert!(!s.busy());
        assert!(s.all_fifos_empty());
    }
}
