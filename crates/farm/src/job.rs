//! Jobs: the unit of work a farm serves.
//!
//! A [`JobSpec`] names an accelerator kind and carries the input
//! payload; the farm turns it into microcode, places it on a worker and
//! returns a [`JobRecord`] with the output payload and the full timing
//! breakdown.

use std::fmt;

use ouessant_isa::Program;
use ouessant_rac::dft::{dft_fixed, dft_latency};
use ouessant_rac::idct::{idct_2d_fixed, BLOCK_LEN};

use crate::worker::WorkerFaultKind;

/// Identifies a submitted job for the lifetime of a farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// The accelerator a job needs.
///
/// Kinds double as *capabilities*: a worker advertises the kinds it can
/// run (one per DPR configuration for a reconfigurable worker), and the
/// scheduler matches jobs to workers by kind equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// One 8×8 fixed-point 2-D IDCT block (64 words in, 64 out).
    Idct,
    /// One complex DFT of `points` points (2·points words each way).
    Dft {
        /// Transform size in complex points (power of two, 8..=4096).
        points: usize,
    },
    /// A streaming copy multiplying every word by `scale` (wrapping);
    /// `scale == 1` is a pure memory-to-memory DMA. Any payload length.
    Copy {
        /// Per-word multiplier.
        scale: u32,
    },
}

impl JobKind {
    /// The exact input length this kind requires, or `None` if any
    /// non-empty payload is accepted.
    #[must_use]
    pub fn required_input_words(&self) -> Option<u32> {
        match self {
            JobKind::Idct => Some(BLOCK_LEN as u32),
            JobKind::Dft { points } => Some(2 * *points as u32),
            JobKind::Copy { .. } => None,
        }
    }

    /// Output words produced for an input of `input_words`.
    #[must_use]
    pub fn output_words(&self, input_words: u32) -> u32 {
        // All three kinds are length-preserving.
        input_words
    }

    /// The host-side golden model: what the accelerator must produce
    /// for `input`. Used by tests and the demo to check end-to-end
    /// integrity of served jobs.
    #[must_use]
    pub fn expected_output(&self, input: &[u32]) -> Vec<u32> {
        match self {
            JobKind::Idct => {
                let coeffs: Vec<i32> = input.iter().map(|&w| w as i32).collect();
                idct_2d_fixed(&coeffs)
                    .into_iter()
                    .map(|v| v as u32)
                    .collect()
            }
            JobKind::Dft { .. } => {
                let samples: Vec<(i32, i32)> = input
                    .chunks_exact(2)
                    .map(|w| (w[0] as i32, w[1] as i32))
                    .collect();
                dft_fixed(&samples)
                    .into_iter()
                    .flat_map(|(re, im)| [re as u32, im as u32])
                    .collect()
            }
            JobKind::Copy { scale } => input.iter().map(|w| w.wrapping_mul(*scale)).collect(),
        }
    }

    /// A rough service-time estimate in cycles (core latency only, no
    /// transfers) — schedulers may use it for cost-aware decisions.
    #[must_use]
    pub fn core_latency_estimate(&self) -> u64 {
        match self {
            JobKind::Idct => 64,
            JobKind::Dft { points } => dft_latency(*points),
            JobKind::Copy { .. } => 1,
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobKind::Idct => f.write_str("idct"),
            JobKind::Dft { points } => write!(f, "dft{points}"),
            JobKind::Copy { scale } => write!(f, "copy×{scale}"),
        }
    }
}

/// A job as submitted by a client.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Which accelerator the job needs.
    pub kind: JobKind,
    /// Input payload (32-bit words, already in the kind's wire format).
    pub input: Vec<u32>,
    /// Larger runs first among equally-old jobs, for policies that look
    /// at it (0 = normal).
    pub priority: u8,
    /// Absolute-cycle deadline, if any. Always reported as missed/met
    /// in the record; with [`LivenessConfig::early_drop`] enabled the
    /// farm additionally drops jobs that provably cannot meet it and
    /// aborts in-flight jobs once it passes
    /// ([`JobOutcome::DeadlineMissed`]).
    ///
    /// [`LivenessConfig::early_drop`]: crate::farm::LivenessConfig::early_drop
    pub deadline: Option<u64>,
    /// Per-job watchdog budget in cycles: the longest window without
    /// observable progress (a retired instruction or a transferred
    /// word) the job is allowed before the worker's watchdog aborts it
    /// with [`WorkerFaultKind::Hang`]. `None` falls back to the farm's
    /// [`LivenessConfig::default_cycles_budget`].
    ///
    /// [`LivenessConfig::default_cycles_budget`]: crate::farm::LivenessConfig::default_cycles_budget
    pub cycles_budget: Option<u64>,
    /// Client-supplied microcode replacing the farm's canonical
    /// program for this job, if any.
    ///
    /// Custom microcode must follow the farm's job memory map (bank 0
    /// program, bank 1 input, bank 2 output) and is run through the
    /// `ouessant-verify` static analyzer at admission; programs with
    /// error-severity diagnostics are rejected before they can touch a
    /// worker (see [`SubmitError::RejectedMicrocode`]).
    ///
    /// [`SubmitError::RejectedMicrocode`]: crate::queue::SubmitError::RejectedMicrocode
    pub microcode: Option<Program>,
}

impl JobSpec {
    /// A job of `kind` over `input` with default priority and no
    /// deadline.
    #[must_use]
    pub fn new(kind: JobKind, input: Vec<u32>) -> Self {
        Self {
            kind,
            input,
            priority: 0,
            deadline: None,
            cycles_budget: None,
            microcode: None,
        }
    }

    /// Sets the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute-cycle deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a per-job watchdog budget (see [`JobSpec::cycles_budget`]).
    #[must_use]
    pub fn with_cycles_budget(mut self, budget: u64) -> Self {
        self.cycles_budget = Some(budget);
        self
    }

    /// Replaces the farm's canonical microcode with `program`.
    ///
    /// The program is statically verified at admission; see
    /// [`JobSpec::microcode`].
    #[must_use]
    pub fn with_microcode(mut self, program: Program) -> Self {
        self.microcode = Some(program);
        self
    }
}

/// Why a job was given up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// Every attempt died on a worker fault; this is the last one.
    Fault(WorkerFaultKind),
    /// No live worker can serve the kind any more (the only capable
    /// workers are permanently quarantined).
    NoServiceableWorker,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::Fault(kind) => write!(f, "{kind}"),
            FailReason::NoServiceableWorker => {
                f.write_str("no serviceable worker left for this kind")
            }
        }
    }
}

/// How an admitted job left the farm.
///
/// An admitted job always ends in exactly one of these — the farm
/// never silently drops work, which is what makes the report's
/// `admitted = completed + failed_permanent + deadline_missed + shed`
/// reconciliation possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to completion and its output was read back.
    Completed {
        /// Dispatch attempts consumed (1 = first try succeeded).
        attempts: u32,
    },
    /// The retry budget ran out, or no worker could serve the job.
    FailedPermanent {
        /// Dispatch attempts consumed (0 = never reached a worker).
        attempts: u32,
        /// Why the farm gave up.
        reason: FailReason,
    },
    /// The liveness sweep dropped the job: its deadline passed while
    /// in flight (the run was aborted) or became provably unmeetable
    /// while queued/parked (the run was never started).
    DeadlineMissed {
        /// Dispatch attempts consumed (0 = dropped before any run).
        attempts: u32,
    },
    /// Overload shedding evicted the job from a full queue in favor of
    /// higher-priority work; it never reached a worker.
    ShedOverload,
}

impl JobOutcome {
    /// Whether the job completed.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }

    /// Dispatch attempts consumed.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Completed { attempts }
            | JobOutcome::FailedPermanent { attempts, .. }
            | JobOutcome::DeadlineMissed { attempts } => *attempts,
            JobOutcome::ShedOverload => 0,
        }
    }
}

/// A finished job: outcome, output payload and the full timing
/// breakdown.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's identity.
    pub id: JobId,
    /// The accelerator kind served.
    pub kind: JobKind,
    /// Index of the worker that served (or last attempted) it; 0 if
    /// the job never reached a worker.
    pub worker: usize,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Cycle the job entered the queue.
    pub submitted_at: u64,
    /// Cycle the dispatcher started it on a worker.
    pub started_at: u64,
    /// Cycle the worker raised completion.
    pub completed_at: u64,
    /// Whether serving this job required a DPR bitstream swap.
    pub swapped: bool,
    /// Bus-contention cycles charged to the worker while this job ran
    /// (cycles its DMA master wanted the bus but lost arbitration).
    pub contention_cycles: u64,
    /// The deadline, if one was set.
    pub deadline: Option<u64>,
    /// Output payload read back from shared memory (empty for a
    /// permanently failed job — a faulted worker's output is never
    /// trusted, even if its transfer finished).
    pub output: Vec<u32>,
}

impl JobRecord {
    /// Cycles spent queued before dispatch.
    #[must_use]
    pub fn queue_wait(&self) -> u64 {
        self.started_at - self.submitted_at
    }

    /// Cycles from dispatch to completion (includes any DPR swap).
    #[must_use]
    pub fn service_cycles(&self) -> u64 {
        self.completed_at - self.started_at
    }

    /// End-to-end latency, submission to completion.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completed_at - self.submitted_at
    }

    /// Whether the job met its deadline (`true` when none was set).
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.deadline.is_none_or(|d| self.completed_at <= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_payload_contracts() {
        assert_eq!(JobKind::Idct.required_input_words(), Some(64));
        assert_eq!(
            JobKind::Dft { points: 64 }.required_input_words(),
            Some(128)
        );
        assert_eq!(JobKind::Copy { scale: 1 }.required_input_words(), None);
        assert_eq!(JobKind::Idct.output_words(64), 64);
    }

    #[test]
    fn golden_models_cover_all_kinds() {
        let input: Vec<u32> = (0..64).collect();
        assert_eq!(JobKind::Idct.expected_output(&input).len(), 64);
        let dft_in: Vec<u32> = (0..16).collect();
        assert_eq!(
            JobKind::Dft { points: 8 }.expected_output(&dft_in).len(),
            16
        );
        assert_eq!(
            JobKind::Copy { scale: 3 }.expected_output(&[1, 2, 0x8000_0000]),
            vec![3, 6, 0x8000_0000u32.wrapping_mul(3)]
        );
    }

    #[test]
    fn record_arithmetic() {
        let r = JobRecord {
            id: JobId(1),
            kind: JobKind::Idct,
            worker: 0,
            outcome: JobOutcome::Completed { attempts: 1 },
            submitted_at: 10,
            started_at: 25,
            completed_at: 125,
            swapped: false,
            contention_cycles: 3,
            deadline: Some(120),
            output: vec![],
        };
        assert_eq!(r.queue_wait(), 15);
        assert_eq!(r.service_cycles(), 100);
        assert_eq!(r.latency(), 115);
        assert!(!r.met_deadline());
    }
}
