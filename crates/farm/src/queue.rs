//! The bounded submission queue: admission control and backpressure.
//!
//! The farm front-end accepts jobs into a fixed-capacity queue. A full
//! queue rejects with [`SubmitError::QueueFull`] — the caller's signal
//! to back off — and malformed payloads are rejected *before* they
//! consume a slot, so one bad client cannot poison the pool.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use ouessant_isa::Program;
use ouessant_verify::Analysis;

use crate::job::{JobId, JobKind, JobSpec};

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — back off and resubmit later.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The payload length does not match the kind's contract
    /// (e.g. an IDCT job must carry exactly 64 words).
    BadPayload {
        /// The offending kind.
        kind: JobKind,
        /// Words the kind requires.
        expected: u32,
        /// Words actually supplied.
        got: u32,
    },
    /// The payload is empty.
    EmptyPayload,
    /// The payload exceeds what any worker's FIFOs can buffer.
    PayloadTooLarge {
        /// Words supplied.
        got: u32,
        /// The configured ceiling.
        limit: u32,
    },
    /// No worker in the pool can ever serve this kind.
    NoCapableWorker {
        /// The unserviceable kind.
        kind: JobKind,
    },
    /// The job's custom microcode failed static verification.
    ///
    /// Carries the full analysis so the client can see *why*: every
    /// diagnostic names the offending instruction index, a severity and
    /// a fix-it hint.
    RejectedMicrocode {
        /// The analyzer's verdict (at least one error-severity
        /// diagnostic).
        diagnostics: Analysis,
    },
    /// The job's custom microcode leaves no headroom for the `rcfg`
    /// the farm prepends when serving it on a reconfigurable worker.
    MicrocodeTooLong {
        /// Instructions supplied.
        len: usize,
        /// Instructions admissible.
        limit: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            SubmitError::BadPayload {
                kind,
                expected,
                got,
            } => write!(f, "{kind} jobs need exactly {expected} words, got {got}"),
            SubmitError::EmptyPayload => f.write_str("empty payload"),
            SubmitError::PayloadTooLarge { got, limit } => {
                write!(
                    f,
                    "payload of {got} words exceeds the {limit}-word FIFO limit"
                )
            }
            SubmitError::NoCapableWorker { kind } => {
                write!(f, "no worker in the pool can serve {kind} jobs")
            }
            SubmitError::RejectedMicrocode { diagnostics } => write!(
                f,
                "custom microcode rejected by the static analyzer ({} error(s)): {diagnostics}",
                diagnostics.error_count()
            ),
            SubmitError::MicrocodeTooLong { len, limit } => write!(
                f,
                "custom microcode has {len} instructions, more than the {limit} the farm \
                 can place (one slot is reserved for a DPR `rcfg` prepend)"
            ),
        }
    }
}

impl Error for SubmitError {}

/// A job sitting in the queue, visible to scheduling policies.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The job's identity.
    pub id: JobId,
    /// The accelerator kind it needs.
    pub kind: JobKind,
    /// Payload length in words.
    pub input_words: u32,
    /// Cycle it was admitted.
    pub submitted_at: u64,
    /// Client-assigned priority (0 = normal).
    pub priority: u8,
    /// Absolute-cycle deadline, if any.
    pub deadline: Option<u64>,
    /// Dispatch attempts already consumed by this job (0 on first
    /// admission; bumped each time a worker fault hands it back).
    pub attempts: u32,
    /// A worker this job must not be placed on again — the one whose
    /// fault bounced it here. `None` once no alternative exists.
    pub avoid_worker: Option<usize>,
    /// The payload itself (consumed at dispatch).
    pub(crate) input: Vec<u32>,
    /// Verified custom microcode, if the client supplied any.
    pub(crate) microcode: Option<Program>,
}

impl PendingJob {
    /// Whether the scheduler may place this job on worker `index`.
    #[must_use]
    pub fn allows_worker(&self, index: usize) -> bool {
        self.avoid_worker != Some(index)
    }
}

/// A bounded FIFO of admitted jobs.
///
/// Policies see the queue in submission order; removal by index keeps
/// out-of-order dispatch (e.g. DPR-affinity batching) cheap.
#[derive(Debug)]
pub struct SubmitQueue {
    jobs: VecDeque<PendingJob>,
    capacity: usize,
    /// Submissions rejected with `QueueFull`.
    rejected_full: u64,
    /// Submissions rejected for any other reason.
    rejected_invalid: u64,
    /// Submissions whose custom microcode failed static verification.
    rejected_unsafe: u64,
    /// High-water mark of the queue depth.
    peak_depth: usize,
    admitted: u64,
}

impl SubmitQueue {
    /// An empty queue admitting at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            jobs: VecDeque::with_capacity(capacity),
            capacity,
            rejected_full: 0,
            rejected_invalid: 0,
            rejected_unsafe: 0,
            peak_depth: 0,
            admitted: 0,
        }
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total jobs admitted since creation.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Submissions rejected with [`SubmitError::QueueFull`].
    #[must_use]
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Submissions rejected for malformed payloads or unserviceable
    /// kinds.
    #[must_use]
    pub fn rejected_invalid(&self) -> u64 {
        self.rejected_invalid
    }

    /// Submissions whose custom microcode the static analyzer
    /// rejected (see [`SubmitError::RejectedMicrocode`]).
    #[must_use]
    pub fn rejected_unsafe(&self) -> u64 {
        self.rejected_unsafe
    }

    /// Counts one microcode-verification rejection.
    ///
    /// The verification itself happens in the farm front-end (it needs
    /// the pool's memory map and FIFO depth); the queue only owns the
    /// counter so all admission statistics live in one place.
    pub(crate) fn note_unsafe_rejection(&mut self) {
        self.rejected_unsafe += 1;
    }

    /// High-water mark of the queue depth.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The queued jobs in submission order (for policies).
    #[must_use]
    pub fn pending(&self) -> &VecDeque<PendingJob> {
        &self.jobs
    }

    /// Validates and admits `spec` at cycle `now`.
    ///
    /// `payload_limit` is the farm-wide FIFO buffering ceiling;
    /// `serviceable` tells the queue whether any worker can ever run
    /// the kind (checked at admission so hopeless jobs fail fast).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; rejected submissions leave the queue
    /// untouched.
    pub fn submit(
        &mut self,
        id: JobId,
        spec: JobSpec,
        now: u64,
        payload_limit: u32,
        serviceable: bool,
    ) -> Result<JobId, SubmitError> {
        let got = u32::try_from(spec.input.len()).unwrap_or(u32::MAX);
        if got == 0 {
            self.rejected_invalid += 1;
            return Err(SubmitError::EmptyPayload);
        }
        if let Some(expected) = spec.kind.required_input_words() {
            if got != expected {
                self.rejected_invalid += 1;
                return Err(SubmitError::BadPayload {
                    kind: spec.kind,
                    expected,
                    got,
                });
            }
        }
        if got > payload_limit {
            self.rejected_invalid += 1;
            return Err(SubmitError::PayloadTooLarge {
                got,
                limit: payload_limit,
            });
        }
        if !serviceable {
            self.rejected_invalid += 1;
            return Err(SubmitError::NoCapableWorker { kind: spec.kind });
        }
        if self.jobs.len() >= self.capacity {
            self.rejected_full += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        self.jobs.push_back(PendingJob {
            id,
            kind: spec.kind,
            input_words: got,
            submitted_at: now,
            priority: spec.priority,
            deadline: spec.deadline,
            attempts: 0,
            avoid_worker: None,
            input: spec.input,
            microcode: spec.microcode,
        });
        self.admitted += 1;
        self.peak_depth = self.peak_depth.max(self.jobs.len());
        Ok(id)
    }

    /// Puts a fault-bounced job back in line for another attempt.
    ///
    /// Bypasses capacity: a retry is not a new admission, and bouncing
    /// an already-admitted job because fresh submissions filled the
    /// queue would turn one worker fault into a lost job. As a result
    /// `peak_depth` may briefly exceed `capacity` under heavy faulting.
    pub(crate) fn requeue(&mut self, job: PendingJob) {
        self.jobs.push_back(job);
        self.peak_depth = self.peak_depth.max(self.jobs.len());
    }

    /// Evicts every queued job whose kind no worker can serve any more
    /// (called when a worker dies permanently). Returns the evicted
    /// jobs so the farm can record them as failed rather than strand
    /// them.
    pub(crate) fn reap_unserviceable(
        &mut self,
        serviceable: impl Fn(JobKind) -> bool,
    ) -> Vec<PendingJob> {
        let mut dead = Vec::new();
        self.jobs.retain(|job| {
            if serviceable(job.kind) {
                true
            } else {
                dead.push(job.clone());
                false
            }
        });
        dead
    }

    /// Removes and returns the job at `index` (dispatch).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — policies must return indices
    /// into the queue they were shown.
    pub fn take(&mut self, index: usize) -> PendingJob {
        self.jobs
            .remove(index)
            .expect("policy returned an out-of-range queue index")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idct_spec() -> JobSpec {
        JobSpec::new(JobKind::Idct, vec![0; 64])
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let mut q = SubmitQueue::new(2);
        q.submit(JobId(0), idct_spec(), 0, 1024, true).unwrap();
        q.submit(JobId(1), idct_spec(), 0, 1024, true).unwrap();
        assert_eq!(
            q.submit(JobId(2), idct_spec(), 0, 1024, true),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(q.rejected_full(), 1);
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn validates_payload_contracts() {
        let mut q = SubmitQueue::new(4);
        let bad = JobSpec::new(JobKind::Idct, vec![0; 63]);
        assert!(matches!(
            q.submit(JobId(0), bad, 0, 1024, true),
            Err(SubmitError::BadPayload {
                expected: 64,
                got: 63,
                ..
            })
        ));
        let empty = JobSpec::new(JobKind::Copy { scale: 1 }, vec![]);
        assert_eq!(
            q.submit(JobId(1), empty, 0, 1024, true),
            Err(SubmitError::EmptyPayload)
        );
        let huge = JobSpec::new(JobKind::Copy { scale: 1 }, vec![0; 2048]);
        assert_eq!(
            q.submit(JobId(2), huge, 0, 1024, true),
            Err(SubmitError::PayloadTooLarge {
                got: 2048,
                limit: 1024
            })
        );
        let fine = JobSpec::new(JobKind::Copy { scale: 1 }, vec![0; 8]);
        assert_eq!(
            q.submit(JobId(3), fine, 0, 1024, false),
            Err(SubmitError::NoCapableWorker {
                kind: JobKind::Copy { scale: 1 }
            })
        );
        assert_eq!(q.rejected_invalid(), 4);
        assert!(q.is_empty(), "rejects consume no slot");
    }

    #[test]
    fn take_removes_mid_queue() {
        let mut q = SubmitQueue::new(4);
        for i in 0..3 {
            q.submit(JobId(i), idct_spec(), i, 1024, true).unwrap();
        }
        let taken = q.take(1);
        assert_eq!(taken.id, JobId(1));
        let left: Vec<u64> = q.pending().iter().map(|j| j.id.0).collect();
        assert_eq!(left, vec![0, 2]);
    }
}
