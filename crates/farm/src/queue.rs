//! The bounded submission queue: admission control and backpressure.
//!
//! The farm front-end accepts jobs into a fixed-capacity queue. A full
//! queue rejects with [`SubmitError::QueueFull`] — the caller's signal
//! to back off — and malformed payloads are rejected *before* they
//! consume a slot, so one bad client cannot poison the pool.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use ouessant_isa::Program;
use ouessant_verify::Analysis;

use crate::job::{JobId, JobKind, JobSpec};

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — back off and resubmit later.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The payload length does not match the kind's contract
    /// (e.g. an IDCT job must carry exactly 64 words).
    BadPayload {
        /// The offending kind.
        kind: JobKind,
        /// Words the kind requires.
        expected: u32,
        /// Words actually supplied.
        got: u32,
    },
    /// The payload is empty.
    EmptyPayload,
    /// The payload exceeds what any worker's FIFOs can buffer.
    PayloadTooLarge {
        /// Words supplied.
        got: u32,
        /// The configured ceiling.
        limit: u32,
    },
    /// No worker in the pool can ever serve this kind.
    NoCapableWorker {
        /// The unserviceable kind.
        kind: JobKind,
    },
    /// The job's custom microcode failed static verification.
    ///
    /// Carries the full analysis so the client can see *why*: every
    /// diagnostic names the offending instruction index, a severity and
    /// a fix-it hint.
    RejectedMicrocode {
        /// The analyzer's verdict (at least one error-severity
        /// diagnostic).
        diagnostics: Analysis,
    },
    /// The job's custom microcode leaves no headroom for the `rcfg`
    /// the farm prepends when serving it on a reconfigurable worker.
    MicrocodeTooLong {
        /// Instructions supplied.
        len: usize,
        /// Instructions admissible.
        limit: usize,
    },
    /// Overload shedding: the queue is past its load-shedding
    /// watermark and the job's priority class is below the floor, so
    /// admission is refused to keep headroom for important work.
    /// Back off, or resubmit with a higher priority.
    ShedOverload {
        /// Jobs queued at the moment of rejection.
        queued: usize,
        /// The configured shedding watermark.
        watermark: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            SubmitError::BadPayload {
                kind,
                expected,
                got,
            } => write!(f, "{kind} jobs need exactly {expected} words, got {got}"),
            SubmitError::EmptyPayload => f.write_str("empty payload"),
            SubmitError::PayloadTooLarge { got, limit } => {
                write!(
                    f,
                    "payload of {got} words exceeds the {limit}-word FIFO limit"
                )
            }
            SubmitError::NoCapableWorker { kind } => {
                write!(f, "no worker in the pool can serve {kind} jobs")
            }
            SubmitError::RejectedMicrocode { diagnostics } => write!(
                f,
                "custom microcode rejected by the static analyzer ({} error(s)): {diagnostics}",
                diagnostics.error_count()
            ),
            SubmitError::MicrocodeTooLong { len, limit } => write!(
                f,
                "custom microcode has {len} instructions, more than the {limit} the farm \
                 can place (one slot is reserved for a DPR `rcfg` prepend)"
            ),
            SubmitError::ShedOverload { queued, watermark } => write!(
                f,
                "overloaded: {queued} jobs queued (shedding watermark {watermark}), \
                 low-priority admission refused"
            ),
        }
    }
}

impl Error for SubmitError {}

/// A job sitting in the queue, visible to scheduling policies.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The job's identity.
    pub id: JobId,
    /// The accelerator kind it needs.
    pub kind: JobKind,
    /// Payload length in words.
    pub input_words: u32,
    /// Cycle it was admitted.
    pub submitted_at: u64,
    /// Client-assigned priority (0 = normal).
    pub priority: u8,
    /// Absolute-cycle deadline, if any.
    pub deadline: Option<u64>,
    /// Per-job watchdog budget, if any (see
    /// [`JobSpec::cycles_budget`]).
    pub cycles_budget: Option<u64>,
    /// Dispatch attempts already consumed by this job (0 on first
    /// admission; bumped each time a worker fault hands it back).
    pub attempts: u32,
    /// A worker this job must not be placed on again — the one whose
    /// fault bounced it here. `None` once no alternative exists.
    pub avoid_worker: Option<usize>,
    /// The payload itself (consumed at dispatch).
    pub(crate) input: Vec<u32>,
    /// Verified custom microcode, if the client supplied any.
    pub(crate) microcode: Option<Program>,
}

impl PendingJob {
    /// Whether the scheduler may place this job on worker `index`.
    #[must_use]
    pub fn allows_worker(&self, index: usize) -> bool {
        self.avoid_worker != Some(index)
    }
}

/// A bounded, priority-ordered queue of admitted jobs.
///
/// Jobs are kept sorted by priority class (higher first), stable by
/// arrival within a class — an all-default-priority workload is a pure
/// FIFO. Policies see the queue in that order; removal by index keeps
/// out-of-order dispatch (e.g. DPR-affinity batching) cheap.
///
/// With an overload policy configured
/// ([`SubmitQueue::set_overload_policy`]) the queue degrades
/// gracefully instead of bouncing everything at capacity: past the
/// watermark, below-floor submissions are refused with
/// [`SubmitError::ShedOverload`], and a *full* queue lets a
/// higher-priority submission evict the youngest lowest-class queued
/// job (never a retry) — the farm drains the evictions via
/// [`SubmitQueue::take_shed`] and records them.
#[derive(Debug)]
pub struct SubmitQueue {
    jobs: VecDeque<PendingJob>,
    capacity: usize,
    /// Load-shedding watermark (`None` = shedding disabled).
    shed_watermark: Option<usize>,
    /// Minimum priority class admitted past the watermark.
    shed_floor: u8,
    /// Jobs evicted by higher-priority submissions, awaiting pickup.
    shed_out: Vec<PendingJob>,
    /// Submissions rejected with `QueueFull`.
    rejected_full: u64,
    /// Submissions rejected with `ShedOverload`.
    rejected_shed: u64,
    /// Submissions rejected for any other reason.
    rejected_invalid: u64,
    /// Submissions whose custom microcode failed static verification.
    rejected_unsafe: u64,
    /// High-water mark of the queue depth.
    peak_depth: usize,
    admitted: u64,
}

impl SubmitQueue {
    /// An empty queue admitting at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            jobs: VecDeque::with_capacity(capacity),
            capacity,
            shed_watermark: None,
            shed_floor: 1,
            shed_out: Vec::new(),
            rejected_full: 0,
            rejected_shed: 0,
            rejected_invalid: 0,
            rejected_unsafe: 0,
            peak_depth: 0,
            admitted: 0,
        }
    }

    /// Configures graceful overload degradation: past `watermark`
    /// queued jobs, submissions with priority below `floor` are
    /// refused with [`SubmitError::ShedOverload`], and a full queue
    /// may evict a strictly-lower-priority queued job in favor of a
    /// new one. `None` disables shedding (the default): the queue then
    /// answers plain [`SubmitError::QueueFull`] at capacity.
    pub fn set_overload_policy(&mut self, watermark: Option<usize>, floor: u8) {
        self.shed_watermark = watermark;
        self.shed_floor = floor;
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total jobs admitted since creation.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Submissions rejected with [`SubmitError::QueueFull`].
    #[must_use]
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Submissions rejected with [`SubmitError::ShedOverload`].
    #[must_use]
    pub fn rejected_shed(&self) -> u64 {
        self.rejected_shed
    }

    /// Submissions rejected for malformed payloads or unserviceable
    /// kinds.
    #[must_use]
    pub fn rejected_invalid(&self) -> u64 {
        self.rejected_invalid
    }

    /// Submissions whose custom microcode the static analyzer
    /// rejected (see [`SubmitError::RejectedMicrocode`]).
    #[must_use]
    pub fn rejected_unsafe(&self) -> u64 {
        self.rejected_unsafe
    }

    /// Counts one microcode-verification rejection.
    ///
    /// The verification itself happens in the farm front-end (it needs
    /// the pool's memory map and FIFO depth); the queue only owns the
    /// counter so all admission statistics live in one place.
    pub(crate) fn note_unsafe_rejection(&mut self) {
        self.rejected_unsafe += 1;
    }

    /// High-water mark of the queue depth.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The queued jobs in submission order (for policies).
    #[must_use]
    pub fn pending(&self) -> &VecDeque<PendingJob> {
        &self.jobs
    }

    /// Validates and admits `spec` at cycle `now`.
    ///
    /// `payload_limit` is the farm-wide FIFO buffering ceiling;
    /// `serviceable` tells the queue whether any worker can ever run
    /// the kind (checked at admission so hopeless jobs fail fast).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; rejected submissions leave the queue
    /// untouched.
    pub fn submit(
        &mut self,
        id: JobId,
        spec: JobSpec,
        now: u64,
        payload_limit: u32,
        serviceable: bool,
    ) -> Result<JobId, SubmitError> {
        let got = u32::try_from(spec.input.len()).unwrap_or(u32::MAX);
        if got == 0 {
            self.rejected_invalid += 1;
            return Err(SubmitError::EmptyPayload);
        }
        if let Some(expected) = spec.kind.required_input_words() {
            if got != expected {
                self.rejected_invalid += 1;
                return Err(SubmitError::BadPayload {
                    kind: spec.kind,
                    expected,
                    got,
                });
            }
        }
        if got > payload_limit {
            self.rejected_invalid += 1;
            return Err(SubmitError::PayloadTooLarge {
                got,
                limit: payload_limit,
            });
        }
        if !serviceable {
            self.rejected_invalid += 1;
            return Err(SubmitError::NoCapableWorker { kind: spec.kind });
        }
        if let Some(watermark) = self.shed_watermark {
            if self.jobs.len() >= watermark && spec.priority < self.shed_floor {
                self.rejected_shed += 1;
                return Err(SubmitError::ShedOverload {
                    queued: self.jobs.len(),
                    watermark,
                });
            }
        }
        if self.jobs.len() >= self.capacity {
            // Overload mode: a higher-priority submission may displace
            // the youngest strictly-lower-class queued job (retries
            // are immune — a displaced retry would turn one worker
            // fault into a lost job).
            let victim = self.shed_watermark.and_then(|_| {
                self.jobs
                    .iter()
                    .rposition(|j| j.attempts == 0 && j.priority < spec.priority)
            });
            match victim {
                Some(idx) => {
                    let evicted = self.jobs.remove(idx).expect("rposition is in range");
                    self.shed_out.push(evicted);
                }
                None => {
                    self.rejected_full += 1;
                    return Err(SubmitError::QueueFull {
                        capacity: self.capacity,
                    });
                }
            }
        }
        self.insert_by_class(PendingJob {
            id,
            kind: spec.kind,
            input_words: got,
            submitted_at: now,
            priority: spec.priority,
            deadline: spec.deadline,
            cycles_budget: spec.cycles_budget,
            attempts: 0,
            avoid_worker: None,
            input: spec.input,
            microcode: spec.microcode,
        });
        self.admitted += 1;
        self.peak_depth = self.peak_depth.max(self.jobs.len());
        Ok(id)
    }

    /// Inserts `job` behind every queued job of its class or higher:
    /// the queue stays sorted by priority (descending), stable by
    /// insertion within a class.
    fn insert_by_class(&mut self, job: PendingJob) {
        let pos = self
            .jobs
            .iter()
            .position(|j| j.priority < job.priority)
            .unwrap_or(self.jobs.len());
        self.jobs.insert(pos, job);
    }

    /// Puts a fault-bounced job back in line for another attempt (in
    /// its priority class, like any insertion).
    ///
    /// Bypasses capacity: a retry is not a new admission, and bouncing
    /// an already-admitted job because fresh submissions filled the
    /// queue would turn one worker fault into a lost job. As a result
    /// `peak_depth` may briefly exceed `capacity` under heavy faulting.
    pub(crate) fn requeue(&mut self, job: PendingJob) {
        self.insert_by_class(job);
        self.peak_depth = self.peak_depth.max(self.jobs.len());
    }

    /// Drains the jobs evicted by overload shedding since the last
    /// call, for the farm to record as
    /// [`JobOutcome::ShedOverload`](crate::job::JobOutcome::ShedOverload).
    pub(crate) fn take_shed(&mut self) -> Vec<PendingJob> {
        std::mem::take(&mut self.shed_out)
    }

    /// Evicts every queued job matching `expired` (the liveness
    /// sweep's can-no-longer-meet-its-deadline predicate), returning
    /// the evictions for the farm to record.
    pub(crate) fn reap_expired(
        &mut self,
        expired: impl Fn(&PendingJob) -> bool,
    ) -> Vec<PendingJob> {
        let mut dead = Vec::new();
        self.jobs.retain(|job| {
            if expired(job) {
                dead.push(job.clone());
                false
            } else {
                true
            }
        });
        dead
    }

    /// Evicts every queued job whose kind no worker can serve any more
    /// (called when a worker dies permanently). Returns the evicted
    /// jobs so the farm can record them as failed rather than strand
    /// them.
    pub(crate) fn reap_unserviceable(
        &mut self,
        serviceable: impl Fn(JobKind) -> bool,
    ) -> Vec<PendingJob> {
        let mut dead = Vec::new();
        self.jobs.retain(|job| {
            if serviceable(job.kind) {
                true
            } else {
                dead.push(job.clone());
                false
            }
        });
        dead
    }

    /// Removes and returns the job at `index` (dispatch).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — policies must return indices
    /// into the queue they were shown.
    pub fn take(&mut self, index: usize) -> PendingJob {
        self.jobs
            .remove(index)
            .expect("policy returned an out-of-range queue index")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idct_spec() -> JobSpec {
        JobSpec::new(JobKind::Idct, vec![0; 64])
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let mut q = SubmitQueue::new(2);
        q.submit(JobId(0), idct_spec(), 0, 1024, true).unwrap();
        q.submit(JobId(1), idct_spec(), 0, 1024, true).unwrap();
        assert_eq!(
            q.submit(JobId(2), idct_spec(), 0, 1024, true),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(q.rejected_full(), 1);
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn validates_payload_contracts() {
        let mut q = SubmitQueue::new(4);
        let bad = JobSpec::new(JobKind::Idct, vec![0; 63]);
        assert!(matches!(
            q.submit(JobId(0), bad, 0, 1024, true),
            Err(SubmitError::BadPayload {
                expected: 64,
                got: 63,
                ..
            })
        ));
        let empty = JobSpec::new(JobKind::Copy { scale: 1 }, vec![]);
        assert_eq!(
            q.submit(JobId(1), empty, 0, 1024, true),
            Err(SubmitError::EmptyPayload)
        );
        let huge = JobSpec::new(JobKind::Copy { scale: 1 }, vec![0; 2048]);
        assert_eq!(
            q.submit(JobId(2), huge, 0, 1024, true),
            Err(SubmitError::PayloadTooLarge {
                got: 2048,
                limit: 1024
            })
        );
        let fine = JobSpec::new(JobKind::Copy { scale: 1 }, vec![0; 8]);
        assert_eq!(
            q.submit(JobId(3), fine, 0, 1024, false),
            Err(SubmitError::NoCapableWorker {
                kind: JobKind::Copy { scale: 1 }
            })
        );
        assert_eq!(q.rejected_invalid(), 4);
        assert!(q.is_empty(), "rejects consume no slot");
    }

    #[test]
    fn take_removes_mid_queue() {
        let mut q = SubmitQueue::new(4);
        for i in 0..3 {
            q.submit(JobId(i), idct_spec(), i, 1024, true).unwrap();
        }
        let taken = q.take(1);
        assert_eq!(taken.id, JobId(1));
        let left: Vec<u64> = q.pending().iter().map(|j| j.id.0).collect();
        assert_eq!(left, vec![0, 2]);
    }

    #[test]
    fn priority_classes_order_the_queue() {
        let mut q = SubmitQueue::new(8);
        for (i, prio) in [(0u64, 0u8), (1, 2), (2, 1), (3, 2), (4, 0)] {
            q.submit(JobId(i), idct_spec().with_priority(prio), i, 1024, true)
                .unwrap();
        }
        let order: Vec<u64> = q.pending().iter().map(|j| j.id.0).collect();
        // Descending by class, stable by arrival within a class.
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn shed_watermark_refuses_low_priority_only() {
        let mut q = SubmitQueue::new(8);
        q.set_overload_policy(Some(2), 1);
        q.submit(JobId(0), idct_spec(), 0, 1024, true).unwrap();
        q.submit(JobId(1), idct_spec(), 0, 1024, true).unwrap();
        // Past the watermark: priority 0 is below the floor.
        assert_eq!(
            q.submit(JobId(2), idct_spec(), 0, 1024, true),
            Err(SubmitError::ShedOverload {
                queued: 2,
                watermark: 2
            })
        );
        assert_eq!(q.rejected_shed(), 1);
        // At-or-above the floor still gets in until true capacity.
        q.submit(JobId(3), idct_spec().with_priority(1), 0, 1024, true)
            .unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn full_queue_evicts_youngest_lowest_class_for_priority_work() {
        let mut q = SubmitQueue::new(3);
        q.set_overload_policy(Some(2), 0);
        q.submit(JobId(0), idct_spec(), 0, 1024, true).unwrap();
        q.submit(JobId(1), idct_spec(), 1, 1024, true).unwrap();
        q.submit(JobId(2), idct_spec(), 2, 1024, true).unwrap();
        // Full queue + higher-priority submission: the youngest
        // priority-0 job (id 2) is displaced.
        q.submit(JobId(3), idct_spec().with_priority(2), 3, 1024, true)
            .unwrap();
        let shed = q.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, JobId(2));
        let order: Vec<u64> = q.pending().iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![3, 0, 1]);
        // A submission with nothing strictly below it displaces
        // nothing (eviction needs a strictly-lower class).
        assert_eq!(
            q.submit(JobId(4), idct_spec(), 4, 1024, true),
            Err(SubmitError::QueueFull { capacity: 3 })
        );
        // Without an overload policy a full queue never evicts.
        let mut plain = SubmitQueue::new(1);
        plain.submit(JobId(0), idct_spec(), 0, 1024, true).unwrap();
        assert_eq!(
            plain.submit(JobId(1), idct_spec().with_priority(7), 0, 1024, true),
            Err(SubmitError::QueueFull { capacity: 1 })
        );
        assert!(plain.take_shed().is_empty());
    }

    #[test]
    fn reap_expired_removes_matching_jobs() {
        let mut q = SubmitQueue::new(8);
        for i in 0..4u64 {
            let spec = idct_spec().with_deadline(100 + i);
            q.submit(JobId(i), spec, 0, 1024, true).unwrap();
        }
        let dead = q.reap_expired(|j| j.deadline.is_some_and(|d| d < 102));
        let dead_ids: Vec<u64> = dead.iter().map(|j| j.id.0).collect();
        assert_eq!(dead_ids, vec![0, 1]);
        assert_eq!(q.len(), 2);
    }
}
