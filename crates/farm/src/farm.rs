//! The farm: a pool of OCP workers serving a job queue in simulated
//! time.

use std::error::Error;
use std::fmt;

use ouessant_isa::operands::MAX_PROGRAM_LEN;
use ouessant_sim::bus::{Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_soc::alloc::{AllocError, BankAllocator};
use ouessant_verify::{verify, VerifyConfig};

use crate::job::{JobId, JobKind, JobRecord, JobSpec};
use crate::policy::{SchedPolicy, WorkerView};
use crate::queue::{SubmitError, SubmitQueue};
use crate::stats::{FarmReport, WorkerReport};
use crate::worker::{adapt_custom_program, build_program, JobRegions, Worker};

/// Static farm parameters.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Submission-queue capacity (jobs).
    pub queue_capacity: usize,
    /// Base address of the shared job memory.
    pub shared_base: u32,
    /// Size of the shared job memory, in 32-bit words.
    pub shared_words: u32,
    /// FIFO depth of every worker OCP; also the admission ceiling on
    /// payload length (a job's whole payload is streamed into the RAC
    /// input FIFO before `execs`).
    pub fifo_depth: usize,
    /// Bus timing parameters.
    pub bus: BusConfig,
    /// Wait states of the shared memory.
    pub sram: SramConfig,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            shared_base: 0x4000_0000,
            shared_words: 64 * 1024,
            fifo_depth: 1024,
            bus: BusConfig::default(),
            sram: SramConfig::default(),
        }
    }
}

/// A fatal pool condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// `run_until_idle` ran out of fuel with work still pending.
    Stalled {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Jobs still queued.
        queued: usize,
        /// Jobs still on workers.
        in_flight: usize,
    },
    /// A worker's controller faulted (microcode or integration bug).
    WorkerFault {
        /// Pool index of the dead worker.
        worker: usize,
        /// The controller's fault description.
        detail: String,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Stalled {
                cycles,
                queued,
                in_flight,
            } => write!(
                f,
                "farm stalled after {cycles} cycles ({queued} queued, {in_flight} in flight)"
            ),
            FarmError::WorkerFault { worker, detail } => {
                write!(f, "worker {worker} faulted: {detail}")
            }
        }
    }
}

impl Error for FarmError {}

/// Where worker register windows are mapped.
const OCP_BASE: u32 = 0x8000_0000;
/// Spacing between worker register windows.
const OCP_STRIDE: u32 = 0x1_0000;

/// A multi-OCP serving pool on one shared bus.
///
/// Construction order matters to arbitration: the host master is
/// registered first (highest fixed priority, as a CPU would be), then
/// one DMA master per added worker.
///
/// # Examples
///
/// ```
/// use ouessant_farm::{Farm, FarmConfig, FifoPolicy, JobKind, JobSpec};
///
/// let mut farm = Farm::new(FarmConfig::default(), Box::new(FifoPolicy::new()));
/// farm.add_worker(JobKind::Idct);
/// let id = farm.submit(JobSpec::new(JobKind::Idct, vec![0; 64]))?;
/// farm.run_until_idle(100_000)?;
/// let record = &farm.records()[0];
/// assert_eq!(record.id, id);
/// assert_eq!(record.output, vec![0; 64]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Farm {
    bus: Bus,
    workers: Vec<Worker>,
    queue: SubmitQueue,
    alloc: BankAllocator,
    policy: Box<dyn SchedPolicy>,
    config: FarmConfig,
    completed: Vec<JobRecord>,
    next_id: u64,
    /// Cycles dispatch was blocked on shared-memory pressure.
    alloc_stalls: u64,
}

impl fmt::Debug for Farm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Farm")
            .field("policy", &self.policy.name())
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl Farm {
    /// An empty pool (no workers yet) scheduling with `policy`.
    #[must_use]
    pub fn new(config: FarmConfig, policy: Box<dyn SchedPolicy>) -> Self {
        let mut bus = Bus::new(config.bus);
        let _host = bus.register_master("host");
        bus.add_slave(
            config.shared_base,
            Sram::with_words(config.shared_words as usize, config.sram),
        );
        let alloc = BankAllocator::new(config.shared_base, config.shared_words);
        let queue = SubmitQueue::new(config.queue_capacity);
        Self {
            bus,
            workers: Vec::new(),
            queue,
            alloc,
            policy,
            config,
            completed: Vec::new(),
            next_id: 0,
            alloc_stalls: 0,
        }
    }

    /// Adds a fixed-function worker for `kind`; returns its pool index.
    pub fn add_worker(&mut self, kind: JobKind) -> usize {
        let base = OCP_BASE + (self.workers.len() as u32) * OCP_STRIDE;
        self.workers.push(Worker::fixed(
            &mut self.bus,
            base,
            kind,
            self.config.fifo_depth,
        ));
        self.workers.len() - 1
    }

    /// Adds a DPR worker whose slot holds one configuration per
    /// `(kind, bitstream_bytes)` pair; returns its pool index.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or repeats a kind.
    pub fn add_dpr_worker(&mut self, configs: &[(JobKind, u64)]) -> usize {
        let base = OCP_BASE + (self.workers.len() as u32) * OCP_STRIDE;
        self.workers.push(Worker::reconfigurable(
            &mut self.bus,
            base,
            configs,
            self.config.fifo_depth,
        ));
        self.workers.len() - 1
    }

    /// The workers in the pool.
    #[must_use]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// The scheduling policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.bus.now().count()
    }

    /// Jobs waiting in the queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently on workers.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.workers.iter().filter(|w| !w.is_idle()).count()
    }

    /// Completed jobs, in completion order.
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.completed
    }

    /// Drains the completed-job records.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Cycles dispatch was blocked on shared-memory pressure.
    #[must_use]
    pub fn alloc_stalls(&self) -> u64 {
        self.alloc_stalls
    }

    /// Submits a job.
    ///
    /// Jobs carrying custom microcode ([`JobSpec::with_microcode`]) are
    /// run through the `ouessant-verify` static analyzer against the
    /// farm's job memory map before they can take a queue slot:
    /// programs with error-severity diagnostics (out-of-bounds
    /// transfers, unjoined launches, DMA races, …) are bounced with
    /// [`SubmitError::RejectedMicrocode`], so one hostile or buggy
    /// client can never corrupt another job's shared-memory regions or
    /// wedge a worker.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] is the backpressure signal; the other
    /// variants reject malformed or unserviceable jobs at admission
    /// (see [`SubmitError`]).
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if let Some(program) = &spec.microcode {
            // One instruction of headroom: serving the job on a DPR
            // worker prepends an `rcfg` (see `adapt_custom_program`).
            let limit = MAX_PROGRAM_LEN - 1;
            if program.len() > limit {
                self.queue.note_unsafe_rejection();
                return Err(SubmitError::MicrocodeTooLong {
                    len: program.len(),
                    limit,
                });
            }
            let input_words = u32::try_from(spec.input.len()).unwrap_or(u32::MAX);
            let config = VerifyConfig::job_map(
                program.len() as u32 + 1,
                input_words,
                spec.kind.output_words(input_words),
            )
            .with_fifo_depth(u32::try_from(self.config.fifo_depth).unwrap_or(u32::MAX));
            let analysis = verify(program, &config);
            if analysis.has_errors() {
                self.queue.note_unsafe_rejection();
                return Err(SubmitError::RejectedMicrocode {
                    diagnostics: analysis,
                });
            }
        }
        let serviceable = self.workers.iter().any(|w| w.caps().contains(&spec.kind));
        let payload_limit = u32::try_from(self.config.fifo_depth).unwrap_or(u32::MAX);
        let id = JobId(self.next_id);
        let admitted = self
            .queue
            .submit(id, spec, self.now(), payload_limit, serviceable)?;
        self.next_id += 1;
        Ok(admitted)
    }

    /// Advances the pool one clock cycle: dispatch, then every worker,
    /// then the bus, then completion collection.
    pub fn tick(&mut self) {
        self.dispatch();
        for w in &mut self.workers {
            w.tick(&mut self.bus);
        }
        self.bus.tick();
        self.collect_completions();
    }

    /// Ticks until the queue is empty and every worker is idle.
    ///
    /// Returns the number of cycles simulated by this call.
    ///
    /// # Errors
    ///
    /// [`FarmError::Stalled`] after `fuel` cycles with work pending,
    /// [`FarmError::WorkerFault`] if a controller dies.
    pub fn run_until_idle(&mut self, fuel: u64) -> Result<u64, FarmError> {
        let start = self.now();
        while !self.queue.is_empty() || self.in_flight() > 0 {
            if self.now() - start >= fuel {
                return Err(FarmError::Stalled {
                    cycles: self.now() - start,
                    queued: self.queue.len(),
                    in_flight: self.in_flight(),
                });
            }
            self.tick();
            for (i, w) in self.workers.iter().enumerate() {
                if let Some(detail) = w.fault() {
                    return Err(FarmError::WorkerFault { worker: i, detail });
                }
            }
        }
        Ok(self.now() - start)
    }

    /// Builds the aggregate serving report.
    #[must_use]
    pub fn report(&self) -> FarmReport {
        let total_cycles = self.now();
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let stats = self.bus.master_stats(w.ocp.bus_master());
                WorkerReport {
                    name: w.name().to_string(),
                    jobs: w.jobs_served(),
                    swaps: w.swaps(),
                    busy_cycles: w.busy_cycles(),
                    utilization: if total_cycles == 0 {
                        0.0
                    } else {
                        w.busy_cycles() as f64 / total_cycles as f64
                    },
                    bus_grants: stats.grants,
                    bus_beats: stats.beats,
                    contention_cycles: stats.contention_cycles,
                }
            })
            .collect();
        FarmReport::build(
            self.policy.name().to_string(),
            total_cycles,
            &self.completed,
            &self.queue,
            self.alloc.stats(),
            workers,
        )
    }

    /// One scheduling round: asks the policy for assignments until it
    /// passes or shared memory runs out.
    fn dispatch(&mut self) {
        let now = self.now();
        loop {
            let swap_costs: Vec<Vec<u64>> =
                self.workers.iter().map(Worker::swap_costs_view).collect();
            let views: Vec<WorkerView<'_>> = self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| WorkerView {
                    index: i,
                    idle: w.is_idle(),
                    caps: w.caps(),
                    loaded: w.loaded_config(),
                    swap_costs: &swap_costs[i],
                })
                .collect();
            let Some(pick) = self.policy.pick(now, self.queue.pending(), &views) else {
                return;
            };
            let worker = &self.workers[pick.worker_index];
            assert!(
                worker.is_idle(),
                "policy {} assigned a job to busy worker {}",
                self.policy.name(),
                pick.worker_index
            );
            let job_kind = self.queue.pending()[pick.queue_index].kind;
            let target = worker
                .caps()
                .iter()
                .position(|&k| k == job_kind)
                .unwrap_or_else(|| {
                    panic!(
                        "policy {} sent a {job_kind} job to incapable worker {}",
                        self.policy.name(),
                        pick.worker_index
                    )
                });
            let input_words = self.queue.pending()[pick.queue_index].input_words;
            let program = match &self.queue.pending()[pick.queue_index].microcode {
                Some(custom) => adapt_custom_program(custom, target, worker.loaded_config()),
                None => build_program(job_kind, input_words, target, worker.loaded_config()),
            };
            let Some(regions) = self.lease_regions(
                program.len() as u32,
                input_words,
                job_kind.output_words(input_words),
            ) else {
                // Memory pressure: leave the job queued; retry next cycle.
                self.alloc_stalls += 1;
                return;
            };
            let job = self.queue.take(pick.queue_index);
            self.workers[pick.worker_index].launch(
                &mut self.bus,
                now,
                job,
                &program,
                target,
                regions,
            );
        }
    }

    /// Leases the three regions of one job, unwinding on partial
    /// failure.
    fn lease_regions(&mut self, prog: u32, input: u32, output: u32) -> Option<JobRegions> {
        let prog = self.alloc.alloc(prog).ok()?;
        let input = match self.alloc.alloc(input) {
            Ok(r) => r,
            Err(AllocError::OutOfMemory { .. }) => {
                self.alloc.free(prog).expect("just leased");
                return None;
            }
            Err(e) => unreachable!("validated request: {e}"),
        };
        let output = match self.alloc.alloc(output) {
            Ok(r) => r,
            Err(AllocError::OutOfMemory { .. }) => {
                self.alloc.free(prog).expect("just leased");
                self.alloc.free(input).expect("just leased");
                return None;
            }
            Err(e) => unreachable!("validated request: {e}"),
        };
        Some(JobRegions {
            prog,
            input,
            output,
        })
    }

    /// Harvests finished jobs: reads back outputs, frees regions and
    /// appends the records.
    fn collect_completions(&mut self) {
        let now = self.now();
        for wi in 0..self.workers.len() {
            if self.workers[wi].ocp.poll_completion().is_none() {
                continue;
            }
            let done = self.workers[wi]
                .note_completion()
                .expect("completion event implies an active job");
            let mut output = Vec::with_capacity(done.output_words as usize);
            for i in 0..done.output_words {
                output.push(
                    self.bus
                        .debug_read(done.regions.output.base() + i * 4)
                        .expect("output region is mapped SRAM"),
                );
            }
            let contention_now = self
                .bus
                .master_stats(self.workers[wi].ocp.bus_master())
                .contention_cycles;
            for region in [done.regions.prog, done.regions.input, done.regions.output] {
                self.alloc.free(region).expect("regions leased at dispatch");
            }
            self.completed.push(JobRecord {
                id: done.id,
                kind: done.kind,
                worker: wi,
                submitted_at: done.submitted_at,
                started_at: done.started_at,
                completed_at: now,
                swapped: done.swapped,
                contention_cycles: contention_now - done.contention_at_start,
                deadline: done.deadline,
                output,
            });
        }
    }
}
