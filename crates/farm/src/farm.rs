//! The farm: a pool of OCP workers serving a job queue in simulated
//! time.
//!
//! ## Fault tolerance
//!
//! The farm survives worker deaths. When a controller faults mid-job —
//! organically or through an armed [`FaultPlan`] — the farm classifies
//! the fault, frees the dead job's shared-memory leases, counts the
//! fault against the worker's circuit breaker, starts draining the
//! worker's DMA, and parks the job for a bounded-backoff retry on a
//! *different* worker where one exists. Only when the retry budget is
//! exhausted, or no live worker can serve the kind, does a job end as
//! [`JobOutcome::FailedPermanent`] — and it still gets a record, so
//! the books always balance:
//! `admitted = completed + failed + deadline-missed + shed`.
//!
//! Legacy abort-on-fault behaviour survives behind
//! [`FaultConfig::fail_fast`] for tests that want a fault loud.
//!
//! ## Liveness
//!
//! Crashes are loud; hangs are silent. The liveness layer
//! ([`LivenessConfig`]) covers the quiet failure modes:
//!
//! * **watchdogs** — every launched job arms a no-progress watchdog on
//!   its worker ([`JobSpec::cycles_budget`], or
//!   [`LivenessConfig::default_cycles_budget`]); a wedged handshake or
//!   runaway loop surfaces as [`WorkerFaultKind::Hang`] and rides the
//!   same retry/quarantine machinery as a crash;
//! * **deadlines** — with [`LivenessConfig::early_drop`] on, queued
//!   and parked jobs that can no longer meet their deadline are
//!   dropped before they waste a worker, and in-flight jobs past
//!   their deadline are host-aborted ([`JobOutcome::DeadlineMissed`]);
//! * **shedding** — past [`LivenessConfig::shed_watermark`] the queue
//!   refuses below-floor work ([`SubmitError::ShedOverload`]) and a
//!   full queue lets priority work evict the youngest low-class job
//!   ([`JobOutcome::ShedOverload`]).
//!
//! Watchdog expiries and deadline events register as event horizons,
//! so fast-forward leaps stay bit-exact with single-stepping.
//!
//! [`JobOutcome::FailedPermanent`]: crate::job::JobOutcome::FailedPermanent
//! [`JobOutcome::DeadlineMissed`]: crate::job::JobOutcome::DeadlineMissed
//! [`JobOutcome::ShedOverload`]: crate::job::JobOutcome::ShedOverload
//! [`JobSpec::cycles_budget`]: crate::job::JobSpec::cycles_budget

use std::error::Error;
use std::fmt;

use ouessant::ExecError;
use ouessant_isa::operands::MAX_PROGRAM_LEN;
use ouessant_sim::bus::{Bus, BusConfig};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_soc::alloc::{AllocError, BankAllocator};
use ouessant_verify::{verify, VerifyConfig};

use crate::chaos::{ChaosStats, FaultPlan};
use crate::job::{FailReason, JobId, JobKind, JobOutcome, JobRecord, JobSpec};
use crate::policy::{SchedPolicy, WorkerView};
use crate::queue::{PendingJob, SubmitError, SubmitQueue};
use crate::stats::{FarmReport, WorkerReport};
use crate::worker::{
    adapt_custom_program, build_program, JobRegions, Worker, WorkerFaultKind, WorkerHealth,
};

/// Fault-handling policy: retry budget, circuit breaker, quarantine.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Dispatch attempts a job may consume before it fails permanently.
    pub max_attempts: u32,
    /// Base backoff before a bounced job re-enters the queue; attempt
    /// `n` waits `n * retry_backoff` cycles (linear backoff).
    pub retry_backoff: u64,
    /// Width of the faults-in-window circuit breaker, in cycles. Also
    /// the clean-streak length that promotes `Degraded` back to
    /// `Healthy`.
    pub fault_window: u64,
    /// Faults within one window that trip the breaker and quarantine
    /// the worker.
    pub quarantine_threshold: u32,
    /// Cycles a quarantine lasts before the worker is re-admitted on
    /// probation (one more fault re-quarantines instantly). `None`
    /// makes every quarantine permanent.
    pub quarantine_cooldown: Option<u64>,
    /// Restore the pre-fault-tolerance behaviour: the first worker
    /// fault aborts [`Farm::run_until_idle`] with
    /// [`FarmError::WorkerFault`] (the job still fails cleanly and its
    /// leases are still freed — nothing leaks even when failing fast).
    pub fail_fast: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            retry_backoff: 1_000,
            fault_window: 50_000,
            quarantine_threshold: 3,
            quarantine_cooldown: Some(200_000),
            fail_fast: false,
        }
    }
}

/// Liveness policy: hang watchdogs, deadline enforcement, overload
/// shedding. The default disables all three, preserving the legacy
/// behaviour bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct LivenessConfig {
    /// Watchdog budget armed on every launched job that does not carry
    /// its own [`JobSpec::cycles_budget`](crate::job::JobSpec). `None`
    /// leaves such jobs unwatched. The budget must absorb the longest
    /// legitimate progress-free window a job can sit in — a worst-case
    /// DPR bitstream load plus the accelerator's compute latency —
    /// or healthy jobs will be shot.
    pub default_cycles_budget: Option<u64>,
    /// Deadline enforcement: each tick, drop queued/parked jobs that
    /// can no longer meet their deadline (submission deadline minus
    /// the kind's core-latency estimate has passed) and host-abort
    /// in-flight jobs already past it. Off by default — without it,
    /// deadlines are bookkeeping only (late completions are counted,
    /// never interfered with).
    pub early_drop: bool,
    /// Queue depth at which admission starts shedding below-floor
    /// work with [`SubmitError::ShedOverload`]; also enables
    /// full-queue priority eviction. `None` disables shedding (a full
    /// queue bounces everything with `QueueFull`).
    pub shed_watermark: Option<usize>,
    /// Minimum priority still admitted past the watermark.
    pub shed_floor: u8,
}

/// Static farm parameters.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Submission-queue capacity (jobs).
    pub queue_capacity: usize,
    /// Base address of the shared job memory.
    pub shared_base: u32,
    /// Size of the shared job memory, in 32-bit words.
    pub shared_words: u32,
    /// FIFO depth of every worker OCP; also the admission ceiling on
    /// payload length (a job's whole payload is streamed into the RAC
    /// input FIFO before `execs`).
    pub fifo_depth: usize,
    /// Bus timing parameters.
    pub bus: BusConfig,
    /// Wait states of the shared memory.
    pub sram: SramConfig,
    /// Fault-handling policy.
    pub faults: FaultConfig,
    /// Liveness policy (watchdogs, deadlines, shedding).
    pub liveness: LivenessConfig,
    /// Event-horizon fast-forward: [`Farm::run_until_idle`] skips
    /// provably-idle windows in O(1) instead of ticking through them.
    /// Bit-exact with single-stepping (same records, reports, fault
    /// timeline and RNG stream); disable only to cross-check that
    /// claim or to trace every cycle.
    pub fast_forward: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            shared_base: 0x4000_0000,
            shared_words: 64 * 1024,
            fifo_depth: 1024,
            bus: BusConfig::default(),
            sram: SramConfig::default(),
            faults: FaultConfig::default(),
            liveness: LivenessConfig::default(),
            fast_forward: true,
        }
    }
}

/// One worker's health at the moment a farm stalled — the per-worker
/// payload of [`FarmError::Stalled`], so the error itself says whether
/// the pool ran out of fuel or out of workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// The worker's display name.
    pub name: String,
    /// Circuit-breaker health.
    pub health: WorkerHealth,
    /// Whether a job was on the worker.
    pub busy: bool,
    /// Whether the controller FSM was wedged (silent hang with no
    /// watchdog armed — the job will never finish on its own).
    pub wedged: bool,
}

/// A fatal pool condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// `run_until_idle` ran out of fuel with work still pending.
    Stalled {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Jobs still queued or parked for retry.
        queued: usize,
        /// Jobs still on workers.
        in_flight: usize,
        /// Per-worker health at the stall, distinguishing an
        /// out-of-fuel stall (live workers, just not enough cycles)
        /// from a dead pool (every worker quarantined or wedged).
        workers: Vec<WorkerSnapshot>,
        /// The parked job that has waited longest, as `(id, ready_at)`.
        oldest_parked: Option<(JobId, u64)>,
    },
    /// A worker's controller faulted while [`FaultConfig::fail_fast`]
    /// was set (with fault tolerance on — the default — worker faults
    /// are absorbed and never surface as errors).
    WorkerFault {
        /// Pool index of the dead worker.
        worker: usize,
        /// The classified fault.
        fault: WorkerFaultKind,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Stalled {
                cycles,
                queued,
                in_flight,
                workers,
                oldest_parked,
            } => {
                let dead = !workers.is_empty()
                    && workers
                        .iter()
                        .all(|w| w.health == WorkerHealth::Quarantined || w.wedged);
                write!(
                    f,
                    "farm stalled after {cycles} cycles ({queued} queued, {in_flight} in \
                     flight): {}",
                    if dead {
                        "pool dead — every worker quarantined or wedged"
                    } else {
                        "out of fuel with live workers"
                    }
                )?;
                for w in workers {
                    write!(
                        f,
                        "; {} {}{}{}",
                        w.name,
                        w.health,
                        if w.busy { " busy" } else { "" },
                        if w.wedged { " WEDGED" } else { "" }
                    )?;
                }
                if let Some((id, ready_at)) = oldest_parked {
                    write!(
                        f,
                        "; oldest parked job #{} retries at cycle {ready_at}",
                        id.0
                    )?;
                }
                Ok(())
            }
            FarmError::WorkerFault { worker, fault } => {
                write!(f, "worker {worker} faulted: {fault}")
            }
        }
    }
}

impl Error for FarmError {}

/// Where worker register windows are mapped.
const OCP_BASE: u32 = 0x8000_0000;
/// Spacing between worker register windows.
const OCP_STRIDE: u32 = 0x1_0000;

/// A fault-bounced job waiting out its retry backoff.
#[derive(Debug)]
struct ParkedJob {
    job: PendingJob,
    ready_at: u64,
}

/// A multi-OCP serving pool on one shared bus.
///
/// Construction order matters to arbitration: the host master is
/// registered first (highest fixed priority, as a CPU would be), then
/// one DMA master per added worker.
///
/// # Examples
///
/// ```
/// use ouessant_farm::{Farm, FarmConfig, FifoPolicy, JobKind, JobSpec};
///
/// let mut farm = Farm::new(FarmConfig::default(), Box::new(FifoPolicy::new()));
/// farm.add_worker(JobKind::Idct);
/// let id = farm.submit(JobSpec::new(JobKind::Idct, vec![0; 64]))?;
/// farm.run_until_idle(100_000)?;
/// let record = &farm.records()[0];
/// assert_eq!(record.id, id);
/// assert_eq!(record.output, vec![0; 64]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Farm {
    bus: Bus,
    workers: Vec<Worker>,
    queue: SubmitQueue,
    alloc: BankAllocator,
    policy: Box<dyn SchedPolicy>,
    config: FarmConfig,
    completed: Vec<JobRecord>,
    next_id: u64,
    /// Cycles dispatch was blocked on shared-memory pressure.
    alloc_stalls: u64,
    /// Fault-bounced jobs waiting out their retry backoff.
    parked: Vec<ParkedJob>,
    /// Armed chaos campaign, if any.
    chaos: Option<FaultPlan>,
    worker_faults: u64,
    retries: u64,
    quarantines: u64,
    /// Watchdog firings (no-progress budgets exhausted).
    hangs_detected: u64,
    /// Workers yanked back from a hung or overdue job (watchdog and
    /// host-side deadline aborts).
    aborts: u64,
    /// Jobs evicted from a full queue by higher-priority admissions.
    jobs_shed: u64,
    /// Queued/parked/in-flight jobs dropped for hopeless deadlines.
    deadline_drops: u64,
    /// Set by a fault under `fail_fast`; `run_until_idle` converts it
    /// into an `Err` at the end of the tick.
    fault_abort: Option<(usize, WorkerFaultKind)>,
    /// Simulated cycles covered by fast-forward leaps (⊆ total cycles).
    skipped_cycles: u64,
    /// Host wall time spent inside `run_until_idle`.
    wall: std::time::Duration,
    /// Reusable per-worker swap-cost buffers for dispatch.
    swap_scratch: Vec<Vec<u64>>,
    /// Reusable injection buffer for the chaos plan.
    injection_scratch: Vec<crate::chaos::Injection>,
}

impl fmt::Debug for Farm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Farm")
            .field("policy", &self.policy.name())
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .field("parked", &self.parked.len())
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl Farm {
    /// An empty pool (no workers yet) scheduling with `policy`.
    #[must_use]
    pub fn new(config: FarmConfig, policy: Box<dyn SchedPolicy>) -> Self {
        let mut bus = Bus::new(config.bus);
        let _host = bus.register_master("host");
        bus.add_slave(
            config.shared_base,
            Sram::with_words(config.shared_words as usize, config.sram),
        );
        let alloc = BankAllocator::new(config.shared_base, config.shared_words);
        let mut queue = SubmitQueue::new(config.queue_capacity);
        queue.set_overload_policy(config.liveness.shed_watermark, config.liveness.shed_floor);
        Self {
            bus,
            workers: Vec::new(),
            queue,
            alloc,
            policy,
            config,
            completed: Vec::new(),
            next_id: 0,
            alloc_stalls: 0,
            parked: Vec::new(),
            chaos: None,
            worker_faults: 0,
            retries: 0,
            quarantines: 0,
            hangs_detected: 0,
            aborts: 0,
            jobs_shed: 0,
            deadline_drops: 0,
            fault_abort: None,
            skipped_cycles: 0,
            wall: std::time::Duration::ZERO,
            swap_scratch: Vec::new(),
            injection_scratch: Vec::new(),
        }
    }

    /// Adds a fixed-function worker for `kind`; returns its pool index.
    pub fn add_worker(&mut self, kind: JobKind) -> usize {
        let base = OCP_BASE + (self.workers.len() as u32) * OCP_STRIDE;
        self.workers.push(Worker::fixed(
            &mut self.bus,
            base,
            kind,
            self.config.fifo_depth,
        ));
        self.workers.len() - 1
    }

    /// Adds a DPR worker whose slot holds one configuration per
    /// `(kind, bitstream_bytes)` pair; returns its pool index.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or repeats a kind.
    pub fn add_dpr_worker(&mut self, configs: &[(JobKind, u64)]) -> usize {
        let base = OCP_BASE + (self.workers.len() as u32) * OCP_STRIDE;
        self.workers.push(Worker::reconfigurable(
            &mut self.bus,
            base,
            configs,
            self.config.fifo_depth,
        ));
        self.workers.len() - 1
    }

    /// Arms a seeded chaos campaign: from the next tick on, `plan`
    /// rolls its per-seam dice every cycle (see [`FaultPlan`]).
    pub fn arm_chaos(&mut self, plan: FaultPlan) {
        self.chaos = Some(plan);
    }

    /// What the armed chaos campaign has injected so far (`None` when
    /// no campaign is armed).
    #[must_use]
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(FaultPlan::stats)
    }

    /// Forces `error` onto worker `worker`'s controller, exactly as a
    /// chaos campaign would — the deterministic single-shot seam for
    /// tests that need one specific fault at one specific moment.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn inject_worker_fault(&mut self, worker: usize, error: ExecError) {
        self.workers[worker].ocp.inject_fault(error);
    }

    /// Freezes worker `worker`'s controller FSM mid-handshake, exactly
    /// as the chaos wedge seam would — the deterministic single-shot
    /// hang for tests that need one at one specific moment. Only a
    /// watchdog or a deadline abort gets the worker back.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn inject_worker_wedge(&mut self, worker: usize) {
        self.workers[worker].ocp.inject_wedge();
    }

    /// Holds worker `worker`'s RAC busy for `cycles` extra cycles,
    /// exactly as the chaos slow-RAC seam would.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn inject_worker_rac_stall(&mut self, worker: usize, cycles: u64) {
        self.workers[worker].ocp.inject_rac_stall(cycles);
    }

    /// The workers in the pool.
    #[must_use]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// The scheduling policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.bus.now().count()
    }

    /// Jobs waiting in the queue (excluding parked retries).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Fault-bounced jobs waiting out their retry backoff.
    #[must_use]
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Jobs currently on workers.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.workers.iter().filter(|w| !w.is_idle()).count()
    }

    /// Finished jobs (completed *and* permanently failed), in finish
    /// order.
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.completed
    }

    /// Drains the finished-job records.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Cycles dispatch was blocked on shared-memory pressure.
    #[must_use]
    pub fn alloc_stalls(&self) -> u64 {
        self.alloc_stalls
    }

    /// Watchdog firings so far (no-progress budgets exhausted).
    #[must_use]
    pub fn hangs_detected(&self) -> u64 {
        self.hangs_detected
    }

    /// Workers yanked back from a hung or overdue job so far (watchdog
    /// plus host-side deadline aborts).
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Jobs evicted from a full queue by higher-priority admissions so
    /// far.
    #[must_use]
    pub fn jobs_shed(&self) -> u64 {
        self.jobs_shed
    }

    /// Jobs dropped or aborted for hopeless deadlines so far.
    #[must_use]
    pub fn deadline_drops(&self) -> u64 {
        self.deadline_drops
    }

    /// Words of shared job memory currently leased (0 at idle — the
    /// invariant the chaos tests pin).
    #[must_use]
    pub fn leased_words(&self) -> u32 {
        self.alloc.stats().words_in_use
    }

    /// Submits a job.
    ///
    /// Jobs carrying custom microcode ([`JobSpec::with_microcode`]) are
    /// run through the `ouessant-verify` static analyzer against the
    /// farm's job memory map before they can take a queue slot:
    /// programs with error-severity diagnostics (out-of-bounds
    /// transfers, unjoined launches, DMA races, …) are bounced with
    /// [`SubmitError::RejectedMicrocode`], so one hostile or buggy
    /// client can never corrupt another job's shared-memory regions or
    /// wedge a worker.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] is the backpressure signal — or,
    /// with an overload policy configured
    /// ([`LivenessConfig::shed_watermark`]),
    /// [`SubmitError::ShedOverload`] once the queue is past its
    /// watermark and the job is below the priority floor. A
    /// high-priority submission into a *full* queue may instead evict
    /// the youngest lowest-class queued job, which is recorded as
    /// [`JobOutcome::ShedOverload`](crate::job::JobOutcome::ShedOverload).
    /// The other variants reject malformed or unserviceable jobs at
    /// admission (see [`SubmitError`]).
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if let Some(program) = &spec.microcode {
            // One instruction of headroom: serving the job on a DPR
            // worker prepends an `rcfg` (see `adapt_custom_program`).
            let limit = MAX_PROGRAM_LEN - 1;
            if program.len() > limit {
                self.queue.note_unsafe_rejection();
                return Err(SubmitError::MicrocodeTooLong {
                    len: program.len(),
                    limit,
                });
            }
            let input_words = u32::try_from(spec.input.len()).unwrap_or(u32::MAX);
            let config = VerifyConfig::job_map(
                program.len() as u32 + 1,
                input_words,
                spec.kind.output_words(input_words),
            )
            .with_fifo_depth(u32::try_from(self.config.fifo_depth).unwrap_or(u32::MAX));
            let analysis = verify(program, &config);
            if analysis.has_errors() {
                self.queue.note_unsafe_rejection();
                return Err(SubmitError::RejectedMicrocode {
                    diagnostics: analysis,
                });
            }
        }
        // Admission asks for a *live* capable worker: a kind whose only
        // workers died permanently is rejected up front rather than
        // admitted into a queue it can never leave.
        let serviceable = self.kind_serviceable(spec.kind);
        let payload_limit = u32::try_from(self.config.fifo_depth).unwrap_or(u32::MAX);
        let id = JobId(self.next_id);
        let now = self.now();
        let admitted = self
            .queue
            .submit(id, spec, now, payload_limit, serviceable)?;
        self.next_id += 1;
        // A priority admission into a full queue may have evicted a
        // low-class job: record the eviction so the books still
        // balance (`admitted = completed + failed + missed + shed`).
        for job in self.queue.take_shed() {
            self.jobs_shed += 1;
            self.completed.push(JobRecord {
                id: job.id,
                kind: job.kind,
                worker: 0,
                outcome: JobOutcome::ShedOverload,
                submitted_at: job.submitted_at,
                started_at: now,
                completed_at: now,
                swapped: false,
                contention_cycles: 0,
                deadline: job.deadline,
                output: Vec::new(),
            });
        }
        Ok(admitted)
    }

    /// Whether any worker that is not permanently dead can serve
    /// `kind` (quarantined-with-cooldown workers count: they will be
    /// back).
    fn kind_serviceable(&self, kind: JobKind) -> bool {
        self.workers
            .iter()
            .any(|w| !w.is_permanently_dead() && w.caps().contains(&kind))
    }

    /// Whether a live worker *other than* `except` can serve `kind`.
    fn alternative_worker_exists(&self, kind: JobKind, except: usize) -> bool {
        self.workers
            .iter()
            .enumerate()
            .any(|(i, w)| i != except && !w.is_permanently_dead() && w.caps().contains(&kind))
    }

    /// Advances the pool one clock cycle: unpark due retries, sweep
    /// liveness (deadline drops and aborts), dispatch, every worker,
    /// the chaos plan (if armed), the bus, completion collection,
    /// fault handling, health transitions.
    pub fn tick(&mut self) {
        let now = self.now();
        self.unpark_ready(now);
        self.sweep_liveness(now);
        self.dispatch();
        for w in &mut self.workers {
            w.tick(&mut self.bus);
        }
        let work_pending = !self.queue.is_empty()
            || !self.parked.is_empty()
            || self.workers.iter().any(|w| !w.is_idle());
        if let Some(plan) = self.chaos.as_mut() {
            plan.tick(
                now,
                &mut self.workers,
                &mut self.alloc,
                work_pending,
                &mut self.injection_scratch,
            );
        }
        self.bus.tick();
        self.collect_completions();
        self.handle_faults();
        let now = self.now();
        for w in &mut self.workers {
            w.advance_health(&mut self.bus, now, &self.config.faults);
        }
    }

    /// Ticks until the queue and retry park are empty and every worker
    /// is idle (an armed chaos plan must also have released any
    /// shared-memory squat, so the lease ledger is provably empty at
    /// return).
    ///
    /// Returns the number of cycles simulated by this call.
    ///
    /// Worker faults do **not** abort the run: the farm quarantines,
    /// reschedules and keeps serving, and jobs the farm gave up on are
    /// reported through their [`JobRecord`]'s
    /// [`outcome`](JobRecord::outcome) — unless
    /// [`FaultConfig::fail_fast`] restores the legacy abort.
    ///
    /// # Errors
    ///
    /// [`FarmError::Stalled`] after `fuel` cycles with work pending,
    /// [`FarmError::WorkerFault`] on the first fault in fail-fast mode.
    pub fn run_until_idle(&mut self, fuel: u64) -> Result<u64, FarmError> {
        let wall_start = std::time::Instant::now();
        let result = self.run_until_idle_inner(fuel);
        self.wall += wall_start.elapsed();
        result
    }

    fn run_until_idle_inner(&mut self, fuel: u64) -> Result<u64, FarmError> {
        let start = self.now();
        loop {
            let squatting = self.chaos.as_ref().is_some_and(FaultPlan::holding_squat);
            if self.queue.is_empty()
                && self.parked.is_empty()
                && self.in_flight() == 0
                && !squatting
            {
                break;
            }
            if self.now() - start >= fuel {
                // Give the ledger back its squat before reporting, so a
                // stalled farm still leaks nothing.
                if let Some(plan) = self.chaos.as_mut() {
                    plan.release_squat(&mut self.alloc);
                }
                return Err(self.stalled_error(self.now() - start));
            }
            if self.config.fast_forward {
                // A leap of N cycles consumes N fuel, so `Stalled`
                // fires at exactly the cycle single-stepping would
                // reach: leaps are clamped to the fuel remaining.
                self.leap_or_tick(start, fuel);
            } else {
                self.tick();
            }
            if let Some((worker, fault)) = self.fault_abort.take() {
                return Err(FarmError::WorkerFault { worker, fault });
            }
        }
        Ok(self.now() - start)
    }

    /// The earliest future tick (1-based offset from now) at which any
    /// observable farm state can change, or `None` when fully
    /// quiescent. The minimum over:
    ///
    /// * dispatch — pending work plus a dispatchable worker means the
    ///   very next tick may launch a job (or charge an alloc stall);
    /// * every worker's OCP and health-timer horizon (an armed
    ///   watchdog's expiry rides the OCP horizon, so a hang inside a
    ///   skipped window fires at the identical cycle in both modes);
    /// * every parked retry's unpark tick;
    /// * with [`LivenessConfig::early_drop`] on, every queued/parked
    ///   deadline's drop tick and every in-flight deadline's abort
    ///   tick;
    /// * an armed chaos squat's release tick (bounds the leap so
    ///   `run_until_idle` observes the release at the exact cycle
    ///   single-stepping would, and terminates then);
    /// * the shared bus.
    fn idle_horizon(&self) -> Option<u64> {
        if !self.queue.is_empty() && self.workers.iter().any(Worker::is_dispatchable) {
            return Some(1);
        }
        // A bus with a beat in flight pins the min to one cycle, so
        // skip the (much costlier) per-worker scan outright; this is
        // the common case on transfer-saturated campaigns.
        let bus = ouessant_sim::NextEvent::horizon(&self.bus).map(u64::from);
        if bus == Some(1) {
            return Some(1);
        }
        let now = self.now();
        let mut h: Option<u64> = None;
        let mut merge = |e: Option<u64>| {
            if let Some(e) = e {
                let e = e.max(1);
                h = Some(h.map_or(e, |cur| cur.min(e)));
            }
        };
        merge(bus);
        for w in &self.workers {
            merge(w.horizon_at(now, &self.config.faults));
        }
        for p in &self.parked {
            // Unpark happens in the tick whose pre-tick cycle first
            // satisfies `ready_at <= now`.
            merge(Some((p.ready_at + 1).saturating_sub(now)));
        }
        if self.config.liveness.early_drop {
            // Deadline events: a queued/parked drop fires in the tick
            // whose pre-tick cycle first satisfies `now > threshold`
            // (i.e. at `threshold + 1`); an in-flight abort likewise at
            // `deadline + 1`.
            for job in self
                .queue
                .pending()
                .iter()
                .chain(self.parked.iter().map(|p| &p.job))
            {
                if let Some(d) = job.deadline {
                    let threshold = d.saturating_sub(job.kind.core_latency_estimate());
                    merge(Some((threshold + 2).saturating_sub(now)));
                }
            }
            for w in &self.workers {
                if let Some(d) = w.active.as_ref().and_then(|a| a.job.deadline) {
                    merge(Some((d + 2).saturating_sub(now)));
                }
            }
        }
        if let Some(release_at) = self.chaos.as_ref().and_then(FaultPlan::squat_release_at) {
            merge(Some((release_at + 1).saturating_sub(now)));
        }
        h
    }

    /// One fast-forward step: leap over the provably-pure window in
    /// front of `now`, or fall back to a single [`Farm::tick`] when the
    /// window is empty.
    ///
    /// With chaos armed, the plan's dice are replayed cycle-by-cycle
    /// over the window (identical RNG stream to single-stepping); the
    /// leap stops at the first cycle that injects, the injections land
    /// there, and the fault machinery runs exactly as it would have in
    /// that tick.
    fn leap_or_tick(&mut self, start: u64, fuel: u64) {
        let now = self.now();
        let remaining = fuel - (now - start);
        let bound = match self.idle_horizon() {
            Some(h) => (h - 1).min(remaining),
            None => remaining,
        };
        if bound == 0 {
            self.tick();
            return;
        }
        // Frozen for the whole window: queue/park/in-flight membership
        // only changes at events, which the horizon excludes.
        let work_pending = !self.queue.is_empty()
            || !self.parked.is_empty()
            || self.workers.iter().any(|w| !w.is_idle());
        self.injection_scratch.clear();
        let leap = match self.chaos.as_mut() {
            Some(plan) => plan.fast_forward(
                now,
                bound,
                &self.workers,
                &mut self.alloc,
                work_pending,
                &mut self.injection_scratch,
            ),
            None => bound,
        };
        debug_assert!((1..=bound).contains(&leap), "leap within the pure window");
        for w in &mut self.workers {
            w.advance(leap);
        }
        ouessant_sim::NextEvent::advance(&mut self.bus, ouessant_sim::Cycle::new(leap));
        self.skipped_cycles += leap;
        if !self.injection_scratch.is_empty() {
            // The dice hit at the last leaped cycle: land the faults
            // and run the back half of that tick (no completions are
            // possible inside a pure window, so collection is skipped).
            FaultPlan::apply(&mut self.workers, &self.injection_scratch);
            self.handle_faults();
            let now = self.now();
            for w in &mut self.workers {
                w.advance_health(&mut self.bus, now, &self.config.faults);
            }
        }
    }

    /// Simulated cycles covered by fast-forward leaps so far.
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Host wall time spent inside [`Farm::run_until_idle`] so far.
    #[must_use]
    pub fn wall_time(&self) -> std::time::Duration {
        self.wall
    }

    /// Builds the aggregate serving report.
    #[must_use]
    pub fn report(&self) -> FarmReport {
        let total_cycles = self.now();
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let stats = self.bus.master_stats(w.ocp.bus_master());
                WorkerReport {
                    name: w.name().to_string(),
                    jobs: w.jobs_served(),
                    swaps: w.swaps(),
                    busy_cycles: w.busy_cycles(),
                    utilization: if total_cycles == 0 {
                        0.0
                    } else {
                        w.busy_cycles() as f64 / total_cycles as f64
                    },
                    bus_grants: stats.grants,
                    bus_beats: stats.beats,
                    contention_cycles: stats.contention_cycles,
                    health: w.health(),
                    faults: w.faults_total(),
                    quarantines: w.quarantines_total(),
                }
            })
            .collect();
        FarmReport::build(
            self.policy.name().to_string(),
            &self.completed,
            &self.queue,
            self.alloc.stats(),
            workers,
            crate::stats::FaultTally {
                worker_faults: self.worker_faults,
                retries: self.retries,
                quarantines: self.quarantines,
            },
            crate::stats::LivenessTally {
                hangs_detected: self.hangs_detected,
                aborts: self.aborts,
            },
            crate::stats::PerfTally {
                total_cycles,
                skipped_cycles: self.skipped_cycles,
                host_wall: self.wall,
            },
        )
    }

    /// One scheduling round: asks the policy for assignments until it
    /// passes or shared memory runs out.
    fn dispatch(&mut self) {
        // Runs every tick: get out before building any policy view
        // when there is nothing to place or nowhere to place it.
        if self.queue.is_empty() || !self.workers.iter().any(Worker::is_dispatchable) {
            return;
        }
        let now = self.now();
        // The per-worker swap-cost buffers are scratch owned by the
        // farm — dispatch must not allocate fresh Vecs per round.
        let mut swap_costs = std::mem::take(&mut self.swap_scratch);
        swap_costs.resize_with(self.workers.len(), Vec::new);
        loop {
            for (w, buf) in self.workers.iter().zip(swap_costs.iter_mut()) {
                w.fill_swap_costs(buf);
            }
            let views: Vec<WorkerView<'_>> = self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| WorkerView {
                    index: i,
                    // "Idle" to a policy means *can take a job now*:
                    // recovering and quarantined workers are busy.
                    idle: w.is_dispatchable(),
                    caps: w.caps(),
                    loaded: w.loaded_config(),
                    swap_costs: &swap_costs[i],
                })
                .collect();
            let Some(pick) = self.policy.pick(now, self.queue.pending(), &views) else {
                break;
            };
            let worker = &self.workers[pick.worker_index];
            assert!(
                worker.is_dispatchable(),
                "policy {} assigned a job to unavailable worker {}",
                self.policy.name(),
                pick.worker_index
            );
            assert!(
                self.queue.pending()[pick.queue_index].allows_worker(pick.worker_index),
                "policy {} put a retry back on the worker that faulted it",
                self.policy.name()
            );
            let job_kind = self.queue.pending()[pick.queue_index].kind;
            let target = worker
                .caps()
                .iter()
                .position(|&k| k == job_kind)
                .unwrap_or_else(|| {
                    panic!(
                        "policy {} sent a {job_kind} job to incapable worker {}",
                        self.policy.name(),
                        pick.worker_index
                    )
                });
            let input_words = self.queue.pending()[pick.queue_index].input_words;
            let program = match &self.queue.pending()[pick.queue_index].microcode {
                Some(custom) => adapt_custom_program(custom, target, worker.loaded_config()),
                None => build_program(job_kind, input_words, target, worker.loaded_config()),
            };
            let Some(regions) = self.lease_regions(
                program.len() as u32,
                input_words,
                job_kind.output_words(input_words),
            ) else {
                // Memory pressure: leave the job queued; retry next cycle.
                self.alloc_stalls += 1;
                break;
            };
            let mut job = self.queue.take(pick.queue_index);
            // Resolve the effective watchdog budget (per-job override,
            // else the pool default) before the job reaches the worker.
            job.cycles_budget = job
                .cycles_budget
                .or(self.config.liveness.default_cycles_budget);
            self.workers[pick.worker_index].launch(
                &mut self.bus,
                now,
                job,
                &program,
                target,
                regions,
            );
        }
        self.swap_scratch = swap_costs;
    }

    /// Leases the three regions of one job, unwinding on partial
    /// failure.
    fn lease_regions(&mut self, prog: u32, input: u32, output: u32) -> Option<JobRegions> {
        let prog = self.alloc.alloc(prog).ok()?;
        let input = match self.alloc.alloc(input) {
            Ok(r) => r,
            Err(AllocError::OutOfMemory { .. }) => {
                self.alloc.free(prog).expect("just leased");
                return None;
            }
            Err(e) => unreachable!("validated request: {e}"),
        };
        let output = match self.alloc.alloc(output) {
            Ok(r) => r,
            Err(AllocError::OutOfMemory { .. }) => {
                self.alloc.free(prog).expect("just leased");
                self.alloc.free(input).expect("just leased");
                return None;
            }
            Err(e) => unreachable!("validated request: {e}"),
        };
        Some(JobRegions {
            prog,
            input,
            output,
        })
    }

    /// The enriched out-of-fuel error: per-worker health plus the
    /// longest-parked job, so the caller can tell "needed more fuel"
    /// from "the pool is dead".
    fn stalled_error(&self, cycles: u64) -> FarmError {
        FarmError::Stalled {
            cycles,
            queued: self.queue.len() + self.parked.len(),
            in_flight: self.in_flight(),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    name: w.name().to_string(),
                    health: w.health(),
                    busy: !w.is_idle(),
                    wedged: w.is_wedged(),
                })
                .collect(),
            oldest_parked: self
                .parked
                .iter()
                .min_by_key(|p| p.ready_at)
                .map(|p| (p.job.id, p.ready_at)),
        }
    }

    /// Harvests finished jobs: reads back outputs, frees regions and
    /// appends the records.
    fn collect_completions(&mut self) {
        let now = self.now();
        for wi in 0..self.workers.len() {
            if self.workers[wi].ocp.poll_completion().is_none() {
                continue;
            }
            let done = self.workers[wi]
                .note_completion()
                .expect("completion event implies an active job");
            let mut output = Vec::with_capacity(done.output_words as usize);
            for i in 0..done.output_words {
                output.push(
                    self.bus
                        .debug_read(done.regions.output.base() + i * 4)
                        .expect("output region is mapped SRAM"),
                );
            }
            let contention_now = self
                .bus
                .master_stats(self.workers[wi].ocp.bus_master())
                .contention_cycles;
            for region in [done.regions.prog, done.regions.input, done.regions.output] {
                self.alloc.free(region).expect("regions leased at dispatch");
            }
            self.completed.push(JobRecord {
                id: done.job.id,
                kind: done.job.kind,
                worker: wi,
                outcome: JobOutcome::Completed {
                    attempts: done.job.attempts + 1,
                },
                submitted_at: done.job.submitted_at,
                started_at: done.started_at,
                completed_at: now,
                swapped: done.swapped,
                contention_cycles: contention_now - done.contention_at_start,
                deadline: done.job.deadline,
                output,
            });
        }
    }

    /// Absorbs every newly faulted worker: classify, free the dead
    /// job's leases (the pre-fault-tolerance code leaked them on
    /// abort), punish the breaker, start recovery, and park the job
    /// for retry or fail it permanently.
    fn handle_faults(&mut self) {
        let now = self.now();
        for wi in 0..self.workers.len() {
            let Some(kind) = self.workers[wi].fault() else {
                continue;
            };
            if self.workers[wi].fault_acknowledged() {
                // Still draining a fault we already processed.
                continue;
            }
            self.worker_faults += 1;
            if matches!(kind, WorkerFaultKind::Hang { .. }) {
                // The watchdog bit: the abort it forces (drain, reset,
                // breaker, retry) is the crash path below — only the
                // ledger differs.
                self.hangs_detected += 1;
                self.aborts += 1;
            }
            let dead_job = self.workers[wi].take_faulted_job().map(|done| {
                // The leak fix: a dead job's leases go back to the
                // allocator the moment the fault is absorbed, exactly
                // as a completion would return them.
                for region in [done.regions.prog, done.regions.input, done.regions.output] {
                    self.alloc.free(region).expect("regions leased at dispatch");
                }
                done.job
            });

            if self.config.faults.fail_fast {
                self.workers[wi].acknowledge_fault();
                if let Some(mut job) = dead_job {
                    job.attempts += 1;
                    self.fail_job(job, wi, now, FailReason::Fault(kind.clone()));
                }
                // First fault wins; later ones this tick are dropped on
                // the floor of an already-aborting run.
                self.fault_abort.get_or_insert((wi, kind));
                continue;
            }

            let tripped = self.workers[wi].record_fault(now, &self.config.faults);
            self.workers[wi].begin_recovery();
            if tripped {
                self.quarantines += 1;
                if self.workers[wi].is_permanently_dead() {
                    self.reap_hopeless_jobs(now);
                }
            }

            let Some(mut job) = dead_job else {
                // The fault landed between jobs (e.g. injected right at
                // a completion edge): health bookkeeping only.
                continue;
            };
            job.attempts += 1;
            if job.attempts >= self.config.faults.max_attempts {
                self.fail_job(job, wi, now, FailReason::Fault(kind));
            } else if !self.kind_serviceable(job.kind) {
                self.fail_job(job, wi, now, FailReason::NoServiceableWorker);
            } else {
                // Prefer a different worker; if this one is the only
                // survivor, allow it again (better a same-worker retry
                // than a lost job).
                job.avoid_worker = if self.alternative_worker_exists(job.kind, wi) {
                    Some(wi)
                } else {
                    None
                };
                let ready_at = now + self.config.faults.retry_backoff * u64::from(job.attempts);
                self.parked.push(ParkedJob { job, ready_at });
                self.retries += 1;
            }
        }
    }

    /// Moves parked jobs whose backoff expired back into the queue
    /// (re-checking serviceability: the pool may have shrunk while
    /// they waited).
    fn unpark_ready(&mut self, now: u64) {
        let mut i = 0;
        while i < self.parked.len() {
            if self.parked[i].ready_at > now {
                i += 1;
                continue;
            }
            let ParkedJob { mut job, .. } = self.parked.remove(i);
            if !self.kind_serviceable(job.kind) {
                let last_worker = job.avoid_worker.unwrap_or(0);
                self.fail_job(job, last_worker, now, FailReason::NoServiceableWorker);
                continue;
            }
            if let Some(avoid) = job.avoid_worker {
                if !self.alternative_worker_exists(job.kind, avoid) {
                    job.avoid_worker = None;
                }
            }
            self.queue.requeue(job);
        }
    }

    /// Deadline enforcement, run each tick before dispatch when
    /// [`LivenessConfig::early_drop`] is on:
    ///
    /// * queued and parked jobs that can no longer meet their deadline
    ///   (even dispatched right now, by the kind's core-latency
    ///   estimate) are dropped as [`JobOutcome::DeadlineMissed`]
    ///   before they waste a worker;
    /// * in-flight jobs already past their deadline are host-aborted:
    ///   the worker drains its DMA, resets, and goes straight back
    ///   into service — a deadline abort is not a worker fault, so
    ///   the circuit breaker is untouched.
    fn sweep_liveness(&mut self, now: u64) {
        if !self.config.liveness.early_drop {
            return;
        }
        for job in self.queue.reap_expired(|job| deadline_hopeless(job, now)) {
            self.drop_deadline_missed(job, 0, now, now);
        }
        let mut i = 0;
        while i < self.parked.len() {
            if !deadline_hopeless(&self.parked[i].job, now) {
                i += 1;
                continue;
            }
            let ParkedJob { job, .. } = self.parked.remove(i);
            let worker = job.avoid_worker.unwrap_or(0);
            self.drop_deadline_missed(job, worker, now, now);
        }
        for wi in 0..self.workers.len() {
            let overdue = self.workers[wi]
                .active
                .as_ref()
                .and_then(|a| a.job.deadline)
                .is_some_and(|d| now > d);
            if !overdue || self.workers[wi].ocp.fault().is_some() {
                // A faulted worker's job is the fault path's to settle.
                continue;
            }
            let Some(done) = self.workers[wi].abort_active(&mut self.bus) else {
                continue;
            };
            self.aborts += 1;
            for region in [done.regions.prog, done.regions.input, done.regions.output] {
                self.alloc.free(region).expect("regions leased at dispatch");
            }
            let mut job = done.job;
            job.attempts += 1;
            self.drop_deadline_missed(job, wi, done.started_at, now);
        }
    }

    /// Records a deadline miss (empty output — the job was dropped or
    /// aborted, never finished).
    fn drop_deadline_missed(&mut self, job: PendingJob, worker: usize, started_at: u64, now: u64) {
        self.deadline_drops += 1;
        self.completed.push(JobRecord {
            id: job.id,
            kind: job.kind,
            worker,
            outcome: JobOutcome::DeadlineMissed {
                attempts: job.attempts,
            },
            submitted_at: job.submitted_at,
            started_at,
            completed_at: now,
            swapped: false,
            contention_cycles: 0,
            deadline: job.deadline,
            output: Vec::new(),
        });
    }

    /// Fails every queued and parked job whose kind lost its last
    /// live worker — recorded, not stranded.
    fn reap_hopeless_jobs(&mut self, now: u64) {
        let alive: Vec<JobKind> = self
            .workers
            .iter()
            .filter(|w| !w.is_permanently_dead())
            .flat_map(|w| w.caps().iter().copied())
            .collect();
        let dead = self.queue.reap_unserviceable(|kind| alive.contains(&kind));
        for job in dead {
            self.fail_job(job, 0, now, FailReason::NoServiceableWorker);
        }
        let mut i = 0;
        while i < self.parked.len() {
            if alive.contains(&self.parked[i].job.kind) {
                i += 1;
                continue;
            }
            let ParkedJob { job, .. } = self.parked.remove(i);
            let last_worker = job.avoid_worker.unwrap_or(0);
            self.fail_job(job, last_worker, now, FailReason::NoServiceableWorker);
        }
    }

    /// Records a permanent failure (empty output, zero service time —
    /// a faulted worker's output is never trusted).
    fn fail_job(&mut self, job: PendingJob, worker: usize, now: u64, reason: FailReason) {
        self.completed.push(JobRecord {
            id: job.id,
            kind: job.kind,
            worker,
            outcome: JobOutcome::FailedPermanent {
                attempts: job.attempts,
                reason,
            },
            submitted_at: job.submitted_at,
            started_at: now,
            completed_at: now,
            swapped: false,
            contention_cycles: 0,
            deadline: job.deadline,
            output: Vec::new(),
        });
    }
}

/// Whether `job` can no longer meet its deadline even if dispatched
/// this very tick — by the kind's (optimistic, core-latency-only)
/// service estimate. Optimism is deliberate: a hopeful job is given
/// the benefit of the doubt and only dropped once the math is
/// unarguable.
fn deadline_hopeless(job: &PendingJob, now: u64) -> bool {
    job.deadline
        .is_some_and(|d| now > d.saturating_sub(job.kind.core_latency_estimate()))
}
