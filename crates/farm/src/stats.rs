//! Pool statistics: per-job distributions and the aggregate
//! [`FarmReport`].

use std::fmt;

use ouessant_soc::alloc::AllocStats;

use crate::job::{JobOutcome, JobRecord};
use crate::worker::WorkerHealth;

/// Distribution summary of a cycle-count sample set (nearest-rank
/// percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean, rounded down.
    pub mean: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl LatencyStats {
    /// Summarizes `samples` (order irrelevant; empty yields zeros).
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        let rank = |p: u64| -> u64 {
            // Nearest-rank: ceil(p/100 * n), 1-based.
            let n = samples.len() as u64;
            let r = (p * n).div_ceil(100).max(1);
            samples[(r - 1) as usize]
        };
        Self {
            count,
            min: samples[0],
            max: samples[samples.len() - 1],
            mean: (sum / u128::from(count)) as u64,
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:>6}  p50 {:>6}  p95 {:>6}  p99 {:>6}  max {:>6}  mean {:>6}",
            self.min, self.p50, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// One worker's share of the pool report.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Display name (kind and base address).
    pub name: String,
    /// Jobs completed.
    pub jobs: u64,
    /// Bitstream swaps paid.
    pub swaps: u64,
    /// Cycles with a job on the worker.
    pub busy_cycles: u64,
    /// `busy_cycles / total_cycles`.
    pub utilization: f64,
    /// Bus grants won by the worker's DMA master.
    pub bus_grants: u64,
    /// Data beats moved by the worker's DMA master.
    pub bus_beats: u64,
    /// Cycles the worker's DMA master lost arbitration.
    pub contention_cycles: u64,
    /// Health state at report time.
    pub health: WorkerHealth,
    /// Faults this worker suffered (organic or injected).
    pub faults: u64,
    /// Times the circuit breaker quarantined this worker.
    pub quarantines: u64,
}

/// The pool-level serving report.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Scheduling policy that produced this run.
    pub policy: String,
    /// Simulated cycles elapsed.
    pub total_cycles: u64,
    /// Jobs admitted into the queue.
    ///
    /// At idle the books must balance: `jobs_admitted = jobs_completed +
    /// jobs_failed_permanent + jobs_deadline_missed + jobs_shed`
    /// (rejected submissions never consume a queue slot and are
    /// counted separately).
    pub jobs_admitted: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Admitted jobs the farm gave up on (retry budget exhausted or no
    /// serviceable worker left).
    pub jobs_failed_permanent: u64,
    /// Admitted jobs dropped or aborted because their deadline became
    /// unmeetable (`JobOutcome::DeadlineMissed`).
    pub jobs_deadline_missed: u64,
    /// Admitted jobs evicted from a full queue by higher-priority
    /// admissions (`JobOutcome::ShedOverload`).
    pub jobs_shed: u64,
    /// Worker faults absorbed (organic or injected).
    pub worker_faults: u64,
    /// Fault-bounced jobs re-enqueued for another attempt.
    pub retries: u64,
    /// Circuit-breaker trips across the pool.
    pub quarantines: u64,
    /// Watchdog firings (no-progress budgets exhausted on workers).
    pub hangs_detected: u64,
    /// Workers yanked back from a hung or overdue job (watchdog plus
    /// host-side deadline aborts).
    pub aborts: u64,
    /// Submissions bounced with `QueueFull`.
    pub rejected_full: u64,
    /// Submissions refused past the overload watermark
    /// (`SubmitError::ShedOverload`).
    pub rejected_shed: u64,
    /// Submissions bounced at validation.
    pub rejected_invalid: u64,
    /// Submissions whose custom microcode the static analyzer rejected.
    pub rejected_unsafe: u64,
    /// High-water mark of the queue depth.
    pub queue_peak_depth: usize,
    /// Cycles jobs waited in the queue.
    pub queue_wait: LatencyStats,
    /// Dispatch-to-completion cycles (includes swaps).
    pub service: LatencyStats,
    /// End-to-end (submit-to-completion) cycles.
    pub latency: LatencyStats,
    /// Completed jobs per million simulated cycles.
    pub throughput_jobs_per_mcycle: f64,
    /// Total bitstream swaps across the pool.
    pub swaps: u64,
    /// Jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Total bus-contention cycles charged to workers.
    pub contention_cycles: u64,
    /// Completed-job counts per kind (kind name, count), sorted by name.
    pub per_kind: Vec<(String, u64)>,
    /// Shared-memory allocator watermarks.
    pub alloc: AllocStats,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
    /// Simulated cycles covered by event-horizon fast-forward leaps
    /// (0 when the farm single-stepped throughout).
    pub skipped_cycles: u64,
    /// Host wall-clock seconds spent inside `Farm::run_until_idle`.
    pub host_wall_seconds: f64,
    /// Simulated cycles per host wall-clock second (0 when no wall
    /// time was measured).
    pub cycles_per_second: f64,
}

/// Pool-level fault bookkeeping the farm feeds into the report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FaultTally {
    /// Worker faults absorbed (organic or injected).
    pub worker_faults: u64,
    /// Fault-bounced jobs re-enqueued for another attempt.
    pub retries: u64,
    /// Circuit-breaker trips across the pool.
    pub quarantines: u64,
}

/// Pool-level liveness bookkeeping the farm feeds into the report
/// (job-level shed/missed counts come from the records themselves).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LivenessTally {
    /// Watchdog firings.
    pub hangs_detected: u64,
    /// Watchdog plus deadline aborts.
    pub aborts: u64,
}

/// Host-side performance bookkeeping the farm feeds into the report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PerfTally {
    /// Total simulated cycles the farm has run.
    pub total_cycles: u64,
    /// Simulated cycles covered by fast-forward leaps.
    pub skipped_cycles: u64,
    /// Host wall time spent inside `run_until_idle`.
    pub host_wall: std::time::Duration,
}

impl FarmReport {
    /// Builds the aggregate report from completed-job records and the
    /// admission queue's counters.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one arg per tally source, assembled in one place
    pub(crate) fn build(
        policy: String,
        records: &[JobRecord],
        queue: &crate::queue::SubmitQueue,
        alloc: AllocStats,
        workers: Vec<WorkerReport>,
        faults: FaultTally,
        liveness: LivenessTally,
        perf: PerfTally,
    ) -> Self {
        let total_cycles = perf.total_cycles;
        let rejected_full = queue.rejected_full();
        let rejected_invalid = queue.rejected_invalid();
        let rejected_unsafe = queue.rejected_unsafe();
        let queue_peak_depth = queue.peak_depth();
        // Timing distributions and throughput describe *served* work;
        // permanently failed jobs carry no meaningful timings.
        let done: Vec<&JobRecord> = records
            .iter()
            .filter(|r| r.outcome.is_completed())
            .collect();
        let mut failed_permanent = 0u64;
        let mut deadline_missed = 0u64;
        let mut shed = 0u64;
        for r in records {
            match r.outcome {
                JobOutcome::Completed { .. } => {}
                JobOutcome::FailedPermanent { .. } => failed_permanent += 1,
                JobOutcome::DeadlineMissed { .. } => deadline_missed += 1,
                JobOutcome::ShedOverload => shed += 1,
            }
        }
        let queue_wait = LatencyStats::from_samples(done.iter().map(|r| r.queue_wait()).collect());
        let service = LatencyStats::from_samples(done.iter().map(|r| r.service_cycles()).collect());
        let latency = LatencyStats::from_samples(done.iter().map(|r| r.latency()).collect());
        let mut per_kind: Vec<(String, u64)> = Vec::new();
        for r in &done {
            let name = r.kind.to_string();
            match per_kind.iter_mut().find(|(k, _)| *k == name) {
                Some((_, n)) => *n += 1,
                None => per_kind.push((name, 1)),
            }
        }
        per_kind.sort();
        let throughput = if total_cycles == 0 {
            0.0
        } else {
            done.len() as f64 * 1.0e6 / total_cycles as f64
        };
        Self {
            policy,
            total_cycles,
            jobs_admitted: queue.admitted(),
            jobs_completed: done.len() as u64,
            jobs_failed_permanent: failed_permanent,
            jobs_deadline_missed: deadline_missed,
            jobs_shed: shed,
            worker_faults: faults.worker_faults,
            retries: faults.retries,
            quarantines: faults.quarantines,
            hangs_detected: liveness.hangs_detected,
            aborts: liveness.aborts,
            rejected_full,
            rejected_shed: queue.rejected_shed(),
            rejected_invalid,
            rejected_unsafe,
            queue_peak_depth,
            queue_wait,
            service,
            latency,
            throughput_jobs_per_mcycle: throughput,
            swaps: workers.iter().map(|w| w.swaps).sum(),
            deadline_misses: done.iter().filter(|r| !r.met_deadline()).count() as u64,
            contention_cycles: done.iter().map(|r| r.contention_cycles).sum(),
            per_kind,
            alloc,
            workers,
            skipped_cycles: perf.skipped_cycles,
            host_wall_seconds: perf.host_wall.as_secs_f64(),
            cycles_per_second: if perf.host_wall.is_zero() {
                0.0
            } else {
                total_cycles as f64 / perf.host_wall.as_secs_f64()
            },
        }
    }

    /// Fraction of simulated cycles covered by fast-forward leaps
    /// (0.0 when the farm single-stepped throughout).
    #[must_use]
    pub fn skipped_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / self.total_cycles as f64
        }
    }
}

impl fmt::Display for FarmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── farm report ({} policy) ──", self.policy)?;
        writeln!(
            f,
            "jobs: {} admitted, {} completed, {} failed permanently, {} deadline-missed, \
             {} shed, {} rejected (queue-full), {} rejected (overload), {} rejected (invalid), \
             {} rejected (unsafe microcode)",
            self.jobs_admitted,
            self.jobs_completed,
            self.jobs_failed_permanent,
            self.jobs_deadline_missed,
            self.jobs_shed,
            self.rejected_full,
            self.rejected_shed,
            self.rejected_invalid,
            self.rejected_unsafe
        )?;
        if self.worker_faults > 0 || self.retries > 0 || self.quarantines > 0 {
            writeln!(
                f,
                "faults: {} worker faults absorbed, {} retries, {} quarantines",
                self.worker_faults, self.retries, self.quarantines
            )?;
        }
        if self.hangs_detected > 0 || self.aborts > 0 {
            writeln!(
                f,
                "liveness: {} hangs detected, {} aborts",
                self.hangs_detected, self.aborts
            )?;
        }
        write!(f, "kinds:")?;
        for (kind, n) in &self.per_kind {
            write!(f, "  {kind}×{n}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "cycles: {}   throughput: {:.2} jobs/Mcycle   swaps: {}   deadline misses: {}",
            self.total_cycles, self.throughput_jobs_per_mcycle, self.swaps, self.deadline_misses
        )?;
        if self.host_wall_seconds > 0.0 {
            writeln!(
                f,
                "host: {:.3} s wall   {:.2} Mcycle/s   fast-forwarded {} of {} cycles ({:.1}%)",
                self.host_wall_seconds,
                self.cycles_per_second / 1.0e6,
                self.skipped_cycles,
                self.total_cycles,
                self.skipped_fraction() * 100.0
            )?;
        }
        writeln!(f, "queue wait: {}", self.queue_wait)?;
        writeln!(f, "service:    {}", self.service)?;
        writeln!(f, "latency:    {}", self.latency)?;
        writeln!(
            f,
            "queue peak depth: {}   bus contention: {} cycles   mem peak: {} words",
            self.queue_peak_depth, self.contention_cycles, self.alloc.peak_words_in_use
        )?;
        for w in &self.workers {
            writeln!(
                f,
                "  {:<22} jobs {:>5}  swaps {:>3}  util {:>5.1}%  grants {:>7}  beats {:>8}  stalls {:>6}  {} ({} faults)",
                w.name,
                w.jobs,
                w.swaps,
                w.utilization * 100.0,
                w.bus_grants,
                w.bus_beats,
                w.contention_cycles,
                w.health,
                w.faults
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.mean, 50);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencyStats::from_samples(vec![42]);
        assert_eq!((s.min, s.p50, s.p99, s.max, s.mean), (42, 42, 42, 42, 42));
    }
}
