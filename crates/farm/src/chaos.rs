//! Deterministic fault injection for the farm.
//!
//! A [`FaultPlan`] is a seeded chaos campaign: every cycle it rolls a
//! per-seam die for each busy worker and, on a hit, forces a fault
//! through the same interfaces a real integration bug would use. The
//! generator is the repo's own XorShift64, so a campaign is fully
//! reproducible from its [`ChaosConfig`] — a failing CI seed replays
//! bit-exact on a laptop.
//!
//! Four fault seams are armed, matching the failure modes the paper's
//! OCP isolates the host from:
//!
//! * **controller** — the FSM dies mid-job in a compute state
//!   ([`ExecError::Injected`]), standing in for decode faults and logic
//!   upsets;
//! * **bus** — a DMA burst comes back with a slave error
//!   ([`BusError::Fault`]) while the controller is in a transfer state;
//! * **bitstream** — a DPR load is poisoned mid-`rcfg`
//!   ([`ExecError::Reconfig`]), leaving the slot in a dead
//!   configuration until recovery reloads configuration 0;
//! * **allocator** — a rogue tenant squats on the largest free extent
//!   of shared job memory for a while, forcing admission-time
//!   exhaustion ([`AllocError::OutOfMemory`] surfacing as dispatch
//!   stalls).
//!
//! The first three are *worker* faults and exercise the
//! quarantine/retry machinery; the fourth is a *resource* fault and
//! exercises backpressure. Injection only targets workers that are
//! busy and not already faulted — faulting an idle worker would test
//! nothing the job path cares about.
//!
//! Two further seams *stall* instead of crashing, exercising the
//! liveness layer (watchdogs, deadlines) rather than the crash
//! circuit breaker — both disarmed by default so existing seeded
//! campaigns replay unchanged:
//!
//! * **wedge** — the controller FSM freezes mid-handshake
//!   ([`Ocp::inject_wedge`](ouessant::Ocp::inject_wedge)): busy
//!   forever, no fault raised. Only the watchdog gets the worker back;
//! * **slow RAC** — the accelerator freezes for a stretch while
//!   holding `busy`
//!   ([`Ocp::inject_rac_stall`](ouessant::Ocp::inject_rac_stall)),
//!   multiplying compute latency; repeated hits compound. A stall
//!   longer than the watchdog budget becomes a hang; a shorter one
//!   just makes the job late (the deadline path).
//!
//! [`AllocError::OutOfMemory`]: ouessant_soc::alloc::AllocError::OutOfMemory

use ouessant::ExecError;
use ouessant_sim::bus::{BusError, SlaveFault};
use ouessant_sim::rng::XorShift64;
use ouessant_soc::alloc::{BankAllocator, Region};

use crate::worker::Worker;
use ouessant::ControllerState;

/// Fault rates for one chaos campaign.
///
/// Each `*_one_in` field is the per-cycle, per-eligible-worker odds of
/// that seam faulting: `one_in = 5000` arms roughly one fault per 5000
/// eligible cycles; `0` disarms the seam.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed; two campaigns with equal configs replay identically.
    pub seed: u64,
    /// Odds of a mid-job controller fault per busy-worker cycle.
    pub controller_one_in: u32,
    /// Odds of a DMA slave fault per transfer-state cycle.
    pub bus_one_in: u32,
    /// Odds of a poisoned bitstream per `rcfg`-in-flight cycle.
    pub bitstream_one_in: u32,
    /// Odds per cycle (while work is pending) of squatting on shared
    /// job memory.
    pub alloc_one_in: u32,
    /// How long an allocator squat holds its lease, in cycles.
    pub alloc_hold: u64,
    /// Odds of wedging a handshake state (FIFO/DMA/RAC wait) per
    /// busy-worker cycle. Disarmed (0) by default: wedges are silent
    /// hangs and need a watchdog to be survivable.
    pub wedge_one_in: u32,
    /// Odds of freezing the RAC per `RacWait` cycle.
    pub slow_one_in: u32,
    /// Cycles each slow-RAC hit freezes the accelerator for.
    pub slow_stall: u64,
}

impl ChaosConfig {
    /// A campaign with the four crash seams armed at moderate rates
    /// (stall seams disarmed — arm them via the fields or use
    /// [`ChaosConfig::hang`]).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            controller_one_in: 25_000,
            bus_one_in: 18_000,
            bitstream_one_in: 3_000,
            alloc_one_in: 10_000,
            alloc_hold: 3_000,
            wedge_one_in: 0,
            slow_one_in: 0,
            slow_stall: 0,
        }
    }

    /// A liveness campaign: only the stall seams are armed, so every
    /// injected failure is a silent hang or a latency fault — the
    /// watchdog and deadline paths do all the work.
    #[must_use]
    pub fn hang(seed: u64) -> Self {
        Self {
            seed,
            controller_one_in: 0,
            bus_one_in: 0,
            bitstream_one_in: 0,
            alloc_one_in: 0,
            alloc_hold: 0,
            wedge_one_in: 60_000,
            slow_one_in: 15_000,
            slow_stall: 30_000,
        }
    }
}

/// What a campaign actually injected, by seam.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Mid-job controller faults forced.
    pub controller_faults: u64,
    /// DMA slave faults forced.
    pub bus_faults: u64,
    /// Bitstream loads poisoned.
    pub bitstream_faults: u64,
    /// Shared-memory squats taken.
    pub alloc_squats: u64,
    /// Controller FSMs wedged (silent hangs).
    pub wedges: u64,
    /// RAC stalls injected (latency faults).
    pub rac_stalls: u64,
}

impl ChaosStats {
    /// Total *crash* faults injected on workers (squats stress
    /// admission, not workers; wedges and stalls are silent and only
    /// become faults if a watchdog bites).
    #[must_use]
    pub fn worker_faults(&self) -> u64 {
        self.controller_faults + self.bus_faults + self.bitstream_faults
    }
}

/// An allocator squat in progress.
#[derive(Debug)]
struct Squat {
    lease: Region,
    release_at: u64,
}

/// One worker fault the campaign decided to inject.
///
/// Rolling and applying are split so the farm's fast-forward path can
/// replay the campaign's per-cycle dice over a skipped window (keeping
/// the RNG stream bit-identical to single-stepping) and then land the
/// injection at exactly the cycle the dice chose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Injection {
    /// Poison the DPR load in flight on `worker`.
    Bitstream {
        worker: usize,
        slot: u16,
        available: usize,
    },
    /// Fault the DMA burst in flight on `worker`.
    Bus { worker: usize },
    /// Upset `worker`'s controller mid-job.
    Controller { worker: usize },
    /// Freeze `worker`'s controller FSM mid-handshake (silent hang).
    Wedge { worker: usize },
    /// Hold `worker`'s RAC busy for `stall` extra cycles.
    SlowRac { worker: usize, stall: u64 },
}

/// A seeded, armed chaos campaign. Build one from a [`ChaosConfig`]
/// and hand it to [`Farm::arm_chaos`].
///
/// [`Farm::arm_chaos`]: crate::Farm::arm_chaos
#[derive(Debug)]
pub struct FaultPlan {
    rng: XorShift64,
    config: ChaosConfig,
    stats: ChaosStats,
    squat: Option<Squat>,
}

impl FaultPlan {
    /// Arms a campaign.
    #[must_use]
    pub fn new(config: ChaosConfig) -> Self {
        Self {
            rng: XorShift64::new(config.seed),
            config,
            stats: ChaosStats::default(),
            squat: None,
        }
    }

    /// What has been injected so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    fn roll(&mut self, one_in: u32) -> bool {
        one_in > 0 && self.rng.gen_range_u32(0..one_in) == 0
    }

    /// One chaos step at cycle `now`, run by the farm after workers
    /// tick. `work_pending` gates new allocator squats: a squat is only
    /// worth taking while there are jobs it can starve, and never
    /// squatting an idle farm guarantees `run_until_idle` terminates.
    ///
    /// `scratch` is a reusable injection buffer (cleared here).
    pub(crate) fn tick(
        &mut self,
        now: u64,
        workers: &mut [Worker],
        alloc: &mut BankAllocator,
        work_pending: bool,
        scratch: &mut Vec<Injection>,
    ) {
        scratch.clear();
        self.roll_cycle(now, workers, alloc, work_pending, scratch);
        Self::apply(workers, scratch);
    }

    /// Rolls one cycle's dice without touching any worker, pushing the
    /// hits onto `out`. Squat release and take still happen here (they
    /// only touch the allocator), so the squat timeline is exact even
    /// when the farm replays a skipped window through this method.
    ///
    /// The dice are rolled in a fixed order — worker seams by pool
    /// index, then the squat — so the RNG stream is a pure function of
    /// each worker's (constant-per-window) controller-state category.
    pub(crate) fn roll_cycle(
        &mut self,
        now: u64,
        workers: &[Worker],
        alloc: &mut BankAllocator,
        work_pending: bool,
        out: &mut Vec<Injection>,
    ) {
        for (wi, worker) in workers.iter().enumerate() {
            if worker.active.is_none() || worker.ocp.fault().is_some() || worker.ocp.is_wedged() {
                continue;
            }
            let state = worker.ocp.controller().state();
            match state {
                ControllerState::ReconfigWait { .. } => {
                    if self.roll(self.config.bitstream_one_in) {
                        out.push(Injection::Bitstream {
                            worker: wi,
                            slot: worker.loaded_config() as u16,
                            available: worker.caps().len(),
                        });
                        self.stats.bitstream_faults += 1;
                    }
                }
                ControllerState::LoadProgram | ControllerState::TransferBusWait => {
                    if self.roll(self.config.bus_one_in) {
                        out.push(Injection::Bus { worker: wi });
                        self.stats.bus_faults += 1;
                    }
                }
                ControllerState::Idle | ControllerState::Faulted(_) => {}
                _ => {
                    if self.roll(self.config.controller_one_in) {
                        out.push(Injection::Controller { worker: wi });
                        self.stats.controller_faults += 1;
                    }
                }
            }
            // Stall dice roll after the crash dice, in a fixed order, so
            // the RNG stream stays a pure function of the (window-
            // constant) state category. The wedge seam targets handshake
            // states — places a real FSM can deadlock on a peer that
            // never answers.
            if matches!(
                state,
                ControllerState::LoadProgram
                    | ControllerState::TransferFifoWait
                    | ControllerState::TransferBusWait
                    | ControllerState::SyncWait
                    | ControllerState::RacWait
            ) && self.roll(self.config.wedge_one_in)
            {
                out.push(Injection::Wedge { worker: wi });
                self.stats.wedges += 1;
            }
            if matches!(state, ControllerState::RacWait) && self.roll(self.config.slow_one_in) {
                out.push(Injection::SlowRac {
                    worker: wi,
                    stall: self.config.slow_stall,
                });
                self.stats.rac_stalls += 1;
            }
        }

        if let Some(squat) = &self.squat {
            if now >= squat.release_at {
                let squat = self.squat.take().expect("checked above");
                alloc.free(squat.lease).expect("squat lease is live");
            }
        }
        if self.squat.is_none() && work_pending && self.roll(self.config.alloc_one_in) {
            let words = alloc.largest_free();
            if words > 0 {
                let lease = alloc.alloc(words).expect("largest_free is allocatable");
                self.squat = Some(Squat {
                    lease,
                    release_at: now + self.config.alloc_hold,
                });
                self.stats.alloc_squats += 1;
            }
        }
    }

    /// Lands previously rolled injections on their workers.
    pub(crate) fn apply(workers: &mut [Worker], injections: &[Injection]) {
        for inj in injections {
            match *inj {
                Injection::Bitstream {
                    worker,
                    slot,
                    available,
                } => {
                    workers[worker]
                        .ocp
                        .inject_fault(ExecError::Reconfig { slot, available });
                }
                Injection::Bus { worker } => {
                    workers[worker]
                        .ocp
                        .inject_fault(ExecError::Bus(BusError::Fault(SlaveFault {
                            reason: "chaos: slave error response on DMA burst".to_string(),
                        })));
                }
                Injection::Controller { worker } => {
                    workers[worker].ocp.inject_fault(ExecError::Injected {
                        cause: "chaos: controller upset",
                    });
                }
                Injection::Wedge { worker } => {
                    workers[worker].ocp.inject_wedge();
                }
                Injection::SlowRac { worker, stall } => {
                    workers[worker].ocp.inject_rac_stall(stall);
                }
            }
        }
    }

    /// Replays up to `max` cycles of dice starting at cycle `start`,
    /// stopping after the first cycle that injects. Returns the number
    /// of cycles consumed (`1..=max`); hits land on `out`.
    ///
    /// Worker states are read but never written: inside a provably-pure
    /// window every worker's controller-state *category* is constant
    /// (a category change would be an event bounding the window), so
    /// the dice rolled here are exactly the dice single-stepping would
    /// roll.
    pub(crate) fn fast_forward(
        &mut self,
        start: u64,
        max: u64,
        workers: &[Worker],
        alloc: &mut BankAllocator,
        work_pending: bool,
        out: &mut Vec<Injection>,
    ) -> u64 {
        for i in 0..max {
            self.roll_cycle(start + i, workers, alloc, work_pending, out);
            if !out.is_empty() {
                return i + 1;
            }
        }
        max
    }

    /// When the held squat (if any) will release its lease.
    pub(crate) fn squat_release_at(&self) -> Option<u64> {
        self.squat.as_ref().map(|s| s.release_at)
    }

    /// Whether the plan is still holding a shared-memory squat (the
    /// farm keeps ticking until it lets go, so the lease ledger drains
    /// to zero).
    pub(crate) fn holding_squat(&self) -> bool {
        self.squat.is_some()
    }

    /// Releases a held squat early (end of run).
    pub(crate) fn release_squat(&mut self, alloc: &mut BankAllocator) {
        if let Some(squat) = self.squat.take() {
            alloc.free(squat.lease).expect("squat lease is live");
        }
    }
}
