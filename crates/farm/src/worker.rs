//! Pool workers: one OCP each, fixed-function or DPR-reconfigurable.
//!
//! A worker wraps an [`Ocp`] together with its *capability table* — the
//! job kinds it can serve. For a fixed-function worker that table has
//! one entry; for a reconfigurable worker entry `i` is DPR
//! configuration `i` of its [`ReconfigurableSlot`], and serving a
//! non-loaded kind prepends an `rcfg` to the job's microcode so the
//! bitstream swap is charged inside the job's own service time.
//!
//! That placement is the swap-safety argument: `rcfg` only ever
//! executes at the *head* of a program on a worker the dispatcher just
//! observed idle, so a swap can never touch a configuration with a job
//! in flight.
//!
//! ## Fault containment
//!
//! A worker's controller can die mid-job — a bus slave error on a DMA
//! burst, a poisoned bitstream during an `rcfg`, a decode fault in
//! hostile microcode, or an injected chaos fault. The paper's OCP is
//! built so that such a death never takes the host down; this module
//! carries that isolation into the pool with a per-worker health state
//! machine:
//!
//! ```text
//!   Healthy ──fault──► Degraded ──breaker trips──► Quarantined
//!      ▲                   │  ▲                        │
//!      └──window clean─────┘  └──cooldown (probation)──┘
//! ```
//!
//! Every fault is classified into a structured [`WorkerFaultKind`] and
//! counted against a faults-in-window circuit breaker; tripping it
//! quarantines the worker (permanently, unless a cooldown is
//! configured). Recovery drains the dead job's DMA, resets the
//! controller FSM, the RAC and both FIFOs — so no word of the dead job
//! can ever leak into the next one — and, for a DPR worker, leaves the
//! slot back in configuration 0 (a bitstream load after a fault is
//! never trusted).

use std::collections::VecDeque;
use std::fmt;

use ouessant::{ExecError, Ocp, OcpConfig};
use ouessant_isa::{Instruction, ProgAddr, Program, ProgramBuilder};
use ouessant_rac::dft::DftRac;
use ouessant_rac::idct::IdctRac;
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::rac::Rac;
use ouessant_rac::slot::{ReconfigurableSlot, ICAP_BYTES_PER_CYCLE};
use ouessant_sim::bus::{Bus, BusError};
use ouessant_soc::alloc::Region;

use crate::farm::FaultConfig;
use crate::job::JobKind;
use crate::queue::PendingJob;

/// The microcode bank map every farm job uses.
pub(crate) const PROG_BANK: u8 = 0;
pub(crate) const INPUT_BANK: u8 = 1;
pub(crate) const OUTPUT_BANK: u8 = 2;
/// DMA burst length for payload transfers.
const CHUNK: u16 = 64;

/// A worker fault, classified by the seam it came through.
///
/// Replaces the old stringly-typed `Worker::fault() -> Option<String>`:
/// the farm's retry/quarantine machinery and the [`JobOutcome`] records
/// need to *match* on the fault, not parse it.
///
/// [`JobOutcome`]: crate::job::JobOutcome
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// The controller FSM stopped on a microcode or integration fault
    /// (bad decode, pc overrun, bank translation, injected chaos).
    Controller(ExecError),
    /// The system bus faulted one of the worker's DMA bursts.
    Bus(BusError),
    /// A DPR bitstream load died mid-`rcfg`, leaving the slot in a dead
    /// configuration (recovery reloads configuration 0).
    PoisonedBitstream {
        /// The configuration slot whose load failed.
        slot: u16,
    },
    /// The worker's watchdog bit: the job made no observable progress
    /// for a whole cycle budget (wedged handshake, stalled RAC, or a
    /// runaway data-dependent loop) and was aborted.
    Hang {
        /// The exhausted no-progress budget, in cycles.
        budget: u64,
    },
}

impl WorkerFaultKind {
    /// Classifies a controller error by the seam it came through.
    pub(crate) fn classify(error: &ExecError) -> Self {
        match error {
            ExecError::Bus(e) => WorkerFaultKind::Bus(e.clone()),
            ExecError::Reconfig { slot, .. } => WorkerFaultKind::PoisonedBitstream { slot: *slot },
            ExecError::Hang { budget } => WorkerFaultKind::Hang { budget: *budget },
            other => WorkerFaultKind::Controller(other.clone()),
        }
    }
}

impl fmt::Display for WorkerFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFaultKind::Controller(e) => write!(f, "controller fault: {e}"),
            WorkerFaultKind::Bus(e) => write!(f, "bus fault on DMA burst: {e}"),
            WorkerFaultKind::PoisonedBitstream { slot } => {
                write!(f, "poisoned bitstream for configuration {slot}")
            }
            WorkerFaultKind::Hang { budget } => {
                write!(
                    f,
                    "hang: watchdog bit after {budget} cycles without progress"
                )
            }
        }
    }
}

impl std::error::Error for WorkerFaultKind {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkerFaultKind::Controller(e) => Some(e),
            WorkerFaultKind::Bus(e) => Some(e),
            _ => None,
        }
    }
}

/// A worker's health, as seen by the scheduler and the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerHealth {
    /// No faults inside the circuit-breaker window.
    Healthy,
    /// Faulted recently (or fresh out of quarantine, on probation) but
    /// still schedulable.
    Degraded,
    /// The circuit breaker is open: not schedulable until the cooldown
    /// expires — forever, if no cooldown is configured.
    Quarantined,
}

impl fmt::Display for WorkerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerHealth::Healthy => f.write_str("healthy"),
            WorkerHealth::Degraded => f.write_str("degraded"),
            WorkerHealth::Quarantined => f.write_str("quarantined"),
        }
    }
}

/// The shared-memory regions leased to one in-flight job.
///
/// Non-`Copy`, like [`Region`] itself: the farm moves the lease into
/// the [`ActiveJob`] and back out at completion, so a stale duplicate
/// can never reach the allocator.
#[derive(Debug)]
pub(crate) struct JobRegions {
    pub prog: Region,
    pub input: Region,
    pub output: Region,
}

/// Builds one job's microcode: optional `rcfg`, input transfer,
/// execute, output transfer, `eop`.
pub(crate) fn build_program(
    kind: JobKind,
    input_words: u32,
    target_config: usize,
    loaded_config: usize,
) -> Program {
    let mut b = ProgramBuilder::new();
    if target_config != loaded_config {
        b = b.rcfg(u16::try_from(target_config).expect("config index fits rcfg operand"));
    }
    b = b
        .transfer_to_coprocessor(INPUT_BANK, 0, input_words, CHUNK, 0)
        .expect("admission bounds payload to the offset field");
    b = match kind {
        // Block kernels size themselves; streaming copies are told the
        // word count through the exec op field.
        JobKind::Idct | JobKind::Dft { .. } => b.execs(),
        JobKind::Copy { .. } => {
            b.execs_op(u16::try_from(input_words).expect("admission bounds payload to u16"))
        }
    };
    b = b
        .transfer_from_coprocessor(OUTPUT_BANK, 0, kind.output_words(input_words), CHUNK, 0)
        .expect("admission bounds payload to the offset field");
    b.eop()
        .finish()
        .expect("farm programs are structurally valid")
}

/// Adapts verified client microcode to the worker it will run on:
/// serving it on a configuration other than the loaded one prepends an
/// `rcfg`, which shifts every instruction index by one, so `djnz`
/// branch targets are rebased to match.
///
/// Admission guarantees the headroom: custom programs are capped one
/// instruction below [`MAX_PROGRAM_LEN`], so both the prepend and the
/// `target + 1` rebase stay in range.
///
/// [`MAX_PROGRAM_LEN`]: ouessant_isa::operands::MAX_PROGRAM_LEN
pub(crate) fn adapt_custom_program(
    program: &Program,
    target_config: usize,
    loaded_config: usize,
) -> Program {
    if target_config == loaded_config {
        return program.clone();
    }
    let mut insns = Vec::with_capacity(program.len() + 1);
    insns.push(Instruction::Rcfg {
        slot: u16::try_from(target_config).expect("config index fits rcfg operand"),
    });
    for insn in program.iter() {
        insns.push(match *insn {
            Instruction::Djnz { counter, target } => Instruction::Djnz {
                counter,
                target: ProgAddr::new(target.value() + 1)
                    .expect("admission reserves headroom for the rcfg prepend"),
            },
            other => other,
        });
    }
    Program::new(insns).expect("one instruction of headroom was reserved at admission")
}

/// The RAC instance serving one capability.
fn rac_for(kind: JobKind) -> Box<dyn Rac> {
    match kind {
        JobKind::Idct => Box::new(IdctRac::new()),
        JobKind::Dft { points } => Box::new(DftRac::new(points)),
        JobKind::Copy { scale } => Box::new(PassthroughRac::scaling(scale, 0)),
    }
}

/// Bookkeeping for the job currently on a worker.
///
/// The whole [`PendingJob`] rides along (not just its identity): a
/// fault mid-run hands it back to the farm for re-enqueue, so the
/// input payload and custom microcode must survive the attempt.
#[derive(Debug)]
pub(crate) struct ActiveJob {
    pub job: PendingJob,
    pub started_at: u64,
    pub swapped: bool,
    pub regions: JobRegions,
    pub output_words: u32,
    pub contention_at_start: u64,
}

/// One pool member: an OCP plus its capability table and health state.
#[derive(Debug)]
pub struct Worker {
    name: String,
    pub(crate) ocp: Ocp,
    caps: Vec<JobKind>,
    /// Full bitstream-load cost per capability (0 for fixed-function).
    swap_cycles: Vec<u64>,
    /// Host-side mirror of the loaded configuration index. Accurate
    /// because this worker is the only issuer of `rcfg` on its slot.
    loaded: usize,
    reconfigurable: bool,
    pub(crate) active: Option<ActiveJob>,
    jobs_served: u64,
    swaps: u64,
    busy_cycles: u64,
    // ── health / fault containment ──
    health: WorkerHealth,
    /// Cycle stamps of faults inside the circuit-breaker window.
    recent_faults: VecDeque<u64>,
    /// When the current quarantine lifts, if ever.
    quarantine_until: Option<u64>,
    /// Fresh out of quarantine: one more fault re-opens the breaker
    /// immediately.
    probation: bool,
    /// When the worker last entered `Degraded` (fault or probation);
    /// a clean window from here restores `Healthy`.
    degraded_since: u64,
    /// Worker is draining its DMA/RAC after a fault and cannot serve.
    recovering: bool,
    /// The current fault has been harvested by the farm (guards
    /// double-processing while the controller is still `Faulted`).
    fault_acknowledged: bool,
    faults_total: u64,
    quarantines_total: u64,
}

impl Worker {
    fn base_state(
        name: String,
        ocp: Ocp,
        caps: Vec<JobKind>,
        swap_cycles: Vec<u64>,
        reconfigurable: bool,
    ) -> Self {
        Self {
            name,
            ocp,
            caps,
            swap_cycles,
            loaded: 0,
            reconfigurable,
            active: None,
            jobs_served: 0,
            swaps: 0,
            busy_cycles: 0,
            health: WorkerHealth::Healthy,
            recent_faults: VecDeque::new(),
            quarantine_until: None,
            probation: false,
            degraded_since: 0,
            recovering: false,
            fault_acknowledged: false,
            faults_total: 0,
            quarantines_total: 0,
        }
    }

    /// Attaches a fixed-function worker for `kind` at `base`.
    pub(crate) fn fixed(bus: &mut Bus, base: u32, kind: JobKind, fifo_depth: usize) -> Self {
        let ocp = Ocp::attach(bus, base, rac_for(kind), OcpConfig { fifo_depth });
        ocp.regs().set_irq_enabled(true);
        Self::base_state(
            format!("{kind}@{base:#010x}"),
            ocp,
            vec![kind],
            vec![0],
            false,
        )
    }

    /// Attaches a DPR worker at `base` whose slot holds one
    /// configuration per `(kind, bitstream_bytes)` pair; configuration
    /// 0 is loaded initially.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or repeats a kind (the capability
    /// table must be unambiguous).
    pub(crate) fn reconfigurable(
        bus: &mut Bus,
        base: u32,
        configs: &[(JobKind, u64)],
        fifo_depth: usize,
    ) -> Self {
        assert!(
            !configs.is_empty(),
            "a DPR worker needs at least one configuration"
        );
        let mut slot = ReconfigurableSlot::new();
        let mut caps = Vec::with_capacity(configs.len());
        let mut swap_cycles = Vec::with_capacity(configs.len());
        for &(kind, bytes) in configs {
            assert!(
                !caps.contains(&kind),
                "duplicate DPR configuration for {kind}"
            );
            slot = slot.with_config(rac_for(kind), bytes);
            caps.push(kind);
            swap_cycles.push(bytes / ICAP_BYTES_PER_CYCLE);
        }
        let ocp = Ocp::attach(bus, base, Box::new(slot), OcpConfig { fifo_depth });
        ocp.regs().set_irq_enabled(true);
        Self::base_state(format!("dpr@{base:#010x}"), ocp, caps, swap_cycles, true)
    }

    /// The worker's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kinds this worker can serve (index = DPR configuration).
    #[must_use]
    pub fn caps(&self) -> &[JobKind] {
        &self.caps
    }

    /// Whether the worker carries a reconfigurable slot.
    #[must_use]
    pub fn is_reconfigurable(&self) -> bool {
        self.reconfigurable
    }

    /// Whether the worker has no job on it this cycle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.active.is_none()
    }

    /// Whether the dispatcher may place a job on this worker: idle,
    /// not draining a fault, and not quarantined.
    #[must_use]
    pub fn is_dispatchable(&self) -> bool {
        self.active.is_none() && !self.recovering && self.health != WorkerHealth::Quarantined
    }

    /// The worker's current health state.
    #[must_use]
    pub fn health(&self) -> WorkerHealth {
        self.health
    }

    /// Total faults this worker has suffered.
    #[must_use]
    pub fn faults_total(&self) -> u64 {
        self.faults_total
    }

    /// Times the circuit breaker has quarantined this worker.
    #[must_use]
    pub fn quarantines_total(&self) -> u64 {
        self.quarantines_total
    }

    /// Quarantined with no cooldown: this worker will never serve
    /// again.
    #[must_use]
    pub fn is_permanently_dead(&self) -> bool {
        self.health == WorkerHealth::Quarantined && self.quarantine_until.is_none()
    }

    /// Whether the farm already harvested the current fault.
    #[must_use]
    pub(crate) fn fault_acknowledged(&self) -> bool {
        self.fault_acknowledged
    }

    /// Jobs completed on this worker.
    #[must_use]
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Bitstream swaps this worker has paid for.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Cycles this worker spent with a job on it.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The current `rcfg` cost to capability `i` (0 when loaded).
    #[must_use]
    pub(crate) fn swap_cost_now(&self, i: usize) -> u64 {
        if i == self.loaded {
            0
        } else {
            self.swap_cycles[i]
        }
    }

    /// Fills `out` with the per-capability swap costs for the policy
    /// view (a reusable scratch buffer — dispatch runs every cycle and
    /// must not allocate per tick).
    pub(crate) fn fill_swap_costs(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..self.caps.len()).map(|i| self.swap_cost_now(i)));
    }

    /// The loaded capability index.
    #[must_use]
    pub fn loaded_config(&self) -> usize {
        self.loaded
    }

    /// Places `job` on this (dispatchable) worker: writes microcode and
    /// payload into the leased regions, programs the bank registers and
    /// pulls the start bit. The job's first cycle is the *next* `tick`.
    ///
    /// `program` is the microcode the farm built with [`build_program`]
    /// for this worker's current `loaded_config` (the farm sizes the
    /// program region from it, so it is built exactly once).
    pub(crate) fn launch(
        &mut self,
        bus: &mut Bus,
        now: u64,
        job: PendingJob,
        program: &Program,
        target: usize,
        regions: JobRegions,
    ) {
        debug_assert!(self.is_dispatchable(), "launch on an unavailable worker");
        debug_assert_eq!(self.caps[target], job.kind, "dispatcher matched capability");
        let swapped = target != self.loaded;
        if swapped {
            self.loaded = target;
            self.swaps += 1;
        }

        // Host setup: microcode and payload land in shared memory via
        // untimed debug writes — the timed cost of the host's own bus
        // traffic is the OS/driver model's concern (ouessant-soc), not
        // the pool's.
        for (i, w) in program.to_words().iter().enumerate() {
            bus.debug_write(regions.prog.base() + (i as u32) * 4, *w)
                .expect("program region is mapped SRAM");
        }
        for (i, w) in job.input.iter().enumerate() {
            bus.debug_write(regions.input.base() + (i as u32) * 4, *w)
                .expect("input region is mapped SRAM");
        }
        let regs = self.ocp.regs();
        regs.set_bank(PROG_BANK, regions.prog.base())
            .expect("allocator regions are word-aligned");
        regs.set_bank(INPUT_BANK, regions.input.base())
            .expect("allocator regions are word-aligned");
        regs.set_bank(OUTPUT_BANK, regions.output.base())
            .expect("allocator regions are word-aligned");
        regs.set_prog_size(program.len() as u32)
            .expect("program length is validated");
        regs.start();

        // Arm (or disarm) the hang watchdog for this job. The farm has
        // already folded the pool default into `job.cycles_budget`; the
        // budget must absorb a worst-case DPR bitstream load — `rcfg`
        // is a legitimate progress-free window the watchdog cannot see
        // inside.
        match job.cycles_budget {
            Some(budget) => self.ocp.arm_watchdog(budget),
            None => self.ocp.disarm_watchdog(),
        }

        let output_words = job.kind.output_words(job.input_words);
        self.active = Some(ActiveJob {
            started_at: now,
            swapped,
            regions,
            output_words,
            contention_at_start: bus.master_stats(self.ocp.bus_master()).contention_cycles,
            job,
        });
    }

    /// Advances the worker one cycle.
    pub(crate) fn tick(&mut self, bus: &mut Bus) {
        self.ocp.tick(bus);
        if self.active.is_some() {
            self.busy_cycles += 1;
        }
    }

    /// Bulk-applies `cycles` provably-idle ticks in O(1). Only sound
    /// inside a window bounded by [`Worker::horizon_at`]; leaves the
    /// worker bit-identical to `cycles` calls of [`Worker::tick`].
    pub(crate) fn advance(&mut self, cycles: u64) {
        ouessant_sim::NextEvent::advance(&mut self.ocp, ouessant_sim::Cycle::new(cycles));
        if self.active.is_some() {
            self.busy_cycles += cycles;
        }
    }

    /// The earliest future tick (1-based offset from cycle `now`) at
    /// which this worker's observable state can change, or `None` if it
    /// is quiescent. Combines the OCP's own horizon with the worker's
    /// health timers, which single-stepping advances in
    /// [`Worker::advance_health`]:
    ///
    /// * a recovering worker retries [`Ocp::try_recover`] every tick,
    ///   so it always single-steps;
    /// * a timed quarantine lifts when the post-tick cycle reaches
    ///   `quarantine_until`;
    /// * a degraded worker heals when the post-tick cycle reaches
    ///   `degraded_since + fault_window`.
    pub(crate) fn horizon_at(&self, now: u64, cfg: &FaultConfig) -> Option<u64> {
        if self.recovering {
            return Some(1);
        }
        let mut h = ouessant_sim::NextEvent::horizon(&self.ocp).map(u64::from);
        let mut merge = |event_in: u64| {
            let e = event_in.max(1);
            h = Some(h.map_or(e, |cur| cur.min(e)));
        };
        match self.health {
            WorkerHealth::Quarantined => {
                if let Some(until) = self.quarantine_until {
                    merge(until.saturating_sub(now));
                }
            }
            WorkerHealth::Degraded => {
                merge((self.degraded_since + cfg.fault_window).saturating_sub(now));
            }
            WorkerHealth::Healthy => {}
        }
        h
    }

    /// Completion accounting hook for the farm's poll loop.
    pub(crate) fn note_completion(&mut self) -> Option<ActiveJob> {
        let done = self.active.take()?;
        self.jobs_served += 1;
        Some(done)
    }

    /// The controller fault that killed this worker, if any, classified
    /// by seam. The structured [`ExecError`] behind it is available via
    /// [`Ocp::fault`] on [`Worker::ocp`] inside the crate.
    #[must_use]
    pub fn fault(&self) -> Option<WorkerFaultKind> {
        self.ocp.fault().map(WorkerFaultKind::classify)
    }

    /// Takes the job that was on the worker when it faulted (the farm
    /// frees its leases and decides retry vs. permanent failure).
    /// Unlike [`Worker::note_completion`], does not count a served job.
    pub(crate) fn take_faulted_job(&mut self) -> Option<ActiveJob> {
        self.active.take()
    }

    /// Whether the controller FSM is wedged (frozen by the silent-hang
    /// chaos seam) — surfaced in stall diagnostics.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.ocp.is_wedged()
    }

    /// Host-side cancel of the in-flight job (deadline enforcement):
    /// takes the job off the worker and drives [`Ocp::abort`]. Not a
    /// *worker* fault — the circuit breaker is untouched; a healthy
    /// worker aborted for a late job goes straight back into service.
    ///
    /// If the abort cannot finish immediately (a DMA burst is still in
    /// flight) the worker drains it through the normal recovery path
    /// and is unschedulable until [`Worker::advance_health`] completes
    /// it.
    pub(crate) fn abort_active(&mut self, bus: &mut Bus) -> Option<ActiveJob> {
        let done = self.active.take()?;
        if self.ocp.abort(bus) {
            // Clean immediate abort: the RAC slot was reset to
            // configuration 0, mirror it.
            self.loaded = 0;
        } else {
            self.begin_recovery();
        }
        Some(done)
    }

    /// Counts one fault against the circuit breaker at cycle `now`.
    ///
    /// Returns `true` when this fault trips the breaker (the worker
    /// just entered quarantine). A fault during probation re-opens the
    /// breaker immediately.
    pub(crate) fn record_fault(&mut self, now: u64, cfg: &FaultConfig) -> bool {
        self.faults_total += 1;
        let window_start = now.saturating_sub(cfg.fault_window);
        while self
            .recent_faults
            .front()
            .is_some_and(|&at| at < window_start)
        {
            self.recent_faults.pop_front();
        }
        self.recent_faults.push_back(now);
        let tripped = self.probation || self.recent_faults.len() as u32 >= cfg.quarantine_threshold;
        if tripped {
            self.health = WorkerHealth::Quarantined;
            self.quarantine_until = cfg.quarantine_cooldown.map(|c| now + c);
            self.probation = false;
            self.recent_faults.clear();
            self.quarantines_total += 1;
        } else {
            self.health = WorkerHealth::Degraded;
            self.degraded_since = now;
        }
        tripped
    }

    /// Starts draining the fault: the worker is unschedulable until
    /// [`Ocp::try_recover`] succeeds (DMA burst retired, FSM, RAC and
    /// FIFOs reset).
    pub(crate) fn begin_recovery(&mut self) {
        self.recovering = true;
        self.fault_acknowledged = true;
    }

    /// Marks the fault harvested without recovering (fail-fast mode:
    /// the controller is left in its faulted state for postmortem).
    pub(crate) fn acknowledge_fault(&mut self) {
        self.fault_acknowledged = true;
    }

    /// One health-state step at cycle `now`: finish a pending recovery,
    /// lift an expired quarantine into probation, and restore `Healthy`
    /// after a clean window.
    pub(crate) fn advance_health(&mut self, bus: &mut Bus, now: u64, cfg: &FaultConfig) {
        if self.recovering && self.ocp.try_recover(bus) {
            self.recovering = false;
            self.fault_acknowledged = false;
            // Recovery resets the RAC slot; a DPR worker is back in
            // configuration 0 and the host mirror must follow.
            self.loaded = 0;
        }
        if self.health == WorkerHealth::Quarantined
            && !self.recovering
            && self.quarantine_until.is_some_and(|until| now >= until)
        {
            self.health = WorkerHealth::Degraded;
            self.quarantine_until = None;
            self.probation = true;
            self.degraded_since = now;
        }
        if self.health == WorkerHealth::Degraded
            && now.saturating_sub(self.degraded_since) >= cfg.fault_window
        {
            self.health = WorkerHealth::Healthy;
            self.probation = false;
            self.recent_faults.clear();
        }
    }
}
