//! Pool workers: one OCP each, fixed-function or DPR-reconfigurable.
//!
//! A worker wraps an [`Ocp`] together with its *capability table* — the
//! job kinds it can serve. For a fixed-function worker that table has
//! one entry; for a reconfigurable worker entry `i` is DPR
//! configuration `i` of its [`ReconfigurableSlot`], and serving a
//! non-loaded kind prepends an `rcfg` to the job's microcode so the
//! bitstream swap is charged inside the job's own service time.
//!
//! That placement is the swap-safety argument: `rcfg` only ever
//! executes at the *head* of a program on a worker the dispatcher just
//! observed idle, so a swap can never touch a configuration with a job
//! in flight.

use ouessant::{Ocp, OcpConfig};
use ouessant_isa::{Instruction, ProgAddr, Program, ProgramBuilder};
use ouessant_rac::dft::DftRac;
use ouessant_rac::idct::IdctRac;
use ouessant_rac::passthrough::PassthroughRac;
use ouessant_rac::rac::Rac;
use ouessant_rac::slot::{ReconfigurableSlot, ICAP_BYTES_PER_CYCLE};
use ouessant_sim::bus::Bus;
use ouessant_soc::alloc::Region;

use crate::job::{JobId, JobKind};
use crate::queue::PendingJob;

/// The microcode bank map every farm job uses.
pub(crate) const PROG_BANK: u8 = 0;
pub(crate) const INPUT_BANK: u8 = 1;
pub(crate) const OUTPUT_BANK: u8 = 2;
/// DMA burst length for payload transfers.
const CHUNK: u16 = 64;

/// The shared-memory regions leased to one in-flight job.
///
/// Non-`Copy`, like [`Region`] itself: the farm moves the lease into
/// the [`ActiveJob`] and back out at completion, so a stale duplicate
/// can never reach the allocator.
#[derive(Debug)]
pub(crate) struct JobRegions {
    pub prog: Region,
    pub input: Region,
    pub output: Region,
}

/// Builds one job's microcode: optional `rcfg`, input transfer,
/// execute, output transfer, `eop`.
pub(crate) fn build_program(
    kind: JobKind,
    input_words: u32,
    target_config: usize,
    loaded_config: usize,
) -> Program {
    let mut b = ProgramBuilder::new();
    if target_config != loaded_config {
        b = b.rcfg(u16::try_from(target_config).expect("config index fits rcfg operand"));
    }
    b = b
        .transfer_to_coprocessor(INPUT_BANK, 0, input_words, CHUNK, 0)
        .expect("admission bounds payload to the offset field");
    b = match kind {
        // Block kernels size themselves; streaming copies are told the
        // word count through the exec op field.
        JobKind::Idct | JobKind::Dft { .. } => b.execs(),
        JobKind::Copy { .. } => {
            b.execs_op(u16::try_from(input_words).expect("admission bounds payload to u16"))
        }
    };
    b = b
        .transfer_from_coprocessor(OUTPUT_BANK, 0, kind.output_words(input_words), CHUNK, 0)
        .expect("admission bounds payload to the offset field");
    b.eop()
        .finish()
        .expect("farm programs are structurally valid")
}

/// Adapts verified client microcode to the worker it will run on:
/// serving it on a configuration other than the loaded one prepends an
/// `rcfg`, which shifts every instruction index by one, so `djnz`
/// branch targets are rebased to match.
///
/// Admission guarantees the headroom: custom programs are capped one
/// instruction below [`MAX_PROGRAM_LEN`], so both the prepend and the
/// `target + 1` rebase stay in range.
///
/// [`MAX_PROGRAM_LEN`]: ouessant_isa::operands::MAX_PROGRAM_LEN
pub(crate) fn adapt_custom_program(
    program: &Program,
    target_config: usize,
    loaded_config: usize,
) -> Program {
    if target_config == loaded_config {
        return program.clone();
    }
    let mut insns = Vec::with_capacity(program.len() + 1);
    insns.push(Instruction::Rcfg {
        slot: u16::try_from(target_config).expect("config index fits rcfg operand"),
    });
    for insn in program.iter() {
        insns.push(match *insn {
            Instruction::Djnz { counter, target } => Instruction::Djnz {
                counter,
                target: ProgAddr::new(target.value() + 1)
                    .expect("admission reserves headroom for the rcfg prepend"),
            },
            other => other,
        });
    }
    Program::new(insns).expect("one instruction of headroom was reserved at admission")
}

/// The RAC instance serving one capability.
fn rac_for(kind: JobKind) -> Box<dyn Rac> {
    match kind {
        JobKind::Idct => Box::new(IdctRac::new()),
        JobKind::Dft { points } => Box::new(DftRac::new(points)),
        JobKind::Copy { scale } => Box::new(PassthroughRac::scaling(scale, 0)),
    }
}

/// Bookkeeping for the job currently on a worker.
#[derive(Debug)]
pub(crate) struct ActiveJob {
    pub id: JobId,
    pub kind: JobKind,
    pub submitted_at: u64,
    pub started_at: u64,
    pub deadline: Option<u64>,
    pub swapped: bool,
    pub regions: JobRegions,
    pub output_words: u32,
    pub contention_at_start: u64,
}

/// One pool member: an OCP plus its capability table.
#[derive(Debug)]
pub struct Worker {
    name: String,
    pub(crate) ocp: Ocp,
    caps: Vec<JobKind>,
    /// Full bitstream-load cost per capability (0 for fixed-function).
    swap_cycles: Vec<u64>,
    /// Host-side mirror of the loaded configuration index. Accurate
    /// because this worker is the only issuer of `rcfg` on its slot.
    loaded: usize,
    reconfigurable: bool,
    pub(crate) active: Option<ActiveJob>,
    jobs_served: u64,
    swaps: u64,
    busy_cycles: u64,
}

impl Worker {
    /// Attaches a fixed-function worker for `kind` at `base`.
    pub(crate) fn fixed(bus: &mut Bus, base: u32, kind: JobKind, fifo_depth: usize) -> Self {
        let ocp = Ocp::attach(bus, base, rac_for(kind), OcpConfig { fifo_depth });
        ocp.regs().set_irq_enabled(true);
        Self {
            name: format!("{kind}@{base:#010x}"),
            ocp,
            caps: vec![kind],
            swap_cycles: vec![0],
            loaded: 0,
            reconfigurable: false,
            active: None,
            jobs_served: 0,
            swaps: 0,
            busy_cycles: 0,
        }
    }

    /// Attaches a DPR worker at `base` whose slot holds one
    /// configuration per `(kind, bitstream_bytes)` pair; configuration
    /// 0 is loaded initially.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or repeats a kind (the capability
    /// table must be unambiguous).
    pub(crate) fn reconfigurable(
        bus: &mut Bus,
        base: u32,
        configs: &[(JobKind, u64)],
        fifo_depth: usize,
    ) -> Self {
        assert!(
            !configs.is_empty(),
            "a DPR worker needs at least one configuration"
        );
        let mut slot = ReconfigurableSlot::new();
        let mut caps = Vec::with_capacity(configs.len());
        let mut swap_cycles = Vec::with_capacity(configs.len());
        for &(kind, bytes) in configs {
            assert!(
                !caps.contains(&kind),
                "duplicate DPR configuration for {kind}"
            );
            slot = slot.with_config(rac_for(kind), bytes);
            caps.push(kind);
            swap_cycles.push(bytes / ICAP_BYTES_PER_CYCLE);
        }
        let ocp = Ocp::attach(bus, base, Box::new(slot), OcpConfig { fifo_depth });
        ocp.regs().set_irq_enabled(true);
        Self {
            name: format!("dpr@{base:#010x}"),
            ocp,
            caps,
            swap_cycles,
            loaded: 0,
            reconfigurable: true,
            active: None,
            jobs_served: 0,
            swaps: 0,
            busy_cycles: 0,
        }
    }

    /// The worker's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kinds this worker can serve (index = DPR configuration).
    #[must_use]
    pub fn caps(&self) -> &[JobKind] {
        &self.caps
    }

    /// Whether the worker carries a reconfigurable slot.
    #[must_use]
    pub fn is_reconfigurable(&self) -> bool {
        self.reconfigurable
    }

    /// Whether the worker can accept a job this cycle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.active.is_none()
    }

    /// Jobs completed on this worker.
    #[must_use]
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Bitstream swaps this worker has paid for.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Cycles this worker spent with a job on it.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The current `rcfg` cost to capability `i` (0 when loaded).
    #[must_use]
    pub(crate) fn swap_cost_now(&self, i: usize) -> u64 {
        if i == self.loaded {
            0
        } else {
            self.swap_cycles[i]
        }
    }

    /// Snapshot of the per-capability swap costs for the policy view.
    #[must_use]
    pub(crate) fn swap_costs_view(&self) -> Vec<u64> {
        (0..self.caps.len())
            .map(|i| self.swap_cost_now(i))
            .collect()
    }

    /// The loaded capability index.
    #[must_use]
    pub fn loaded_config(&self) -> usize {
        self.loaded
    }

    /// Places `job` on this (idle) worker: writes microcode and payload
    /// into the leased regions, programs the bank registers and pulls
    /// the start bit. The job's first cycle is the *next* `tick`.
    ///
    /// `program` is the microcode the farm built with [`build_program`]
    /// for this worker's current `loaded_config` (the farm sizes the
    /// program region from it, so it is built exactly once).
    pub(crate) fn launch(
        &mut self,
        bus: &mut Bus,
        now: u64,
        job: PendingJob,
        program: &Program,
        target: usize,
        regions: JobRegions,
    ) {
        debug_assert!(self.active.is_none(), "launch on a busy worker");
        debug_assert_eq!(self.caps[target], job.kind, "dispatcher matched capability");
        let swapped = target != self.loaded;
        if swapped {
            self.loaded = target;
            self.swaps += 1;
        }

        // Host setup: microcode and payload land in shared memory via
        // untimed debug writes — the timed cost of the host's own bus
        // traffic is the OS/driver model's concern (ouessant-soc), not
        // the pool's.
        for (i, w) in program.to_words().iter().enumerate() {
            bus.debug_write(regions.prog.base() + (i as u32) * 4, *w)
                .expect("program region is mapped SRAM");
        }
        for (i, w) in job.input.iter().enumerate() {
            bus.debug_write(regions.input.base() + (i as u32) * 4, *w)
                .expect("input region is mapped SRAM");
        }
        let regs = self.ocp.regs();
        regs.set_bank(PROG_BANK, regions.prog.base())
            .expect("allocator regions are word-aligned");
        regs.set_bank(INPUT_BANK, regions.input.base())
            .expect("allocator regions are word-aligned");
        regs.set_bank(OUTPUT_BANK, regions.output.base())
            .expect("allocator regions are word-aligned");
        regs.set_prog_size(program.len() as u32)
            .expect("program length is validated");
        regs.start();

        self.active = Some(ActiveJob {
            id: job.id,
            kind: job.kind,
            submitted_at: job.submitted_at,
            started_at: now,
            deadline: job.deadline,
            swapped,
            regions,
            output_words: job.kind.output_words(job.input_words),
            contention_at_start: bus.master_stats(self.ocp.bus_master()).contention_cycles,
        });
    }

    /// Advances the worker one cycle.
    pub(crate) fn tick(&mut self, bus: &mut Bus) {
        self.ocp.tick(bus);
        if self.active.is_some() {
            self.busy_cycles += 1;
        }
    }

    /// Completion accounting hook for the farm's poll loop.
    pub(crate) fn note_completion(&mut self) -> Option<ActiveJob> {
        let done = self.active.take()?;
        self.jobs_served += 1;
        Some(done)
    }

    /// The controller fault, if the worker has died.
    #[must_use]
    pub fn fault(&self) -> Option<String> {
        self.ocp.fault().map(|e| e.to_string())
    }
}
