//! # ouessant-farm: a multi-OCP accelerator-pool serving layer
//!
//! The paper integrates *one* Ouessant coprocessor next to a CPU and
//! measures single-offload speedups. Production serving is a different
//! shape: a stream of heterogeneous requests, a *pool* of coprocessors
//! sharing one bus, and a scheduler deciding placement — including
//! whether to pay a DPR bitstream swap (§VI) or batch same-kind work to
//! amortize it. This crate is that layer, built entirely on the
//! repository's cycle-level simulation:
//!
//! * [`job`] — the unit of work: a [`JobKind`] (IDCT block, DFT, or
//!   streaming copy), the input payload, priority and deadline; every
//!   completed job yields a [`JobRecord`] with its output and timing
//!   breakdown;
//! * [`queue`] — the bounded admission queue: malformed payloads are
//!   bounced at submission, custom microcode
//!   ([`JobSpec::with_microcode`]) is run through the
//!   `ouessant-verify` static analyzer and rejected with its
//!   diagnostics on any error ([`SubmitError::RejectedMicrocode`]),
//!   and a full queue answers [`SubmitError::QueueFull`]
//!   (backpressure);
//! * [`policy`] — pluggable scheduling via [`SchedPolicy`]:
//!   [`FifoPolicy`], [`RoundRobinPolicy`], and [`DprAffinityPolicy`]
//!   (batch jobs onto workers whose loaded configuration matches,
//!   swapping only when no same-kind work remains);
//! * [`worker`] — one OCP per [`Worker`], fixed-function or carrying a
//!   `ReconfigurableSlot`; swaps run as `rcfg` at the head of a job's
//!   own microcode, so they can never disturb an in-flight job;
//! * [`farm`] — the [`Farm`] itself: shared SRAM with a per-job
//!   [`BankAllocator`](ouessant_soc::alloc::BankAllocator) lease,
//!   dispatch, cycle-accurate execution on the shared AHB-like bus, and
//!   completion harvesting via the OCP's poll/IRQ interface;
//! * [`stats`] — the [`FarmReport`]: queue-wait / service / end-to-end
//!   latency distributions (p50/p95/p99), throughput in jobs per
//!   megacycle, per-worker utilization, bus-contention stalls, swap
//!   counts, and the fault ledger (faults absorbed, retries,
//!   quarantines, permanent failures, per-worker health);
//! * [`chaos`] — a seeded, deterministic fault-injection campaign
//!   ([`FaultPlan`]): mid-job controller upsets, DMA slave faults,
//!   poisoned DPR bitstreams and shared-memory squatters, all driven
//!   by the repo's XorShift64 so every failure replays bit-exact.
//!
//! ## Fault tolerance
//!
//! A worker dying mid-job does not kill the run. The farm classifies
//! the fault into a [`WorkerFaultKind`], frees the dead job's memory
//! leases, retries the job on a different worker under a bounded
//! attempt budget with linear backoff, and tracks per-worker health
//! (`Healthy → Degraded → Quarantined`) behind a faults-in-window
//! circuit breaker with optional cooldown probation — see
//! [`FaultConfig`]. Every admitted job ends in a [`JobRecord`] whose
//! [`JobOutcome`] is `Completed { attempts }`,
//! `FailedPermanent { reason }`, `DeadlineMissed { attempts }` or
//! `ShedOverload`, so `admitted = completed + failed_permanent +
//! deadline_missed + shed` always reconciles.
//!
//! ## Liveness
//!
//! Crashes are loud; hangs are silent. [`LivenessConfig`] arms the
//! quiet-failure defenses: per-job no-progress *watchdogs*
//! ([`JobSpec::cycles_budget`] or a pool default) that abort a wedged
//! worker and route the job through the same retry machinery as a
//! crash ([`WorkerFaultKind::Hang`]); *deadline enforcement* that
//! drops hopeless queued work and host-aborts overdue in-flight work;
//! and graceful *overload shedding* past a queue watermark
//! ([`SubmitError::ShedOverload`]), with priority classes ordering
//! the queue and full-queue priority eviction. Two chaos seams —
//! wedged handshakes and slowed RACs — stall instead of crashing to
//! exercise exactly these paths. Watchdog expiries and deadlines
//! register as event horizons, so fast-forward stays bit-exact.
//!
//! [`JobSpec::cycles_budget`]: crate::job::JobSpec::cycles_budget
//!
//! ## Example
//!
//! Serve a mixed IDCT + DFT load on a three-worker pool:
//!
//! ```
//! use ouessant_farm::{DprAffinityPolicy, Farm, FarmConfig, JobKind, JobSpec};
//!
//! let mut farm = Farm::new(FarmConfig::default(), Box::new(DprAffinityPolicy::new()));
//! farm.add_worker(JobKind::Idct);
//! farm.add_worker(JobKind::Dft { points: 64 });
//! farm.add_dpr_worker(&[(JobKind::Idct, 40_000), (JobKind::Dft { points: 64 }, 60_000)]);
//!
//! for i in 0..20u32 {
//!     let kind = if i % 2 == 0 { JobKind::Idct } else { JobKind::Dft { points: 64 } };
//!     let words = kind.required_input_words().unwrap();
//!     farm.submit(JobSpec::new(kind, (0..words).map(|w| w * i).collect()))?;
//! }
//! farm.run_until_idle(10_000_000)?;
//!
//! let report = farm.report();
//! assert_eq!(report.jobs_completed, 20);
//! for job in farm.records() {
//!     assert!(job.met_deadline());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod farm;
pub mod job;
pub mod policy;
pub mod queue;
pub mod stats;
pub mod worker;

pub use chaos::{ChaosConfig, ChaosStats, FaultPlan};
pub use farm::{Farm, FarmConfig, FarmError, FaultConfig, LivenessConfig, WorkerSnapshot};
pub use job::{FailReason, JobId, JobKind, JobOutcome, JobRecord, JobSpec};
pub use policy::{
    Assignment, DprAffinityPolicy, FifoPolicy, RoundRobinPolicy, SchedPolicy, WorkerView,
};
pub use queue::{PendingJob, SubmitError, SubmitQueue};
pub use stats::{FarmReport, LatencyStats, WorkerReport};
pub use worker::{Worker, WorkerFaultKind, WorkerHealth};

// The admission error carries the analyzer's verdict; re-export the
// diagnostic types so clients can consume it without a direct
// `ouessant-verify` dependency.
pub use ouessant_verify::{Analysis, DiagKind, Diagnostic, Severity};
