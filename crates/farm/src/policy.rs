//! Pluggable scheduling policies.
//!
//! A policy sees the pending queue (submission order) and a snapshot of
//! every worker, and names one `(job, worker)` pairing at a time; the
//! farm calls [`SchedPolicy::pick`] repeatedly each cycle until the
//! policy passes. Three policies ship with the crate:
//!
//! * [`FifoPolicy`] — serve in arrival order on the first capable idle
//!   worker;
//! * [`RoundRobinPolicy`] — rotate across workers to spread load;
//! * [`DprAffinityPolicy`] — batch jobs onto workers whose loaded DPR
//!   configuration already matches, amortizing bitstream-swap cost,
//!   with a patience bound so no kind starves.
//!
//! All policies honor [`PendingJob::allows_worker`]: a retried job is
//! never placed back on the worker whose fault bounced it (unless that
//! worker is the only one left, in which case the farm clears the
//! constraint before requeueing).

use std::collections::VecDeque;

use crate::job::JobKind;
use crate::queue::PendingJob;

/// A scheduler's snapshot of one worker.
#[derive(Debug, Clone, Copy)]
pub struct WorkerView<'a> {
    /// The worker's pool index.
    pub index: usize,
    /// Whether the worker can accept a job this cycle.
    pub idle: bool,
    /// The kinds this worker can serve; index `i` is DPR configuration
    /// `i` (a fixed-function worker has exactly one entry).
    pub caps: &'a [JobKind],
    /// The capability index currently loaded in the fabric.
    pub loaded: usize,
    /// Cycles an `rcfg` to capability `i` costs right now (0 or 1 when
    /// `i` is already loaded, the full bitstream load otherwise).
    pub swap_costs: &'a [u64],
}

impl WorkerView<'_> {
    /// The capability index serving `kind`, if any.
    #[must_use]
    pub fn supports(&self, kind: JobKind) -> Option<usize> {
        self.caps.iter().position(|&c| c == kind)
    }

    /// The swap cost this worker would pay to serve `kind` (`None` if
    /// it cannot).
    #[must_use]
    pub fn swap_cost_for(&self, kind: JobKind) -> Option<u64> {
        let idx = self.supports(kind)?;
        Some(if idx == self.loaded {
            0
        } else {
            self.swap_costs[idx]
        })
    }

    /// The kind the loaded configuration serves.
    #[must_use]
    pub fn loaded_kind(&self) -> JobKind {
        self.caps[self.loaded]
    }
}

/// One scheduling decision: run queue entry `queue_index` on worker
/// `worker_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index into the pending queue shown to the policy.
    pub queue_index: usize,
    /// Index into the worker pool.
    pub worker_index: usize,
}

/// A scheduling policy.
///
/// Implementations must be deterministic: the farm is a cycle-level
/// simulation and every run must replay identically.
pub trait SchedPolicy {
    /// The policy's display name (reports, traces).
    fn name(&self) -> &str;

    /// Names one dispatch, or `None` to pass this cycle.
    ///
    /// Called repeatedly within a cycle: after each accepted
    /// assignment the farm re-invokes `pick` with the dispatched job
    /// removed and the chosen worker busy, so policies never see stale
    /// state.
    fn pick(
        &mut self,
        now: u64,
        queue: &VecDeque<PendingJob>,
        workers: &[WorkerView<'_>],
    ) -> Option<Assignment>;
}

/// Serve in strict arrival order: the oldest job that has *some* idle
/// capable worker runs first (a job whose kind has no idle worker is
/// skipped, so heterogeneous pools don't head-of-line block).
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl FifoPolicy {
    /// A FIFO policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl SchedPolicy for FifoPolicy {
    fn name(&self) -> &str {
        "fifo"
    }

    fn pick(
        &mut self,
        _now: u64,
        queue: &VecDeque<PendingJob>,
        workers: &[WorkerView<'_>],
    ) -> Option<Assignment> {
        for (qi, job) in queue.iter().enumerate() {
            if let Some(w) = workers
                .iter()
                .find(|w| w.idle && job.allows_worker(w.index) && w.supports(job.kind).is_some())
            {
                return Some(Assignment {
                    queue_index: qi,
                    worker_index: w.index,
                });
            }
        }
        None
    }
}

/// Rotate across workers: each idle worker in turn takes the oldest job
/// it can serve. Spreads a homogeneous load evenly over the pool.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// A round-robin policy starting at worker 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedPolicy for RoundRobinPolicy {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn pick(
        &mut self,
        _now: u64,
        queue: &VecDeque<PendingJob>,
        workers: &[WorkerView<'_>],
    ) -> Option<Assignment> {
        if workers.is_empty() {
            return None;
        }
        for off in 0..workers.len() {
            let w = &workers[(self.cursor + off) % workers.len()];
            if !w.idle {
                continue;
            }
            if let Some(qi) = queue
                .iter()
                .position(|job| job.allows_worker(w.index) && w.supports(job.kind).is_some())
            {
                self.cursor = (w.index + 1) % workers.len();
                return Some(Assignment {
                    queue_index: qi,
                    worker_index: w.index,
                });
            }
        }
        None
    }
}

/// DPR-aware batching: a worker preferentially serves jobs matching the
/// configuration already loaded in its fabric, swapping only when no
/// same-kind work remains — so a run of same-kind jobs pays one
/// bitstream load instead of one per job.
///
/// Starvation guard: a job older than `patience` cycles is served at
/// the next opportunity even if that forces a swap, so a continuous
/// stream of one kind cannot starve the others indefinitely.
#[derive(Debug)]
pub struct DprAffinityPolicy {
    patience: u64,
}

impl DprAffinityPolicy {
    /// Affinity scheduling with the default patience (8192 cycles —
    /// a few bitstream loads at the paper's ICAP rate).
    #[must_use]
    pub fn new() -> Self {
        Self { patience: 8192 }
    }

    /// Affinity scheduling that force-serves any job older than
    /// `patience` cycles.
    #[must_use]
    pub fn with_patience(patience: u64) -> Self {
        Self { patience }
    }
}

impl Default for DprAffinityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for DprAffinityPolicy {
    fn name(&self) -> &str {
        "dpr-affinity"
    }

    fn pick(
        &mut self,
        now: u64,
        queue: &VecDeque<PendingJob>,
        workers: &[WorkerView<'_>],
    ) -> Option<Assignment> {
        // 1. Starvation guard: the oldest over-patience job runs now,
        //    on the cheapest idle worker that can take it.
        for (qi, job) in queue.iter().enumerate() {
            if now.saturating_sub(job.submitted_at) <= self.patience {
                continue;
            }
            let best = workers
                .iter()
                .filter(|w| w.idle && job.allows_worker(w.index))
                .filter_map(|w| w.swap_cost_for(job.kind).map(|c| (c, w.index)))
                .min();
            if let Some((_, wi)) = best {
                return Some(Assignment {
                    queue_index: qi,
                    worker_index: wi,
                });
            }
        }
        // 2. Affinity: an idle worker takes the oldest job matching its
        //    loaded configuration (zero swap).
        for w in workers.iter().filter(|w| w.idle) {
            if let Some(qi) = queue
                .iter()
                .position(|job| job.allows_worker(w.index) && job.kind == w.loaded_kind())
            {
                return Some(Assignment {
                    queue_index: qi,
                    worker_index: w.index,
                });
            }
        }
        // 3. No affine work anywhere: swap for the oldest runnable job,
        //    paying the cheapest load available.
        for (qi, job) in queue.iter().enumerate() {
            let best = workers
                .iter()
                .filter(|w| w.idle && job.allows_worker(w.index))
                .filter_map(|w| w.swap_cost_for(job.kind).map(|c| (c, w.index)))
                .min();
            if let Some((_, wi)) = best {
                return Some(Assignment {
                    queue_index: qi,
                    worker_index: wi,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn job(id: u64, kind: JobKind, submitted_at: u64) -> PendingJob {
        PendingJob {
            id: JobId(id),
            kind,
            input_words: 1,
            submitted_at,
            priority: 0,
            deadline: None,
            cycles_budget: None,
            attempts: 0,
            avoid_worker: None,
            input: vec![0],
            microcode: None,
        }
    }

    const IDCT: JobKind = JobKind::Idct;
    const DFT: JobKind = JobKind::Dft { points: 64 };

    #[test]
    fn fifo_respects_arrival_order_and_capability() {
        let queue: VecDeque<PendingJob> = vec![job(0, DFT, 0), job(1, IDCT, 1)].into();
        let idct_caps = [IDCT];
        let costs = [0u64];
        // Only an IDCT worker is idle: the DFT head is skipped.
        let workers = [WorkerView {
            index: 0,
            idle: true,
            caps: &idct_caps,
            loaded: 0,
            swap_costs: &costs,
        }];
        let pick = FifoPolicy::new().pick(2, &queue, &workers).unwrap();
        assert_eq!(pick.queue_index, 1);
        assert_eq!(pick.worker_index, 0);
    }

    #[test]
    fn round_robin_rotates_workers() {
        let queue: VecDeque<PendingJob> = vec![job(0, IDCT, 0), job(1, IDCT, 0)].into();
        let caps = [IDCT];
        let costs = [0u64];
        let workers: Vec<WorkerView<'_>> = (0..2)
            .map(|i| WorkerView {
                index: i,
                idle: true,
                caps: &caps,
                loaded: 0,
                swap_costs: &costs,
            })
            .collect();
        let mut rr = RoundRobinPolicy::new();
        let first = rr.pick(0, &queue, &workers).unwrap();
        let second = rr.pick(0, &queue, &workers).unwrap();
        assert_eq!(first.worker_index, 0);
        assert_eq!(second.worker_index, 1, "cursor advanced");
    }

    #[test]
    fn affinity_prefers_loaded_kind_over_older_job() {
        let queue: VecDeque<PendingJob> = vec![job(0, DFT, 0), job(1, IDCT, 5)].into();
        let caps = [IDCT, DFT];
        let costs = [10_000u64, 10_000];
        let workers = [WorkerView {
            index: 0,
            idle: true,
            caps: &caps,
            loaded: 0, // IDCT loaded
            swap_costs: &costs,
        }];
        let pick = DprAffinityPolicy::new().pick(10, &queue, &workers).unwrap();
        assert_eq!(pick.queue_index, 1, "newer IDCT batched before older DFT");
    }

    #[test]
    fn affinity_swaps_when_no_affine_work_left() {
        let queue: VecDeque<PendingJob> = vec![job(0, DFT, 0)].into();
        let caps = [IDCT, DFT];
        let costs = [10_000u64, 10_000];
        let workers = [WorkerView {
            index: 0,
            idle: true,
            caps: &caps,
            loaded: 0,
            swap_costs: &costs,
        }];
        let pick = DprAffinityPolicy::new().pick(10, &queue, &workers).unwrap();
        assert_eq!(pick.queue_index, 0);
    }

    #[test]
    fn policies_honor_avoid_worker() {
        let mut bounced = job(0, IDCT, 0);
        bounced.avoid_worker = Some(0);
        let queue: VecDeque<PendingJob> = vec![bounced].into();
        let caps = [IDCT];
        let costs = [0u64];
        let workers: Vec<WorkerView<'_>> = (0..2)
            .map(|i| WorkerView {
                index: i,
                idle: true,
                caps: &caps,
                loaded: 0,
                swap_costs: &costs,
            })
            .collect();
        // All three policies must route the retry around worker 0.
        let fifo = FifoPolicy::new().pick(0, &queue, &workers).unwrap();
        assert_eq!(fifo.worker_index, 1);
        let rr = RoundRobinPolicy::new().pick(0, &queue, &workers).unwrap();
        assert_eq!(rr.worker_index, 1);
        let aff = DprAffinityPolicy::new().pick(0, &queue, &workers).unwrap();
        assert_eq!(aff.worker_index, 1);
        // With only the faulted worker available, the job waits.
        assert!(FifoPolicy::new().pick(0, &queue, &workers[..1]).is_none());
    }

    #[test]
    fn affinity_patience_overrides_batching() {
        // An old DFT job plus endless fresh IDCT work: patience forces
        // the DFT through.
        let queue: VecDeque<PendingJob> = vec![job(0, DFT, 0), job(1, IDCT, 990)].into();
        let caps = [IDCT, DFT];
        let costs = [10_000u64, 10_000];
        let workers = [WorkerView {
            index: 0,
            idle: true,
            caps: &caps,
            loaded: 0,
            swap_costs: &costs,
        }];
        let pick = DprAffinityPolicy::with_patience(100)
            .pick(1_000, &queue, &workers)
            .unwrap();
        assert_eq!(pick.queue_index, 0, "over-patience job served first");
    }
}
