//! Differential "lockstep oracle" suite for event-horizon
//! fast-forward.
//!
//! Every test here runs the *same* campaign twice — once single-
//! stepping every cycle (`fast_forward: false`), once leaping over
//! provably-idle windows — and asserts the two farms are
//! observationally identical: same simulated cycle count, same
//! `JobRecord` stream (ids, outcomes, timestamps, outputs), same lease
//! ledger, same per-worker counters, same chaos statistics and RNG
//! consumption. Fast-forward is a pure wall-time optimisation; any
//! divergence here is a correctness bug, not a tuning matter.

use ouessant_farm::{
    ChaosConfig, ChaosStats, DprAffinityPolicy, Farm, FarmConfig, FarmError, FaultConfig,
    FaultPlan, FifoPolicy, JobKind, JobOutcome, JobSpec, LivenessConfig, RoundRobinPolicy,
    SchedPolicy, WorkerHealth,
};
use ouessant_isa::ProgramBuilder;
use ouessant_sim::XorShift64;

const IDCT: JobKind = JobKind::Idct;
const DFT64: JobKind = JobKind::Dft { points: 64 };
const COPY3: JobKind = JobKind::Copy { scale: 3 };

const WORKLOAD_SEED: u64 = 0xDA7E_2016;

/// The fault policy every lockstep campaign runs under: generous
/// retries plus a cooldown, so chaos exercises park/unpark, quarantine
/// and probation timers — exactly the timers the horizon must model.
const FAULTS: FaultConfig = FaultConfig {
    max_attempts: 10,
    retry_backoff: 500,
    fault_window: 40_000,
    quarantine_threshold: 3,
    quarantine_cooldown: Some(60_000),
    fail_fast: false,
};

fn policy(name: &str) -> Box<dyn SchedPolicy> {
    match name {
        "fifo" => Box::new(FifoPolicy::new()),
        "round-robin" => Box::new(RoundRobinPolicy::new()),
        "dpr-affinity" => Box::new(DprAffinityPolicy::new()),
        other => panic!("unknown policy {other}"),
    }
}

fn payload(kind: JobKind, rng: &mut XorShift64) -> Vec<u32> {
    let words = kind.required_input_words().unwrap_or(48);
    (0..words)
        .map(|_| (rng.gen_range_i32(-1024..1024)) as u32)
        .collect()
}

fn workload(n: usize, seed: u64) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|i| {
            let kind = match i % 3 {
                0 => IDCT,
                1 => DFT64,
                _ => COPY3,
            };
            JobSpec::new(kind, payload(kind, &mut rng))
        })
        .collect()
}

/// A watchdog budget that comfortably absorbs the pool's longest
/// legitimate progress-free window: a 60 kB DPR bitstream load is
/// 15 000 cycles of `rcfg`, plus compute latency.
const WATCHDOG_BUDGET: u64 = 25_000;

fn liveness_watched() -> LivenessConfig {
    LivenessConfig {
        default_cycles_budget: Some(WATCHDOG_BUDGET),
        ..LivenessConfig::default()
    }
}

fn build_farm(policy_name: &str, fast_forward: bool) -> Farm {
    build_farm_with(policy_name, fast_forward, LivenessConfig::default())
}

fn build_farm_with(policy_name: &str, fast_forward: bool, liveness: LivenessConfig) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 512,
            faults: FAULTS,
            liveness,
            fast_forward,
            ..FarmConfig::default()
        },
        policy(policy_name),
    );
    farm.add_worker(IDCT);
    farm.add_worker(DFT64);
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    farm.add_dpr_worker(&[(COPY3, 40_000), (DFT64, 60_000)]);
    farm
}

/// Everything observable about a finished run, minus host wall time.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    cycles_run: u64,
    now: u64,
    records: Vec<RecordKey>,
    alloc: ouessant_soc::alloc::AllocStats,
    leased_words: u32,
    alloc_stalls: u64,
    worker_faults: u64,
    retries: u64,
    quarantines: u64,
    hangs_detected: u64,
    aborts: u64,
    jobs_shed: u64,
    jobs_deadline_missed: u64,
    rejected_shed: u64,
    workers: Vec<WorkerKey>,
    chaos: Option<ChaosStats>,
}

#[derive(Debug, PartialEq)]
struct RecordKey {
    id: u64,
    kind: String,
    worker: usize,
    outcome: JobOutcome,
    submitted_at: u64,
    started_at: u64,
    completed_at: u64,
    swapped: bool,
    contention_cycles: u64,
    output: Vec<u32>,
}

#[derive(Debug, PartialEq)]
struct WorkerKey {
    jobs: u64,
    swaps: u64,
    busy_cycles: u64,
    bus_grants: u64,
    bus_beats: u64,
    contention_cycles: u64,
    health: WorkerHealth,
    faults: u64,
    quarantines: u64,
    loaded: usize,
}

fn fingerprint(farm: &Farm, cycles_run: u64) -> Fingerprint {
    let report = farm.report();
    Fingerprint {
        cycles_run,
        now: farm.now(),
        records: farm
            .records()
            .iter()
            .map(|r| RecordKey {
                id: r.id.0,
                kind: r.kind.to_string(),
                worker: r.worker,
                outcome: r.outcome.clone(),
                submitted_at: r.submitted_at,
                started_at: r.started_at,
                completed_at: r.completed_at,
                swapped: r.swapped,
                contention_cycles: r.contention_cycles,
                output: r.output.clone(),
            })
            .collect(),
        alloc: report.alloc,
        leased_words: farm.leased_words(),
        alloc_stalls: farm.alloc_stalls(),
        worker_faults: report.worker_faults,
        retries: report.retries,
        quarantines: report.quarantines,
        hangs_detected: report.hangs_detected,
        aborts: report.aborts,
        jobs_shed: report.jobs_shed,
        jobs_deadline_missed: report.jobs_deadline_missed,
        rejected_shed: report.rejected_shed,
        workers: farm
            .workers()
            .iter()
            .zip(&report.workers)
            .map(|(w, wr)| WorkerKey {
                jobs: w.jobs_served(),
                swaps: w.swaps(),
                busy_cycles: w.busy_cycles(),
                bus_grants: wr.bus_grants,
                bus_beats: wr.bus_beats,
                contention_cycles: wr.contention_cycles,
                health: w.health(),
                faults: w.faults_total(),
                quarantines: w.quarantines_total(),
                loaded: w.loaded_config(),
            })
            .collect(),
        chaos: farm.chaos_stats(),
    }
}

fn run_campaign(
    policy_name: &str,
    chaos: Option<ChaosConfig>,
    specs: &[JobSpec],
    fast_forward: bool,
) -> Fingerprint {
    let mut farm = build_farm(policy_name, fast_forward);
    if let Some(config) = chaos.clone() {
        farm.arm_chaos(FaultPlan::new(config));
    }
    for spec in specs {
        farm.submit(spec.clone())
            .expect("queue sized for the whole workload");
    }
    let cycles = farm
        .run_until_idle(400_000_000)
        .expect("campaign must drain");
    if !fast_forward {
        assert_eq!(farm.skipped_cycles(), 0, "single-stepping never leaps");
    }
    fingerprint(&farm, cycles)
}

fn assert_lockstep(
    policy_name: &str,
    chaos: Option<ChaosConfig>,
    specs: &[JobSpec],
    tag: &str,
) -> Fingerprint {
    let fast = run_campaign(policy_name, chaos.clone(), specs, true);
    let slow = run_campaign(policy_name, chaos, specs, false);
    assert_eq!(
        fast, slow,
        "fast-forward diverged from single-stepping ({tag}, {policy_name})"
    );
    fast
}

/// A calm (chaos-free) campaign must be bit-exact under every policy.
#[test]
fn calm_campaign_is_bit_exact_under_every_policy() {
    let specs = workload(48, WORKLOAD_SEED);
    for policy_name in ["fifo", "round-robin", "dpr-affinity"] {
        assert_lockstep(policy_name, None, &specs, "calm");
    }
}

/// The 4-seam × 3-policy chaos sweep: each cell arms exactly one fault
/// seam and must replay bit-exact — including the injected-fault
/// cycle stamps, the retry/park timeline and the RNG stream behind the
/// chaos statistics.
#[test]
fn chaos_matrix_sweep_is_bit_exact() {
    let specs = workload(48, WORKLOAD_SEED);
    for seam in ["controller", "bus", "bitstream", "alloc"] {
        let mut config = ChaosConfig {
            seed: 0xC4A0_5EED ^ seam.len() as u64,
            controller_one_in: 0,
            bus_one_in: 0,
            bitstream_one_in: 0,
            alloc_one_in: 0,
            alloc_hold: 3_000,
            wedge_one_in: 0,
            slow_one_in: 0,
            slow_stall: 0,
        };
        match seam {
            "controller" => config.controller_one_in = 15_000,
            "bus" => config.bus_one_in = 12_000,
            "bitstream" => config.bitstream_one_in = 3_000,
            "alloc" => config.alloc_one_in = 4_000,
            other => panic!("unknown seam {other}"),
        }
        // Each seam must actually inject somewhere in its row of the
        // matrix, or the sweep proves nothing about that seam.
        let mut fired = 0;
        for policy_name in ["fifo", "round-robin", "dpr-affinity"] {
            let cell = assert_lockstep(policy_name, Some(config.clone()), &specs, seam);
            let stats = cell.chaos.expect("campaign was armed");
            fired += stats.worker_faults() + stats.alloc_squats;
        }
        assert!(fired > 0, "the {seam} seam never fired");
    }
}

/// All four seams armed at once, full acceptance-campaign scale.
#[test]
fn full_chaos_campaign_is_bit_exact() {
    let specs = workload(240, WORKLOAD_SEED);
    let config = ChaosConfig {
        seed: 0xFA11_FA57,
        controller_one_in: 25_000,
        bus_one_in: 20_000,
        bitstream_one_in: 4_000,
        alloc_one_in: 6_000,
        alloc_hold: 3_000,
        wedge_one_in: 0,
        slow_one_in: 0,
        slow_stall: 0,
    };
    let fast = run_campaign("round-robin", Some(config.clone()), &specs, true);
    let slow = run_campaign("round-robin", Some(config), &specs, false);
    assert_eq!(fast, slow, "acceptance campaign diverged");
    let stats = fast.chaos.expect("campaign was armed");
    assert!(
        stats.worker_faults() > 0 && stats.alloc_squats > 0,
        "campaign must exercise worker and allocator seams: {stats:?}"
    );
    assert!(
        fast.retries > 0,
        "campaign must exercise the retry-park timers"
    );
}

/// Seeded random *custom microcode* jobs: programs with random-length
/// `wait` sleeps on both sides of `exec` stress the `WaitCycles`
/// horizon (the largest single-program leap source) and must replay
/// bit-exact through admission verification, dispatch and service.
#[test]
fn random_microcode_campaign_is_bit_exact() {
    let mut rng = XorShift64::new(0x5EED_C0DE);
    let mut specs = Vec::new();
    for _ in 0..24 {
        let words = rng.gen_range_u32(8..64);
        let input: Vec<u32> = (0..words)
            .map(|_| rng.gen_range_i32(-1024..1024) as u32)
            .collect();
        let pre_wait = rng.gen_range_u32(1..5_000) as u16;
        let post_wait = rng.gen_range_u32(1..5_000) as u16;
        let program = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, words, 64, 0)
            .expect("payload fits the offset field")
            .wait(pre_wait)
            .execs_op(u16::try_from(words).expect("payload fits u16"))
            .wait(post_wait)
            .transfer_from_coprocessor(2, 0, words, 64, 0)
            .expect("payload fits the offset field")
            .eop()
            .finish()
            .expect("generated program is structurally valid");
        specs.push(JobSpec::new(JobKind::Copy { scale: 3 }, input).with_microcode(program));
    }
    for policy_name in ["fifo", "round-robin"] {
        assert_lockstep(policy_name, None, &specs, "random-microcode");
    }
}

/// Fuel-accounting regression (a leap of N cycles must consume N
/// fuel): `FarmError::Stalled` fires at the *same simulated cycle* in
/// both stepping modes, with identical queue/in-flight snapshots.
#[test]
fn stall_fires_at_identical_cycle_in_both_modes() {
    let specs = workload(6, WORKLOAD_SEED);
    let fuel = 1_000;
    let mut errs = Vec::new();
    for fast_forward in [true, false] {
        let mut farm = build_farm("fifo", fast_forward);
        for spec in &specs {
            farm.submit(spec.clone()).unwrap();
        }
        let err = farm
            .run_until_idle(fuel)
            .expect_err("six mixed jobs cannot drain in 1k cycles");
        assert_eq!(
            farm.now(),
            fuel,
            "the stall must land exactly at the fuel boundary (fast={fast_forward})"
        );
        errs.push((err, fingerprint(&farm, 0)));
    }
    let (fast_err, fast_fp) = &errs[0];
    let (slow_err, slow_fp) = &errs[1];
    assert!(
        matches!(fast_err, FarmError::Stalled { cycles, .. } if *cycles == fuel),
        "stall reports full fuel spent: {fast_err:?}"
    );
    assert_eq!(fast_err, slow_err, "stall snapshots diverged");
    assert_eq!(fast_fp, slow_fp, "post-stall farm state diverged");
}

fn run_liveness_campaign(
    policy_name: &str,
    chaos: Option<ChaosConfig>,
    specs: &[JobSpec],
    fast_forward: bool,
    liveness: LivenessConfig,
) -> Fingerprint {
    let mut farm = build_farm_with(policy_name, fast_forward, liveness);
    if let Some(config) = chaos {
        farm.arm_chaos(FaultPlan::new(config));
    }
    for spec in specs {
        farm.submit(spec.clone())
            .expect("queue sized for the whole workload");
    }
    let cycles = farm
        .run_until_idle(400_000_000)
        .expect("campaign must drain");
    if !fast_forward {
        assert_eq!(farm.skipped_cycles(), 0, "single-stepping never leaps");
    }
    fingerprint(&farm, cycles)
}

/// The 2-stall-seam × 3-policy sweep: wedged handshakes and slowed
/// RACs are *silent* — only the watchdog horizon makes them
/// observable — so this is the sharpest test of the liveness layer's
/// bit-exactness claim: a hang inside a skipped window must fire the
/// watchdog at the identical cycle in both stepping modes.
#[test]
fn hang_seam_sweep_is_bit_exact() {
    let specs = workload(48, WORKLOAD_SEED);
    for seam in ["wedge", "slow"] {
        let mut config = ChaosConfig {
            seed: 0x4A46_0CEA ^ seam.len() as u64,
            controller_one_in: 0,
            bus_one_in: 0,
            bitstream_one_in: 0,
            alloc_one_in: 0,
            alloc_hold: 0,
            wedge_one_in: 0,
            slow_one_in: 0,
            slow_stall: 0,
        };
        match seam {
            "wedge" => config.wedge_one_in = 6_000,
            "slow" => {
                config.slow_one_in = 1_500;
                // Longer than the watchdog budget: every stall that
                // outlives the budget must surface as a hang.
                config.slow_stall = 30_000;
            }
            other => panic!("unknown seam {other}"),
        }
        let mut fired = 0;
        let mut detected = 0;
        for policy_name in ["fifo", "round-robin", "dpr-affinity"] {
            let fast = run_liveness_campaign(
                policy_name,
                Some(config.clone()),
                &specs,
                true,
                liveness_watched(),
            );
            let slow = run_liveness_campaign(
                policy_name,
                Some(config.clone()),
                &specs,
                false,
                liveness_watched(),
            );
            assert_eq!(
                fast, slow,
                "hang campaign diverged between modes ({seam}, {policy_name})"
            );
            let stats = fast.chaos.expect("campaign was armed");
            fired += stats.wedges + stats.rac_stalls;
            detected += fast.hangs_detected;
        }
        assert!(fired > 0, "the {seam} seam never fired");
        assert!(detected > 0, "no {seam} ever tripped a watchdog");
    }
}

/// Deterministic single-wedge check: the same wedge, injected at the
/// same cycle in both farms, must make the watchdog bite at the
/// identical simulated cycle whether that cycle is single-stepped or
/// sits deep inside a fast-forward window.
#[test]
fn watchdog_fires_at_identical_cycle_in_both_modes() {
    let specs = workload(6, WORKLOAD_SEED);
    let mut fps = Vec::new();
    for fast_forward in [true, false] {
        let mut farm = build_farm_with("fifo", fast_forward, liveness_watched());
        for spec in &specs {
            farm.submit(spec.clone()).unwrap();
        }
        // Line both farms up at the same cycle with work in flight,
        // then freeze the DFT worker's controller mid-job.
        for _ in 0..100 {
            farm.tick();
        }
        assert!(
            !farm.workers()[1].is_idle(),
            "the DFT worker must be mid-job at cycle 100"
        );
        farm.inject_worker_wedge(1);
        assert!(farm.workers()[1].is_wedged(), "wedge must land");
        let cycles = farm.run_until_idle(10_000_000).expect("must drain");
        assert_eq!(farm.hangs_detected(), 1, "exactly one watchdog firing");
        assert_eq!(farm.aborts(), 1);
        fps.push(fingerprint(&farm, cycles));
    }
    assert_eq!(
        fps[0], fps[1],
        "watchdog timeline diverged between stepping modes"
    );
    // The wedged job must have been retried to completion elsewhere.
    assert!(
        fps[0]
            .records
            .iter()
            .all(|r| matches!(r.outcome, JobOutcome::Completed { .. })),
        "every job completes after the hang retry"
    );
    assert!(
        fps[0]
            .records
            .iter()
            .any(|r| matches!(r.outcome, JobOutcome::Completed { attempts } if attempts == 2)),
        "the wedged job consumed a retry"
    );
}

/// The acceptance campaign: 240 jobs, both stall seams armed at the
/// `ChaosConfig::hang` preset rates, watchdogs and deadline
/// enforcement on. Invariants:
///
/// * zero stranded jobs — every admitted job ends in a record;
/// * zero leaked leases — the shared-memory ledger drains to zero;
/// * every completed job's output is bit-exact against a fault-free
///   baseline, hangs and retries notwithstanding; every other job is
///   accounted as `DeadlineMissed` or honestly exhausted its retries;
/// * the whole run is fingerprint-identical between single-stepping
///   and fast-forward.
#[test]
fn hang_campaign_acceptance() {
    // Every 8th job carries a deadline far too tight for its queue
    // position, guaranteeing the early-drop path fires; the rest are
    // free to take as long as chaos makes them.
    let specs: Vec<JobSpec> = workload(240, WORKLOAD_SEED)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            if i % 8 == 0 {
                s.with_deadline(50_000)
            } else {
                s
            }
        })
        .collect();
    let liveness = LivenessConfig {
        default_cycles_budget: Some(WATCHDOG_BUDGET),
        early_drop: true,
        ..LivenessConfig::default()
    };

    // Fault-free baseline: no chaos, no enforcement — all 240 complete.
    let baseline = run_liveness_campaign("round-robin", None, &specs, true, liveness_watched());
    let baseline_outputs: std::collections::HashMap<u64, &Vec<u32>> =
        baseline.records.iter().map(|r| (r.id, &r.output)).collect();
    assert_eq!(
        baseline.records.len(),
        240,
        "baseline must serve everything"
    );

    let config = ChaosConfig::hang(0x0CEA_4A46);
    let fast = run_liveness_campaign(
        "round-robin",
        Some(config.clone()),
        &specs,
        true,
        liveness.clone(),
    );
    let slow = run_liveness_campaign("round-robin", Some(config), &specs, false, liveness);
    assert_eq!(fast, slow, "acceptance campaign diverged between modes");

    let stats = fast.chaos.expect("campaign was armed");
    assert!(
        stats.wedges + stats.rac_stalls > 0,
        "the stall seams never fired: {stats:?}"
    );
    assert!(fast.hangs_detected > 0, "no hang was ever detected");
    assert_eq!(fast.records.len(), 240, "a job was stranded");
    assert_eq!(fast.leased_words, 0, "a shared-memory lease leaked");
    let mut completed = 0u64;
    let mut missed = 0u64;
    let mut failed = 0u64;
    for r in &fast.records {
        match r.outcome {
            JobOutcome::Completed { .. } => {
                completed += 1;
                assert_eq!(
                    baseline_outputs.get(&r.id).copied(),
                    Some(&r.output),
                    "job {} completed with a different output than the fault-free baseline",
                    r.id
                );
            }
            JobOutcome::DeadlineMissed { .. } => missed += 1,
            JobOutcome::FailedPermanent { attempts, .. } => {
                failed += 1;
                assert_eq!(
                    attempts, FAULTS.max_attempts,
                    "a job failed without exhausting its retries"
                );
            }
            JobOutcome::ShedOverload => panic!("nothing sheds without a watermark"),
        }
    }
    assert_eq!(completed + missed + failed, 240, "the books must balance");
    assert!(missed > 0, "the tight deadlines must trip early drop");
    assert_eq!(
        fast.jobs_deadline_missed, missed,
        "report disagrees with the records"
    );
}

/// The fast path must actually skip work on a compute-dominated
/// campaign — otherwise the benchmark harness is measuring nothing.
/// Large DFTs are the honest case: a 1024-point transform computes
/// for `n log2 n + 3n/2 + 53` cycles between its two DMA bursts, so
/// most of a job's lifetime is a provably-pure window.
#[test]
fn fast_forward_skips_a_meaningful_fraction() {
    let kind = JobKind::Dft { points: 1024 };
    let mut rng = XorShift64::new(WORKLOAD_SEED);
    let specs: Vec<JobSpec> = (0..12)
        .map(|_| JobSpec::new(kind, payload(kind, &mut rng)))
        .collect();
    let mut farm = Farm::new(
        FarmConfig {
            fifo_depth: 4096,
            fast_forward: true,
            ..FarmConfig::default()
        },
        policy("fifo"),
    );
    farm.add_worker(kind);
    for spec in &specs {
        farm.submit(spec.clone()).unwrap();
    }
    farm.run_until_idle(400_000_000).unwrap();
    let report = farm.report();
    assert_eq!(report.skipped_cycles, farm.skipped_cycles());
    assert!(
        report.skipped_fraction() > 0.5,
        "expected >50% of cycles leaped, got {:.1}% ({} of {})",
        report.skipped_fraction() * 100.0,
        report.skipped_cycles,
        report.total_cycles
    );
}
