//! Pool-level scheduling tests: backpressure, fairness, swap safety,
//! and the DPR-affinity throughput win the farm exists to provide.

use std::collections::HashMap;

use ouessant_farm::{
    DprAffinityPolicy, Farm, FarmConfig, FifoPolicy, JobId, JobKind, JobSpec, RoundRobinPolicy,
    SubmitError,
};
use ouessant_isa::{Program, ProgramBuilder};
use ouessant_sim::XorShift64;

const IDCT: JobKind = JobKind::Idct;
const DFT64: JobKind = JobKind::Dft { points: 64 };
const COPY3: JobKind = JobKind::Copy { scale: 3 };

/// A deterministic payload for `kind` (JPEG-range words keep the IDCT
/// and DFT fixed-point paths well inside their dynamic range).
fn payload(kind: JobKind, rng: &mut XorShift64) -> Vec<u32> {
    let words = kind.required_input_words().unwrap_or(48);
    (0..words)
        .map(|_| (rng.gen_range_i32(-1024..1024)) as u32)
        .collect()
}

/// The swap-heavy workload of the affinity experiment: `pairs`
/// alternating IDCT/copy jobs, worst case for a naive scheduler on a
/// single DPR slot.
fn alternating_mix(pairs: usize, seed: u64) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(seed);
    let mut specs = Vec::new();
    for _ in 0..pairs {
        specs.push(JobSpec::new(IDCT, payload(IDCT, &mut rng)));
        specs.push(JobSpec::new(COPY3, payload(COPY3, &mut rng)));
    }
    specs
}

/// One DPR worker holding IDCT + scaling-copy configurations with a
/// 40 KiB bitstream each (10k-cycle swap at the ICAP rate).
fn single_dpr_farm(policy_fifo: bool) -> Farm {
    let policy: Box<dyn ouessant_farm::SchedPolicy> = if policy_fifo {
        Box::new(FifoPolicy::new())
    } else {
        Box::new(DprAffinityPolicy::new())
    };
    let mut farm = Farm::new(FarmConfig::default(), policy);
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    farm
}

#[test]
fn backpressure_returns_queue_full() {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 4,
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(IDCT);
    for _ in 0..4 {
        farm.submit(JobSpec::new(IDCT, vec![0; 64])).unwrap();
    }
    assert_eq!(
        farm.submit(JobSpec::new(IDCT, vec![0; 64])),
        Err(SubmitError::QueueFull { capacity: 4 }),
        "a full queue must push back, not drop or grow"
    );
    // Draining the pool re-opens admission.
    farm.run_until_idle(1_000_000).unwrap();
    farm.submit(JobSpec::new(IDCT, vec![0; 64])).unwrap();
    farm.run_until_idle(1_000_000).unwrap();
    assert_eq!(farm.records().len(), 5);
}

#[test]
fn admission_rejects_unserviceable_and_malformed_jobs() {
    let mut farm = Farm::new(FarmConfig::default(), Box::new(FifoPolicy::new()));
    farm.add_worker(IDCT);
    assert!(matches!(
        farm.submit(JobSpec::new(DFT64, vec![0; 128])),
        Err(SubmitError::NoCapableWorker { .. })
    ));
    assert!(matches!(
        farm.submit(JobSpec::new(IDCT, vec![0; 63])),
        Err(SubmitError::BadPayload { .. })
    ));
    assert_eq!(farm.report().rejected_invalid, 2);
}

#[test]
fn fifo_never_starves_under_sustained_overload() {
    // Offered load far above capacity: one IDCT worker, a 8-deep
    // queue, and a client that resubmits on every QueueFull. Every
    // admitted job must complete, in admission order.
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 8,
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(7);
    let mut admitted: Vec<JobId> = Vec::new();
    let mut rejections = 0u64;
    let mut to_offer = 120u32;
    while to_offer > 0 {
        match farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng))) {
            Ok(id) => {
                admitted.push(id);
                to_offer -= 1;
            }
            Err(SubmitError::QueueFull { .. }) => rejections += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
        // Sustained pressure: barely any breathing room between offers.
        for _ in 0..20 {
            farm.tick();
        }
    }
    farm.run_until_idle(10_000_000).unwrap();
    assert!(
        rejections > 0,
        "overload must actually trigger backpressure"
    );
    let completed: Vec<JobId> = farm.records().iter().map(|r| r.id).collect();
    assert_eq!(
        completed, admitted,
        "FIFO serves in admission order, nobody starves"
    );
    let report = farm.report();
    assert_eq!(report.jobs_completed, 120);
    assert!(
        report.queue_wait.max < 500_000,
        "bounded queue keeps waits bounded (saw {})",
        report.queue_wait.max
    );
}

#[test]
fn swaps_never_corrupt_in_flight_jobs() {
    // The worst swap churn we can produce: strict alternation on one
    // DPR slot under FIFO, so *every* job carries an rcfg. Every output
    // must still be bit-exact against the host golden model.
    let mut farm = single_dpr_farm(true);
    let mut golden: HashMap<JobId, Vec<u32>> = HashMap::new();
    for spec in alternating_mix(10, 0xD1CE) {
        let expect = spec.kind.expected_output(&spec.input);
        let id = farm.submit(spec).unwrap();
        golden.insert(id, expect);
    }
    farm.run_until_idle(50_000_000).unwrap();
    let report = farm.report();
    assert_eq!(report.jobs_completed, 20);
    assert!(
        report.swaps >= 19,
        "alternation under FIFO must swap nearly every job (saw {})",
        report.swaps
    );
    for record in farm.records() {
        assert_eq!(
            &record.output,
            golden.get(&record.id).unwrap(),
            "{} corrupted across a bitstream swap",
            record.id
        );
    }
}

#[test]
fn dpr_affinity_outperforms_fifo_on_swap_heavy_mix() {
    // The acceptance experiment: identical swap-heavy workload, same
    // single-DPR pool, only the policy differs. Affinity batches the
    // mix into one run per kind and pays ~2 swaps instead of ~40.
    let mix = alternating_mix(20, 0xBEEF);

    let mut fifo = single_dpr_farm(true);
    for spec in mix.clone() {
        fifo.submit(spec).unwrap();
    }
    fifo.run_until_idle(100_000_000).unwrap();
    let fifo_report = fifo.report();

    let mut affinity = single_dpr_farm(false);
    for spec in mix {
        affinity.submit(spec).unwrap();
    }
    affinity.run_until_idle(100_000_000).unwrap();
    let affinity_report = affinity.report();

    assert_eq!(fifo_report.jobs_completed, 40);
    assert_eq!(affinity_report.jobs_completed, 40);
    assert!(
        affinity_report.swaps < fifo_report.swaps / 4,
        "affinity must amortize swaps ({} vs {})",
        affinity_report.swaps,
        fifo_report.swaps
    );
    assert!(
        affinity_report.throughput_jobs_per_mcycle > 1.5 * fifo_report.throughput_jobs_per_mcycle,
        "affinity throughput {:.2} jobs/Mcycle not measurably above FIFO {:.2}",
        affinity_report.throughput_jobs_per_mcycle,
        fifo_report.throughput_jobs_per_mcycle
    );
}

#[test]
fn affinity_patience_bounds_cross_kind_waiting() {
    // A continuous IDCT stream plus one early copy job: affinity with a
    // small patience must still serve the copy job promptly instead of
    // starving it behind the batch.
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 128,
            ..FarmConfig::default()
        },
        Box::new(DprAffinityPolicy::with_patience(20_000)),
    );
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    let mut rng = XorShift64::new(11);
    let copy_id = farm
        .submit(JobSpec::new(COPY3, payload(COPY3, &mut rng)))
        .unwrap();
    for _ in 0..40 {
        farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
            .unwrap();
    }
    farm.run_until_idle(50_000_000).unwrap();
    let copy = farm
        .records()
        .iter()
        .find(|r| r.id == copy_id)
        .expect("copy job completed");
    assert!(
        copy.queue_wait() < 100_000,
        "patience failed to bound the copy job's wait ({})",
        copy.queue_wait()
    );
}

/// A hand-written straight-line program equivalent to the farm's
/// canonical copy microcode, but with a different burst chunking — it
/// only completes correctly if the farm actually runs *this* program.
fn custom_copy_program(words: u32) -> Program {
    ProgramBuilder::new()
        .transfer_to_coprocessor(1, 0, words, 16, 0)
        .unwrap()
        .execs_op(u16::try_from(words).unwrap())
        .transfer_from_coprocessor(2, 0, words, 16, 0)
        .unwrap()
        .eop()
        .finish()
        .unwrap()
}

#[test]
fn unsafe_custom_microcode_rejected_without_disturbing_in_flight_jobs() {
    let mut farm = Farm::new(FarmConfig::default(), Box::new(FifoPolicy::new()));
    farm.add_worker(COPY3);

    // Put a legitimate job on the worker first.
    let input: Vec<u32> = (1..=48).collect();
    let good = farm.submit(JobSpec::new(COPY3, input.clone())).unwrap();
    for _ in 0..20 {
        farm.tick();
    }
    assert_eq!(farm.in_flight(), 1, "the good job is on the worker");

    // An out-of-bounds burst: 256 words starting at word 16256 runs
    // past the 16384-word offset space (and far past the 48-word input
    // region this job would actually lease).
    let overflow = ProgramBuilder::new()
        .mvtc(1, 16256, 256, 0)
        .unwrap()
        .execs()
        .eop()
        .finish()
        .unwrap();
    let err = farm
        .submit(JobSpec::new(COPY3, input.clone()).with_microcode(overflow))
        .unwrap_err();
    match &err {
        SubmitError::RejectedMicrocode { diagnostics } => {
            assert!(diagnostics.has_errors());
            assert!(
                err.to_string().contains("bank-overflow"),
                "diagnostics name the defect: {err}"
            );
        }
        other => panic!("expected RejectedMicrocode, got {other:?}"),
    }

    // A launch/join hazard: `execn` with no `wrac` on any path.
    let unjoined = ProgramBuilder::new()
        .transfer_to_coprocessor(1, 0, 48, 16, 0)
        .unwrap()
        .execn()
        .eop()
        .finish()
        .unwrap();
    let err = farm
        .submit(JobSpec::new(COPY3, input.clone()).with_microcode(unjoined))
        .unwrap_err();
    assert!(
        err.to_string().contains("unjoined-launch"),
        "diagnostics name the defect: {err}"
    );

    // Neither rejection touched the in-flight job or took a queue slot.
    assert_eq!(farm.in_flight(), 1, "rejections must not disturb the pool");
    assert_eq!(farm.queue_len(), 0);
    farm.run_until_idle(1_000_000).unwrap();

    let report = farm.report();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.rejected_unsafe, 2);
    let record = &farm.records()[0];
    assert_eq!(record.id, good);
    assert_eq!(record.output, COPY3.expected_output(&input));
}

#[test]
fn valid_custom_microcode_serves_end_to_end() {
    let mut farm = Farm::new(FarmConfig::default(), Box::new(FifoPolicy::new()));
    farm.add_worker(COPY3);
    let input: Vec<u32> = (0..48).map(|w| w * 7 + 1).collect();
    farm.submit(JobSpec::new(COPY3, input.clone()).with_microcode(custom_copy_program(48)))
        .unwrap();
    farm.run_until_idle(1_000_000).unwrap();
    let report = farm.report();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.rejected_unsafe, 0);
    assert_eq!(farm.records()[0].output, COPY3.expected_output(&input));
}

#[test]
fn custom_microcode_loop_survives_dpr_rcfg_prepend() {
    // A looped input transfer on a DPR worker that must swap first:
    // the farm prepends `rcfg`, shifting every instruction by one, so
    // the `djnz` back-edge only lands on the `mvtcr` if admission's
    // target rebase is correct. A wrong target re-runs `ldo` and feeds
    // the payload's first words twice — caught by the golden model.
    let words = 48u32;
    let looped = ProgramBuilder::new()
        .ldc(0, 3)
        .unwrap()
        .ldo(0, 0)
        .unwrap()
        .mvtcr(1, 0, 16, 0)
        .unwrap()
        .djnz(0, 2)
        .unwrap()
        .execs_op(u16::try_from(words).unwrap())
        .transfer_from_coprocessor(2, 0, words, 16, 0)
        .unwrap()
        .eop()
        .finish()
        .unwrap();

    let mut farm = single_dpr_farm(true);
    assert_eq!(
        farm.workers()[0].loaded_config(),
        0,
        "IDCT loaded: serving the copy job forces an rcfg prepend"
    );
    let input: Vec<u32> = (0..words).map(|w| w.wrapping_mul(0x9E37) + 3).collect();
    farm.submit(JobSpec::new(COPY3, input.clone()).with_microcode(looped))
        .unwrap();
    farm.run_until_idle(50_000_000).unwrap();

    let report = farm.report();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.swaps, 1, "the custom job paid its own swap");
    assert_eq!(farm.records()[0].output, COPY3.expected_output(&input));
}

#[test]
fn heterogeneous_pool_serves_mixed_load_bit_exactly() {
    // The tentpole end-to-end shape: three workers (fixed IDCT, fixed
    // DFT, one DPR slot) on one shared bus, round-robin placement,
    // every output checked against the golden model, and the shared bus
    // actually observed under contention.
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 128,
            ..FarmConfig::default()
        },
        Box::new(RoundRobinPolicy::new()),
    );
    farm.add_worker(IDCT);
    farm.add_worker(DFT64);
    farm.add_dpr_worker(&[(IDCT, 40_000), (DFT64, 60_000)]);

    let mut rng = XorShift64::new(42);
    let mut golden: HashMap<JobId, Vec<u32>> = HashMap::new();
    for i in 0..60u32 {
        let kind = if i % 2 == 0 { IDCT } else { DFT64 };
        let spec = JobSpec::new(kind, payload(kind, &mut rng));
        let expect = spec.kind.expected_output(&spec.input);
        let id = farm.submit(spec).unwrap();
        golden.insert(id, expect);
    }
    farm.run_until_idle(50_000_000).unwrap();

    let report = farm.report();
    assert_eq!(report.jobs_completed, 60);
    for record in farm.records() {
        assert_eq!(&record.output, golden.get(&record.id).unwrap());
    }
    let busy_workers = report.workers.iter().filter(|w| w.jobs > 0).count();
    assert_eq!(busy_workers, 3, "round-robin spreads work over the pool");
    assert!(
        report.contention_cycles > 0,
        "three DMA masters on one bus must contend at least once"
    );
    assert_eq!(report.alloc.words_in_use, 0, "all job regions returned");
}
