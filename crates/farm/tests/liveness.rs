//! Liveness-layer tests: hang watchdogs, host-side deadline
//! enforcement (early drop and in-flight abort), graceful overload
//! shedding, and the `std::error::Error` surface of the farm's error
//! types.

use ouessant::ExecError;
use ouessant_farm::{
    Farm, FarmConfig, FarmError, FaultConfig, FifoPolicy, JobKind, JobOutcome, JobSpec,
    LivenessConfig, SubmitError, WorkerFaultKind, WorkerHealth,
};
use ouessant_sim::XorShift64;

const IDCT: JobKind = JobKind::Idct;
const DFT64: JobKind = JobKind::Dft { points: 64 };
const DFT1K: JobKind = JobKind::Dft { points: 1024 };

fn payload(kind: JobKind, rng: &mut XorShift64) -> Vec<u32> {
    let words = kind.required_input_words().unwrap_or(48);
    (0..words)
        .map(|_| (rng.gen_range_i32(-1024..1024)) as u32)
        .collect()
}

fn watched_farm(liveness: LivenessConfig) -> Farm {
    Farm::new(
        FarmConfig {
            liveness,
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    )
}

/// A wedged controller makes no progress, so the watchdog bites at
/// exactly the budget, the job retries on the other worker, and the
/// hang counts against the wedged worker's circuit breaker.
#[test]
fn watchdog_aborts_wedged_worker_and_retries() {
    let mut farm = watched_farm(LivenessConfig {
        default_cycles_budget: Some(5_000),
        ..LivenessConfig::default()
    });
    farm.add_worker(IDCT);
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(3);
    for _ in 0..3 {
        farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
            .unwrap();
    }
    while farm.workers()[0].is_idle() {
        farm.tick();
    }
    farm.inject_worker_wedge(0);
    assert!(farm.workers()[0].is_wedged());

    farm.run_until_idle(10_000_000)
        .expect("the watchdog must free the pool");
    assert_eq!(farm.hangs_detected(), 1);
    assert_eq!(farm.aborts(), 1);
    assert!(!farm.workers()[0].is_wedged(), "recovery cleared the wedge");

    let report = farm.report();
    assert_eq!(report.jobs_completed, 3, "no job lost to the hang");
    assert_eq!(report.hangs_detected, 1);
    assert_eq!(report.worker_faults, 1, "a hang is a worker fault");
    assert_eq!(report.retries, 1);
    assert_eq!(report.alloc.words_in_use, 0, "no leaked leases");
    // The hang rode the circuit breaker: one strike, now Degraded.
    assert_eq!(farm.workers()[0].health(), WorkerHealth::Degraded);
    assert_eq!(farm.workers()[0].faults_total(), 1);
    // The wedged job completed on the other worker, on attempt 2.
    let retried: Vec<_> = farm
        .records()
        .iter()
        .filter(|r| r.outcome.attempts() == 2)
        .collect();
    assert_eq!(retried.len(), 1);
    assert_eq!(retried[0].worker, 1, "retry avoided the wedged worker");
}

/// A wedged worker with *no* watchdog armed can only burn fuel; the
/// enriched `Stalled` error must say which worker is wedged so the
/// failure is diagnosable.
#[test]
fn unwatched_wedge_stalls_with_diagnosable_error() {
    let mut farm = watched_farm(LivenessConfig::default());
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(3);
    farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
        .unwrap();
    while farm.workers()[0].is_idle() {
        farm.tick();
    }
    farm.inject_worker_wedge(0);
    let err = farm
        .run_until_idle(100_000)
        .expect_err("an unwatched wedge can never drain");
    let FarmError::Stalled {
        in_flight, workers, ..
    } = &err
    else {
        panic!("expected Stalled, got {err:?}");
    };
    assert_eq!(*in_flight, 1);
    assert!(workers[0].wedged, "the snapshot flags the wedged worker");
    let msg = err.to_string();
    assert!(
        msg.contains("WEDGED") && msg.contains("pool dead"),
        "stall message must name the wedge: {msg}"
    );
}

/// Early drop: queued jobs whose deadline is already unmeetable are
/// reaped before they waste a worker, and an in-flight job past its
/// deadline is aborted — without punishing the worker's breaker.
#[test]
fn early_drop_reaps_hopeless_jobs_and_aborts_overdue_work() {
    let mut farm = watched_farm(LivenessConfig {
        early_drop: true,
        ..LivenessConfig::default()
    });
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(5);
    for _ in 0..5 {
        farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)).with_deadline(50))
            .unwrap();
    }
    farm.run_until_idle(10_000_000)
        .expect("dropped jobs must not wedge the pool");

    let report = farm.report();
    assert_eq!(
        report.jobs_completed, 0,
        "nothing can meet a 50-cycle deadline"
    );
    assert_eq!(
        report.jobs_deadline_missed, 5,
        "all five dropped or aborted"
    );
    assert_eq!(farm.deadline_drops(), 5);
    assert_eq!(
        farm.aborts(),
        1,
        "the one dispatched job was aborted in flight"
    );
    assert_eq!(
        report.alloc.words_in_use, 0,
        "the aborted job's leases came back"
    );
    for r in farm.records() {
        assert!(matches!(r.outcome, JobOutcome::DeadlineMissed { .. }));
        assert!(r.output.is_empty());
    }
    // A deadline abort is not a fault: the worker is still Healthy.
    assert_eq!(farm.workers()[0].health(), WorkerHealth::Healthy);
    assert_eq!(farm.workers()[0].faults_total(), 0);
    assert_eq!(report.worker_faults, 0);
}

/// The in-flight abort frees a worker that would otherwise compute
/// long past the deadline, and the freed worker goes straight back
/// into service for the next job.
#[test]
fn deadline_abort_returns_worker_to_service() {
    // Deadline just above the optimistic core estimate: the job clears
    // admission and dispatch, but transfers push real service past it.
    let deadline = DFT1K.core_latency_estimate() + 100;
    let mut farm = Farm::new(
        FarmConfig {
            fifo_depth: 4096,
            liveness: LivenessConfig {
                early_drop: true,
                ..LivenessConfig::default()
            },
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(DFT1K);
    let mut rng = XorShift64::new(7);
    farm.submit(JobSpec::new(DFT1K, payload(DFT1K, &mut rng)).with_deadline(deadline))
        .unwrap();
    let free = JobSpec::new(DFT1K, payload(DFT1K, &mut rng));
    let free_input = free.input.clone();
    farm.submit(free).unwrap();

    farm.run_until_idle(10_000_000).expect("must drain");
    let report = farm.report();
    assert_eq!(farm.aborts(), 1, "the overdue job was aborted in flight");
    assert_eq!(report.jobs_deadline_missed, 1);
    assert_eq!(
        report.jobs_completed, 1,
        "the deadline-free job still served"
    );
    assert_eq!(report.worker_faults, 0, "an abort is not a fault");
    assert_eq!(farm.workers()[0].health(), WorkerHealth::Healthy);
    let done = farm
        .records()
        .iter()
        .find(|r| r.outcome.is_completed())
        .expect("one completion");
    assert_eq!(
        done.output,
        DFT1K.expected_output(&free_input),
        "the post-abort job computed on a cleanly reset worker"
    );
}

/// Overload shedding: past the watermark, below-floor work is refused
/// at admission; at capacity, a priority submission evicts the
/// youngest lowest-class queued job and the eviction is recorded.
#[test]
fn overload_sheds_low_priority_work_gracefully() {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 4,
            liveness: LivenessConfig {
                shed_watermark: Some(2),
                shed_floor: 1,
                ..LivenessConfig::default()
            },
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(9);
    let mut spec = |prio: u8| JobSpec::new(IDCT, payload(IDCT, &mut rng)).with_priority(prio);

    // Two normal jobs fill to the watermark.
    farm.submit(spec(0)).unwrap();
    farm.submit(spec(0)).unwrap();
    // Past the watermark, priority 0 is refused...
    assert!(matches!(
        farm.submit(spec(0)),
        Err(SubmitError::ShedOverload {
            queued: 2,
            watermark: 2
        })
    ));
    // ...but at-floor work is still admitted, up to capacity.
    farm.submit(spec(1)).unwrap();
    farm.submit(spec(1)).unwrap();
    // A full queue: urgent work evicts the youngest priority-0 job.
    farm.submit(spec(2)).unwrap();
    assert_eq!(farm.jobs_shed(), 1, "the eviction was recorded");

    farm.run_until_idle(10_000_000).expect("must drain");
    let report = farm.report();
    assert_eq!(report.rejected_shed, 1);
    assert_eq!(report.jobs_shed, 1);
    assert_eq!(report.jobs_completed, 4);
    assert_eq!(
        report.jobs_admitted,
        report.jobs_completed + report.jobs_shed,
        "the books balance shed work"
    );
    let shed: Vec<_> = farm
        .records()
        .iter()
        .filter(|r| matches!(r.outcome, JobOutcome::ShedOverload))
        .collect();
    assert_eq!(shed.len(), 1);
    assert_eq!(shed[0].id.0, 1, "the youngest normal-priority job was shed");
}

/// A RAC stall shorter than any watchdog budget is a pure latency
/// fault: the job completes correctly, just late — and with
/// `early_drop` off, a blown deadline is bookkeeping, not
/// interference.
#[test]
fn sub_budget_rac_stall_only_delays_completion() {
    let run = |stall: Option<u64>, deadline: Option<u64>| -> (u64, Farm) {
        let mut farm = watched_farm(LivenessConfig::default());
        farm.add_worker(DFT64);
        let mut rng = XorShift64::new(11);
        let mut spec = JobSpec::new(DFT64, payload(DFT64, &mut rng));
        if let Some(d) = deadline {
            spec = spec.with_deadline(d);
        }
        farm.submit(spec).unwrap();
        for _ in 0..40 {
            farm.tick();
        }
        if let Some(s) = stall {
            farm.inject_worker_rac_stall(0, s);
        }
        let cycles = farm.run_until_idle(10_000_000).expect("must drain") + 40;
        (cycles, farm)
    };
    let (base_cycles, base_farm) = run(None, None);
    let stall = 5_000;
    let (slow_cycles, slow_farm) = run(Some(stall), Some(base_cycles + 100));
    // The stall countdown overlaps the RAC's own compute window, so the
    // added latency is the stall minus however much compute it hid.
    assert!(
        slow_cycles >= base_cycles + stall - DFT64.core_latency_estimate(),
        "the stall must delay completion: {base_cycles} -> {slow_cycles}"
    );
    assert_eq!(
        slow_farm.records()[0].output,
        base_farm.records()[0].output,
        "a latency fault never corrupts data"
    );
    let report = slow_farm.report();
    assert!(report.jobs_completed == 1 && report.jobs_deadline_missed == 0);
    assert_eq!(report.deadline_misses, 1, "completed late, counted late");
    assert_eq!(report.hangs_detected, 0, "no watchdog was armed");
}

/// The farm's error types are real `std::error::Error`s with useful
/// messages and source chains.
#[test]
fn errors_implement_std_error_with_sources() {
    fn takes_error(_: &dyn std::error::Error) {}

    let shed = SubmitError::ShedOverload {
        queued: 9,
        watermark: 8,
    };
    takes_error(&shed);
    assert!(shed.to_string().contains("overloaded"));

    let hang = WorkerFaultKind::Hang { budget: 1234 };
    takes_error(&hang);
    assert!(hang.to_string().contains("1234 cycles"));
    assert!(std::error::Error::source(&hang).is_none());

    let ctrl = WorkerFaultKind::Controller(ExecError::Injected {
        cause: "test: upset",
    });
    assert!(
        std::error::Error::source(&ctrl).is_some(),
        "controller faults chain to the underlying ExecError"
    );

    let fail_fast = FarmError::WorkerFault {
        worker: 2,
        fault: hang,
    };
    takes_error(&fail_fast);
    assert!(fail_fast.to_string().contains("worker 2"));

    // FaultConfig is still honoured alongside liveness: both configs
    // coexist on FarmConfig.
    let cfg = FarmConfig {
        faults: FaultConfig::default(),
        liveness: LivenessConfig::default(),
        ..FarmConfig::default()
    };
    assert!(cfg.liveness.default_cycles_budget.is_none());
}
