//! Fault-tolerance tests: the chaos matrix, the quarantine breaker,
//! and the regression pins for the pre-fault-tolerance bugs
//! (run-aborting worker faults, leaked bank leases).

use std::collections::HashMap;

use ouessant::ExecError;
use ouessant_farm::{
    ChaosConfig, DprAffinityPolicy, Farm, FarmConfig, FarmError, FaultConfig, FaultPlan,
    FifoPolicy, JobKind, JobOutcome, JobSpec, RoundRobinPolicy, SchedPolicy, SubmitError,
    WorkerHealth,
};
use ouessant_sim::XorShift64;

const IDCT: JobKind = JobKind::Idct;
const DFT64: JobKind = JobKind::Dft { points: 64 };
const COPY3: JobKind = JobKind::Copy { scale: 3 };

/// A deterministic payload for `kind` (JPEG-range words keep the
/// fixed-point kernels inside their dynamic range).
fn payload(kind: JobKind, rng: &mut XorShift64) -> Vec<u32> {
    let words = kind.required_input_words().unwrap_or(48);
    (0..words)
        .map(|_| (rng.gen_range_i32(-1024..1024)) as u32)
        .collect()
}

/// The campaign workload: `n` jobs cycling through the three kinds.
fn workload(n: usize, seed: u64) -> Vec<JobSpec> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|i| {
            let kind = match i % 3 {
                0 => IDCT,
                1 => DFT64,
                _ => COPY3,
            };
            JobSpec::new(kind, payload(kind, &mut rng))
        })
        .collect()
}

fn policy(name: &str) -> Box<dyn SchedPolicy> {
    match name {
        "fifo" => Box::new(FifoPolicy::new()),
        "round-robin" => Box::new(RoundRobinPolicy::new()),
        "dpr-affinity" => Box::new(DprAffinityPolicy::new()),
        other => panic!("unknown policy {other}"),
    }
}

/// The redundant heterogeneous pool every chaos test uses: at least
/// two workers per kind, so a single death never makes a kind
/// unserviceable; DPR slots give the bitstream seam something to
/// poison.
fn redundant_farm(policy_name: &str, faults: FaultConfig) -> Farm {
    let mut farm = Farm::new(
        FarmConfig {
            queue_capacity: 512,
            faults,
            ..FarmConfig::default()
        },
        policy(policy_name),
    );
    farm.add_worker(IDCT);
    farm.add_worker(DFT64);
    farm.add_dpr_worker(&[(IDCT, 40_000), (COPY3, 40_000)]);
    farm.add_dpr_worker(&[(COPY3, 40_000), (DFT64, 60_000)]);
    farm
}

/// Serves `specs` to completion and returns the farm (panicking on
/// stall — chaos must never wedge the pool).
fn serve(farm: &mut Farm, specs: Vec<JobSpec>) {
    for spec in specs {
        farm.submit(spec)
            .expect("queue sized for the whole workload");
    }
    farm.run_until_idle(400_000_000)
        .expect("fault-tolerant farm finishes every campaign");
}

/// Outputs of a fault-free run of `specs`, keyed by job id order
/// (ids are assigned sequentially from 0 in submission order).
fn baseline_outputs(policy_name: &str, specs: Vec<JobSpec>) -> HashMap<u64, Vec<u32>> {
    let mut farm = redundant_farm(policy_name, FaultConfig::default());
    serve(&mut farm, specs);
    farm.records()
        .iter()
        .map(|r| (r.id.0, r.output.clone()))
        .collect()
}

/// The invariants every chaos run must hold, regardless of what was
/// injected: books balance, nothing stranded, nothing leaked, and
/// every surviving output is bit-exact against the fault-free run.
fn assert_campaign_invariants(farm: &Farm, submitted: u64, baseline: &HashMap<u64, Vec<u32>>) {
    let report = farm.report();
    assert_eq!(report.jobs_admitted, submitted, "no rejections expected");
    assert_eq!(
        report.jobs_admitted,
        report.jobs_completed + report.jobs_failed_permanent,
        "every admitted job must end as completed or failed — none stranded"
    );
    assert_eq!(
        farm.records().len() as u64,
        submitted,
        "every admitted job has a record"
    );
    assert_eq!(farm.queue_len(), 0);
    assert_eq!(farm.parked_len(), 0);
    assert_eq!(farm.in_flight(), 0);
    assert_eq!(report.alloc.words_in_use, 0, "no leaked bank leases");
    assert_eq!(
        report.alloc.allocs, report.alloc.frees,
        "every lease returned"
    );
    for r in farm.records() {
        match &r.outcome {
            JobOutcome::Completed { attempts } => {
                assert!(*attempts >= 1);
                assert_eq!(
                    &r.output, &baseline[&r.id.0],
                    "surviving {} output must be bit-exact vs the fault-free run",
                    r.id
                );
                assert_eq!(
                    r.output,
                    r.kind.expected_output(
                        // Baseline outputs equal golden outputs, so the
                        // golden model cross-checks both runs at once.
                        &golden_input_for(r.id.0, baseline.len())
                    ),
                    "surviving {} output must match the golden model",
                    r.id
                );
            }
            JobOutcome::FailedPermanent { attempts, .. } => {
                assert!(r.output.is_empty(), "failed jobs carry no output");
                assert!(*attempts <= farm_max_attempts(), "budget respected");
            }
            JobOutcome::DeadlineMissed { .. } | JobOutcome::ShedOverload => {
                panic!(
                    "{} reported a liveness outcome in a campaign with no deadlines or \
                     shedding configured",
                    r.id
                )
            }
        }
    }
}

/// Reconstructs the input of job `id` from the workload generator (the
/// generator is deterministic, so tests never need to store inputs).
fn golden_input_for(id: u64, n: usize) -> Vec<u32> {
    let mut rng = XorShift64::new(CAMPAIGN_SEED);
    let mut input = Vec::new();
    for i in 0..n as u64 {
        let kind = match i % 3 {
            0 => IDCT,
            1 => DFT64,
            _ => COPY3,
        };
        let p = payload(kind, &mut rng);
        if i == id {
            input = p;
            break;
        }
    }
    input
}

fn farm_max_attempts() -> u32 {
    CAMPAIGN_FAULTS.max_attempts
}

/// Workload seed shared by every campaign in this file.
const CAMPAIGN_SEED: u64 = 0x0CEA_0A27;

/// The campaign fault policy: a generous retry budget and a cooldown,
/// so every retryable job can eventually complete.
const CAMPAIGN_FAULTS: FaultConfig = FaultConfig {
    max_attempts: 10,
    retry_backoff: 500,
    fault_window: 40_000,
    quarantine_threshold: 3,
    quarantine_cooldown: Some(60_000),
    fail_fast: false,
};

// ───────────────────────── regression pins ─────────────────────────

/// THE bugfix pin: before fault tolerance, one worker fault aborted
/// `run_until_idle`, stranded every in-flight job and leaked their
/// leased banks. Now the fault is absorbed, the job retries on the
/// *other* worker, and the ledger drains to zero.
#[test]
fn single_fault_retries_on_alternate_worker_without_leaking() {
    let mut farm = Farm::new(FarmConfig::default(), Box::new(FifoPolicy::new()));
    farm.add_worker(IDCT);
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(7);
    for _ in 0..6 {
        farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
            .unwrap();
    }
    // Let dispatch land jobs on both workers, then kill worker 0
    // mid-job.
    while farm.workers()[0].is_idle() {
        farm.tick();
    }
    let leased_mid_job = farm.leased_words();
    assert!(leased_mid_job > 0, "worker 0 is serving a leased job");
    farm.inject_worker_fault(
        0,
        ExecError::Injected {
            cause: "test: upset",
        },
    );

    let cycles = farm
        .run_until_idle(50_000_000)
        .expect("a single fault must not abort the run");
    assert!(cycles > 0);

    let report = farm.report();
    assert_eq!(report.jobs_completed, 6, "no job lost to the fault");
    assert_eq!(report.jobs_failed_permanent, 0);
    assert_eq!(report.worker_faults, 1);
    assert_eq!(report.retries, 1);
    assert_eq!(
        report.alloc.words_in_use, 0,
        "the faulted job's leases were freed"
    );

    // The bounced job carries the attempt count and landed on worker 1.
    let retried: Vec<_> = farm
        .records()
        .iter()
        .filter(|r| r.outcome.attempts() == 2)
        .collect();
    assert_eq!(retried.len(), 1);
    assert_eq!(retried[0].worker, 1, "retry avoided the faulted worker");
    // Worker 0 recovered into Degraded and is still serving.
    assert_eq!(farm.workers()[0].health(), WorkerHealth::Degraded);
    assert_eq!(farm.workers()[0].faults_total(), 1);
}

/// `fail_fast` restores the legacy abort — but even failing fast, the
/// dead job's leases come back and it gets a permanent-failure record.
#[test]
fn fail_fast_aborts_loudly_but_still_leaks_nothing() {
    let mut farm = Farm::new(
        FarmConfig {
            faults: FaultConfig {
                fail_fast: true,
                ..FaultConfig::default()
            },
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(IDCT);
    let mut rng = XorShift64::new(7);
    for _ in 0..2 {
        farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
            .unwrap();
    }
    while farm.workers()[0].is_idle() {
        farm.tick();
    }
    farm.inject_worker_fault(
        0,
        ExecError::Injected {
            cause: "test: upset",
        },
    );
    let err = farm.run_until_idle(50_000_000).unwrap_err();
    assert!(
        matches!(err, FarmError::WorkerFault { worker: 0, .. }),
        "fail-fast surfaces the fault as an error: {err}"
    );
    assert_eq!(
        farm.leased_words(),
        0,
        "even an aborting run frees the leases"
    );
    let failed: Vec<_> = farm
        .records()
        .iter()
        .filter(|r| !r.outcome.is_completed())
        .collect();
    assert_eq!(
        failed.len(),
        1,
        "the dead job got a permanent-failure record"
    );
}

/// The circuit breaker: a worker that keeps faulting is quarantined
/// permanently (no cooldown), its kind loses service, and admission
/// starts rejecting the kind up front.
#[test]
fn breaker_permanently_quarantines_flaky_worker() {
    let mut farm = Farm::new(
        FarmConfig {
            faults: FaultConfig {
                max_attempts: 3,
                quarantine_threshold: 1,
                quarantine_cooldown: None,
                ..FaultConfig::default()
            },
            ..FarmConfig::default()
        },
        Box::new(FifoPolicy::new()),
    );
    farm.add_worker(DFT64); // worker 0: the only DFT worker
    farm.add_worker(IDCT); // worker 1: unaffected bystander
    let mut rng = XorShift64::new(11);
    for _ in 0..2 {
        farm.submit(JobSpec::new(DFT64, payload(DFT64, &mut rng)))
            .unwrap();
        farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
            .unwrap();
    }
    while farm.workers()[0].is_idle() {
        farm.tick();
    }
    farm.inject_worker_fault(
        0,
        ExecError::Injected {
            cause: "test: dead silicon",
        },
    );
    farm.run_until_idle(50_000_000)
        .expect("losing one kind must not wedge the others");

    let report = farm.report();
    assert_eq!(farm.workers()[0].health(), WorkerHealth::Quarantined);
    assert!(farm.workers()[0].is_permanently_dead());
    assert_eq!(report.quarantines, 1);
    assert_eq!(report.jobs_completed, 2, "both IDCT jobs served");
    assert_eq!(
        report.jobs_failed_permanent, 2,
        "both DFT jobs failed cleanly (in-flight + queued)"
    );
    assert_eq!(
        report.jobs_admitted,
        report.jobs_completed + report.jobs_failed_permanent
    );
    assert_eq!(report.alloc.words_in_use, 0);

    // The pool now refuses the dead kind at admission.
    assert_eq!(
        farm.submit(JobSpec::new(DFT64, payload(DFT64, &mut rng))),
        Err(SubmitError::NoCapableWorker { kind: DFT64 })
    );
    // The surviving kind still serves.
    farm.submit(JobSpec::new(IDCT, payload(IDCT, &mut rng)))
        .unwrap();
    farm.run_until_idle(50_000_000).unwrap();
    assert_eq!(farm.report().jobs_completed, 3);
}

// ───────────────────────── the chaos matrix ─────────────────────────

/// One matrix cell: a campaign with exactly one seam armed, under one
/// policy. Returns the injected-fault count for that seam so the sweep
/// can prove every seam actually fired.
fn run_matrix_cell(policy_name: &str, seam: &str) -> u64 {
    let n = 48;
    let specs = workload(n, CAMPAIGN_SEED);
    let baseline = baseline_outputs(policy_name, specs.clone());

    let mut config = ChaosConfig {
        seed: 0xC4A0_5EED ^ seam.len() as u64,
        controller_one_in: 0,
        bus_one_in: 0,
        bitstream_one_in: 0,
        alloc_one_in: 0,
        alloc_hold: 3_000,
        wedge_one_in: 0,
        slow_one_in: 0,
        slow_stall: 0,
    };
    match seam {
        "controller" => config.controller_one_in = 15_000,
        "bus" => config.bus_one_in = 12_000,
        "bitstream" => config.bitstream_one_in = 3_000,
        "alloc" => config.alloc_one_in = 4_000,
        other => panic!("unknown seam {other}"),
    }

    let mut farm = redundant_farm(policy_name, CAMPAIGN_FAULTS.clone());
    farm.arm_chaos(FaultPlan::new(config));
    serve(&mut farm, specs);
    assert_campaign_invariants(&farm, n as u64, &baseline);

    let stats = farm.chaos_stats().expect("campaign was armed");
    match seam {
        "controller" => stats.controller_faults,
        "bus" => stats.bus_faults,
        "bitstream" => stats.bitstream_faults,
        _ => stats.alloc_squats,
    }
}

/// The seeded sweep over {controller, bus, bitstream, alloc} ×
/// {FIFO, round-robin, DPR-affinity}: every cell must satisfy the
/// campaign invariants, and every seam must have fired at least once
/// somewhere in the sweep (otherwise the sweep proves nothing).
#[test]
fn chaos_matrix_sweep_survives_every_seam_under_every_policy() {
    for seam in ["controller", "bus", "bitstream", "alloc"] {
        let mut injected = 0;
        for policy_name in ["fifo", "round-robin", "dpr-affinity"] {
            injected += run_matrix_cell(policy_name, seam);
        }
        assert!(
            injected > 0,
            "the {seam} seam never fired across any policy — rates too low to test anything"
        );
    }
}

// ──────────────────── the full acceptance campaign ───────────────────

/// The acceptance campaign: 240 mixed jobs with all four seams armed
/// hot enough for a ≥10% fault rate. Zero stranded jobs, zero leaked
/// leases, every retryable job eventually completes, all outputs
/// bit-exact vs the fault-free baseline, counters reconcile exactly.
#[test]
fn full_chaos_campaign_completes_every_retryable_job() {
    let n = 240;
    let specs = workload(n, CAMPAIGN_SEED);
    let baseline = baseline_outputs("round-robin", specs.clone());

    let mut farm = redundant_farm("round-robin", CAMPAIGN_FAULTS.clone());
    farm.arm_chaos(FaultPlan::new(ChaosConfig {
        seed: 0xFA11_FA57,
        controller_one_in: 25_000,
        bus_one_in: 20_000,
        bitstream_one_in: 4_000,
        alloc_one_in: 6_000,
        alloc_hold: 3_000,
        wedge_one_in: 0,
        slow_one_in: 0,
        slow_stall: 0,
    }));
    serve(&mut farm, specs);
    assert_campaign_invariants(&farm, n as u64, &baseline);

    let report = farm.report();
    let stats = farm.chaos_stats().unwrap();
    assert!(
        stats.controller_faults > 0
            && stats.bus_faults > 0
            && stats.bitstream_faults > 0
            && stats.alloc_squats > 0,
        "all four seams must fire in the acceptance campaign: {stats:?}"
    );
    assert!(
        stats.worker_faults() + stats.alloc_squats >= n as u64 / 10,
        "fault rate below 10%: {stats:?}"
    );
    assert_eq!(report.worker_faults, stats.worker_faults());
    assert_eq!(
        report.jobs_completed, n as u64,
        "with redundancy, a retry budget of {} and cooldown quarantine, every \
         retryable job must eventually complete ({} failed)",
        CAMPAIGN_FAULTS.max_attempts, report.jobs_failed_permanent
    );
    assert!(
        report.retries > 0,
        "faults mid-job must have forced retries"
    );
}
