//! End-to-end tests of the `ouas` assembler/disassembler CLI.

use std::fs;
use std::process::Command;

fn ouas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ouas"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ouas_test_{}_{name}", std::process::id()));
    p
}

const SOURCE: &str = "\
// quickstart microcode
mvtc BANK1,0,DMA64,FIFO0
execs
mvfc BANK2,0,DMA64,FIFO0
eop
";

#[test]
fn asm_to_stdout() {
    let src = temp_path("a.s");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas().arg("asm").arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 4);
    assert!(text.lines().all(|l| l.starts_with("0x")));
    fs::remove_file(src).ok();
}

#[test]
fn asm_dis_round_trip() {
    let src = temp_path("b.s");
    let hex = temp_path("b.hex");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas()
        .args(["asm"])
        .arg(&src)
        .arg("-o")
        .arg(&hex)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = ouas().arg("dis").arg(&hex).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mvtc BANK1,0,DMA64,FIFO0"));
    assert!(text.contains("execs"));
    assert!(text.contains("eop"));
    fs::remove_file(src).ok();
    fs::remove_file(hex).ok();
}

#[test]
fn check_reports_statistics() {
    let src = temp_path("c.s");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas().arg("check").arg(&src).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("4 instructions"));
    assert!(text.contains("128 data words"));
    fs::remove_file(src).ok();
}

#[test]
fn syntax_error_reports_line_and_fails() {
    let src = temp_path("d.s");
    fs::write(&src, "nop\nfrobnicate\neop\n").unwrap();
    let out = ouas().arg("asm").arg(&src).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("line 2"), "{text}");
    assert!(text.contains("frobnicate"));
    fs::remove_file(src).ok();
}

#[test]
fn dis_rejects_bad_hex() {
    let hex = temp_path("e.hex");
    fs::write(&hex, "0xdeadbeef\nnot-hex\n").unwrap();
    let out = ouas().arg("dis").arg(&hex).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    fs::remove_file(hex).ok();
}

#[test]
fn dis_rejects_invalid_program() {
    // A reserved opcode word.
    let hex = temp_path("f.hex");
    fs::write(&hex, format!("{:#010x}\n", 31u32 << 27)).unwrap();
    let out = ouas().arg("dis").arg(&hex).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("reserved opcode"));
    fs::remove_file(hex).ok();
}

#[test]
fn usage_on_no_arguments() {
    let out = ouas().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_reported() {
    let out = ouas()
        .args(["asm", "/nonexistent/path.s"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
