//! Randomized invariant tests for the Ouessant ISA: encoding, assembly
//! and program invariants hold for *arbitrary* operand values, not just
//! the paper's examples.
//!
//! These used to be `proptest` properties; the workspace now builds
//! offline, so the same invariants are exercised with the in-repo
//! [`XorShift64`] generator over fixed seeds (deterministic, no
//! shrinking, but the domains are identical).

use ouessant_isa::{
    assemble, disassemble, Bank, BurstLen, Counter, FifoId, Instruction, Offset, OffsetReg,
    ProgAddr, Program, ProgramBuilder,
};
use ouessant_sim::rng::XorShift64;

/// Draws one instruction uniformly across the full operand domains
/// (the same strategy space the proptest version generated).
fn arb_instruction(rng: &mut XorShift64, max_target: u16) -> Instruction {
    match rng.gen_range_u32(0..15) {
        0 => Instruction::Nop,
        1 => Instruction::Mvtc {
            bank: Bank::new(rng.gen_range_u32(0..8) as u8).unwrap(),
            offset: Offset::new(rng.gen_range_u32(0..16384) as u16).unwrap(),
            burst: BurstLen::new(rng.gen_range_u32(1..257) as u16).unwrap(),
            fifo: FifoId::new(rng.gen_range_u32(0..4) as u8).unwrap(),
        },
        2 => Instruction::Mvfc {
            bank: Bank::new(rng.gen_range_u32(0..8) as u8).unwrap(),
            offset: Offset::new(rng.gen_range_u32(0..16384) as u16).unwrap(),
            burst: BurstLen::new(rng.gen_range_u32(1..257) as u16).unwrap(),
            fifo: FifoId::new(rng.gen_range_u32(0..4) as u8).unwrap(),
        },
        3 => Instruction::Exec {
            op: rng.next_u32() as u16,
        },
        4 => Instruction::Execn {
            op: rng.next_u32() as u16,
        },
        5 => Instruction::Wrac,
        6 => Instruction::Ldc {
            counter: Counter::new(rng.gen_range_u32(0..4) as u8).unwrap(),
            imm: rng.gen_range_u32(0..16384) as u16,
        },
        7 => Instruction::Djnz {
            counter: Counter::new(rng.gen_range_u32(0..4) as u8).unwrap(),
            target: ProgAddr::new(rng.gen_range_u32(0..u32::from(max_target)) as u16).unwrap(),
        },
        8 => Instruction::Ldo {
            reg: OffsetReg::new(rng.gen_range_u32(0..4) as u8).unwrap(),
            imm: rng.gen_range_u32(0..16384) as u16,
        },
        9 => Instruction::Addo {
            reg: OffsetReg::new(rng.gen_range_u32(0..4) as u8).unwrap(),
            delta: rng.gen_range_i32(-8192..8192) as i16,
        },
        10 => Instruction::Mvtcr {
            bank: Bank::new(rng.gen_range_u32(0..8) as u8).unwrap(),
            reg: OffsetReg::new(rng.gen_range_u32(0..4) as u8).unwrap(),
            burst: BurstLen::new(rng.gen_range_u32(1..257) as u16).unwrap(),
            fifo: FifoId::new(rng.gen_range_u32(0..4) as u8).unwrap(),
        },
        11 => Instruction::Mvfcr {
            bank: Bank::new(rng.gen_range_u32(0..8) as u8).unwrap(),
            reg: OffsetReg::new(rng.gen_range_u32(0..4) as u8).unwrap(),
            burst: BurstLen::new(rng.gen_range_u32(1..257) as u16).unwrap(),
            fifo: FifoId::new(rng.gen_range_u32(0..4) as u8).unwrap(),
        },
        12 => Instruction::Wait {
            cycles: rng.gen_range_u32(0..16384) as u16,
        },
        13 => Instruction::Sync,
        _ => Instruction::Rcfg {
            slot: rng.gen_range_u32(0..16384) as u16,
        },
    }
}

/// decode(encode(i)) == i for every representable instruction.
#[test]
fn encode_decode_identity() {
    let mut rng = XorShift64::new(0x15A_0001);
    for _ in 0..2000 {
        let insn = arb_instruction(&mut rng, 1024);
        let word = insn.encode();
        assert_eq!(Instruction::decode(word).unwrap(), insn, "{insn:?}");
    }
}

/// Every word that decodes re-encodes to the identical word (canonical
/// encoding: decode is injective on its domain).
#[test]
fn decode_encode_identity() {
    let mut rng = XorShift64::new(0x15A_0002);
    for _ in 0..20_000 {
        let word = rng.next_u32();
        if let Ok(insn) = Instruction::decode(word) {
            assert_eq!(insn.encode(), word, "{insn:?}");
        }
    }
}

/// Assembler and disassembler are mutual inverses over random programs.
#[test]
fn disassemble_assemble_round_trip() {
    let mut rng = XorShift64::new(0x15A_0003);
    for _ in 0..256 {
        let body_len = rng.gen_range_u32(0..40) as usize;
        let len = body_len as u16 + 1;
        let mut instructions: Vec<Instruction> = (0..body_len)
            .map(|_| match arb_instruction(&mut rng, 1) {
                // Give djnz targets a valid range by re-targeting them
                // into the final program.
                Instruction::Djnz { counter, target } => Instruction::Djnz {
                    counter,
                    target: ProgAddr::new(target.value() % len).unwrap(),
                },
                other => other,
            })
            .collect();
        instructions.push(Instruction::Eop);
        let program = Program::new(instructions).unwrap();
        let text = disassemble(&program);
        let back = assemble(&text).unwrap();
        assert_eq!(back, program);
    }
}

/// Program encoding to memory words and back is the identity.
#[test]
fn program_words_round_trip() {
    let mut rng = XorShift64::new(0x15A_0004);
    for _ in 0..256 {
        let body_len = rng.gen_range_u32(0..60) as usize;
        let mut instructions: Vec<Instruction> = (0..body_len)
            .map(|_| arb_instruction(&mut rng, 1))
            .filter(|i| !matches!(i, Instruction::Djnz { .. }))
            .collect();
        instructions.push(Instruction::Eop);
        let program = Program::new(instructions).unwrap();
        assert_eq!(Program::from_words(&program.to_words()).unwrap(), program);
    }
}

/// The builder's chunked transfer generators move exactly the requested
/// number of words, regardless of chunk size.
#[test]
fn chunked_transfer_is_exact() {
    let mut rng = XorShift64::new(0x15A_0005);
    for _ in 0..500 {
        let total = rng.gen_range_u32(1..960);
        let chunk = rng.gen_range_u32(1..257) as u16;
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, total, chunk, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        assert_eq!(
            p.static_words_transferred(),
            u64::from(total),
            "total={total} chunk={chunk}"
        );
    }
}

/// Unrolled (Figure 4 style) and looped (extension ISA) transfer
/// programs declare the same total word count.
#[test]
fn unrolled_and_looped_agree() {
    for chunks in 1u16..64 {
        let unrolled = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, u32::from(chunks) * 64, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let looped = ProgramBuilder::new()
            .ldc(0, chunks)
            .unwrap()
            .ldo(0, 0)
            .unwrap()
            .mvtcr(1, 0, 64, 0)
            .unwrap()
            .djnz(0, 2)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        assert_eq!(
            unrolled.static_words_transferred(),
            looped.static_words_transferred()
        );
    }
}
