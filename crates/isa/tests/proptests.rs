//! Property tests for the Ouessant ISA: encoding, assembly and program
//! invariants hold for *arbitrary* operand values, not just the paper's
//! examples.

use proptest::prelude::*;

use ouessant_isa::{
    assemble, disassemble, Bank, BurstLen, Counter, FifoId, Instruction, Offset, OffsetReg,
    ProgAddr, Program, ProgramBuilder,
};

fn arb_instruction(max_target: u16) -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        (0u8..8, 0u16..16384, 1u16..=256, 0u8..4).prop_map(|(b, o, l, f)| Instruction::Mvtc {
            bank: Bank::new(b).unwrap(),
            offset: Offset::new(o).unwrap(),
            burst: BurstLen::new(l).unwrap(),
            fifo: FifoId::new(f).unwrap(),
        }),
        (0u8..8, 0u16..16384, 1u16..=256, 0u8..4).prop_map(|(b, o, l, f)| Instruction::Mvfc {
            bank: Bank::new(b).unwrap(),
            offset: Offset::new(o).unwrap(),
            burst: BurstLen::new(l).unwrap(),
            fifo: FifoId::new(f).unwrap(),
        }),
        any::<u16>().prop_map(|op| Instruction::Exec { op }),
        any::<u16>().prop_map(|op| Instruction::Execn { op }),
        Just(Instruction::Wrac),
        (0u8..4, 0u16..16384).prop_map(|(c, imm)| Instruction::Ldc {
            counter: Counter::new(c).unwrap(),
            imm,
        }),
        (0u8..4, 0..max_target).prop_map(|(c, t)| Instruction::Djnz {
            counter: Counter::new(c).unwrap(),
            target: ProgAddr::new(t).unwrap(),
        }),
        (0u8..4, 0u16..16384).prop_map(|(r, imm)| Instruction::Ldo {
            reg: OffsetReg::new(r).unwrap(),
            imm,
        }),
        (0u8..4, -8192i16..=8191).prop_map(|(r, d)| Instruction::Addo {
            reg: OffsetReg::new(r).unwrap(),
            delta: d,
        }),
        (0u8..8, 0u8..4, 1u16..=256, 0u8..4).prop_map(|(b, r, l, f)| Instruction::Mvtcr {
            bank: Bank::new(b).unwrap(),
            reg: OffsetReg::new(r).unwrap(),
            burst: BurstLen::new(l).unwrap(),
            fifo: FifoId::new(f).unwrap(),
        }),
        (0u8..8, 0u8..4, 1u16..=256, 0u8..4).prop_map(|(b, r, l, f)| Instruction::Mvfcr {
            bank: Bank::new(b).unwrap(),
            reg: OffsetReg::new(r).unwrap(),
            burst: BurstLen::new(l).unwrap(),
            fifo: FifoId::new(f).unwrap(),
        }),
        (0u16..16384).prop_map(|cycles| Instruction::Wait { cycles }),
        Just(Instruction::Sync),
        (0u16..16384).prop_map(|slot| Instruction::Rcfg { slot }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every representable instruction.
    #[test]
    fn encode_decode_identity(insn in arb_instruction(1024)) {
        let word = insn.encode();
        prop_assert_eq!(Instruction::decode(word).unwrap(), insn);
    }

    /// Every word that decodes re-encodes to the identical word
    /// (canonical encoding: decode is injective on its domain).
    #[test]
    fn decode_encode_identity(word in any::<u32>()) {
        if let Ok(insn) = Instruction::decode(word) {
            prop_assert_eq!(insn.encode(), word);
        }
    }

    /// Assembler and disassembler are mutual inverses over random
    /// programs.
    #[test]
    fn disassemble_assemble_round_trip(
        body in prop::collection::vec(arb_instruction(1), 0..40)
    ) {
        // Give djnz targets a valid range by re-targeting them into the
        // final program, then terminate.
        let len = body.len() as u16 + 1;
        let body: Vec<Instruction> = body
            .into_iter()
            .map(|i| match i {
                Instruction::Djnz { counter, target } => Instruction::Djnz {
                    counter,
                    target: ProgAddr::new(target.value() % len).unwrap(),
                },
                other => other,
            })
            .collect();
        let mut instructions = body;
        instructions.push(Instruction::Eop);
        let program = Program::new(instructions).unwrap();
        let text = disassemble(&program);
        let back = assemble(&text).unwrap();
        prop_assert_eq!(back, program);
    }

    /// Program encoding to memory words and back is the identity.
    #[test]
    fn program_words_round_trip(
        body in prop::collection::vec(arb_instruction(1), 0..60)
    ) {
        let mut instructions: Vec<Instruction> = body
            .into_iter()
            .filter(|i| !matches!(i, Instruction::Djnz { .. }))
            .collect();
        instructions.push(Instruction::Eop);
        let program = Program::new(instructions).unwrap();
        prop_assert_eq!(Program::from_words(&program.to_words()).unwrap(), program);
    }

    /// The builder's chunked transfer generators move exactly the
    /// requested number of words, regardless of chunk size.
    #[test]
    fn chunked_transfer_is_exact(total in 1u32..960, chunk in 1u16..=256) {
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, total, chunk, 0).unwrap()
            .eop()
            .finish()
            .unwrap();
        prop_assert_eq!(p.static_words_transferred(), u64::from(total));
    }

    /// Unrolled (Figure 4 style) and looped (extension ISA) transfer
    /// programs declare the same total word count.
    #[test]
    fn unrolled_and_looped_agree(chunks in 1u16..64) {
        let unrolled = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, u32::from(chunks) * 64, 64, 0).unwrap()
            .eop()
            .finish()
            .unwrap();
        let looped = ProgramBuilder::new()
            .ldc(0, chunks).unwrap()
            .ldo(0, 0).unwrap()
            .mvtcr(1, 0, 64, 0).unwrap()
            .djnz(0, 2).unwrap()
            .eop()
            .finish()
            .unwrap();
        prop_assert_eq!(
            unrolled.static_words_transferred(),
            looped.static_words_transferred()
        );
    }
}
