//! Microcode optimization passes.
//!
//! The paper's Figure 4 microcode is written (or generated) naively: one
//! `mvtc` per 64-word chunk. Every transfer instruction costs a
//! fetch/decode/issue overhead on the unpipelined controller, and every
//! burst start re-pays bus arbitration — so fewer, larger transfers are
//! strictly faster (ablation A1). This module provides equivalence-
//! preserving rewrites:
//!
//! * [`coalesce_transfers`] — merges adjacent `mvtc`/`mvfc` to
//!   contiguous addresses of the same bank/FIFO into maximal bursts
//!   (up to the DMA256 limit);
//! * [`rollup_loops`] — replaces long unrolled chunk sequences with the
//!   extension ISA's `ldc`/`mvtcr`/`djnz` loop, shrinking the program
//!   store footprint (and with it the program-load time);
//! * [`optimize`] — the standard pipeline (coalesce, then roll up).
//!
//! All passes preserve the transfer semantics exactly: same words, same
//! order, same FIFOs — verified by property tests against
//! [`Program::static_words_transferred`] and by full-system equivalence
//! tests in the workspace integration suite.

use crate::instruction::Instruction;
use crate::operands::{BurstLen, Counter, OffsetReg, ProgAddr, MAX_BURST};
use crate::program::{Program, ValidateError};
use crate::transfer::{Transfer, TransferOffset};

/// Statistics of an optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Instructions before.
    pub before: usize,
    /// Instructions after.
    pub after: usize,
    /// Transfers merged by coalescing.
    pub coalesced: usize,
    /// Loops introduced by roll-up.
    pub loops_created: usize,
}

/// Merges adjacent same-direction transfers with contiguous addresses
/// into maximal bursts.
///
/// Two transfers merge when they target the same bank and FIFO, the
/// second starts exactly where the first ended, and the combined length
/// stays within [`MAX_BURST`]. Immediate-offset forms only (`mvtcr`
/// post-increments are already loop-shaped).
///
/// # Errors
///
/// Returns [`ValidateError`] only if the input program was already
/// invalid (cannot happen for values constructed through [`Program`]).
pub fn coalesce_transfers(program: &Program) -> Result<(Program, OptStats), ValidateError> {
    let mut out: Vec<Instruction> = Vec::with_capacity(program.len());
    let mut coalesced = 0usize;
    // Branch targets must stay valid: only coalesce when the program has
    // no djnz at all (the common generated case); otherwise bail out to
    // the identity.
    let has_branches = program
        .iter()
        .any(|i| matches!(i, Instruction::Djnz { .. }));
    if has_branches {
        let stats = OptStats {
            before: program.len(),
            after: program.len(),
            ..OptStats::default()
        };
        return Ok((program.clone(), stats));
    }

    for (index, insn) in program.iter().enumerate() {
        let merged = match (out.last_mut(), Transfer::from_instruction(index, insn)) {
            (Some(last), Some(next)) => match Transfer::from_instruction(index - 1, last) {
                Some(prev)
                    if prev.is_contiguous_with(&next)
                        && u32::from(prev.burst.words()) + u32::from(next.burst.words())
                            <= MAX_BURST =>
                {
                    let mut widened = prev;
                    widened.burst = BurstLen::new(prev.burst.words() + next.burst.words())
                        .expect("bounded by MAX_BURST");
                    *last = widened.to_instruction();
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if merged {
            coalesced += 1;
        } else {
            out.push(*insn);
        }
    }

    let stats = OptStats {
        before: program.len(),
        after: out.len(),
        coalesced,
        ..OptStats::default()
    };
    Program::new(out).map(|p| (p, stats))
}

/// Minimum run length worth converting into a hardware loop.
const MIN_ROLLUP: usize = 4;

/// Replaces runs of equal-stride transfers with `ldo`/`ldc`/`mv?cr`/
/// `djnz` loops.
///
/// A run qualifies when at least `MIN_ROLLUP` (4) consecutive transfers
/// share direction, bank, FIFO and burst length, and each starts where
/// the previous ended. The rewrite uses offset register `O0`/`O1` and
/// counter `R0`/`R1` for to-/from-coprocessor runs respectively (the
/// registers the generated Figure 4 style code never uses otherwise).
///
/// # Errors
///
/// Returns [`ValidateError`] if the rewritten program fails validation
/// (cannot happen for branch-free inputs).
pub fn rollup_loops(program: &Program) -> Result<(Program, OptStats), ValidateError> {
    let has_branches = program
        .iter()
        .any(|i| matches!(i, Instruction::Djnz { .. }));
    if has_branches {
        let stats = OptStats {
            before: program.len(),
            after: program.len(),
            ..OptStats::default()
        };
        return Ok((program.clone(), stats));
    }

    let insns = program.instructions();
    let mut out: Vec<Instruction> = Vec::new();
    let mut loops_created = 0usize;
    let mut i = 0usize;
    while i < insns.len() {
        // Detect a run starting at i.
        let run_len = run_length(&insns[i..]);
        if run_len >= MIN_ROLLUP {
            let head = Transfer::from_instruction(i, &insns[i])
                .expect("run_length only reports transfer runs");
            let start = head
                .start_offset()
                .expect("run_length only reports immediate-offset runs");
            let (oreg, creg) = if head.to_coprocessor {
                (0u8, 0u8)
            } else {
                (1u8, 1u8)
            };
            let reg = OffsetReg::new(oreg).expect("register id valid");
            out.push(Instruction::Ldo {
                reg,
                imm: start as u16,
            });
            out.push(Instruction::Ldc {
                counter: Counter::new(creg).expect("counter id valid"),
                imm: run_len as u16,
            });
            let body_pc = out.len();
            out.push(
                Transfer {
                    offset: TransferOffset::Register(reg),
                    ..head
                }
                .to_instruction(),
            );
            out.push(Instruction::Djnz {
                counter: Counter::new(creg).expect("counter id valid"),
                target: ProgAddr::new(body_pc as u16).expect("program fits the store"),
            });
            loops_created += 1;
            i += run_len;
        } else {
            out.push(insns[i]);
            i += 1;
        }
    }

    let stats = OptStats {
        before: program.len(),
        after: out.len(),
        loops_created,
        ..OptStats::default()
    };
    Program::new(out).map(|p| (p, stats))
}

fn run_length(insns: &[Instruction]) -> usize {
    let Some(mut prev) = insns.first().and_then(|i| Transfer::from_instruction(0, i)) else {
        return 0;
    };
    if prev.start_offset().is_none() {
        return 0; // register-form transfers are already loop-shaped
    }
    let mut len = 1usize;
    for insn in &insns[1..] {
        match Transfer::from_instruction(len, insn) {
            Some(next) if next.burst == prev.burst && prev.is_contiguous_with(&next) => {
                prev = next;
                len += 1;
            }
            _ => break,
        }
    }
    len
}

/// The standard pipeline: coalesce into maximal bursts, then roll the
/// remaining runs into loops.
///
/// # Errors
///
/// See the individual passes.
///
/// # Examples
///
/// Figure 4's 18 instructions shrink considerably:
///
/// ```
/// use ouessant_isa::{assemble, FIGURE4_SOURCE};
/// use ouessant_isa::opt::optimize;
///
/// let original = assemble(FIGURE4_SOURCE)?;
/// let (optimized, stats) = optimize(&original)?;
/// assert!(optimized.len() < original.len());
/// assert_eq!(
///     optimized.static_words_transferred(),
///     original.static_words_transferred()
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(program: &Program) -> Result<(Program, OptStats), ValidateError> {
    let (coalesced, s1) = coalesce_transfers(program)?;
    let (rolled, s2) = rollup_loops(&coalesced)?;
    Ok((
        rolled,
        OptStats {
            before: s1.before,
            after: s2.after,
            coalesced: s1.coalesced,
            loops_created: s2.loops_created,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{assemble, FIGURE4_SOURCE};
    use crate::program::ProgramBuilder;

    #[test]
    fn figure4_coalesces_to_dma256() {
        // 8 x DMA64 at contiguous offsets -> 2 x DMA256 per direction.
        let p = assemble(FIGURE4_SOURCE).unwrap();
        let (c, stats) = coalesce_transfers(&p).unwrap();
        // 18 -> 2 + execs + 2 + eop = 6.
        assert_eq!(c.len(), 6);
        assert_eq!(stats.coalesced, 12);
        assert_eq!(c.static_words_transferred(), 1024);
    }

    #[test]
    fn coalescing_respects_burst_limit() {
        // 5 x DMA64 = 320 words > 256: must split as 256 + 64.
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 320, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (c, _) = coalesce_transfers(&p).unwrap();
        assert_eq!(c.len(), 3); // DMA256 + DMA64 + eop
        assert_eq!(c.static_words_transferred(), 320);
    }

    #[test]
    fn non_contiguous_transfers_not_merged() {
        let p = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0)
            .unwrap()
            .mvtc(1, 128, 64, 0) // gap at 64..128
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (c, stats) = coalesce_transfers(&p).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn different_fifos_not_merged() {
        let p = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0)
            .unwrap()
            .mvtc(1, 64, 64, 1)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (c, _) = coalesce_transfers(&p).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn rollup_creates_loops() {
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 512, 64, 0)
            .unwrap()
            .execs()
            .transfer_from_coprocessor(2, 0, 512, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (r, stats) = rollup_loops(&p).unwrap();
        assert_eq!(stats.loops_created, 2);
        // ldo+ldc+mvtcr+djnz + execs + ldo+ldc+mvfcr+djnz + eop = 10.
        assert_eq!(r.len(), 10);
        assert_eq!(r.static_words_transferred(), 1024);
    }

    #[test]
    fn short_runs_left_alone() {
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 192, 64, 0) // 3 transfers < MIN_ROLLUP
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (r, stats) = rollup_loops(&p).unwrap();
        assert_eq!(stats.loops_created, 0);
        assert_eq!(r.len(), p.len());
    }

    #[test]
    fn programs_with_branches_left_untouched() {
        let p = assemble("ldc R0,4\nloop:\nmvtcr BANK1,O0,DMA64,FIFO0\ndjnz R0,loop\neop").unwrap();
        let (c, s1) = coalesce_transfers(&p).unwrap();
        let (r, s2) = rollup_loops(&p).unwrap();
        assert_eq!(c, p);
        assert_eq!(r, p);
        assert_eq!(s1.coalesced, 0);
        assert_eq!(s2.loops_created, 0);
    }

    #[test]
    fn optimize_pipeline_shrinks_figure4() {
        let p = assemble(FIGURE4_SOURCE).unwrap();
        let (o, stats) = optimize(&p).unwrap();
        assert!(o.len() <= 6, "got {} instructions", o.len());
        assert_eq!(stats.before, 18);
        assert_eq!(o.static_words_transferred(), 1024);
    }

    #[test]
    fn mixed_direction_runs_use_distinct_registers() {
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 256, 32, 0)
            .unwrap()
            .transfer_from_coprocessor(2, 0, 256, 32, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let (r, stats) = rollup_loops(&p).unwrap();
        assert_eq!(stats.loops_created, 2);
        // The two loops must not share a counter or offset register.
        let uses_reg = |idx: u8| {
            r.iter().any(|i| match i {
                Instruction::Mvtcr { reg, .. } => reg.value() == idx,
                _ => false,
            })
        };
        let uses_reg_from = |idx: u8| {
            r.iter().any(|i| match i {
                Instruction::Mvfcr { reg, .. } => reg.value() == idx,
                _ => false,
            })
        };
        assert!(uses_reg(0));
        assert!(uses_reg_from(1));
    }
}
