//! Strongly typed operand fields of the Ouessant instruction word.
//!
//! Each operand is a validated newtype over its raw bit field, so an
//! out-of-range bank or burst length cannot be constructed (C-NEWTYPE,
//! C-VALIDATE). The field widths mirror the interface architecture of the
//! paper's Figure 3: 8 memory banks (3 bits), a 14-bit word offset inside
//! a bank, and burst transfers of up to 256 words.

use std::error::Error;
use std::fmt;

/// Number of memory banks exposed by the Ouessant interface
/// (registers `bank 0` … `bank 7` in Figure 3).
pub const NUM_BANKS: u16 = 8;

/// Width of the in-bank word offset field, in bits (Figure 3 routes a
/// 14-bit `offset` from the controller to the interface adder).
pub const OFFSET_BITS: u32 = 14;

/// Maximum word offset inside a bank (inclusive).
pub const MAX_OFFSET: u32 = (1 << OFFSET_BITS) - 1;

/// Maximum burst length in words for a single transfer instruction.
pub const MAX_BURST: u32 = 256;

/// Number of FIFO interfaces addressable per direction.
///
/// The paper notes "the number of input and output interfaces can be
/// adapted according to the accelerator requirements" (e.g. a dedicated
/// configuration FIFO); the encoding reserves 2 bits per direction.
pub const NUM_FIFOS: u8 = 4;

/// Number of hardware loop counters (extension ISA).
pub const NUM_COUNTERS: u8 = 4;

/// Number of offset registers (extension ISA).
pub const NUM_OFFSET_REGS: u8 = 4;

/// Width of the loop-counter / wait immediates, in bits.
pub const IMM_BITS: u32 = 14;

/// Maximum immediate for `ldc`, `ldo` and `wait` (inclusive).
pub const MAX_IMM: u32 = (1 << IMM_BITS) - 1;

/// Width of the program-address field of `djnz`, in bits.
pub const PROG_ADDR_BITS: u32 = 10;

/// Maximum instruction count of an Ouessant program.
///
/// Limited by the `djnz` target field and by the size of the controller's
/// internal program store.
pub const MAX_PROGRAM_LEN: usize = 1 << PROG_ADDR_BITS;

/// An error produced when constructing an operand from an out-of-range
/// raw value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandError {
    kind: &'static str,
    value: u32,
    max: u32,
}

impl OperandError {
    fn new(kind: &'static str, value: u32, max: u32) -> Self {
        Self { kind, value, max }
    }

    /// The operand kind that failed to validate (e.g. `"bank"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The offending raw value.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.value
    }
}

impl fmt::Display for OperandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} value {} out of range (maximum {})",
            self.kind, self.value, self.max
        )
    }
}

impl Error for OperandError {}

macro_rules! bounded_operand {
    (
        $(#[$meta:meta])*
        $name:ident, $kind:literal, raw: $raw:ty, max: $max:expr, display: $prefix:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($raw);

        impl $name {
            /// Constructs the operand, validating the range.
            ///
            /// # Errors
            ///
            /// Returns [`OperandError`] if `value` exceeds the field's
            /// maximum.
            pub fn new(value: $raw) -> Result<Self, OperandError> {
                if u32::from(value) > $max {
                    Err(OperandError::new($kind, u32::from(value), $max))
                } else {
                    Ok(Self(value))
                }
            }

            /// The raw field value.
            #[must_use]
            pub fn value(self) -> $raw {
                self.0
            }

            /// The raw field value widened to `usize` (for indexing).
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl TryFrom<$raw> for $name {
            type Error = OperandError;

            fn try_from(value: $raw) -> Result<Self, Self::Error> {
                Self::new(value)
            }
        }

        impl From<$name> for $raw {
            fn from(v: $name) -> $raw {
                v.value()
            }
        }
    };
}

bounded_operand!(
    /// A memory-bank identifier (`BANK0` … `BANK7`).
    ///
    /// A bank is "a set of contiguous memory words"; the internal address
    /// of every transfer is a bank id plus a word offset, translated to a
    /// physical address by the bus interface at runtime. This is the
    /// simple virtualization scheme that makes the microcode independent
    /// of where the data actually lives.
    ///
    /// ```
    /// use ouessant_isa::Bank;
    /// let b = Bank::new(1)?;
    /// assert_eq!(b.to_string(), "BANK1");
    /// assert!(Bank::new(8).is_err());
    /// # Ok::<(), ouessant_isa::OperandError>(())
    /// ```
    Bank, "bank", raw: u8, max: u32::from(NUM_BANKS) - 1, display: "BANK"
);

bounded_operand!(
    /// A FIFO interface identifier (`FIFO0` … `FIFO3`).
    ///
    /// Input and output FIFOs are numbered independently; `mvtc` selects
    /// among input FIFOs and `mvfc` among output FIFOs.
    FifoId, "fifo", raw: u8, max: u32::from(NUM_FIFOS) - 1, display: "FIFO"
);

bounded_operand!(
    /// A hardware loop counter (`R0` … `R3`), extension ISA.
    Counter, "counter", raw: u8, max: u32::from(NUM_COUNTERS) - 1, display: "R"
);

bounded_operand!(
    /// An offset register (`O0` … `O3`), extension ISA.
    ///
    /// Offset registers let a short loop stream an arbitrarily long
    /// buffer: `mvtcr` reads the current word offset from the register
    /// and post-increments it by the burst length.
    OffsetReg, "offset register", raw: u8, max: u32::from(NUM_OFFSET_REGS) - 1, display: "O"
);

bounded_operand!(
    /// A 14-bit word offset inside a memory bank.
    Offset, "offset", raw: u16, max: MAX_OFFSET, display: "+"
);

bounded_operand!(
    /// An instruction address inside the program store (`djnz` target).
    ProgAddr, "program address", raw: u16, max: (MAX_PROGRAM_LEN - 1) as u32, display: "@"
);

/// A burst transfer length in words, `1..=256`.
///
/// Encoded in the instruction word as `length - 1` on 8 bits. The
/// assembler spells it `DMA<len>`, as in the paper's `DMA64`.
///
/// ```
/// use ouessant_isa::BurstLen;
/// let dma = BurstLen::new(64)?;
/// assert_eq!(dma.words(), 64);
/// assert_eq!(dma.to_string(), "DMA64");
/// assert!(BurstLen::new(0).is_err());
/// assert!(BurstLen::new(257).is_err());
/// # Ok::<(), ouessant_isa::OperandError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BurstLen(u16);

impl BurstLen {
    /// Constructs a burst length.
    ///
    /// # Errors
    ///
    /// Returns [`OperandError`] unless `1 <= words <= 256`.
    pub fn new(words: u16) -> Result<Self, OperandError> {
        if words == 0 || u32::from(words) > MAX_BURST {
            Err(OperandError::new(
                "burst length",
                u32::from(words),
                MAX_BURST,
            ))
        } else {
            Ok(Self(words))
        }
    }

    /// Reconstructs a burst length from its `length - 1` field encoding.
    #[must_use]
    pub fn from_field(field: u8) -> Self {
        Self(u16::from(field) + 1)
    }

    /// The `length - 1` field encoding.
    #[must_use]
    pub fn to_field(self) -> u8 {
        (self.0 - 1) as u8
    }

    /// The burst length in 32-bit words.
    #[must_use]
    pub fn words(self) -> u16 {
        self.0
    }

    /// A single-word burst.
    #[must_use]
    pub fn single() -> Self {
        Self(1)
    }
}

impl Default for BurstLen {
    fn default() -> Self {
        Self::single()
    }
}

impl fmt::Display for BurstLen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DMA{}", self.0)
    }
}

impl TryFrom<u16> for BurstLen {
    type Error = OperandError;

    fn try_from(value: u16) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<BurstLen> for u16 {
    fn from(v: BurstLen) -> u16 {
        v.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_bounds() {
        assert!(Bank::new(0).is_ok());
        assert!(Bank::new(7).is_ok());
        let err = Bank::new(8).unwrap_err();
        assert_eq!(err.kind(), "bank");
        assert_eq!(err.value(), 8);
    }

    #[test]
    fn offset_bounds() {
        assert!(Offset::new(0).is_ok());
        assert!(Offset::new(MAX_OFFSET as u16).is_ok());
        assert!(Offset::new(MAX_OFFSET as u16 + 1).is_err());
    }

    #[test]
    fn burst_encoding_round_trip() {
        for words in 1..=MAX_BURST as u16 {
            let b = BurstLen::new(words).unwrap();
            assert_eq!(BurstLen::from_field(b.to_field()), b);
        }
    }

    #[test]
    fn burst_rejects_zero_and_overlong() {
        assert!(BurstLen::new(0).is_err());
        assert!(BurstLen::new(257).is_err());
        assert_eq!(BurstLen::new(256).unwrap().to_field(), 255);
    }

    #[test]
    fn display_forms_match_paper_syntax() {
        assert_eq!(Bank::new(1).unwrap().to_string(), "BANK1");
        assert_eq!(BurstLen::new(64).unwrap().to_string(), "DMA64");
        assert_eq!(FifoId::new(0).unwrap().to_string(), "FIFO0");
    }

    #[test]
    fn operand_error_display() {
        let err = Bank::new(12).unwrap_err();
        assert_eq!(err.to_string(), "bank value 12 out of range (maximum 7)");
    }

    #[test]
    fn counters_and_offset_regs() {
        assert!(Counter::new(3).is_ok());
        assert!(Counter::new(4).is_err());
        assert!(OffsetReg::new(3).is_ok());
        assert!(OffsetReg::new(4).is_err());
    }

    #[test]
    fn prog_addr_bounds() {
        assert!(ProgAddr::new(0).is_ok());
        assert!(ProgAddr::new(1023).is_ok());
        assert!(ProgAddr::new(1024).is_err());
    }

    #[test]
    fn try_from_and_into_raw() {
        let b: Bank = 5u8.try_into().unwrap();
        let raw: u8 = b.into();
        assert_eq!(raw, 5);
        let l: BurstLen = 64u16.try_into().unwrap();
        let raw: u16 = l.into();
        assert_eq!(raw, 64);
    }

    #[test]
    fn default_values() {
        assert_eq!(Bank::default().value(), 0);
        assert_eq!(BurstLen::default().words(), 1);
    }
}
