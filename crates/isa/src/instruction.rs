//! The decoded instruction form and its bit-exact 32-bit encoding.
//!
//! ## Instruction word layout
//!
//! All instructions are one 32-bit word with the opcode in bits `[31:27]`.
//! The remaining 27 bits are laid out per instruction class:
//!
//! ```text
//! transfers (mvtc / mvfc):
//!   [31:27] opcode  [26:24] bank  [23:10] offset  [9:8] fifo  [7:0] burst-1
//! register transfers (mvtcr / mvfcr):
//!   [31:27] opcode  [26:24] bank  [11:10] offset reg  [9:8] fifo  [7:0] burst-1
//! counter ops (ldc / ldo / addo / wait):
//!   [31:27] opcode  [26:25] reg  [13:0] immediate
//! djnz:
//!   [31:27] opcode  [26:25] counter  [9:0] target address
//! exec / execn:
//!   [31:27] opcode  [15:0] operation tag forwarded to the RAC
//! nop / eop / wrac / sync / halt:
//!   [31:27] opcode  (rest must be zero)
//! ```
//!
//! Unused bits must decode as zero; the decoder rejects non-canonical
//! encodings so that `decode(encode(i)) == i` *and* `encode(decode(w)) == w`
//! both hold (verified by property tests).

use std::error::Error;
use std::fmt;

use crate::opcode::{Opcode, OPCODE_SHIFT};
use crate::operands::{Bank, BurstLen, Counter, FifoId, Offset, OffsetReg, OperandError, ProgAddr};

/// A fully decoded Ouessant instruction.
///
/// Construct instructions directly, through [`crate::assemble`], or with
/// [`crate::ProgramBuilder`]. Every variant encodes to exactly one 32-bit
/// word via [`Instruction::encode`].
///
/// # Examples
///
/// ```
/// use ouessant_isa::{Bank, BurstLen, FifoId, Instruction, Offset};
///
/// let mv = Instruction::Mvtc {
///     bank: Bank::new(1)?,
///     offset: Offset::new(0)?,
///     burst: BurstLen::new(64)?,
///     fifo: FifoId::new(0)?,
/// };
/// let word = mv.encode();
/// assert_eq!(Instruction::decode(word)?, mv);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Burst-copy `burst` words from `bank[offset..]` into input FIFO `fifo`.
    Mvtc {
        /// Source memory bank.
        bank: Bank,
        /// Word offset of the first word inside the bank.
        offset: Offset,
        /// Number of words to move.
        burst: BurstLen,
        /// Destination input FIFO.
        fifo: FifoId,
    },
    /// Burst-copy `burst` words from output FIFO `fifo` into `bank[offset..]`.
    Mvfc {
        /// Destination memory bank.
        bank: Bank,
        /// Word offset of the first word inside the bank.
        offset: Offset,
        /// Number of words to move.
        burst: BurstLen,
        /// Source output FIFO.
        fifo: FifoId,
    },
    /// Launch the accelerator (asserting `start_op`) and stall until its
    /// `end_op` pulse. `op` is a 16-bit operation tag forwarded to the RAC
    /// (accelerators that need no configuration ignore it).
    Exec {
        /// Operation tag forwarded to the accelerator.
        op: u16,
    },
    /// End of program: set the *D* (done) control bit; raise the interrupt
    /// line if the *IE* bit is set.
    Eop,
    /// Launch the accelerator without waiting (extension ISA).
    Execn {
        /// Operation tag forwarded to the accelerator.
        op: u16,
    },
    /// Stall until the accelerator's `end_op` pulse (extension ISA).
    Wrac,
    /// `counter := imm` (extension ISA).
    Ldc {
        /// Destination loop counter.
        counter: Counter,
        /// Immediate value.
        imm: u16,
    },
    /// Decrement `counter`; if it is still non-zero, jump to `target`
    /// (extension ISA).
    Djnz {
        /// Loop counter to decrement and test.
        counter: Counter,
        /// Branch target (absolute instruction index).
        target: ProgAddr,
    },
    /// `offset_reg := imm` (extension ISA).
    Ldo {
        /// Destination offset register.
        reg: OffsetReg,
        /// Immediate word offset.
        imm: u16,
    },
    /// `offset_reg := offset_reg + delta` (wrapping within 14 bits,
    /// extension ISA).
    Addo {
        /// Offset register to adjust.
        reg: OffsetReg,
        /// Signed word delta, `-8192..=8191`.
        delta: i16,
    },
    /// `mvtc` taking its word offset from `reg`, then post-incrementing
    /// `reg` by the burst length (extension ISA).
    Mvtcr {
        /// Source memory bank.
        bank: Bank,
        /// Offset register supplying (and accumulating) the word offset.
        reg: OffsetReg,
        /// Number of words to move.
        burst: BurstLen,
        /// Destination input FIFO.
        fifo: FifoId,
    },
    /// `mvfc` taking its word offset from `reg`, then post-incrementing
    /// `reg` by the burst length (extension ISA).
    Mvfcr {
        /// Destination memory bank.
        bank: Bank,
        /// Offset register supplying (and accumulating) the word offset.
        reg: OffsetReg,
        /// Number of words to move.
        burst: BurstLen,
        /// Source output FIFO.
        fifo: FifoId,
    },
    /// Stall for `cycles` clock cycles (extension ISA).
    Wait {
        /// Number of cycles to stall.
        cycles: u16,
    },
    /// Stall until every coprocessor FIFO is empty (extension ISA).
    Sync,
    /// Stop the controller without setting the done bit (extension ISA).
    Halt,
    /// Trigger dynamic partial reconfiguration: load RAC configuration
    /// `slot` into the reconfigurable region, stalling until the slot
    /// manager reports completion (extension ISA, the paper's §VI
    /// "Dynamic Partial Reconfiguration" work in progress).
    Rcfg {
        /// Configuration slot to load.
        slot: u16,
    },
}

/// Error decoding a 32-bit word into an [`Instruction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 5-bit opcode field holds one of the 16 reserved encodings.
    ReservedOpcode {
        /// The raw opcode field.
        bits: u8,
    },
    /// Bits that the instruction's layout leaves unused were not zero.
    NonCanonical {
        /// The instruction's opcode.
        opcode: Opcode,
        /// The raw instruction word.
        word: u32,
    },
    /// An operand field failed validation.
    Operand(OperandError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::ReservedOpcode { bits } => {
                write!(f, "reserved opcode encoding {bits:#07b}")
            }
            DecodeError::NonCanonical { opcode, word } => {
                write!(f, "non-canonical encoding {word:#010x} for {opcode}")
            }
            DecodeError::Operand(e) => write!(f, "invalid operand field: {e}"),
        }
    }
}

impl Error for DecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeError::Operand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OperandError> for DecodeError {
    fn from(e: OperandError) -> Self {
        DecodeError::Operand(e)
    }
}

const BANK_SHIFT: u32 = 24;
const OFFSET_SHIFT: u32 = 10;
const FIFO_SHIFT: u32 = 8;
const REG_SHIFT: u32 = 25;
const OREG_SHIFT: u32 = 10;
const IMM_MASK: u32 = 0x3FFF;
const ADDR_MASK: u32 = 0x3FF;

fn transfer_word(op: Opcode, bank: Bank, offset: Offset, burst: BurstLen, fifo: FifoId) -> u32 {
    (u32::from(op.to_bits()) << OPCODE_SHIFT)
        | (u32::from(bank.value()) << BANK_SHIFT)
        | (u32::from(offset.value()) << OFFSET_SHIFT)
        | (u32::from(fifo.value()) << FIFO_SHIFT)
        | u32::from(burst.to_field())
}

fn reg_transfer_word(op: Opcode, bank: Bank, reg: OffsetReg, burst: BurstLen, fifo: FifoId) -> u32 {
    (u32::from(op.to_bits()) << OPCODE_SHIFT)
        | (u32::from(bank.value()) << BANK_SHIFT)
        | (u32::from(reg.value()) << OREG_SHIFT)
        | (u32::from(fifo.value()) << FIFO_SHIFT)
        | u32::from(burst.to_field())
}

fn imm_word(op: Opcode, reg: u8, imm: u32) -> u32 {
    (u32::from(op.to_bits()) << OPCODE_SHIFT) | (u32::from(reg) << REG_SHIFT) | (imm & IMM_MASK)
}

impl Instruction {
    /// The instruction's opcode.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::Nop => Opcode::Nop,
            Instruction::Mvtc { .. } => Opcode::Mvtc,
            Instruction::Mvfc { .. } => Opcode::Mvfc,
            Instruction::Exec { .. } => Opcode::Exec,
            Instruction::Eop => Opcode::Eop,
            Instruction::Execn { .. } => Opcode::Execn,
            Instruction::Wrac => Opcode::Wrac,
            Instruction::Ldc { .. } => Opcode::Ldc,
            Instruction::Djnz { .. } => Opcode::Djnz,
            Instruction::Ldo { .. } => Opcode::Ldo,
            Instruction::Addo { .. } => Opcode::Addo,
            Instruction::Mvtcr { .. } => Opcode::Mvtcr,
            Instruction::Mvfcr { .. } => Opcode::Mvfcr,
            Instruction::Wait { .. } => Opcode::Wait,
            Instruction::Sync => Opcode::Sync,
            Instruction::Halt => Opcode::Halt,
            Instruction::Rcfg { .. } => Opcode::Rcfg,
        }
    }

    /// Encodes the instruction into its 32-bit word.
    #[must_use]
    pub fn encode(&self) -> u32 {
        match *self {
            Instruction::Nop => imm_word(Opcode::Nop, 0, 0),
            Instruction::Mvtc {
                bank,
                offset,
                burst,
                fifo,
            } => transfer_word(Opcode::Mvtc, bank, offset, burst, fifo),
            Instruction::Mvfc {
                bank,
                offset,
                burst,
                fifo,
            } => transfer_word(Opcode::Mvfc, bank, offset, burst, fifo),
            Instruction::Exec { op } => {
                (u32::from(Opcode::Exec.to_bits()) << OPCODE_SHIFT) | u32::from(op)
            }
            Instruction::Eop => imm_word(Opcode::Eop, 0, 0),
            Instruction::Execn { op } => {
                (u32::from(Opcode::Execn.to_bits()) << OPCODE_SHIFT) | u32::from(op)
            }
            Instruction::Wrac => imm_word(Opcode::Wrac, 0, 0),
            Instruction::Ldc { counter, imm } => {
                imm_word(Opcode::Ldc, counter.value(), u32::from(imm))
            }
            Instruction::Djnz { counter, target } => {
                (u32::from(Opcode::Djnz.to_bits()) << OPCODE_SHIFT)
                    | (u32::from(counter.value()) << REG_SHIFT)
                    | u32::from(target.value())
            }
            Instruction::Ldo { reg, imm } => imm_word(Opcode::Ldo, reg.value(), u32::from(imm)),
            Instruction::Addo { reg, delta } => {
                imm_word(Opcode::Addo, reg.value(), (delta as u32) & IMM_MASK)
            }
            Instruction::Mvtcr {
                bank,
                reg,
                burst,
                fifo,
            } => reg_transfer_word(Opcode::Mvtcr, bank, reg, burst, fifo),
            Instruction::Mvfcr {
                bank,
                reg,
                burst,
                fifo,
            } => reg_transfer_word(Opcode::Mvfcr, bank, reg, burst, fifo),
            Instruction::Wait { cycles } => imm_word(Opcode::Wait, 0, u32::from(cycles)),
            Instruction::Sync => imm_word(Opcode::Sync, 0, 0),
            Instruction::Halt => imm_word(Opcode::Halt, 0, 0),
            Instruction::Rcfg { slot } => imm_word(Opcode::Rcfg, 0, u32::from(slot)),
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::ReservedOpcode`] for undefined opcodes,
    /// [`DecodeError::NonCanonical`] if bits outside the instruction's
    /// layout are set, and [`DecodeError::Operand`] if a field is out of
    /// range.
    pub fn decode(word: u32) -> Result<Self, DecodeError> {
        let op_bits = (word >> OPCODE_SHIFT) as u8;
        let opcode =
            Opcode::from_bits(op_bits).ok_or(DecodeError::ReservedOpcode { bits: op_bits })?;
        let body = word & ((1 << OPCODE_SHIFT) - 1);
        let non_canonical = |mask: u32| -> Result<(), DecodeError> {
            if body & !mask != 0 {
                Err(DecodeError::NonCanonical { opcode, word })
            } else {
                Ok(())
            }
        };

        let bank = || Bank::new(((word >> BANK_SHIFT) & 0x7) as u8);
        let offset = || Offset::new(((word >> OFFSET_SHIFT) & 0x3FFF) as u16);
        let fifo = || FifoId::new(((word >> FIFO_SHIFT) & 0x3) as u8);
        let burst = || BurstLen::from_field((word & 0xFF) as u8);
        let reg2 = || ((word >> REG_SHIFT) & 0x3) as u8;
        let oreg = || OffsetReg::new(((word >> OREG_SHIFT) & 0x3) as u8);
        let imm14 = || (word & IMM_MASK) as u16;

        let insn = match opcode {
            Opcode::Nop => {
                non_canonical(0)?;
                Instruction::Nop
            }
            Opcode::Mvtc => {
                non_canonical(0x07FF_FFFF)?;
                Instruction::Mvtc {
                    bank: bank()?,
                    offset: offset()?,
                    burst: burst(),
                    fifo: fifo()?,
                }
            }
            Opcode::Mvfc => {
                non_canonical(0x07FF_FFFF)?;
                Instruction::Mvfc {
                    bank: bank()?,
                    offset: offset()?,
                    burst: burst(),
                    fifo: fifo()?,
                }
            }
            Opcode::Exec => {
                non_canonical(0xFFFF)?;
                Instruction::Exec {
                    op: (word & 0xFFFF) as u16,
                }
            }
            Opcode::Eop => {
                non_canonical(0)?;
                Instruction::Eop
            }
            Opcode::Execn => {
                non_canonical(0xFFFF)?;
                Instruction::Execn {
                    op: (word & 0xFFFF) as u16,
                }
            }
            Opcode::Wrac => {
                non_canonical(0)?;
                Instruction::Wrac
            }
            Opcode::Ldc => {
                non_canonical((0x3 << REG_SHIFT) | IMM_MASK)?;
                Instruction::Ldc {
                    counter: Counter::new(reg2())?,
                    imm: imm14(),
                }
            }
            Opcode::Djnz => {
                non_canonical((0x3 << REG_SHIFT) | ADDR_MASK)?;
                Instruction::Djnz {
                    counter: Counter::new(reg2())?,
                    target: ProgAddr::new((word & ADDR_MASK) as u16)?,
                }
            }
            Opcode::Ldo => {
                non_canonical((0x3 << REG_SHIFT) | IMM_MASK)?;
                Instruction::Ldo {
                    reg: OffsetReg::new(reg2())?,
                    imm: imm14(),
                }
            }
            Opcode::Addo => {
                non_canonical((0x3 << REG_SHIFT) | IMM_MASK)?;
                // Sign-extend the 14-bit immediate.
                let raw = (word & IMM_MASK) as i32;
                let delta = if raw >= 1 << 13 { raw - (1 << 14) } else { raw };
                Instruction::Addo {
                    reg: OffsetReg::new(reg2())?,
                    delta: delta as i16,
                }
            }
            Opcode::Mvtcr => {
                non_canonical(
                    (0x7 << BANK_SHIFT) | (0x3 << OREG_SHIFT) | (0x3 << FIFO_SHIFT) | 0xFF,
                )?;
                Instruction::Mvtcr {
                    bank: bank()?,
                    reg: oreg()?,
                    burst: burst(),
                    fifo: fifo()?,
                }
            }
            Opcode::Mvfcr => {
                non_canonical(
                    (0x7 << BANK_SHIFT) | (0x3 << OREG_SHIFT) | (0x3 << FIFO_SHIFT) | 0xFF,
                )?;
                Instruction::Mvfcr {
                    bank: bank()?,
                    reg: oreg()?,
                    burst: burst(),
                    fifo: fifo()?,
                }
            }
            Opcode::Wait => {
                non_canonical(IMM_MASK)?;
                Instruction::Wait { cycles: imm14() }
            }
            Opcode::Sync => {
                non_canonical(0)?;
                Instruction::Sync
            }
            Opcode::Halt => {
                non_canonical(0)?;
                Instruction::Halt
            }
            Opcode::Rcfg => {
                non_canonical(IMM_MASK)?;
                Instruction::Rcfg { slot: imm14() }
            }
        };
        Ok(insn)
    }

    /// Number of 32-bit words this instruction moves over the system bus
    /// (zero for non-transfer instructions).
    #[must_use]
    pub fn words_transferred(&self) -> u32 {
        match self {
            Instruction::Mvtc { burst, .. }
            | Instruction::Mvfc { burst, .. }
            | Instruction::Mvtcr { burst, .. }
            | Instruction::Mvfcr { burst, .. } => u32::from(burst.words()),
            _ => 0,
        }
    }
}

impl fmt::Display for Instruction {
    /// Formats the instruction in the assembler syntax of the paper's
    /// Figure 4 (e.g. `mvtc BANK1,0,DMA64,FIFO0`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => f.write_str("nop"),
            Instruction::Mvtc {
                bank,
                offset,
                burst,
                fifo,
            } => write!(f, "mvtc {bank},{},{burst},{fifo}", offset.value()),
            Instruction::Mvfc {
                bank,
                offset,
                burst,
                fifo,
            } => write!(f, "mvfc {bank},{},{burst},{fifo}", offset.value()),
            Instruction::Exec { op: 0 } => f.write_str("execs"),
            Instruction::Exec { op } => write!(f, "execs {op}"),
            Instruction::Eop => f.write_str("eop"),
            Instruction::Execn { op: 0 } => f.write_str("execn"),
            Instruction::Execn { op } => write!(f, "execn {op}"),
            Instruction::Wrac => f.write_str("wrac"),
            Instruction::Ldc { counter, imm } => write!(f, "ldc {counter},{imm}"),
            Instruction::Djnz { counter, target } => {
                write!(f, "djnz {counter},{}", target.value())
            }
            Instruction::Ldo { reg, imm } => write!(f, "ldo {reg},{imm}"),
            Instruction::Addo { reg, delta } => write!(f, "addo {reg},{delta}"),
            Instruction::Mvtcr {
                bank,
                reg,
                burst,
                fifo,
            } => write!(f, "mvtcr {bank},{reg},{burst},{fifo}"),
            Instruction::Mvfcr {
                bank,
                reg,
                burst,
                fifo,
            } => write!(f, "mvfcr {bank},{reg},{burst},{fifo}"),
            Instruction::Wait { cycles } => write!(f, "wait {cycles}"),
            Instruction::Sync => f.write_str("sync"),
            Instruction::Halt => f.write_str("halt"),
            Instruction::Rcfg { slot } => write!(f, "rcfg {slot}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(bank: u8, offset: u16, burst: u16, fifo: u8) -> Instruction {
        Instruction::Mvtc {
            bank: Bank::new(bank).unwrap(),
            offset: Offset::new(offset).unwrap(),
            burst: BurstLen::new(burst).unwrap(),
            fifo: FifoId::new(fifo).unwrap(),
        }
    }

    #[test]
    fn opcode_field_is_top_five_bits() {
        let w = mv(1, 0, 64, 0).encode();
        assert_eq!(w >> 27, Opcode::Mvtc.to_bits() as u32);
    }

    #[test]
    fn figure4_mvtc_encoding() {
        // mvtc BANK1,64,DMA64,FIFO0
        let w = mv(1, 64, 64, 0).encode();
        assert_eq!((w >> 27) & 0x1F, 1); // opcode
        assert_eq!((w >> 24) & 0x7, 1); // bank
        assert_eq!((w >> 10) & 0x3FFF, 64); // offset
        assert_eq!((w >> 8) & 0x3, 0); // fifo
        assert_eq!(w & 0xFF, 63); // burst - 1
    }

    #[test]
    fn encode_decode_round_trip_all_variants() {
        let samples = [
            Instruction::Nop,
            mv(1, 0, 64, 0),
            Instruction::Mvfc {
                bank: Bank::new(2).unwrap(),
                offset: Offset::new(448).unwrap(),
                burst: BurstLen::new(64).unwrap(),
                fifo: FifoId::new(0).unwrap(),
            },
            Instruction::Exec { op: 0 },
            Instruction::Exec { op: 0xBEEF },
            Instruction::Eop,
            Instruction::Execn { op: 7 },
            Instruction::Wrac,
            Instruction::Ldc {
                counter: Counter::new(2).unwrap(),
                imm: 12345,
            },
            Instruction::Djnz {
                counter: Counter::new(2).unwrap(),
                target: ProgAddr::new(17).unwrap(),
            },
            Instruction::Ldo {
                reg: OffsetReg::new(1).unwrap(),
                imm: 4095,
            },
            Instruction::Addo {
                reg: OffsetReg::new(3).unwrap(),
                delta: -64,
            },
            Instruction::Addo {
                reg: OffsetReg::new(0).unwrap(),
                delta: 8191,
            },
            Instruction::Mvtcr {
                bank: Bank::new(7).unwrap(),
                reg: OffsetReg::new(2).unwrap(),
                burst: BurstLen::new(256).unwrap(),
                fifo: FifoId::new(3).unwrap(),
            },
            Instruction::Mvfcr {
                bank: Bank::new(3).unwrap(),
                reg: OffsetReg::new(0).unwrap(),
                burst: BurstLen::new(1).unwrap(),
                fifo: FifoId::new(1).unwrap(),
            },
            Instruction::Wait { cycles: 1000 },
            Instruction::Sync,
            Instruction::Halt,
            Instruction::Rcfg { slot: 3 },
        ];
        for insn in samples {
            let word = insn.encode();
            let back = Instruction::decode(word).unwrap_or_else(|e| {
                panic!("decoding {insn} ({word:#010x}) failed: {e}");
            });
            assert_eq!(back, insn);
        }
    }

    #[test]
    fn reserved_opcode_rejected() {
        let word = 31u32 << 27;
        assert_eq!(
            Instruction::decode(word),
            Err(DecodeError::ReservedOpcode { bits: 31 })
        );
    }

    #[test]
    fn non_canonical_nop_rejected() {
        let word = (Opcode::Nop.to_bits() as u32) << 27 | 1;
        assert!(matches!(
            Instruction::decode(word),
            Err(DecodeError::NonCanonical { .. })
        ));
    }

    #[test]
    fn non_canonical_exec_rejected() {
        // Exec allows only a 16-bit immediate; set bit 20.
        let word = (Opcode::Exec.to_bits() as u32) << 27 | (1 << 20);
        assert!(matches!(
            Instruction::decode(word),
            Err(DecodeError::NonCanonical { .. })
        ));
    }

    #[test]
    fn addo_sign_extension() {
        for delta in [-8192i16, -1, 0, 1, 8191] {
            let insn = Instruction::Addo {
                reg: OffsetReg::new(0).unwrap(),
                delta,
            };
            assert_eq!(Instruction::decode(insn.encode()).unwrap(), insn);
        }
    }

    #[test]
    fn words_transferred() {
        assert_eq!(mv(1, 0, 64, 0).words_transferred(), 64);
        assert_eq!(Instruction::Eop.words_transferred(), 0);
        assert_eq!(Instruction::Exec { op: 0 }.words_transferred(), 0);
    }

    #[test]
    fn display_matches_figure4_syntax() {
        assert_eq!(mv(1, 0, 64, 0).to_string(), "mvtc BANK1,0,DMA64,FIFO0");
        assert_eq!(Instruction::Exec { op: 0 }.to_string(), "execs");
        assert_eq!(Instruction::Eop.to_string(), "eop");
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::ReservedOpcode { bits: 20 };
        assert!(e.to_string().contains("reserved opcode"));
        let e = DecodeError::Operand(Bank::new(8).unwrap_err());
        assert!(e.to_string().contains("invalid operand"));
    }
}
