//! A line-oriented assembler for Ouessant microcode.
//!
//! The accepted syntax is the one printed in the paper's Figure 4, plus
//! labels and the extension mnemonics:
//!
//! ```text
//! // 64 words from offset 0 of bank 1 to coprocessor FIFO 0
//! loop:                       ; labels end with ':'
//!     mvtc BANK1,0,DMA64,FIFO0
//!     execs                   ; alias of exec-and-wait
//!     mvfc BANK2,0,DMA64,FIFO0
//!     djnz R0,loop
//!     eop
//! ```
//!
//! * comments start with `//`, `;` or `#` and run to end of line;
//! * mnemonics and operand keywords are case-insensitive;
//! * numbers may be decimal or hexadecimal (`0x` prefix);
//! * `djnz` targets may be labels or absolute instruction indices.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::instruction::Instruction;
use crate::opcode::Opcode;
use crate::operands::{Bank, BurstLen, Counter, FifoId, Offset, OffsetReg, ProgAddr};
use crate::program::{Program, ValidateError};

/// Error assembling Ouessant source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line.
    line: usize,
    kind: AssembleErrorKind,
}

/// The specific assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Wrong number of operands for the mnemonic.
    OperandCount {
        /// The mnemonic in question.
        mnemonic: &'static str,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        found: usize,
    },
    /// An operand could not be parsed or was out of range.
    BadOperand {
        /// Position of the operand (1-based).
        position: usize,
        /// Explanation.
        message: String,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A `djnz` referenced an undefined label.
    UndefinedLabel(String),
    /// The finished program failed validation.
    Validate(ValidateError),
}

impl AssembleError {
    fn new(line: usize, kind: AssembleErrorKind) -> Self {
        Self { line, kind }
    }

    /// The 1-based source line of the failure (0 for whole-program
    /// validation failures).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// The failure detail.
    #[must_use]
    pub fn kind(&self) -> &AssembleErrorKind {
        &self.kind
    }
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            AssembleErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AssembleErrorKind::OperandCount {
                mnemonic,
                expected,
                found,
            } => write!(f, "`{mnemonic}` takes {expected} operands, found {found}"),
            AssembleErrorKind::BadOperand { position, message } => {
                write!(f, "operand {position}: {message}")
            }
            AssembleErrorKind::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            AssembleErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AssembleErrorKind::Validate(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AssembleError {}

/// Assembles Ouessant source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AssembleError`] carrying the 1-based source line and a
/// specific [`AssembleErrorKind`].
///
/// # Examples
///
/// ```
/// use ouessant_isa::assemble;
///
/// let program = assemble("execs\neop")?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), ouessant_isa::AssembleError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AssembleError> {
    // Pass 1: strip comments, collect labels and raw statements.
    struct Stmt<'a> {
        line: usize,
        mnemonic: &'a str,
        operands: Vec<&'a str>,
    }

    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut stmts: Vec<Stmt<'_>> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw_line;
        for marker in ["//", ";", "#"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        // Leading labels (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // not a label; let operand parsing complain
            }
            if labels
                .insert(label.to_ascii_lowercase(), stmts.len())
                .is_some()
            {
                return Err(AssembleError::new(
                    line_no,
                    AssembleErrorKind::DuplicateLabel(label.to_string()),
                ));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        stmts.push(Stmt {
            line: line_no,
            mnemonic,
            operands,
        });
    }

    // Pass 2: parse statements into instructions.
    let mut instructions = Vec::with_capacity(stmts.len());
    for stmt in &stmts {
        let insn = parse_statement(stmt.line, stmt.mnemonic, &stmt.operands, &labels)?;
        instructions.push(insn);
    }

    Program::new(instructions).map_err(|e| AssembleError::new(0, AssembleErrorKind::Validate(e)))
}

fn parse_statement(
    line: usize,
    mnemonic: &str,
    operands: &[&str],
    labels: &HashMap<String, usize>,
) -> Result<Instruction, AssembleError> {
    let opcode = Opcode::from_mnemonic(mnemonic).ok_or_else(|| {
        AssembleError::new(
            line,
            AssembleErrorKind::UnknownMnemonic(mnemonic.to_string()),
        )
    })?;

    let count = |expected: usize| -> Result<(), AssembleError> {
        if operands.len() == expected {
            Ok(())
        } else {
            Err(AssembleError::new(
                line,
                AssembleErrorKind::OperandCount {
                    mnemonic: opcode.mnemonic(),
                    expected,
                    found: operands.len(),
                },
            ))
        }
    };
    let bad = |position: usize, message: String| {
        AssembleError::new(line, AssembleErrorKind::BadOperand { position, message })
    };

    let insn = match opcode {
        Opcode::Nop => {
            count(0)?;
            Instruction::Nop
        }
        Opcode::Mvtc | Opcode::Mvfc => {
            count(4)?;
            let bank = parse_bank(operands[0]).map_err(|m| bad(1, m))?;
            let offset = parse_offset(operands[1]).map_err(|m| bad(2, m))?;
            let burst = parse_burst(operands[2]).map_err(|m| bad(3, m))?;
            let fifo = parse_fifo(operands[3]).map_err(|m| bad(4, m))?;
            if opcode == Opcode::Mvtc {
                Instruction::Mvtc {
                    bank,
                    offset,
                    burst,
                    fifo,
                }
            } else {
                Instruction::Mvfc {
                    bank,
                    offset,
                    burst,
                    fifo,
                }
            }
        }
        Opcode::Exec | Opcode::Execn => {
            let op = match operands.len() {
                0 => 0u16,
                1 => parse_number(operands[0])
                    .and_then(|n| {
                        u16::try_from(n).map_err(|_| "operation tag exceeds 16 bits".to_string())
                    })
                    .map_err(|m| bad(1, m))?,
                n => {
                    return Err(AssembleError::new(
                        line,
                        AssembleErrorKind::OperandCount {
                            mnemonic: opcode.mnemonic(),
                            expected: 1,
                            found: n,
                        },
                    ))
                }
            };
            if opcode == Opcode::Exec {
                Instruction::Exec { op }
            } else {
                Instruction::Execn { op }
            }
        }
        Opcode::Eop => {
            count(0)?;
            Instruction::Eop
        }
        Opcode::Wrac => {
            count(0)?;
            Instruction::Wrac
        }
        Opcode::Ldc => {
            count(2)?;
            let counter = parse_counter(operands[0]).map_err(|m| bad(1, m))?;
            let imm = parse_imm14(operands[1]).map_err(|m| bad(2, m))?;
            Instruction::Ldc { counter, imm }
        }
        Opcode::Djnz => {
            count(2)?;
            let counter = parse_counter(operands[0]).map_err(|m| bad(1, m))?;
            let target_text = operands[1];
            let target_idx = if let Ok(n) = parse_number(target_text) {
                n as usize
            } else if let Some(&idx) = labels.get(&target_text.to_ascii_lowercase()) {
                idx
            } else {
                return Err(AssembleError::new(
                    line,
                    AssembleErrorKind::UndefinedLabel(target_text.to_string()),
                ));
            };
            let target = ProgAddr::new(u16::try_from(target_idx).unwrap_or(u16::MAX))
                .map_err(|e| bad(2, e.to_string()))?;
            Instruction::Djnz { counter, target }
        }
        Opcode::Ldo => {
            count(2)?;
            let reg = parse_offset_reg(operands[0]).map_err(|m| bad(1, m))?;
            let imm = parse_imm14(operands[1]).map_err(|m| bad(2, m))?;
            Instruction::Ldo { reg, imm }
        }
        Opcode::Addo => {
            count(2)?;
            let reg = parse_offset_reg(operands[0]).map_err(|m| bad(1, m))?;
            let delta = parse_signed(operands[1]).map_err(|m| bad(2, m))?;
            if !(-8192..=8191).contains(&delta) {
                return Err(bad(2, format!("delta {delta} outside -8192..=8191")));
            }
            Instruction::Addo {
                reg,
                delta: delta as i16,
            }
        }
        Opcode::Mvtcr | Opcode::Mvfcr => {
            count(4)?;
            let bank = parse_bank(operands[0]).map_err(|m| bad(1, m))?;
            let reg = parse_offset_reg(operands[1]).map_err(|m| bad(2, m))?;
            let burst = parse_burst(operands[2]).map_err(|m| bad(3, m))?;
            let fifo = parse_fifo(operands[3]).map_err(|m| bad(4, m))?;
            if opcode == Opcode::Mvtcr {
                Instruction::Mvtcr {
                    bank,
                    reg,
                    burst,
                    fifo,
                }
            } else {
                Instruction::Mvfcr {
                    bank,
                    reg,
                    burst,
                    fifo,
                }
            }
        }
        Opcode::Wait => {
            count(1)?;
            let cycles = parse_imm14(operands[0]).map_err(|m| bad(1, m))?;
            Instruction::Wait { cycles }
        }
        Opcode::Sync => {
            count(0)?;
            Instruction::Sync
        }
        Opcode::Halt => {
            count(0)?;
            Instruction::Halt
        }
        Opcode::Rcfg => {
            count(1)?;
            let slot = parse_imm14(operands[0]).map_err(|m| bad(1, m))?;
            Instruction::Rcfg { slot }
        }
    };
    Ok(insn)
}

fn parse_number(text: &str) -> Result<u32, String> {
    let t = text.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        t.parse::<u32>()
    };
    parsed.map_err(|_| format!("`{t}` is not a number"))
}

fn parse_signed(text: &str) -> Result<i32, String> {
    let t = text.trim();
    if let Some(rest) = t.strip_prefix('-') {
        Ok(-(parse_number(rest)? as i32))
    } else {
        Ok(parse_number(t)? as i32)
    }
}

fn parse_prefixed(text: &str, prefix: &str) -> Result<u32, String> {
    let t = text.trim();
    let lower = t.to_ascii_lowercase();
    let rest = lower
        .strip_prefix(&prefix.to_ascii_lowercase())
        .ok_or_else(|| format!("expected `{prefix}<n>`, found `{t}`"))?;
    parse_number(rest)
}

fn parse_bank(text: &str) -> Result<Bank, String> {
    let n = parse_prefixed(text, "BANK")?;
    Bank::new(u8::try_from(n).map_err(|_| format!("bank {n} out of range"))?)
        .map_err(|e| e.to_string())
}

fn parse_fifo(text: &str) -> Result<FifoId, String> {
    let n = parse_prefixed(text, "FIFO")?;
    FifoId::new(u8::try_from(n).map_err(|_| format!("fifo {n} out of range"))?)
        .map_err(|e| e.to_string())
}

fn parse_burst(text: &str) -> Result<BurstLen, String> {
    let n = parse_prefixed(text, "DMA")?;
    BurstLen::new(u16::try_from(n).map_err(|_| format!("burst {n} out of range"))?)
        .map_err(|e| e.to_string())
}

fn parse_counter(text: &str) -> Result<Counter, String> {
    let n = parse_prefixed(text, "R")?;
    Counter::new(u8::try_from(n).map_err(|_| format!("counter {n} out of range"))?)
        .map_err(|e| e.to_string())
}

fn parse_offset_reg(text: &str) -> Result<OffsetReg, String> {
    let n = parse_prefixed(text, "O")?;
    OffsetReg::new(u8::try_from(n).map_err(|_| format!("offset register {n} out of range"))?)
        .map_err(|e| e.to_string())
}

fn parse_offset(text: &str) -> Result<Offset, String> {
    let n = parse_number(text)?;
    Offset::new(u16::try_from(n).map_err(|_| format!("offset {n} out of range"))?)
        .map_err(|e| e.to_string())
}

fn parse_imm14(text: &str) -> Result<u16, String> {
    let n = parse_number(text)?;
    if n > crate::operands::MAX_IMM {
        Err(format!("immediate {n} exceeds 14 bits"))
    } else {
        Ok(n as u16)
    }
}

/// The verbatim microcode listing of the paper's Figure 4, with the
/// paper's "..." ellipses expanded to the full 8 + 1 + 8 + 1 = 18
/// instructions of the 256-point DFT offload.
pub const FIGURE4_SOURCE: &str = "\
// 64 words from offset 0 of bank 1
// to coprocessor FIFO 0
mvtc BANK1,0,DMA64,FIFO0
mvtc BANK1,64,DMA64,FIFO0
mvtc BANK1,128,DMA64,FIFO0
mvtc BANK1,192,DMA64,FIFO0
mvtc BANK1,256,DMA64,FIFO0
mvtc BANK1,320,DMA64,FIFO0
mvtc BANK1,384,DMA64,FIFO0
mvtc BANK1,448,DMA64,FIFO0
execs
mvfc BANK2,0,DMA64,FIFO0
mvfc BANK2,64,DMA64,FIFO0
mvfc BANK2,128,DMA64,FIFO0
mvfc BANK2,192,DMA64,FIFO0
mvfc BANK2,256,DMA64,FIFO0
mvfc BANK2,320,DMA64,FIFO0
mvfc BANK2,384,DMA64,FIFO0
mvfc BANK2,448,DMA64,FIFO0
eop
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operands::MAX_OFFSET;

    #[test]
    fn figure4_assembles() {
        let p = assemble(FIGURE4_SOURCE).unwrap();
        assert_eq!(p.len(), 18);
        assert_eq!(p.static_words_transferred(), 1024);
        assert_eq!(p[8], Instruction::Exec { op: 0 });
        assert_eq!(p[17], Instruction::Eop);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("\n// c1\n; c2\n# c3\nexecs ; trailing\neop\n\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn case_insensitive() {
        let p = assemble("MVTC bank1,0,dma64,fifo0\nEOP").unwrap();
        assert!(matches!(p[0], Instruction::Mvtc { .. }));
    }

    #[test]
    fn hex_numbers() {
        let p = assemble("mvtc BANK1,0x40,DMA64,FIFO0\neop").unwrap();
        if let Instruction::Mvtc { offset, .. } = p[0] {
            assert_eq!(offset.value(), 64);
        } else {
            panic!("expected mvtc");
        }
    }

    #[test]
    fn labels_resolve() {
        let src = "
            ldc R0,8
            loop:
                mvtcr BANK1,O0,DMA64,FIFO0
                djnz R0,loop
            eop
        ";
        let p = assemble(src).unwrap();
        if let Instruction::Djnz { target, .. } = p[2] {
            assert_eq!(target.value(), 1);
        } else {
            panic!("expected djnz");
        }
    }

    #[test]
    fn numeric_djnz_target() {
        let p = assemble("ldc R0,4\nnop\ndjnz R0,1\neop").unwrap();
        if let Instruction::Djnz { target, .. } = p[2] {
            assert_eq!(target.value(), 1);
        } else {
            panic!("expected djnz");
        }
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a:\nnop\na:\neop").unwrap_err();
        assert!(matches!(err.kind(), AssembleErrorKind::DuplicateLabel(_)));
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn undefined_label_rejected() {
        let err = assemble("djnz R0,nowhere\neop").unwrap_err();
        assert!(matches!(err.kind(), AssembleErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let err = assemble("frob BANK1\neop").unwrap_err();
        assert!(matches!(err.kind(), AssembleErrorKind::UnknownMnemonic(_)));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn operand_count_enforced() {
        let err = assemble("mvtc BANK1,0,DMA64\neop").unwrap_err();
        assert!(matches!(
            err.kind(),
            AssembleErrorKind::OperandCount {
                expected: 4,
                found: 3,
                ..
            }
        ));
    }

    #[test]
    fn bank_out_of_range_rejected() {
        let err = assemble("mvtc BANK9,0,DMA64,FIFO0\neop").unwrap_err();
        assert!(matches!(
            err.kind(),
            AssembleErrorKind::BadOperand { position: 1, .. }
        ));
    }

    #[test]
    fn offset_out_of_range_rejected() {
        let src = format!("mvtc BANK1,{},DMA64,FIFO0\neop", MAX_OFFSET + 1);
        let err = assemble(&src).unwrap_err();
        assert!(matches!(
            err.kind(),
            AssembleErrorKind::BadOperand { position: 2, .. }
        ));
    }

    #[test]
    fn burst_zero_rejected() {
        let err = assemble("mvtc BANK1,0,DMA0,FIFO0\neop").unwrap_err();
        assert!(matches!(
            err.kind(),
            AssembleErrorKind::BadOperand { position: 3, .. }
        ));
    }

    #[test]
    fn missing_terminator_reported() {
        let err = assemble("execs").unwrap_err();
        assert!(matches!(
            err.kind(),
            AssembleErrorKind::Validate(ValidateError::MissingTerminator)
        ));
    }

    #[test]
    fn exec_with_operation_tag() {
        let p = assemble("execs 0x12\neop").unwrap();
        assert_eq!(p[0], Instruction::Exec { op: 0x12 });
    }

    #[test]
    fn wait_and_sync_and_halt() {
        let p = assemble("wait 100\nsync\nhalt").unwrap();
        assert_eq!(p[0], Instruction::Wait { cycles: 100 });
        assert_eq!(p[1], Instruction::Sync);
        assert_eq!(p[2], Instruction::Halt);
    }

    #[test]
    fn rcfg_assembles() {
        let p = assemble("rcfg 2\neop").unwrap();
        assert_eq!(p[0], Instruction::Rcfg { slot: 2 });
    }

    #[test]
    fn addo_negative_delta() {
        let p = assemble("addo O1,-64\neop").unwrap();
        if let Instruction::Addo { delta, .. } = p[0] {
            assert_eq!(delta, -64);
        } else {
            panic!("expected addo");
        }
    }

    #[test]
    fn error_display_contains_line() {
        let err = assemble("nop\nbogus\neop").unwrap_err();
        assert!(err.to_string().starts_with("line 2:"));
    }
}
