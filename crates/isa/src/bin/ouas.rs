//! `ouas` — the Ouessant microcode assembler/disassembler.
//!
//! ```text
//! ouas asm <source.s>          assemble; hex words on stdout
//! ouas asm <source.s> -o <f>   assemble into a file
//! ouas dis <words.hex>         disassemble hex words (one per line)
//! ouas check <source.s>        assemble and report statistics only
//! ```
//!
//! Hex files hold one 32-bit word per line (`0x`-prefixed or bare hex);
//! `#`/`//` comments and blank lines are ignored.

use std::fs;
use std::process::ExitCode;

use ouessant_isa::{assemble, disassemble, Program};

fn usage() -> ExitCode {
    eprintln!("usage: ouas asm <source.s> [-o <out.hex>]");
    eprintln!("       ouas dis <words.hex>");
    eprintln!("       ouas check <source.s>");
    ExitCode::from(2)
}

fn parse_hex_file(text: &str) -> Result<Vec<u32>, String> {
    let mut words = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let mut line = raw;
        for marker in ["//", "#"] {
            if let Some(pos) = line.find(marker) {
                line = &line[..pos];
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let hex = line
            .strip_prefix("0x")
            .or_else(|| line.strip_prefix("0X"))
            .unwrap_or(line);
        let word = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("line {}: `{line}` is not a hex word", i + 1))?;
        words.push(word);
    }
    Ok(words)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    match cmd {
        "asm" | "check" => {
            let (input, output) = match rest {
                [input] => (input, None),
                [input, flag, out] if flag == "-o" => (input, Some(out)),
                _ => return usage(),
            };
            let source = match fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ouas: cannot read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match assemble(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "check" {
                eprintln!(
                    "{input}: {} instructions, {} data words transferred",
                    program.len(),
                    program.static_words_transferred()
                );
                return ExitCode::SUCCESS;
            }
            let hex: String = program
                .to_words()
                .iter()
                .map(|w| format!("{w:#010x}\n"))
                .collect();
            match output {
                Some(path) => {
                    if let Err(e) = fs::write(path, hex) {
                        eprintln!("ouas: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => print!("{hex}"),
            }
            ExitCode::SUCCESS
        }
        "dis" => {
            let [input] = rest else { return usage() };
            let text = match fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ouas: cannot read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let words = match parse_hex_file(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Program::from_words(&words) {
                Ok(program) => {
                    print!("{}", disassemble(&program));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
