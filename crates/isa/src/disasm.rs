//! Disassembly of Ouessant programs back to Figure 4 style source text.
//!
//! [`disassemble`] produces text that [`crate::assemble`] accepts and
//! that round-trips to the identical [`Program`] — a property verified
//! exhaustively by this crate's property tests.

use crate::instruction::Instruction;
use crate::program::Program;

/// Renders a program as assembler source, one instruction per line,
/// prefixed with its instruction index as a comment.
///
/// # Examples
///
/// ```
/// use ouessant_isa::{assemble, disassemble};
///
/// let p = assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\neop")?;
/// let text = disassemble(&p);
/// assert!(text.contains("mvtc BANK1,0,DMA64,FIFO0"));
/// // Disassembly re-assembles to the same program.
/// assert_eq!(assemble(&text)?, p);
/// # Ok::<(), ouessant_isa::AssembleError>(())
/// ```
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (idx, insn) in program.iter().enumerate() {
        // djnz targets are numeric indices, so emit every index as a
        // label-free comment column to keep the text readable.
        out.push_str(&format!("{insn}    ; [{idx}] {:#010x}\n", insn.encode()));
    }
    out
}

/// Renders a single instruction word, or an explanatory placeholder if
/// it does not decode.
#[must_use]
pub fn disassemble_word(word: u32) -> String {
    match Instruction::decode(word) {
        Ok(insn) => insn.to_string(),
        Err(e) => format!(".word {word:#010x} ; {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::program::ProgramBuilder;

    #[test]
    fn round_trips_figure4() {
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 512, 64, 0)
            .unwrap()
            .execs()
            .transfer_from_coprocessor(2, 0, 512, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let text = disassemble(&p);
        assert_eq!(assemble(&text).unwrap(), p);
    }

    #[test]
    fn round_trips_extension_instructions() {
        let src = "
            ldc R0,8
            ldo O0,0
            loop:
                mvtcr BANK1,O0,DMA64,FIFO0
                execn
                wrac
                mvfcr BANK2,O1,DMA64,FIFO0
                addo O1,-64
                djnz R0,loop
            wait 10
            sync
            eop
        ";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        assert_eq!(assemble(&text).unwrap(), p);
    }

    #[test]
    fn bad_word_is_rendered_as_data() {
        let text = disassemble_word(31u32 << 27);
        assert!(text.starts_with(".word"));
        assert!(text.contains("reserved opcode"));
    }

    #[test]
    fn good_word_is_rendered_as_instruction() {
        let p = assemble("eop").unwrap();
        assert_eq!(disassemble_word(p.to_words()[0]), "eop");
    }
}
