//! The 5-bit Ouessant opcode space.
//!
//! The paper stores the operation code on 5 bits, "which allows up to 32
//! different instructions", of which the 2016 version implements four
//! (`mvtc`, `mvfc`, `exec`, `eop`). The remaining encodings below belong to
//! the extension surface announced in the paper (loops, split
//! launch/join, register-indexed transfers, waits).

use std::fmt;

/// Width of the opcode field in bits.
pub const OPCODE_BITS: u32 = 5;

/// Bit position of the opcode field inside a 32-bit instruction word
/// (the opcode occupies the top bits, `[31:27]`).
pub const OPCODE_SHIFT: u32 = 32 - OPCODE_BITS;

/// A 5-bit Ouessant operation code.
///
/// `Opcode` is the *name space* of the instruction set; the fully decoded
/// form including operands is [`crate::Instruction`].
///
/// # Examples
///
/// ```
/// use ouessant_isa::Opcode;
///
/// let op = Opcode::from_bits(0b00001).expect("mvtc is a defined opcode");
/// assert_eq!(op, Opcode::Mvtc);
/// assert_eq!(op.mnemonic(), "mvtc");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation; consumes one execute cycle.
    Nop = 0,
    /// Move to coprocessor: burst-read from a memory bank into an input FIFO.
    Mvtc = 1,
    /// Move from coprocessor: burst-write from an output FIFO into a memory bank.
    Mvfc = 2,
    /// Launch the accelerator and wait for its `end_op` pulse.
    Exec = 3,
    /// End of program: set the done bit and signal the CPU.
    Eop = 4,
    /// Launch the accelerator without waiting (join later with [`Opcode::Wrac`]).
    Execn = 5,
    /// Wait for the accelerator's `end_op` pulse.
    Wrac = 6,
    /// Load a hardware loop counter with an immediate.
    Ldc = 7,
    /// Decrement a loop counter and jump if it is non-zero.
    Djnz = 8,
    /// Load an offset register with an immediate word offset.
    Ldo = 9,
    /// Add a signed immediate to an offset register.
    Addo = 10,
    /// `mvtc` addressed through an offset register, with post-increment.
    Mvtcr = 11,
    /// `mvfc` addressed through an offset register, with post-increment.
    Mvfcr = 12,
    /// Stall for an immediate number of cycles.
    Wait = 13,
    /// Barrier: wait until all coprocessor FIFOs are empty.
    Sync = 14,
    /// Stop the controller without setting the done bit.
    Halt = 15,
    /// Trigger dynamic partial reconfiguration of the RAC slot
    /// (the paper's §VI work in progress).
    Rcfg = 16,
}

impl Opcode {
    /// All defined opcodes, in encoding order.
    pub const ALL: [Opcode; 17] = [
        Opcode::Nop,
        Opcode::Mvtc,
        Opcode::Mvfc,
        Opcode::Exec,
        Opcode::Eop,
        Opcode::Execn,
        Opcode::Wrac,
        Opcode::Ldc,
        Opcode::Djnz,
        Opcode::Ldo,
        Opcode::Addo,
        Opcode::Mvtcr,
        Opcode::Mvfcr,
        Opcode::Wait,
        Opcode::Sync,
        Opcode::Halt,
        Opcode::Rcfg,
    ];

    /// The four instructions implemented by the DATE 2016 paper.
    pub const BASELINE: [Opcode; 4] = [Opcode::Mvtc, Opcode::Mvfc, Opcode::Exec, Opcode::Eop];

    /// Decodes a 5-bit field into an opcode.
    ///
    /// Returns `None` for the 16 reserved encodings (a real controller
    /// would raise an illegal-instruction condition; see
    /// [`crate::DecodeError::ReservedOpcode`]).
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<Self> {
        Self::ALL.get(usize::from(bits)).copied()
    }

    /// The 5-bit encoding of this opcode.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// The assembler mnemonic (lowercase, as printed in the paper).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Mvtc => "mvtc",
            Opcode::Mvfc => "mvfc",
            Opcode::Exec => "exec",
            Opcode::Eop => "eop",
            Opcode::Execn => "execn",
            Opcode::Wrac => "wrac",
            Opcode::Ldc => "ldc",
            Opcode::Djnz => "djnz",
            Opcode::Ldo => "ldo",
            Opcode::Addo => "addo",
            Opcode::Mvtcr => "mvtcr",
            Opcode::Mvfcr => "mvfcr",
            Opcode::Wait => "wait",
            Opcode::Sync => "sync",
            Opcode::Halt => "halt",
            Opcode::Rcfg => "rcfg",
        }
    }

    /// Looks an opcode up by its mnemonic (case-insensitive).
    ///
    /// `execs` — the paper's Figure 4 spelling of "exec and wait
    /// (synchronous)" — is accepted as an alias of [`Opcode::Exec`].
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        if lower == "execs" {
            return Some(Opcode::Exec);
        }
        Self::ALL.iter().copied().find(|op| op.mnemonic() == lower)
    }

    /// Whether this opcode belongs to the minimal DATE 2016 instruction
    /// set (as opposed to the announced extension surface).
    #[must_use]
    pub fn is_baseline(self) -> bool {
        Self::BASELINE.contains(&self)
    }

    /// Whether this opcode moves data over the system bus (the two DMA
    /// kinds of the paper's "data transfers instructions" category).
    #[must_use]
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            Opcode::Mvtc | Opcode::Mvfc | Opcode::Mvtcr | Opcode::Mvfcr
        )
    }

    /// Whether this opcode belongs to the paper's "execution management"
    /// category.
    #[must_use]
    pub fn is_execution_management(self) -> bool {
        matches!(
            self,
            Opcode::Exec | Opcode::Execn | Opcode::Wrac | Opcode::Eop | Opcode::Sync | Opcode::Halt
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_bits(op.to_bits()), Some(op));
        }
    }

    #[test]
    fn reserved_encodings_decode_to_none() {
        for bits in 17u8..32 {
            assert_eq!(Opcode::from_bits(bits), None, "bits {bits:#07b}");
        }
    }

    #[test]
    fn out_of_field_bits_decode_to_none() {
        assert_eq!(Opcode::from_bits(32), None);
        assert_eq!(Opcode::from_bits(255), None);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = Opcode::ALL.iter().map(|op| op.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Opcode::ALL.len());
    }

    #[test]
    fn mnemonic_lookup_is_case_insensitive() {
        assert_eq!(Opcode::from_mnemonic("MVTC"), Some(Opcode::Mvtc));
        assert_eq!(Opcode::from_mnemonic("Eop"), Some(Opcode::Eop));
    }

    #[test]
    fn execs_alias_from_paper_figure4() {
        assert_eq!(Opcode::from_mnemonic("execs"), Some(Opcode::Exec));
        assert_eq!(Opcode::from_mnemonic("EXECS"), Some(Opcode::Exec));
    }

    #[test]
    fn unknown_mnemonic() {
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
        assert_eq!(Opcode::from_mnemonic(""), None);
    }

    #[test]
    fn baseline_set_matches_paper() {
        assert!(Opcode::Mvtc.is_baseline());
        assert!(Opcode::Mvfc.is_baseline());
        assert!(Opcode::Exec.is_baseline());
        assert!(Opcode::Eop.is_baseline());
        assert!(!Opcode::Djnz.is_baseline());
        assert_eq!(
            Opcode::ALL.iter().filter(|op| op.is_baseline()).count(),
            4,
            "the paper implements exactly four instructions"
        );
    }

    #[test]
    fn categories_are_disjoint() {
        for op in Opcode::ALL {
            assert!(
                !(op.is_transfer() && op.is_execution_management()),
                "{op} is in both categories"
            );
        }
    }

    #[test]
    fn opcode_space_leaves_room_for_32() {
        // 5-bit opcode: 32 encodings, 17 used, 15 reserved.
        assert_eq!(OPCODE_BITS, 5);
        assert!(Opcode::ALL.len() <= 32);
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(Opcode::Mvtc.to_string(), "mvtc");
        assert_eq!(Opcode::Halt.to_string(), "halt");
    }
}
