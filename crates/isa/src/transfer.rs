//! A uniform view of the four transfer instructions.
//!
//! `mvtc`/`mvfc`/`mvtcr`/`mvfcr` share the same shape — a direction, a
//! memory bank, a FIFO, a burst length and an addressing mode — but the
//! [`Instruction`] enum keeps them as four variants for bit-exact
//! encoding. Both the optimizer's coalescing walk and the static
//! analyzer's bank-bounds pass need to reason about "the transfers of a
//! program" generically; [`Transfer`] is that shared view, obtained per
//! instruction via [`Transfer::from_instruction`] or for a whole
//! program via [`crate::Program::iter_transfers`].

use crate::instruction::Instruction;
use crate::operands::{Bank, BurstLen, FifoId, Offset, OffsetReg};

/// How a transfer addresses its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOffset {
    /// A 14-bit immediate word offset (`mvtc`/`mvfc`).
    Immediate(Offset),
    /// An offset register, post-incremented by the burst length
    /// (`mvtcr`/`mvfcr`).
    Register(OffsetReg),
}

/// One transfer instruction, direction-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Instruction index inside the program (0 when constructed from a
    /// lone instruction).
    pub index: usize,
    /// `true` for `mvtc`/`mvtcr` (memory → input FIFO), `false` for
    /// `mvfc`/`mvfcr` (output FIFO → memory).
    pub to_coprocessor: bool,
    /// The memory bank touched.
    pub bank: Bank,
    /// The FIFO involved.
    pub fifo: FifoId,
    /// Words moved.
    pub burst: BurstLen,
    /// Addressing mode.
    pub offset: TransferOffset,
}

impl Transfer {
    /// Views `insn` as a transfer, tagged with its program `index`.
    /// Returns `None` for non-transfer instructions.
    #[must_use]
    pub fn from_instruction(index: usize, insn: &Instruction) -> Option<Self> {
        let (to_coprocessor, bank, fifo, burst, offset) = match *insn {
            Instruction::Mvtc {
                bank,
                offset,
                burst,
                fifo,
            } => (true, bank, fifo, burst, TransferOffset::Immediate(offset)),
            Instruction::Mvfc {
                bank,
                offset,
                burst,
                fifo,
            } => (false, bank, fifo, burst, TransferOffset::Immediate(offset)),
            Instruction::Mvtcr {
                bank,
                reg,
                burst,
                fifo,
            } => (true, bank, fifo, burst, TransferOffset::Register(reg)),
            Instruction::Mvfcr {
                bank,
                reg,
                burst,
                fifo,
            } => (false, bank, fifo, burst, TransferOffset::Register(reg)),
            _ => return None,
        };
        Some(Self {
            index,
            to_coprocessor,
            bank,
            fifo,
            burst,
            offset,
        })
    }

    /// The immediate start offset, if this transfer uses one.
    #[must_use]
    pub fn start_offset(&self) -> Option<u32> {
        match self.offset {
            TransferOffset::Immediate(o) => Some(u32::from(o.value())),
            TransferOffset::Register(_) => None,
        }
    }

    /// One past the last word offset touched, for immediate transfers.
    #[must_use]
    pub fn end_offset(&self) -> Option<u32> {
        self.start_offset()
            .map(|s| s + u32::from(self.burst.words()))
    }

    /// Whether `next` continues this transfer: same direction, bank and
    /// FIFO, both immediate, and starting exactly where this one ends.
    #[must_use]
    pub fn is_contiguous_with(&self, next: &Transfer) -> bool {
        self.to_coprocessor == next.to_coprocessor
            && self.bank == next.bank
            && self.fifo == next.fifo
            && matches!(
                (self.end_offset(), next.start_offset()),
                (Some(e), Some(s)) if e == s
            )
    }

    /// Re-encodes the transfer as an [`Instruction`].
    #[must_use]
    pub fn to_instruction(&self) -> Instruction {
        match (self.to_coprocessor, self.offset) {
            (true, TransferOffset::Immediate(offset)) => Instruction::Mvtc {
                bank: self.bank,
                offset,
                burst: self.burst,
                fifo: self.fifo,
            },
            (false, TransferOffset::Immediate(offset)) => Instruction::Mvfc {
                bank: self.bank,
                offset,
                burst: self.burst,
                fifo: self.fifo,
            },
            (true, TransferOffset::Register(reg)) => Instruction::Mvtcr {
                bank: self.bank,
                reg,
                burst: self.burst,
                fifo: self.fifo,
            },
            (false, TransferOffset::Register(reg)) => Instruction::Mvfcr {
                bank: self.bank,
                reg,
                burst: self.burst,
                fifo: self.fifo,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn transfer_round_trips_through_instruction() {
        let p = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0)
            .unwrap()
            .mvfc(2, 64, 32, 1)
            .unwrap()
            .mvtcr(3, 2, 16, 2)
            .unwrap()
            .mvfcr(4, 3, 8, 3)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        for (i, insn) in p.iter().enumerate().take(4) {
            let t = Transfer::from_instruction(i, insn).expect("transfer instruction");
            assert_eq!(t.index, i);
            assert_eq!(t.to_instruction(), *insn);
        }
        assert!(Transfer::from_instruction(4, &p[4]).is_none(), "eop");
    }

    #[test]
    fn contiguity_requires_same_stream_and_adjacency() {
        let a = Transfer::from_instruction(
            0,
            &ProgramBuilder::new()
                .mvtc(1, 0, 64, 0)
                .unwrap()
                .eop()
                .finish()
                .unwrap()[0],
        )
        .unwrap();
        let mk = |bank: u8, offset: u16, burst: u16, fifo: u8| {
            Transfer::from_instruction(
                1,
                &ProgramBuilder::new()
                    .mvtc(bank, offset, burst, fifo)
                    .unwrap()
                    .eop()
                    .finish()
                    .unwrap()[0],
            )
            .unwrap()
        };
        assert!(a.is_contiguous_with(&mk(1, 64, 64, 0)));
        assert!(!a.is_contiguous_with(&mk(1, 65, 64, 0)), "gap");
        assert!(!a.is_contiguous_with(&mk(2, 64, 64, 0)), "other bank");
        assert!(!a.is_contiguous_with(&mk(1, 64, 64, 1)), "other fifo");
    }

    #[test]
    fn register_transfers_have_no_static_offsets() {
        let p = ProgramBuilder::new()
            .mvtcr(1, 0, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let t = Transfer::from_instruction(0, &p[0]).unwrap();
        assert_eq!(t.start_offset(), None);
        assert_eq!(t.end_offset(), None);
    }
}
