//! Validated Ouessant programs (microcode).
//!
//! A [`Program`] is the unit the CPU hands to the OCP: a bounded sequence
//! of instructions that the interface loads into the controller's program
//! store when the *S* (start) bit is written. The second configuration
//! register of the interface holds the program length (see Figure 3 of the
//! paper), so a program can never exceed
//! [`MAX_PROGRAM_LEN`] instructions.
//!
//! [`MAX_PROGRAM_LEN`]: crate::operands::MAX_PROGRAM_LEN

use std::error::Error;
use std::fmt;
use std::ops::Index;

use crate::instruction::{DecodeError, Instruction};
use crate::operands::{
    Bank, BurstLen, Counter, FifoId, Offset, OffsetReg, ProgAddr, MAX_PROGRAM_LEN,
};
use crate::transfer::Transfer;

/// A validated sequence of Ouessant instructions.
///
/// Invariants enforced at construction:
///
/// * length is `1..=1024` instructions;
/// * every `djnz` target points inside the program;
/// * the program terminates: its last instruction is `eop` or `halt`, or a
///   preceding unconditional control structure guarantees termination
///   (we require the simpler structural property — a terminator as last
///   instruction — which is what the paper's microcode does).
///
/// # Examples
///
/// ```
/// use ouessant_isa::{Instruction, Program};
///
/// let program = Program::new(vec![Instruction::Exec { op: 0 }, Instruction::Eop])?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), ouessant_isa::ValidateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

/// Error validating a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateError {
    /// The program contains no instructions.
    Empty,
    /// The program exceeds the controller's program store.
    TooLong {
        /// Actual number of instructions.
        len: usize,
    },
    /// A `djnz` branches past the end of the program.
    BranchOutOfRange {
        /// Index of the offending `djnz`.
        at: usize,
        /// Its branch target.
        target: u16,
    },
    /// The program does not end with `eop` or `halt`, so the controller
    /// would run off the end of the program store.
    MissingTerminator,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => f.write_str("program is empty"),
            ValidateError::TooLong { len } => write!(
                f,
                "program has {len} instructions, more than the program store holds ({MAX_PROGRAM_LEN})"
            ),
            ValidateError::BranchOutOfRange { at, target } => {
                write!(f, "djnz at index {at} targets {target}, past the end of the program")
            }
            ValidateError::MissingTerminator => {
                f.write_str("program does not end with eop or halt")
            }
        }
    }
}

impl Error for ValidateError {}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// See [`ValidateError`] for the conditions checked.
    pub fn new(instructions: Vec<Instruction>) -> Result<Self, ValidateError> {
        if instructions.is_empty() {
            return Err(ValidateError::Empty);
        }
        if instructions.len() > MAX_PROGRAM_LEN {
            return Err(ValidateError::TooLong {
                len: instructions.len(),
            });
        }
        for (at, insn) in instructions.iter().enumerate() {
            if let Instruction::Djnz { target, .. } = insn {
                if usize::from(target.value()) >= instructions.len() {
                    return Err(ValidateError::BranchOutOfRange {
                        at,
                        target: target.value(),
                    });
                }
            }
        }
        match instructions.last() {
            Some(Instruction::Eop | Instruction::Halt) => {}
            _ => return Err(ValidateError::MissingTerminator),
        }
        Ok(Self { instructions })
    }

    /// Number of instructions.
    #[must_use]
    #[allow(clippy::len_without_is_empty)] // a valid Program is never empty
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// The instructions as a slice.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Iterates over the transfer instructions (`mvtc`/`mvfc`/`mvtcr`/
    /// `mvfcr`) as direction-agnostic [`Transfer`] records tagged with
    /// their instruction index.
    ///
    /// ```
    /// use ouessant_isa::assemble;
    ///
    /// let p = assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop")?;
    /// let transfers: Vec<_> = p.iter_transfers().collect();
    /// assert_eq!(transfers.len(), 2);
    /// assert!(transfers[0].to_coprocessor);
    /// assert_eq!(transfers[1].index, 2);
    /// # Ok::<(), ouessant_isa::AssembleError>(())
    /// ```
    pub fn iter_transfers(&self) -> impl Iterator<Item = Transfer> + '_ {
        self.instructions
            .iter()
            .enumerate()
            .filter_map(|(i, insn)| Transfer::from_instruction(i, insn))
    }

    /// Encodes the program into 32-bit memory words, ready to be placed
    /// in the OCP's program bank.
    #[must_use]
    pub fn to_words(&self) -> Vec<u32> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Decodes a program from raw memory words.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] hit, or a [`ValidateError`]
    /// wrapped as `Err(Ok(_))`-free variant via [`ProgramFromWordsError`].
    pub fn from_words(words: &[u32]) -> Result<Self, ProgramFromWordsError> {
        let instructions = words
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                Instruction::decode(w)
                    .map_err(|e| ProgramFromWordsError::Decode { at: i, source: e })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(instructions).map_err(ProgramFromWordsError::Validate)
    }

    /// Total number of data words this program moves over the bus
    /// assuming every `djnz` loop body executes its counter's full count.
    ///
    /// For straight-line programs (as in the paper's Figure 4) this is
    /// exact; for looped programs it is exact when each counter is loaded
    /// once with `ldc` before its `djnz`.
    #[must_use]
    pub fn static_words_transferred(&self) -> u64 {
        // Straight-line contribution.
        let mut total: u64 = 0;
        let mut counter_values = [0u64; 4];
        let mut i = 0usize;
        let mut fuel = 1_000_000u64; // defensive bound against accidental infinite loops
        while i < self.instructions.len() && fuel > 0 {
            fuel -= 1;
            match self.instructions[i] {
                Instruction::Ldc { counter, imm } => {
                    counter_values[counter.index()] = u64::from(imm);
                }
                Instruction::Djnz { counter, target } if counter_values[counter.index()] > 0 => {
                    counter_values[counter.index()] -= 1;
                    if counter_values[counter.index()] > 0 {
                        i = usize::from(target.value());
                        continue;
                    }
                }
                Instruction::Eop | Instruction::Halt => {
                    total += u64::from(self.instructions[i].words_transferred());
                    break;
                }
                _ => {}
            }
            total += u64::from(self.instructions[i].words_transferred());
            i += 1;
        }
        total
    }
}

/// Error decoding a program from raw memory words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramFromWordsError {
    /// A word failed instruction decoding.
    Decode {
        /// Word index.
        at: usize,
        /// Underlying decode failure.
        source: DecodeError,
    },
    /// The decoded sequence failed program validation.
    Validate(ValidateError),
}

impl fmt::Display for ProgramFromWordsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramFromWordsError::Decode { at, source } => {
                write!(f, "word {at}: {source}")
            }
            ProgramFromWordsError::Validate(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ProgramFromWordsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgramFromWordsError::Decode { source, .. } => Some(source),
            ProgramFromWordsError::Validate(e) => Some(e),
        }
    }
}

impl Index<usize> for Program {
    type Output = Instruction;

    fn index(&self, index: usize) -> &Instruction {
        &self.instructions[index]
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// A fluent builder for Ouessant programs.
///
/// The builder offers one method per instruction plus convenience
/// generators for the transfer patterns the paper's microcode uses
/// (chunked buffer moves as in Figure 4). `finish` validates the result.
///
/// # Examples
///
/// Figure 4's DFT microcode, generated instead of hand-written:
///
/// ```
/// use ouessant_isa::ProgramBuilder;
///
/// let program = ProgramBuilder::new()
///     .transfer_to_coprocessor(1, 0, 512, 64, 0)? // 512 words, DMA64 chunks
///     .execs()
///     .transfer_from_coprocessor(2, 0, 512, 64, 0)?
///     .eop()
///     .finish()?;
/// assert_eq!(program.len(), 8 + 1 + 8 + 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Instruction>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions queued so far (useful for computing `djnz`
    /// targets).
    #[must_use]
    pub fn here(&self) -> usize {
        self.instructions.len()
    }

    /// Appends an arbitrary instruction.
    #[must_use]
    pub fn push(mut self, insn: Instruction) -> Self {
        self.instructions.push(insn);
        self
    }

    /// Appends `nop`.
    #[must_use]
    pub fn nop(self) -> Self {
        self.push(Instruction::Nop)
    }

    /// Appends one `mvtc`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if any field is out of range.
    pub fn mvtc(
        self,
        bank: u8,
        offset: u16,
        burst: u16,
        fifo: u8,
    ) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Mvtc {
            bank: Bank::new(bank)?,
            offset: Offset::new(offset)?,
            burst: BurstLen::new(burst)?,
            fifo: FifoId::new(fifo)?,
        }))
    }

    /// Appends one `mvfc`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if any field is out of range.
    pub fn mvfc(
        self,
        bank: u8,
        offset: u16,
        burst: u16,
        fifo: u8,
    ) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Mvfc {
            bank: Bank::new(bank)?,
            offset: Offset::new(offset)?,
            burst: BurstLen::new(burst)?,
            fifo: FifoId::new(fifo)?,
        }))
    }

    /// Appends as many `mvtc` as needed to move `total_words` from the
    /// start of `bank` to `fifo` in `chunk`-word bursts — the unrolled
    /// pattern of the paper's Figure 4.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if a field is out of range or the
    /// final offset would overflow the 14-bit offset field.
    pub fn transfer_to_coprocessor(
        mut self,
        bank: u8,
        start_offset: u16,
        total_words: u32,
        chunk: u16,
        fifo: u8,
    ) -> Result<Self, crate::OperandError> {
        let mut remaining = total_words;
        let mut offset = u32::from(start_offset);
        while remaining > 0 {
            let this = remaining.min(u32::from(chunk)) as u16;
            self = self.mvtc(bank, u16::try_from(offset).unwrap_or(u16::MAX), this, fifo)?;
            offset += u32::from(this);
            remaining -= u32::from(this);
        }
        Ok(self)
    }

    /// Appends as many `mvfc` as needed to move `total_words` from `fifo`
    /// to the start of `bank`, in `chunk`-word bursts.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if a field is out of range.
    pub fn transfer_from_coprocessor(
        mut self,
        bank: u8,
        start_offset: u16,
        total_words: u32,
        chunk: u16,
        fifo: u8,
    ) -> Result<Self, crate::OperandError> {
        let mut remaining = total_words;
        let mut offset = u32::from(start_offset);
        while remaining > 0 {
            let this = remaining.min(u32::from(chunk)) as u16;
            self = self.mvfc(bank, u16::try_from(offset).unwrap_or(u16::MAX), this, fifo)?;
            offset += u32::from(this);
            remaining -= u32::from(this);
        }
        Ok(self)
    }

    /// Appends `execs` (launch the RAC and wait).
    #[must_use]
    pub fn execs(self) -> Self {
        self.push(Instruction::Exec { op: 0 })
    }

    /// Appends `execs` with an operation tag.
    #[must_use]
    pub fn execs_op(self, op: u16) -> Self {
        self.push(Instruction::Exec { op })
    }

    /// Appends `execn` (launch without waiting).
    #[must_use]
    pub fn execn(self) -> Self {
        self.push(Instruction::Execn { op: 0 })
    }

    /// Appends `wrac`.
    #[must_use]
    pub fn wrac(self) -> Self {
        self.push(Instruction::Wrac)
    }

    /// Appends `eop`.
    #[must_use]
    pub fn eop(self) -> Self {
        self.push(Instruction::Eop)
    }

    /// Appends `halt`.
    #[must_use]
    pub fn halt(self) -> Self {
        self.push(Instruction::Halt)
    }

    /// Appends `sync`.
    #[must_use]
    pub fn sync(self) -> Self {
        self.push(Instruction::Sync)
    }

    /// Appends `rcfg` (dynamic partial reconfiguration of the RAC slot).
    #[must_use]
    pub fn rcfg(self, slot: u16) -> Self {
        self.push(Instruction::Rcfg { slot })
    }

    /// Appends `wait`.
    #[must_use]
    pub fn wait(self, cycles: u16) -> Self {
        self.push(Instruction::Wait { cycles })
    }

    /// Appends `ldc`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if `counter > 3`.
    pub fn ldc(self, counter: u8, imm: u16) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Ldc {
            counter: Counter::new(counter)?,
            imm,
        }))
    }

    /// Appends `djnz`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if a field is out of range. The
    /// branch target is validated against the finished program by
    /// [`ProgramBuilder::finish`].
    pub fn djnz(self, counter: u8, target: usize) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Djnz {
            counter: Counter::new(counter)?,
            target: ProgAddr::new(u16::try_from(target).unwrap_or(u16::MAX))?,
        }))
    }

    /// Appends `ldo`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if `reg > 3`.
    pub fn ldo(self, reg: u8, imm: u16) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Ldo {
            reg: OffsetReg::new(reg)?,
            imm,
        }))
    }

    /// Appends `mvtcr`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if any field is out of range.
    pub fn mvtcr(
        self,
        bank: u8,
        reg: u8,
        burst: u16,
        fifo: u8,
    ) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Mvtcr {
            bank: Bank::new(bank)?,
            reg: OffsetReg::new(reg)?,
            burst: BurstLen::new(burst)?,
            fifo: FifoId::new(fifo)?,
        }))
    }

    /// Appends `mvfcr`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OperandError`] if any field is out of range.
    pub fn mvfcr(
        self,
        bank: u8,
        reg: u8,
        burst: u16,
        fifo: u8,
    ) -> Result<Self, crate::OperandError> {
        Ok(self.push(Instruction::Mvfcr {
            bank: Bank::new(bank)?,
            reg: OffsetReg::new(reg)?,
            burst: BurstLen::new(burst)?,
            fifo: FifoId::new(fifo)?,
        }))
    }

    /// Validates and returns the finished [`Program`].
    ///
    /// # Errors
    ///
    /// See [`ValidateError`].
    pub fn finish(self) -> Result<Program, ValidateError> {
        Program::new(self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![]), Err(ValidateError::Empty));
    }

    #[test]
    fn missing_terminator_rejected() {
        let p = Program::new(vec![Instruction::Nop]);
        assert_eq!(p, Err(ValidateError::MissingTerminator));
    }

    #[test]
    fn halt_is_a_valid_terminator() {
        assert!(Program::new(vec![Instruction::Halt]).is_ok());
    }

    #[test]
    fn too_long_rejected() {
        let mut v = vec![Instruction::Nop; MAX_PROGRAM_LEN];
        v.push(Instruction::Eop);
        assert_eq!(
            Program::new(v),
            Err(ValidateError::TooLong {
                len: MAX_PROGRAM_LEN + 1
            })
        );
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let p = Program::new(vec![
            Instruction::Djnz {
                counter: Counter::new(0).unwrap(),
                target: ProgAddr::new(9).unwrap(),
            },
            Instruction::Eop,
        ]);
        assert_eq!(p, Err(ValidateError::BranchOutOfRange { at: 0, target: 9 }));
    }

    #[test]
    fn words_round_trip() {
        let p = ProgramBuilder::new()
            .mvtc(1, 0, 64, 0)
            .unwrap()
            .execs()
            .mvfc(2, 0, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        let words = p.to_words();
        assert_eq!(Program::from_words(&words).unwrap(), p);
    }

    #[test]
    fn from_words_reports_bad_word_index() {
        let p = ProgramBuilder::new().execs().eop().finish().unwrap();
        let mut words = p.to_words();
        words.insert(1, 31u32 << 27); // reserved opcode
        match Program::from_words(&words) {
            Err(ProgramFromWordsError::Decode { at: 1, .. }) => {}
            other => panic!("expected decode error at word 1, got {other:?}"),
        }
    }

    #[test]
    fn figure4_shape() {
        // 8 x mvtc DMA64 + execs + 8 x mvfc DMA64 + eop = 18 instructions.
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(1, 0, 512, 64, 0)
            .unwrap()
            .execs()
            .transfer_from_coprocessor(2, 0, 512, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        assert_eq!(p.len(), 18);
        assert_eq!(p.static_words_transferred(), 1024);
        // Offsets advance in 64-word strides: 0, 64, ..., 448.
        if let Instruction::Mvtc { offset, .. } = p[7] {
            assert_eq!(offset.value(), 448);
        } else {
            panic!("instruction 7 should be mvtc");
        }
    }

    #[test]
    fn partial_final_chunk() {
        let p = ProgramBuilder::new()
            .transfer_to_coprocessor(0, 0, 100, 64, 0)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        // 64 + 36
        assert_eq!(p.len(), 3);
        assert_eq!(p.static_words_transferred(), 100);
        if let Instruction::Mvtc { burst, .. } = p[1] {
            assert_eq!(burst.words(), 36);
        } else {
            panic!("instruction 1 should be mvtc");
        }
    }

    #[test]
    fn looped_transfer_word_count() {
        // ldc R0,8 ; mvtcr ... DMA64 ; djnz R0,1 ; eop  => 8 * 64 words.
        let p = ProgramBuilder::new()
            .ldc(0, 8)
            .unwrap()
            .ldo(0, 0)
            .unwrap()
            .mvtcr(1, 0, 64, 0)
            .unwrap()
            .djnz(0, 2)
            .unwrap()
            .eop()
            .finish()
            .unwrap();
        assert_eq!(p.static_words_transferred(), 512);
    }

    #[test]
    fn indexing_and_iteration() {
        let p = ProgramBuilder::new().execs().eop().finish().unwrap();
        assert_eq!(p[1], Instruction::Eop);
        assert_eq!(p.iter().count(), 2);
        assert_eq!((&p).into_iter().count(), 2);
    }

    #[test]
    fn validate_error_messages() {
        assert_eq!(ValidateError::Empty.to_string(), "program is empty");
        assert!(ValidateError::MissingTerminator.to_string().contains("eop"));
    }
}
