//! # Ouessant instruction set architecture
//!
//! This crate defines the dedicated instruction set of the *Ouessant
//! coprocessor* (OCP) described in Horrein et al., *"Ouessant: Flexible
//! Integration of Dedicated Coprocessors in Systems On Chip"*, DATE 2016.
//!
//! The Ouessant controller is a very small general-purpose microcontroller
//! whose only job is to command an accelerator (the *RAC*) and to move data
//! between system memory and the accelerator's FIFOs with minimal CPU
//! intervention. Its instruction word is 32 bits wide with a 5-bit opcode
//! (up to 32 instructions). The DATE 2016 paper implements four
//! instructions:
//!
//! * [`Instruction::Mvtc`] — burst-copy words from a memory bank **to** the
//!   coprocessor input FIFO (a small integrated DMA);
//! * [`Instruction::Mvfc`] — burst-copy words **from** the coprocessor
//!   output FIFO back to a memory bank;
//! * [`Instruction::Exec`] — launch the accelerator and wait for it to end;
//! * [`Instruction::Eop`] — end of program: set the *done* bit and signal
//!   the CPU (interrupt if enabled).
//!
//! The paper lists the instruction set as "still a very simple and basic
//! one \[which\] will be extended in future versions". This reproduction
//! also implements that announced extension surface — hardware loop
//! counters ([`Instruction::Ldc`]/[`Instruction::Djnz`]), offset registers
//! with post-increment transfers ([`Instruction::Mvtcr`] /
//! [`Instruction::Mvfcr`]), split launch/join ([`Instruction::Execn`] /
//! [`Instruction::Wrac`]), timed stalls ([`Instruction::Wait`]), FIFO
//! barriers ([`Instruction::Sync`]) and [`Instruction::Halt`] — so that the
//! microcode of Figure 4 can be expressed both in the paper's unrolled
//! style and as a compact loop.
//!
//! ## Layers
//!
//! * [`opcode`] — the 5-bit opcode space;
//! * [`operands`] — strongly typed operand newtypes ([`Bank`], [`FifoId`],
//!   [`BurstLen`], [`Counter`], [`OffsetReg`], …);
//! * [`instruction`] — the [`Instruction`] enum with bit-exact
//!   [`Instruction::encode`] / [`Instruction::decode`];
//! * [`program`] — validated instruction sequences ([`Program`]);
//! * [`asm`] — a line-oriented assembler for the textual microcode syntax
//!   used in the paper's Figure 4 (`mvtc BANK1,0,DMA64,FIFO0`);
//! * [`disasm`] — the inverse pretty-printer.
//!
//! ## Example
//!
//! Assemble the Figure 4 style microcode for a DFT offload and inspect it:
//!
//! ```
//! use ouessant_isa::{assemble, Instruction};
//!
//! let src = "
//!     // 64 words from offset 0 of bank 1 to coprocessor FIFO 0
//!     mvtc BANK1,0,DMA64,FIFO0
//!     execs
//!     mvfc BANK2,0,DMA64,FIFO0
//!     eop
//! ";
//! let program = assemble(src)?;
//! assert_eq!(program.len(), 4);
//! assert!(matches!(program[0], Instruction::Mvtc { .. }));
//! # Ok::<(), ouessant_isa::AssembleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod instruction;
pub mod opcode;
pub mod operands;
pub mod opt;
pub mod program;
pub mod transfer;

pub use asm::{assemble, AssembleError, FIGURE4_SOURCE};
pub use disasm::disassemble;
pub use instruction::{DecodeError, Instruction};
pub use opcode::Opcode;
pub use operands::{Bank, BurstLen, Counter, FifoId, Offset, OffsetReg, OperandError, ProgAddr};
pub use program::{Program, ProgramBuilder, ValidateError};
pub use transfer::{Transfer, TransferOffset};
