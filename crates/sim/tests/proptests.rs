//! Randomized invariant tests for the simulation substrate: the bus
//! must never lose, duplicate or reorder data, whatever the burst plan,
//! wait states or interconnect flavour; width adapters must be exact
//! bit-stream transformers.
//!
//! Formerly `proptest` properties; now driven by the in-repo seeded
//! generator so the workspace tests fully offline.

use ouessant_sim::axi::{AxiBus, AxiConfig, SystemBus};
use ouessant_sim::bus::{ArbiterPolicy, Bus, BusConfig, PortState, TxnRequest};
use ouessant_sim::memory::{Sram, SramConfig};
use ouessant_sim::rng::XorShift64;
use ouessant_sim::WidthAdapter;

/// Writes `data` at `addr` in chunks described by `plan`, reads it all
/// back in one burst, on any SystemBus.
fn scatter_then_gather(bus: &mut dyn SystemBus, data: &[u32], plan: &[u16]) -> Vec<u32> {
    let m = bus.register_master("m");
    bus.add_slave_boxed(
        0,
        Box::new(Sram::with_words(
            data.len().max(1) + 4,
            SramConfig::default(),
        )),
    );
    let mut cursor = 0usize;
    let mut plan_idx = 0usize;
    while cursor < data.len() {
        let chunk = usize::from(plan[plan_idx % plan.len()].max(1)).min(data.len() - cursor);
        plan_idx += 1;
        bus.try_begin(
            m,
            TxnRequest::write((cursor * 4) as u32, data[cursor..cursor + chunk].to_vec()),
        )
        .expect("request valid");
        let mut fuel = 1_000_000;
        while bus.poll(m).is_pending() {
            bus.tick();
            fuel -= 1;
            assert!(fuel > 0);
        }
        bus.take_completion(m).expect("present").expect("no fault");
        cursor += chunk;
    }
    bus.try_begin(m, TxnRequest::read(0, data.len() as u16))
        .expect("request valid");
    let mut fuel = 1_000_000;
    while bus.poll(m).is_pending() {
        bus.tick();
        fuel -= 1;
        assert!(fuel > 0);
    }
    bus.take_completion(m)
        .expect("present")
        .expect("no fault")
        .data
}

fn random_plan(rng: &mut XorShift64) -> Vec<u16> {
    let len = rng.gen_range_u32(1..8) as usize;
    (0..len).map(|_| rng.gen_range_u32(1..64) as u16).collect()
}

/// AHB-like bus: arbitrary write plans scatter correctly.
#[test]
fn ahb_scatter_gather_is_identity() {
    let mut rng = XorShift64::new(0xB0_0001);
    for _ in 0..32 {
        let data_len = rng.gen_range_u32(1..300) as usize;
        let data = rng.vec_u32(data_len);
        let plan = random_plan(&mut rng);
        let max_burst = rng.gen_range_u32(1..32) as u16;
        let mut bus = Bus::new(BusConfig {
            max_burst_beats: max_burst,
            arbiter: ArbiterPolicy::FixedPriority,
        });
        let out = scatter_then_gather(&mut bus, &data, &plan);
        assert_eq!(out, data, "plan={plan:?} max_burst={max_burst}");
    }
}

/// AXI-like bus: identical guarantee on the other interconnect.
#[test]
fn axi_scatter_gather_is_identity() {
    let mut rng = XorShift64::new(0xB0_0002);
    for _ in 0..32 {
        let data_len = rng.gen_range_u32(1..200) as usize;
        let data = rng.vec_u32(data_len);
        let plan = random_plan(&mut rng);
        let mut bus = AxiBus::new(AxiConfig::default());
        let out = scatter_then_gather(&mut bus, &data, &plan);
        assert_eq!(out, data, "plan={plan:?}");
    }
}

/// Burst timing is monotone in beats and never below one cycle per
/// beat.
#[test]
fn burst_cycles_bounded() {
    for beats in 1u16..=256 {
        let mut bus = Bus::new(BusConfig::default());
        let m = Bus::register_master(&mut bus, "m");
        bus.add_slave(0, Sram::with_words(512, SramConfig::no_wait()));
        bus.try_begin(m, TxnRequest::read(0, beats)).unwrap();
        let c = bus.run_to_completion(m).unwrap();
        assert!(c.cycles >= u64::from(beats));
        // Upper bound: grant+addr per 16-beat sub-burst.
        let sub_bursts = u64::from(beats).div_ceil(16);
        assert!(c.cycles <= u64::from(beats) + sub_bursts * 2);
    }
}

/// A width adapter, composed with its inverse, is the identity on
/// arbitrary word streams — for any width pair.
#[test]
fn width_adapter_inverse_identity() {
    let mut rng = XorShift64::new(0xB0_0003);
    for _ in 0..200 {
        let in_width = rng.gen_range_u32(1..65);
        let out_width = rng.gen_range_u32(1..65);
        let count = rng.gen_range_u32(1..64) as usize;
        let words: Vec<u64> = (0..count).map(|_| rng.next_u64()).collect();
        let mut forward = WidthAdapter::new("f", in_width, out_width, 16 * 1024);
        let mut backward = WidthAdapter::new("b", out_width, in_width, 16 * 1024);
        let mask = if in_width == 64 {
            u64::MAX
        } else {
            (1u64 << in_width) - 1
        };
        let masked: Vec<u128> = words.iter().map(|&w| u128::from(w & mask)).collect();
        for &w in &masked {
            forward.push(w).expect("capacity ample");
        }
        while let Some(v) = forward.pop() {
            backward.push(v).expect("capacity ample");
        }
        let mut recovered = Vec::new();
        while let Some(v) = backward.pop() {
            recovered.push(v);
        }
        // The inverse can only recover whole output words; residual bits
        // (< lcm alignment) stay buffered. Everything recovered must
        // match, and the residue must be smaller than one word of each
        // adapter, i.e. less than in_width + out_width bits.
        assert!(recovered.len() <= masked.len());
        for (r, w) in recovered.iter().zip(&masked) {
            assert_eq!(r, w, "widths {in_width}->{out_width}");
        }
        let residual = forward.bits_buffered() + backward.bits_buffered();
        assert!(
            residual < (in_width + out_width) as usize,
            "residual {residual} bits too large for {in_width}->{out_width}"
        );
    }
}

/// Two masters issuing interleaved single-word writes to disjoint
/// regions never corrupt each other, under either arbiter.
#[test]
fn concurrent_masters_keep_data_disjoint() {
    let mut rng = XorShift64::new(0xB0_0004);
    for round in 0..24 {
        let a_vals_len = rng.gen_range_u32(1..40) as usize;
        let a_vals = rng.vec_u32(a_vals_len);
        let b_vals_len = rng.gen_range_u32(1..40) as usize;
        let b_vals = rng.vec_u32(b_vals_len);
        let round_robin = rng.gen_bool();
        let mut bus = Bus::new(BusConfig {
            arbiter: if round_robin {
                ArbiterPolicy::RoundRobin
            } else {
                ArbiterPolicy::FixedPriority
            },
            ..BusConfig::default()
        });
        let a = Bus::register_master(&mut bus, "a");
        let b = Bus::register_master(&mut bus, "b");
        bus.add_slave(0, Sram::with_words(256, SramConfig::no_wait()));
        let mut ai = 0usize;
        let mut bi = 0usize;
        let mut fuel = 1_000_000;
        while ai < a_vals.len() || bi < b_vals.len() {
            fuel -= 1;
            assert!(fuel > 0, "deadlock in round {round}");
            if ai < a_vals.len() && bus.poll(a) == PortState::Idle {
                bus.try_begin(a, TxnRequest::write_word((ai * 4) as u32, a_vals[ai]))
                    .unwrap();
            }
            if bi < b_vals.len() && bus.poll(b) == PortState::Idle {
                bus.try_begin(
                    b,
                    TxnRequest::write_word(0x200 + (bi * 4) as u32, b_vals[bi]),
                )
                .unwrap();
            }
            bus.tick();
            if bus.poll(a) == PortState::Complete {
                bus.take_completion(a).unwrap().unwrap();
                ai += 1;
            }
            if bus.poll(b) == PortState::Complete {
                bus.take_completion(b).unwrap().unwrap();
                bi += 1;
            }
        }
        for (i, &v) in a_vals.iter().enumerate() {
            assert_eq!(bus.debug_read((i * 4) as u32).unwrap(), v);
        }
        for (i, &v) in b_vals.iter().enumerate() {
            assert_eq!(bus.debug_read(0x200 + (i * 4) as u32).unwrap(), v);
        }
    }
}
