//! Synchronous FIFOs, including the paper's *variable width* FIFOs.
//!
//! The Ouessant project "provides variable width FIFOs, which can be used
//! to interface with many accelerators. … They provide serializing and
//! deserializing functionalities, and can thus serve as simple data
//! formatting entities" (§III-B). Figure 2 shows the canonical instance:
//! the bus side is 32 bits wide while the accelerator consumes and
//! produces 96-bit operands; the input FIFO *deserializes* three 32-bit
//! words into one 96-bit operand, and the output FIFO *serializes* each
//! 96-bit result back into three words.
//!
//! [`SyncFifo`] is the plain same-width queue with `full`/`empty`
//! semantics and occupancy statistics; [`WidthAdapter`] adds the width
//! conversion on top of a bit-granular buffer.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error type for FIFO operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoError {
    /// Push attempted while the FIFO had no room ( `full` asserted —
    /// hardware would have held `wr_en` low).
    Overflow,
    /// Pop attempted while the FIFO was empty (`empty` asserted —
    /// hardware would have held `rd_en` low).
    Underflow,
}

impl fmt::Display for FifoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FifoError::Overflow => f.write_str("fifo overflow (write while full)"),
            FifoError::Underflow => f.write_str("fifo underflow (read while empty)"),
        }
    }
}

impl Error for FifoError {}

/// A synchronous FIFO of fixed capacity.
///
/// Mirrors the handshake of the paper's Figure 2: `wr_en` is legal only
/// while `full` is deasserted, `rd_en` only while `empty` is deasserted.
/// The simulation equivalents are [`SyncFifo::push`] (fails with
/// [`FifoError::Overflow`]) and [`SyncFifo::pop`] (fails with
/// [`FifoError::Underflow`]).
///
/// # Examples
///
/// ```
/// use ouessant_sim::SyncFifo;
///
/// let mut f = SyncFifo::new("cfg", 2);
/// f.push(10u32)?;
/// f.push(20)?;
/// assert!(f.is_full());
/// assert_eq!(f.pop()?, 10);
/// # Ok::<(), ouessant_sim::FifoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyncFifo<T> {
    name: String,
    capacity: usize,
    items: VecDeque<T>,
    stats: FifoStats,
}

/// Occupancy statistics of a FIFO, for sizing studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FifoStats {
    /// Total pushes accepted.
    pub pushes: u64,
    /// Total pops served.
    pub pops: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
    /// Pushes rejected because the FIFO was full.
    pub overflows: u64,
    /// Pops rejected because the FIFO was empty.
    pub underflows: u64,
}

impl<T> SyncFifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Self {
            name: name.to_string(),
            capacity,
            items: VecDeque::with_capacity(capacity),
            stats: FifoStats::default(),
        }
    }

    /// The FIFO's name (used in traces).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no items (the `empty` flag).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO has no room (the `full` flag).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free space in items.
    #[must_use]
    pub fn space(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Appends an item.
    ///
    /// # Errors
    ///
    /// [`FifoError::Overflow`] if the FIFO is full; the item is dropped
    /// (as it would be on a mis-driven `wr_en`) and the overflow is
    /// counted in [`FifoStats`].
    pub fn push(&mut self, item: T) -> Result<(), FifoError> {
        if self.is_full() {
            self.stats.overflows += 1;
            return Err(FifoError::Overflow);
        }
        self.items.push_back(item);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest item.
    ///
    /// # Errors
    ///
    /// [`FifoError::Underflow`] if the FIFO is empty.
    pub fn pop(&mut self) -> Result<T, FifoError> {
        match self.items.pop_front() {
            Some(item) => {
                self.stats.pops += 1;
                Ok(item)
            }
            None => {
                self.stats.underflows += 1;
                Err(FifoError::Underflow)
            }
        }
    }

    /// Peeks at the oldest item without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes every item.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Occupancy statistics gathered so far.
    #[must_use]
    pub fn stats(&self) -> FifoStats {
        self.stats
    }
}

/// A width-adapting FIFO: pushes are `in_width`-bit words, pops are
/// `out_width`-bit words.
///
/// This is the serializing/deserializing FIFO of the paper's Figure 2.
/// Internally it is a bit-granular ring buffer: a push appends
/// `in_width` bits, a pop consumes `out_width` bits, preserving order
/// (little-endian within the stream: the first word pushed occupies the
/// least significant bits of the first word popped).
///
/// # Examples
///
/// Deserializing three 32-bit bus words into one 96-bit accelerator
/// operand and back (Figure 2's exact widths):
///
/// ```
/// use ouessant_sim::WidthAdapter;
///
/// let mut f = WidthAdapter::new("din", 32, 96, 1024);
/// f.push(0x1111_1111)?;
/// f.push(0x2222_2222)?;
/// assert!(f.pop().is_none()); // only 64 of 96 bits present
/// f.push(0x3333_3333)?;
/// let operand = f.pop().expect("96 bits available");
/// assert_eq!(operand & 0xFFFF_FFFF, 0x1111_1111);
/// assert_eq!((operand >> 64) & 0xFFFF_FFFF, 0x3333_3333);
/// # Ok::<(), ouessant_sim::FifoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WidthAdapter {
    name: String,
    in_width: u32,
    out_width: u32,
    capacity_bits: usize,
    bits: VecDeque<bool>,
    stats: FifoStats,
}

impl WidthAdapter {
    /// Creates a width adapter.
    ///
    /// `capacity_bits` bounds the internal buffer, mirroring the BRAM
    /// the FPGA implementation infers.
    ///
    /// # Panics
    ///
    /// Panics if either width is 0 or greater than 128, or if the
    /// capacity cannot hold even one output word.
    #[must_use]
    pub fn new(name: &str, in_width: u32, out_width: u32, capacity_bits: usize) -> Self {
        assert!(
            (1..=128).contains(&in_width) && (1..=128).contains(&out_width),
            "widths must be 1..=128 bits"
        );
        assert!(
            capacity_bits >= in_width.max(out_width) as usize,
            "capacity must hold at least one word"
        );
        Self {
            name: name.to_string(),
            in_width,
            out_width,
            capacity_bits,
            bits: VecDeque::with_capacity(capacity_bits),
            stats: FifoStats::default(),
        }
    }

    /// The adapter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input word width in bits.
    #[must_use]
    pub fn in_width(&self) -> u32 {
        self.in_width
    }

    /// Output word width in bits.
    #[must_use]
    pub fn out_width(&self) -> u32 {
        self.out_width
    }

    /// Bits currently buffered.
    #[must_use]
    pub fn bits_buffered(&self) -> usize {
        self.bits.len()
    }

    /// Whether a push of one input word would overflow.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.bits.len() + self.in_width as usize > self.capacity_bits
    }

    /// Whether a full output word is available.
    #[must_use]
    pub fn has_output(&self) -> bool {
        self.bits.len() >= self.out_width as usize
    }

    /// Whether the buffer holds no bits at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of complete output words available.
    #[must_use]
    pub fn output_words_available(&self) -> usize {
        self.bits.len() / self.out_width as usize
    }

    /// Number of input words that can still be pushed.
    #[must_use]
    pub fn input_space(&self) -> usize {
        (self.capacity_bits - self.bits.len()) / self.in_width as usize
    }

    /// Pushes one `in_width`-bit word (higher bits of `word` ignored).
    ///
    /// # Errors
    ///
    /// [`FifoError::Overflow`] if the buffer cannot hold the word.
    pub fn push(&mut self, word: u128) -> Result<(), FifoError> {
        if self.is_full() {
            self.stats.overflows += 1;
            return Err(FifoError::Overflow);
        }
        for bit in 0..self.in_width {
            self.bits.push_back((word >> bit) & 1 == 1);
        }
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.bits.len());
        Ok(())
    }

    /// Pops one `out_width`-bit word, or `None` if fewer than
    /// `out_width` bits are buffered.
    pub fn pop(&mut self) -> Option<u128> {
        if !self.has_output() {
            self.stats.underflows += 1;
            return None;
        }
        let mut word: u128 = 0;
        for bit in 0..self.out_width {
            if self.bits.pop_front().expect("length checked") {
                word |= 1 << bit;
            }
        }
        self.stats.pops += 1;
        Some(word)
    }

    /// Discards all buffered bits.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Statistics gathered so far.
    #[must_use]
    pub fn stats(&self) -> FifoStats {
        self.stats
    }
}

impl<T> crate::event::NextEvent for SyncFifo<T> {
    /// FIFOs are passive: they change state only when an owner pushes
    /// or pops, never from the passage of time, so they are always
    /// quiescent from the fast-forward kernel's point of view.
    fn horizon(&self) -> Option<crate::clock::Cycle> {
        None
    }

    fn advance(&mut self, _cycles: crate::clock::Cycle) {}
}

impl crate::event::NextEvent for WidthAdapter {
    /// Width adapters are passive, like [`SyncFifo`]: no tick, no
    /// timers, so always quiescent.
    fn horizon(&self) -> Option<crate::clock::Cycle> {
        None
    }

    fn advance(&mut self, _cycles: crate::clock::Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_fifo_order_and_flags() {
        let mut f = SyncFifo::new("t", 3);
        assert!(f.is_empty());
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert!(f.is_full());
        assert_eq!(f.pop().unwrap(), 1);
        assert_eq!(f.pop().unwrap(), 2);
        assert_eq!(f.pop().unwrap(), 3);
        assert!(f.is_empty());
    }

    #[test]
    fn sync_fifo_overflow_underflow() {
        let mut f = SyncFifo::new("t", 1);
        f.push(9).unwrap();
        assert_eq!(f.push(10), Err(FifoError::Overflow));
        f.pop().unwrap();
        assert_eq!(f.pop(), Err(FifoError::Underflow));
        let s = f.stats();
        assert_eq!(s.overflows, 1);
        assert_eq!(s.underflows, 1);
        assert_eq!(s.max_occupancy, 1);
    }

    #[test]
    fn sync_fifo_front_and_clear() {
        let mut f = SyncFifo::new("t", 4);
        f.push(7).unwrap();
        assert_eq!(f.front(), Some(&7));
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: SyncFifo<u32> = SyncFifo::new("t", 0);
    }

    #[test]
    fn figure2_deserialize_32_to_96() {
        let mut f = WidthAdapter::new("din", 32, 96, 96 * 4);
        f.push(0xAAAA_AAAA).unwrap();
        f.push(0xBBBB_BBBB).unwrap();
        assert!(!f.has_output());
        f.push(0xCCCC_CCCC).unwrap();
        let op = f.pop().unwrap();
        assert_eq!(op, 0xCCCC_CCCC_BBBB_BBBB_AAAA_AAAAu128);
    }

    #[test]
    fn figure2_serialize_96_to_32() {
        let mut f = WidthAdapter::new("dout", 96, 32, 96 * 4);
        f.push(0xCCCC_CCCC_BBBB_BBBB_AAAA_AAAAu128).unwrap();
        assert_eq!(f.pop().unwrap(), 0xAAAA_AAAA);
        assert_eq!(f.pop().unwrap(), 0xBBBB_BBBB);
        assert_eq!(f.pop().unwrap(), 0xCCCC_CCCC);
        assert!(f.pop().is_none());
    }

    #[test]
    fn same_width_is_transparent() {
        let mut f = WidthAdapter::new("x", 32, 32, 32 * 8);
        for v in [1u128, 2, 3] {
            f.push(v).unwrap();
        }
        for v in [1u128, 2, 3] {
            assert_eq!(f.pop().unwrap(), v);
        }
    }

    #[test]
    fn upsize_then_downsize_is_identity() {
        let mut up = WidthAdapter::new("up", 8, 24, 24 * 8);
        let mut down = WidthAdapter::new("down", 24, 8, 24 * 8);
        let bytes = [0x12u128, 0x34, 0x56, 0x78, 0x9A, 0xBC];
        for b in bytes {
            up.push(b).unwrap();
        }
        while let Some(w) = up.pop() {
            down.push(w).unwrap();
        }
        for b in bytes {
            assert_eq!(down.pop().unwrap(), b);
        }
    }

    #[test]
    fn adapter_capacity_enforced() {
        let mut f = WidthAdapter::new("x", 32, 32, 64);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.push(3), Err(FifoError::Overflow));
        assert_eq!(f.input_space(), 0);
    }

    #[test]
    fn adapter_word_accounting() {
        let mut f = WidthAdapter::new("x", 32, 96, 96 * 2);
        assert_eq!(f.input_space(), 6);
        for i in 0..6 {
            f.push(i).unwrap();
        }
        assert_eq!(f.output_words_available(), 2);
        assert!(f.is_full());
    }

    #[test]
    fn non_divisible_widths() {
        // 32-bit in, 24-bit out: 3 pushes (96 bits) -> 4 pops.
        let mut f = WidthAdapter::new("x", 32, 24, 32 * 6);
        f.push(0x0403_0201).unwrap();
        f.push(0x0807_0605).unwrap();
        f.push(0x0C0B_0A09).unwrap();
        assert_eq!(f.output_words_available(), 4);
        assert_eq!(f.pop().unwrap(), 0x03_0201);
        assert_eq!(f.pop().unwrap(), 0x06_0504);
        assert_eq!(f.pop().unwrap(), 0x09_0807);
        assert_eq!(f.pop().unwrap(), 0x0C_0B0A);
    }

    #[test]
    #[should_panic(expected = "widths")]
    fn oversized_width_panics() {
        let _ = WidthAdapter::new("x", 129, 32, 1024);
    }
}
