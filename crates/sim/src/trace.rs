//! Lightweight event tracing shared by all simulated components.
//!
//! Tracing is off by default (zero allocation per event); when enabled it
//! records a bounded ring of [`TraceEvent`]s that tests and debugging
//! sessions can inspect, similar to reading a simulation waveform.

use std::collections::VecDeque;
use std::fmt;

use crate::clock::Cycle;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub cycle: Cycle,
    /// Component that emitted it (e.g. `"bus"`, `"ocp.controller"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<16} {}",
            self.cycle.count(),
            self.source,
            self.message
        )
    }
}

/// A bounded trace buffer.
///
/// # Examples
///
/// ```
/// use ouessant_sim::{Cycle, Trace};
///
/// let mut trace = Trace::enabled(16);
/// trace.record(Cycle::new(3), "bus", "grant to master 1");
/// assert_eq!(trace.events().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    limit: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace ([`Trace::record`] is a no-op).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled trace keeping the most recent `limit` events.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    #[must_use]
    pub fn enabled(limit: usize) -> Self {
        assert!(limit > 0, "trace limit must be non-zero");
        Self {
            enabled: true,
            limit,
            events: VecDeque::with_capacity(limit.min(4096)),
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled). The oldest event is
    /// dropped once the limit is reached.
    pub fn record(&mut self, cycle: Cycle, source: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.limit {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            source: source.to_string(),
            message: message.into(),
        });
    }

    /// The recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Number of events evicted due to the ring limit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events whose source starts with `prefix`.
    pub fn from_source<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.source.starts_with(prefix))
    }

    /// Clears all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Cycle::new(1), "x", "hello");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_evicts() {
        let mut t = Trace::enabled(2);
        t.record(Cycle::new(1), "a", "one");
        t.record(Cycle::new(2), "a", "two");
        t.record(Cycle::new(3), "b", "three");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].message, "two");
    }

    #[test]
    fn source_filter() {
        let mut t = Trace::enabled(8);
        t.record(Cycle::new(1), "bus", "grant");
        t.record(Cycle::new(2), "ocp.controller", "fetch");
        t.record(Cycle::new(3), "ocp.interface", "xlate");
        assert_eq!(t.from_source("ocp").count(), 2);
        assert_eq!(t.from_source("bus").count(), 1);
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            cycle: Cycle::new(7),
            source: "bus".into(),
            message: "grant".into(),
        };
        let s = e.to_string();
        assert!(s.contains('7'));
        assert!(s.contains("bus"));
        assert!(s.contains("grant"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::enabled(1);
        t.record(Cycle::new(1), "a", "x");
        t.record(Cycle::new(2), "a", "y");
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
