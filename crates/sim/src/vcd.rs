//! Value Change Dump (VCD) output.
//!
//! Hardware engineers debug integration problems with waveforms; the
//! original Ouessant flow leaned on HDL simulation ("the result was
//! easy to simulate, using the OCP" — §V-B). [`VcdWriter`] gives this
//! behavioural simulator the same affordance: sample any signals per
//! cycle, then render an IEEE-1364 VCD file that GTKWave (or any
//! waveform viewer) opens directly.
//!
//! # Examples
//!
//! ```
//! use ouessant_sim::vcd::VcdWriter;
//! use ouessant_sim::Cycle;
//!
//! let mut vcd = VcdWriter::new("ocp");
//! let state = vcd.add_signal("controller_state", 4);
//! let busy = vcd.add_signal("rac_busy", 1);
//! vcd.change(Cycle::new(0), state, 0);
//! vcd.change(Cycle::new(0), busy, 0);
//! vcd.change(Cycle::new(5), state, 2);
//! vcd.change(Cycle::new(7), busy, 1);
//! let text = vcd.render();
//! assert!(text.contains("$var wire 4"));
//! assert!(text.contains("#5"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::clock::Cycle;

/// Handle to a declared VCD signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct SignalDef {
    name: String,
    width: u32,
}

/// Collects value changes and renders an IEEE-1364 VCD document.
///
/// Changes may be recorded out of order; rendering sorts by time. Only
/// actual transitions are emitted (recording the same value twice in a
/// row is deduplicated at render time), matching what an event-driven
/// simulator would dump.
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    timescale: String,
    signals: Vec<SignalDef>,
    /// cycle -> (signal, value), later recordings override earlier ones
    /// in the same cycle.
    changes: BTreeMap<u64, BTreeMap<usize, u64>>,
}

impl VcdWriter {
    /// A writer for signals grouped under `module`, with the paper's
    /// 50 MHz clock (one cycle = 20 ns).
    #[must_use]
    pub fn new(module: &str) -> Self {
        Self {
            module: module.to_string(),
            timescale: "20 ns".to_string(),
            signals: Vec::new(),
            changes: BTreeMap::new(),
        }
    }

    /// Overrides the timescale string (e.g. `"1 ns"`).
    #[must_use]
    pub fn with_timescale(mut self, timescale: &str) -> Self {
        self.timescale = timescale.to_string();
        self
    }

    /// Declares a signal of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        self.signals.push(SignalDef {
            name: name.to_string(),
            width,
        });
        SignalId(self.signals.len() - 1)
    }

    /// Number of declared signals.
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Records `signal` taking `value` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` was not declared by this writer.
    pub fn change(&mut self, at: Cycle, signal: SignalId, value: u64) {
        assert!(signal.0 < self.signals.len(), "unknown signal");
        self.changes
            .entry(at.count())
            .or_default()
            .insert(signal.0, value);
    }

    /// Short VCD identifier codes: `!`, `"`, …, printable ASCII.
    fn id_code(index: usize) -> String {
        let mut code = String::new();
        let mut i = index;
        loop {
            code.push(char::from(b'!' + (i % 94) as u8));
            i /= 94;
            if i == 0 {
                break;
            }
            i -= 1;
        }
        code
    }

    /// Renders the full VCD document.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date");
        let _ = writeln!(out, "    ouessant behavioural simulation");
        let _ = writeln!(out, "$end");
        let _ = writeln!(out, "$version");
        let _ = writeln!(out, "    ouessant-sim VCD writer");
        let _ = writeln!(out, "$end");
        let _ = writeln!(out, "$timescale {} $end", self.timescale);
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (i, s) in self.signals.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                s.width,
                Self::id_code(i),
                s.name
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let mut last: Vec<Option<u64>> = vec![None; self.signals.len()];
        for (&t, per_signal) in &self.changes {
            let mut emitted_time = false;
            for (&sig, &value) in per_signal {
                let masked = if self.signals[sig].width == 64 {
                    value
                } else {
                    value & ((1u64 << self.signals[sig].width) - 1)
                };
                if last[sig] == Some(masked) {
                    continue; // no transition
                }
                if !emitted_time {
                    let _ = writeln!(out, "#{t}");
                    emitted_time = true;
                }
                last[sig] = Some(masked);
                if self.signals[sig].width == 1 {
                    let _ = writeln!(out, "{}{}", masked & 1, Self::id_code(sig));
                } else {
                    let _ = writeln!(out, "b{masked:b} {}", Self::id_code(sig));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_declares_signals() {
        let mut vcd = VcdWriter::new("top");
        vcd.add_signal("clk", 1);
        vcd.add_signal("state", 4);
        let text = vcd.render();
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 4 \" state $end"));
        assert!(text.contains("$timescale 20 ns $end"));
    }

    #[test]
    fn scalar_and_vector_changes() {
        let mut vcd = VcdWriter::new("top");
        let clk = vcd.add_signal("clk", 1);
        let bus = vcd.add_signal("bus", 8);
        vcd.change(Cycle::new(0), clk, 1);
        vcd.change(Cycle::new(0), bus, 0xA5);
        vcd.change(Cycle::new(3), clk, 0);
        let text = vcd.render();
        assert!(text.contains("#0\n"));
        assert!(text.contains("1!"));
        assert!(text.contains("b10100101 \""));
        assert!(text.contains("#3\n0!"));
    }

    #[test]
    fn repeated_values_deduplicated() {
        let mut vcd = VcdWriter::new("top");
        let s = vcd.add_signal("s", 1);
        for t in 0..10 {
            vcd.change(Cycle::new(t), s, 1); // never transitions after t=0
        }
        let text = vcd.render();
        assert_eq!(
            text.matches("1!").count(),
            1,
            "only one transition:\n{text}"
        );
        assert!(!text.contains("#5"), "quiet cycles emit no timestamps");
    }

    #[test]
    fn out_of_order_recording_sorts() {
        let mut vcd = VcdWriter::new("top");
        let s = vcd.add_signal("s", 4);
        vcd.change(Cycle::new(20), s, 2);
        vcd.change(Cycle::new(5), s, 1);
        let text = vcd.render();
        let p5 = text.find("#5").expect("timestamp 5 present");
        let p20 = text.find("#20").expect("timestamp 20 present");
        assert!(p5 < p20);
    }

    #[test]
    fn values_masked_to_width() {
        let mut vcd = VcdWriter::new("top");
        let s = vcd.add_signal("s", 4);
        vcd.change(Cycle::new(0), s, 0xFF);
        let text = vcd.render();
        assert!(text.contains("b1111 "), "masked to 4 bits:\n{text}");
    }

    #[test]
    fn id_codes_are_unique_across_many_signals() {
        let mut vcd = VcdWriter::new("top");
        for i in 0..200 {
            vcd.add_signal(&format!("s{i}"), 1);
        }
        let mut codes: Vec<String> = (0..200).map(VcdWriter::id_code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 200);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let mut vcd = VcdWriter::new("top");
        vcd.add_signal("bad", 0);
    }

    #[test]
    #[should_panic(expected = "unknown signal")]
    fn foreign_signal_panics() {
        let mut a = VcdWriter::new("a");
        let mut b = VcdWriter::new("b");
        let sig = a.add_signal("s", 1);
        let _ = &mut b;
        b.change(Cycle::new(0), sig, 1);
    }
}
