//! Cycle bookkeeping and clock-frequency conversion.
//!
//! Every result in the paper's Table I is reported in *cycles* at a
//! 50 MHz system clock; [`Frequency`] converts between the two so the
//! benches can print both.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A count of clock cycles (also used as an absolute timestamp).
///
/// ```
/// use ouessant_sim::Cycle;
///
/// let a = Cycle::new(100);
/// let b = a + Cycle::new(50);
/// assert_eq!(b.count(), 150);
/// assert_eq!((b - a).count(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Wraps a raw cycle count.
    #[must_use]
    pub fn new(count: u64) -> Self {
        Self(count)
    }

    /// The raw cycle count.
    #[must_use]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Advances by one cycle.
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;

    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (cycle counts cannot be
    /// negative); use [`Cycle::saturating_sub`] when underflow is
    /// expected.
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cy", self.0)
    }
}

/// A clock frequency, used to convert cycle counts into wall time.
///
/// ```
/// use ouessant_sim::{Cycle, Frequency};
///
/// let clk = Frequency::mhz(50); // the paper's system clock
/// let t = clk.duration_of(Cycle::new(7000)); // DFT offload under Linux
/// assert_eq!(t.as_micros(), 140);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    hz: u64,
}

impl Frequency {
    /// The 50 MHz system clock used for every configuration in the
    /// paper's evaluation.
    pub const PAPER_SYSTEM_CLOCK: Frequency = Frequency { hz: 50_000_000 };

    /// A frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz == 0`.
    #[must_use]
    pub fn hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Self { hz }
    }

    /// A frequency in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz == 0`.
    #[must_use]
    pub fn mhz(mhz: u64) -> Self {
        Self::hz(mhz * 1_000_000)
    }

    /// The frequency in hertz.
    #[must_use]
    pub fn as_hz(self) -> u64 {
        self.hz
    }

    /// Wall-clock duration of `cycles` at this frequency.
    #[must_use]
    pub fn duration_of(self, cycles: Cycle) -> std::time::Duration {
        let nanos = (cycles.count() as u128 * 1_000_000_000) / self.hz as u128;
        std::time::Duration::from_nanos(nanos as u64)
    }

    /// Number of cycles elapsed in `duration` at this frequency
    /// (rounded down).
    #[must_use]
    pub fn cycles_in(self, duration: std::time::Duration) -> Cycle {
        Cycle::new((duration.as_nanos() * self.hz as u128 / 1_000_000_000) as u64)
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Self::PAPER_SYSTEM_CLOCK
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.hz / 1_000_000)
        } else if self.hz >= 1_000_000 {
            write!(f, "{:.1} MHz", self.hz as f64 / 1.0e6)
        } else {
            write!(f, "{} Hz", self.hz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(3);
        assert_eq!((a + b).count(), 13);
        assert_eq!((a - b).count(), 7);
        assert_eq!(a.next().count(), 11);
        let mut c = a;
        c += b;
        assert_eq!(c.count(), 13);
    }

    #[test]
    fn cycle_saturating_sub() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), Cycle::ZERO);
    }

    #[test]
    fn cycle_sum() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total.count(), 6);
    }

    #[test]
    fn paper_clock_is_50mhz() {
        assert_eq!(Frequency::PAPER_SYSTEM_CLOCK.as_hz(), 50_000_000);
        assert_eq!(Frequency::default(), Frequency::mhz(50));
    }

    #[test]
    fn duration_conversion_round_trip() {
        let clk = Frequency::mhz(50);
        let c = Cycle::new(600_000); // the paper's software DFT
        let d = clk.duration_of(c);
        assert_eq!(d.as_millis(), 12);
        assert_eq!(clk.cycles_in(d), c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycle::new(42).to_string(), "42 cy");
        assert_eq!(Frequency::mhz(50).to_string(), "50 MHz");
        assert_eq!(Frequency::hz(1234).to_string(), "1234 Hz");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Frequency::hz(0);
    }
}
